//! The analyzed corpus: experiment output plus pre-computed sessions, the
//! columnar corpus index and metadata join helpers.

use crate::index::CorpusIndex;
use sixscope_analysis::classify::ScannerProfile;
use sixscope_sim::{ExperimentResult, Scenario, ScenarioConfig, ScenarioTimings};
use sixscope_telescope::{AggLevel, Capture, ScanSession, Sessionizer, SourceKey, TelescopeId};
use sixscope_types::{map_indexed, num_threads, AsInfo, Asn, PrefixTrie, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::time::Instant;

/// The entry point: configures and runs the full study.
pub struct Experiment {
    config: ScenarioConfig,
}

impl Experiment {
    /// Creates an experiment with the default address plan.
    ///
    /// `scale` is relative to the paper's population (1.0 ≈ 36k sources /
    /// 51M packets; the default reproduction runs use 0.02–0.05).
    pub fn new(seed: u64, scale: f64) -> Self {
        Experiment {
            config: ScenarioConfig::new(seed, scale),
        }
    }

    /// Access to the underlying configuration.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// Runs the experiment and builds the analyzed corpus.
    pub fn run(&self) -> Analyzed {
        self.run_timed().0
    }

    /// Runs the experiment and reports per-stage simulation wall-clock
    /// (analysis timings live on [`Analyzed::timings`]).
    pub fn run_timed(&self) -> (Analyzed, ScenarioTimings) {
        let (result, timings) = Scenario::new(self.config.clone()).run_timed();
        (Analyzed::from_result(result), timings)
    }
}

/// Wall-clock seconds of the analysis stages in [`Analyzed::from_result`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisTimings {
    /// The eight sessionization passes.
    pub sessionize: f64,
    /// The corpus-index build.
    pub index_build: f64,
}

/// Experiment output with sessions, scanner profiles and metadata joins.
pub struct Analyzed {
    /// The raw experiment result (captures, events, visibility, world).
    pub result: ExperimentResult,
    /// Scan sessions at /128 aggregation, per telescope.
    pub sessions128: BTreeMap<TelescopeId, Vec<ScanSession>>,
    /// Scan sessions at /64 aggregation, per telescope.
    pub sessions64: BTreeMap<TelescopeId, Vec<ScanSession>>,
    /// The columnar corpus index the tables and figures reduce over.
    pub index: CorpusIndex,
    /// Wall-clock of the analysis stages that built this corpus.
    pub timings: AnalysisTimings,
    /// Source /64-subnet → origin AS (the IP-to-AS join of the study).
    asn_by_subnet: PrefixTrie<Asn>,
}

impl Analyzed {
    /// Builds the corpus from a finished experiment.
    ///
    /// The eight sessionization passes (four telescopes × two aggregation
    /// levels) are independent pure functions of their capture, so they run
    /// on worker threads (`SIXSCOPE_THREADS` caps them; 1 forces serial).
    /// Results are keyed by telescope, so scheduling cannot affect output.
    pub fn from_result(result: ExperimentResult) -> Analyzed {
        let sessionize_start = Instant::now();
        let jobs: Vec<(TelescopeId, AggLevel)> = TelescopeId::ALL
            .into_iter()
            .flat_map(|id| [(id, AggLevel::Addr128), (id, AggLevel::Subnet64)])
            .collect();
        let sessionized = map_indexed(num_threads(None), &jobs, |_, &(id, level)| {
            Sessionizer::paper(level).sessionize(&result.captures[&id])
        });
        let mut sessions128 = BTreeMap::new();
        let mut sessions64 = BTreeMap::new();
        for (&(id, level), sessions) in jobs.iter().zip(sessionized) {
            match level {
                AggLevel::Addr128 => sessions128.insert(id, sessions),
                AggLevel::Subnet64 => sessions64.insert(id, sessions),
                other => unreachable!("no {other:?} sessionization job scheduled"),
            };
        }
        let sessionize = sessionize_start.elapsed().as_secs_f64();
        let index_start = Instant::now();
        let index = CorpusIndex::build(&result, &sessions128, &sessions64);
        let index_build = index_start.elapsed().as_secs_f64();
        let mut asn_by_subnet = PrefixTrie::new();
        for scanner in &result.population.scanners {
            asn_by_subnet.insert(scanner.source.subnet(), scanner.asn);
        }
        Analyzed {
            result,
            sessions128,
            sessions64,
            index,
            timings: AnalysisTimings {
                sessionize,
                index_build,
            },
            asn_by_subnet,
        }
    }

    /// One telescope's capture.
    pub fn capture(&self, id: TelescopeId) -> &Capture {
        &self.result.captures[&id]
    }

    /// Sessions at /128 for one telescope.
    pub fn sessions128(&self, id: TelescopeId) -> &[ScanSession] {
        &self.sessions128[&id]
    }

    /// Sessions at /64 for one telescope.
    pub fn sessions64(&self, id: TelescopeId) -> &[ScanSession] {
        &self.sessions64[&id]
    }

    /// All /128 sessions across all telescopes.
    pub fn all_sessions128(&self) -> impl Iterator<Item = &ScanSession> {
        TelescopeId::ALL
            .into_iter()
            .flat_map(|id| self.sessions128[&id].iter())
    }

    /// Origin AS of a source address (routing-data join).
    pub fn asn_of(&self, src: Ipv6Addr) -> Option<Asn> {
        self.asn_by_subnet.lookup(src).map(|(_, asn)| *asn)
    }

    /// AS metadata of a source address.
    pub fn as_info_of(&self, src: Ipv6Addr) -> Option<&AsInfo> {
        self.asn_of(src)
            .and_then(|asn| self.result.population.as_info(asn))
    }

    /// Reverse DNS of a source address, if registered.
    pub fn rdns_of(&self, src: Ipv6Addr) -> Option<&str> {
        self.result.population.rdns.get(&src).map(String::as_str)
    }

    /// The boundary between the initial observation period and the split
    /// period (start of cycle 1).
    pub fn split_start(&self) -> SimTime {
        self.result.schedule.cycle_start(1)
    }

    /// Sessions at one telescope restricted to the initial 12 weeks.
    pub fn initial_sessions128(&self, id: TelescopeId) -> Vec<&ScanSession> {
        let boundary = self.split_start();
        self.sessions128[&id]
            .iter()
            .filter(|s| s.start < boundary)
            .collect()
    }

    /// T1 sessions during the split period (/128).
    pub fn t1_split_sessions(&self) -> Vec<&ScanSession> {
        let boundary = self.split_start();
        self.sessions128[&TelescopeId::T1]
            .iter()
            .filter(|s| s.start >= boundary)
            .collect()
    }

    /// Temporal scanner profiles of the T1 split period. The profiles are
    /// pre-computed on the corpus index; `session_indices` reference the
    /// returned slice.
    pub fn t1_split_profiles(&self) -> (&[ScanSession], &[ScannerProfile]) {
        let window = &self.index.split().window;
        (
            &self.sessions128[&TelescopeId::T1][window.range.clone()],
            &window.profiles,
        )
    }

    /// Distinct /128 sources at one telescope over a time range (ascending).
    pub fn sources128(&self, id: TelescopeId, from: SimTime, until: SimTime) -> Vec<SourceKey> {
        let col = self.index.telescope(id);
        let mut ids: Vec<u32> = col.src128[col.range(from, until)].to_vec();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|i| self.index.sources.key128(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyzed() -> Analyzed {
        Experiment::new(7, 0.004).run()
    }

    #[test]
    fn corpus_builds_sessions_for_every_telescope() {
        let a = analyzed();
        for id in TelescopeId::ALL {
            // /64 aggregation can only merge sessions, never create more.
            assert!(a.sessions64(id).len() <= a.sessions128(id).len());
        }
        assert!(!a.sessions128(TelescopeId::T1).is_empty());
    }

    #[test]
    fn asn_join_resolves_all_captured_sources() {
        let a = analyzed();
        for id in TelescopeId::ALL {
            for p in a.capture(id).packets() {
                assert!(
                    a.asn_of(p.src).is_some(),
                    "source {} has no AS mapping",
                    p.src
                );
            }
        }
    }

    #[test]
    fn rdns_join_finds_atlas_probes() {
        let a = analyzed();
        let atlas_sources = a
            .capture(TelescopeId::T1)
            .packets()
            .iter()
            .filter(|p| {
                a.rdns_of(p.src)
                    .is_some_and(|n| n.ends_with(".probes.atlas.ripe.net"))
            })
            .count();
        assert!(atlas_sources > 0, "no Atlas sources observed at T1");
    }

    #[test]
    fn split_period_partitions_sessions() {
        let a = analyzed();
        let initial = a.initial_sessions128(TelescopeId::T1).len();
        let split = a.t1_split_sessions().len();
        assert_eq!(initial + split, a.sessions128(TelescopeId::T1).len());
        assert!(split > initial, "the split period is 32 of 44 weeks");
    }

    #[test]
    fn t1_split_profiles_cover_all_sources() {
        let a = analyzed();
        let (sessions, profiles) = a.t1_split_profiles();
        let total_sessions: usize = profiles.iter().map(|p| p.session_indices.len()).sum();
        assert_eq!(total_sessions, sessions.len());
    }
}
