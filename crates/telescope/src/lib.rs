//! # sixscope-telescope
//!
//! The measurement half of the paper's §3: four network telescopes with
//! contrasting network embeddings.
//!
//! * [`config`] — T1 (BGP-controlled /32), T2 (partially productive /48 with
//!   a DNS attractor), T3 (silent /48 inside a covering /29), T4 (reactive
//!   /48 inside the same /29),
//! * [`capture`] — the packet store each telescope fills (with optional
//!   pcap tee),
//! * [`source`] — scan-source aggregation at /128, /64 and /48,
//! * [`session`] — scan-session construction with the paper's 1-hour
//!   inter-arrival timeout,
//! * [`feed`] — the unified chunked input surface ([`Feed`]) over finished
//!   pcaps, growing capture files and simulated experiments,
//! * [`reactive`] — T4's responder (echo replies, SYN/ACKs, port
//!   unreachables),
//! * [`schedule`] — the bi-weekly asymmetric prefix-split automation of
//!   Fig. 2 (withdraw day, split the half without the inherited low-byte
//!   address, re-announce).

pub mod capture;
pub mod config;
pub mod feed;
pub mod reactive;
pub mod schedule;
pub mod session;
pub mod source;

pub use bytes::Bytes;
pub use capture::{Capture, CapturedPacket, IngestStats, Protocol};
pub use config::{TelescopeConfig, TelescopeId, TelescopeKind};
pub use feed::{Feed, FeedChunk, FeedError, LateFilter, PcapFeed, SimFeed, TailFeed};
pub use reactive::respond;
pub use schedule::{ScheduleAction, ScheduleActionKind, SplitSchedule};
pub use session::{
    IncrementalSessionizer, ScanSession, SessionStitcher, Sessionizer, SESSION_TIMEOUT,
};
pub use source::{AggLevel, SourceKey};
