//! Period detection by autocorrelation (after Breitenbach et al.).
//!
//! The temporal taxonomy (§5.1) calls a recurrent scanner *periodic* when a
//! stable period exists between its scan sessions, and *intermittent*
//! otherwise. We detect periods by (1) bucketizing session start times into
//! a binary activity series, (2) computing the normalized autocorrelation
//! function, and (3) looking for a dominant lag whose multiples also
//! correlate — the "repeating pattern" criterion of that method.

use crate::nist::fft_in_place;
use sixscope_types::{SimDuration, SimTime};

/// Result of period detection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Period {
    /// The detected period.
    pub period: SimDuration,
    /// Autocorrelation score at that lag, in `[0, 1]`.
    pub score: f64,
}

/// Configuration for the detector.
#[derive(Debug, Clone, Copy)]
pub struct PeriodDetector {
    /// Bucket width for the activity series (default: 1 hour).
    pub bucket: SimDuration,
    /// Minimum autocorrelation score to accept a period.
    pub min_score: f64,
    /// Minimum number of sessions to even attempt detection; the paper
    /// requires periodic scanners to "appear more than twice".
    pub min_sessions: usize,
}

impl Default for PeriodDetector {
    fn default() -> Self {
        PeriodDetector {
            bucket: SimDuration::hours(1),
            min_score: 0.5,
            min_sessions: 3,
        }
    }
}

impl PeriodDetector {
    /// Detects a stable period in session start times, or `None`.
    pub fn detect(&self, starts: &[SimTime]) -> Option<Period> {
        if starts.len() < self.min_sessions {
            return None;
        }
        let mut times: Vec<u64> = starts.iter().map(|t| t.as_secs()).collect();
        times.sort_unstable();
        let t0 = times[0];
        let span = times[times.len() - 1] - t0;
        if span == 0 {
            return None;
        }
        // Fast path on inter-arrival gaps: a periodic scanner's gaps are
        // (near-)integer multiples of a base period — exact multiples
        // whenever sessions drop out (withdrawal days, single-prefix picks
        // that miss the telescope). Take the median gap as the period
        // candidate and require most gaps to sit within 20% of *some*
        // multiple of it; exponential/intermittent gap trains fail this
        // overwhelmingly.
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mut sorted_gaps = gaps.clone();
        sorted_gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
        let median = sorted_gaps[sorted_gaps.len() / 2];
        if median > 0.0 && gaps.len() >= 2 {
            let consistent = gaps
                .iter()
                .filter(|&&g| {
                    let k = (g / median).round().max(1.0);
                    (g - k * median).abs() <= 0.2 * median
                })
                .count();
            let share = consistent as f64 / gaps.len() as f64;
            if share >= 0.7 {
                return Some(Period {
                    period: SimDuration::secs(median.round() as u64),
                    score: share,
                });
            }
        }
        // General path: binary activity series + autocorrelation. The full
        // ACF is computed once via Wiener–Khinchin — FFT the zero-padded
        // series, take the power spectrum, FFT again — instead of three
        // O(n) scans per candidate lag. Padding to ≥ n + max_lag zeros
        // makes the circular correlation linear over the lags we read.
        let bucket = self.bucket.as_secs().max(1);
        let n_buckets = (span / bucket + 1) as usize;
        if n_buckets < 8 {
            return None;
        }
        let mut series = vec![0.0f64; n_buckets];
        for t in &times {
            series[((t - t0) / bucket) as usize] = 1.0;
        }
        let mean = series.iter().sum::<f64>() / n_buckets as f64;
        for v in &mut series {
            *v -= mean;
        }
        let denom: f64 = series.iter().map(|v| v * v).sum();
        if denom == 0.0 {
            return None;
        }
        let max_lag = n_buckets / 2;
        let nfft = (2 * n_buckets).next_power_of_two();
        let mut re = vec![0.0f64; nfft];
        let mut im = vec![0.0f64; nfft];
        re[..n_buckets].copy_from_slice(&series);
        fft_in_place(&mut re, &mut im);
        for k in 0..nfft {
            re[k] = re[k] * re[k] + im[k] * im[k];
            im[k] = 0.0;
        }
        // The power spectrum is real and even, so a forward transform is
        // its own inverse up to the 1/nfft scale.
        fft_in_place(&mut re, &mut im);
        let inv = 1.0 / nfft as f64;
        let acf = |lag: usize| -> f64 { re[lag] * inv / denom };
        // Find the best local-max lag.
        let mut best: Option<(usize, f64)> = None;
        for lag in 2..max_lag {
            let c = acf(lag);
            if c >= self.min_score
                && c > acf(lag - 1)
                && c >= acf(lag + 1)
                && best.is_none_or(|(_, bc)| c > bc)
            {
                best = Some((lag, c));
            }
        }
        let (lag, score) = best?;
        // Validate: the doubled lag must also correlate (a repeating
        // pattern, not a one-off coincidence).
        if 2 * lag < max_lag && acf(2 * lag) < self.min_score * 0.5 {
            return None;
        }
        Some(Period {
            period: SimDuration::secs(lag as u64 * bucket),
            score,
        })
    }
}

/// The pre-FFT detector retained verbatim: same fast path, but the general
/// path re-evaluates the ACF as O(n) scans per candidate lag. Ground truth
/// for the property tests and the `kernels` criterion group.
pub mod reference {
    use super::{Period, PeriodDetector};
    use sixscope_types::{SimDuration, SimTime};

    /// Detects a stable period in session start times, or `None`.
    pub fn detect(det: &PeriodDetector, starts: &[SimTime]) -> Option<Period> {
        if starts.len() < det.min_sessions {
            return None;
        }
        let mut times: Vec<u64> = starts.iter().map(|t| t.as_secs()).collect();
        times.sort_unstable();
        let t0 = times[0];
        let span = times[times.len() - 1] - t0;
        if span == 0 {
            return None;
        }
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]) as f64).collect();
        let mut sorted_gaps = gaps.clone();
        sorted_gaps.sort_by(|a, b| a.partial_cmp(b).expect("gaps are finite"));
        let median = sorted_gaps[sorted_gaps.len() / 2];
        if median > 0.0 && gaps.len() >= 2 {
            let consistent = gaps
                .iter()
                .filter(|&&g| {
                    let k = (g / median).round().max(1.0);
                    (g - k * median).abs() <= 0.2 * median
                })
                .count();
            let share = consistent as f64 / gaps.len() as f64;
            if share >= 0.7 {
                return Some(Period {
                    period: SimDuration::secs(median.round() as u64),
                    score: share,
                });
            }
        }
        // General path: binary activity series + autocorrelation.
        let bucket = det.bucket.as_secs().max(1);
        let n_buckets = (span / bucket + 1) as usize;
        if n_buckets < 8 {
            return None;
        }
        let mut series = vec![0.0f64; n_buckets];
        for t in &times {
            series[((t - t0) / bucket) as usize] = 1.0;
        }
        let mean = series.iter().sum::<f64>() / n_buckets as f64;
        for v in &mut series {
            *v -= mean;
        }
        let denom: f64 = series.iter().map(|v| v * v).sum();
        if denom == 0.0 {
            return None;
        }
        let max_lag = n_buckets / 2;
        let acf = |lag: usize| -> f64 {
            let num: f64 = (0..n_buckets - lag)
                .map(|i| series[i] * series[i + lag])
                .sum();
            num / denom
        };
        // Find the best local-max lag.
        let mut best: Option<(usize, f64)> = None;
        for lag in 2..max_lag {
            let c = acf(lag);
            if c >= det.min_score
                && c > acf(lag - 1)
                && c >= acf(lag + 1)
                && best.is_none_or(|(_, bc)| c > bc)
            {
                best = Some((lag, c));
            }
        }
        let (lag, score) = best?;
        // Validate: the doubled lag must also correlate (a repeating
        // pattern, not a one-off coincidence).
        if 2 * lag < max_lag && acf(2 * lag) < det.min_score * 0.5 {
            return None;
        }
        Some(Period {
            period: SimDuration::secs(lag as u64 * bucket),
            score,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(h: u64) -> SimTime {
        SimTime::EPOCH + SimDuration::hours(h)
    }

    #[test]
    fn perfectly_periodic_daily_scanner() {
        let starts: Vec<SimTime> = (0..20).map(|d| t(d * 24)).collect();
        let p = PeriodDetector::default()
            .detect(&starts)
            .expect("period found");
        assert_eq!(p.period, SimDuration::hours(24));
        assert!(p.score > 0.8);
    }

    #[test]
    fn jittered_period_still_detected() {
        // Daily with ±30 min jitter.
        let jitter = [13i64, -25, 7, 30, -12, 4, -28, 19, 0, 11, -6, 22, -17, 9, 3];
        let starts: Vec<SimTime> = jitter
            .iter()
            .enumerate()
            .map(|(d, j)| SimTime::from_secs((d as i64 * 86_400 + j * 60).max(0) as u64))
            .collect();
        let p = PeriodDetector::default()
            .detect(&starts)
            .expect("period found");
        let hours = p.period.as_secs() as f64 / 3600.0;
        assert!((hours - 24.0).abs() < 1.5, "period was {hours} h");
    }

    #[test]
    fn irregular_sessions_have_no_period() {
        // Gaps drawn to be wildly irregular.
        let hours = [0u64, 3, 50, 51, 200, 310, 311, 700, 1100, 1111];
        let starts: Vec<SimTime> = hours.iter().map(|&h| t(h)).collect();
        assert!(PeriodDetector::default().detect(&starts).is_none());
    }

    #[test]
    fn too_few_sessions_is_never_periodic() {
        // Two sessions exactly 24 h apart: paper requires > 2 appearances.
        let starts = vec![t(0), t(24)];
        assert!(PeriodDetector::default().detect(&starts).is_none());
    }

    #[test]
    fn identical_timestamps_are_not_periodic() {
        let starts = vec![t(5); 10];
        assert!(PeriodDetector::default().detect(&starts).is_none());
    }

    #[test]
    fn weekly_period() {
        let starts: Vec<SimTime> = (0..12).map(|w| t(w * 24 * 7)).collect();
        let p = PeriodDetector::default().detect(&starts).expect("period");
        assert_eq!(p.period, SimDuration::weeks(1));
    }

    #[test]
    fn hourly_period_with_fine_buckets() {
        let det = PeriodDetector {
            bucket: SimDuration::mins(10),
            ..Default::default()
        };
        let starts: Vec<SimTime> = (0..30).map(|i| SimTime::from_secs(i * 3600)).collect();
        let p = det.detect(&starts).expect("period");
        assert_eq!(p.period, SimDuration::hours(1));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut starts: Vec<SimTime> = (0..15).map(|d| t(d * 24)).collect();
        starts.reverse();
        assert!(PeriodDetector::default().detect(&starts).is_some());
    }
}
