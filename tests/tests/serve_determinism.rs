//! Serve-daemon determinism (DESIGN.md §10, §14): the final checkpoint is
//! byte-identical across worker-thread counts and chunk sizes, equals the
//! batch `analyze` stdout over the same finished pcap, and equals the
//! streaming pipeline's tables for a simulated source.

use sixscope::serve::{self, ServeOptions};
use sixscope::sim::ScenarioConfig;
use sixscope::Pipeline;
use sixscope_types::Ipv6Prefix;
use std::path::PathBuf;

const SEED: u64 = 20230824;
const SCALE: f64 = 0.004;

fn temp_dir(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sixscope-serve-{}-{name}", std::process::id()))
}

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR")))
}

fn serve_once(mut opts: ServeOptions, dir: &PathBuf) -> String {
    opts.out_dir = dir.clone();
    let summary = serve::serve(opts).unwrap();
    let latest = std::fs::read_to_string(summary.latest).unwrap();
    std::fs::remove_dir_all(dir).ok();
    latest
}

/// `serve --sim` at seed 20230824 yields one byte sequence regardless of
/// worker threads or chunking, and that sequence is exactly what
/// `sixscope run` prints for the same scenario.
#[test]
fn sim_serve_is_invariant_and_matches_the_batch_pipeline() {
    let analyzed = Pipeline::simulate(ScenarioConfig::new(SEED, SCALE))
        .run()
        .unwrap();
    let expected = serve::tables_report(&analyzed, false);
    for (threads, chunk) in [(1, 7), (8, 7), (1, usize::MAX), (8, usize::MAX)] {
        let dir = temp_dir(&format!("sim-{threads}-{chunk}"));
        let mut opts = ServeOptions::sim(SEED, SCALE, &dir);
        opts.threads = Some(threads);
        opts.chunk_records = chunk;
        let latest = serve_once(opts, &dir);
        assert_eq!(
            latest, expected,
            "sim serve diverged at threads={threads} chunk={chunk}"
        );
    }
}

/// Serving a finished pcap yields the exact stdout bytes of batch
/// `sixscope analyze` over the same file, at every thread count and chunk
/// size — including the JSON rendering, which carries the recovery
/// statistics.
#[test]
fn pcap_serve_final_checkpoint_equals_batch_analyze() {
    let pcap = corpus_path("mixed.pcap");
    let batch = Pipeline::from_pcaps([&pcap])
        .prefix(Ipv6Prefix::default_route())
        .run_detailed()
        .unwrap();
    for json in [false, true] {
        let expected = serve::analysis_report(&batch.analyzed, &batch.stats, json);
        for (threads, chunk) in [(1, 7), (8, 7), (1, usize::MAX), (8, usize::MAX)] {
            let dir = temp_dir(&format!("pcap-{json}-{threads}-{chunk}"));
            let mut opts = ServeOptions::pcap(&pcap, &dir);
            opts.threads = Some(threads);
            opts.chunk_records = chunk;
            opts.json = json;
            opts.poll_ms = 1;
            opts.quiesce_ms = 20;
            let latest = serve_once(opts, &dir);
            assert_eq!(
                latest, expected,
                "pcap serve diverged at json={json} threads={threads} chunk={chunk}"
            );
        }
    }
}

/// Mid-run snapshots are well-formed and numbered, and the run's summary
/// counts them; the last numbered snapshot has the same bytes as
/// `latest.md`.
#[test]
fn snapshots_are_numbered_and_latest_mirrors_the_last() {
    let dir = temp_dir("snapshots");
    let mut opts = ServeOptions::pcap(corpus_path("mixed.pcap"), &dir);
    opts.snapshot_every = Some(1);
    opts.chunk_records = 1;
    opts.poll_ms = 1;
    opts.quiesce_ms = 20;
    let summary = serve::serve(opts).unwrap();
    assert!(summary.snapshots >= 2, "expected mid-run snapshots");
    let last = dir.join(format!("snapshot-{:06}.md", summary.snapshots));
    assert_eq!(
        std::fs::read_to_string(&last).unwrap(),
        std::fs::read_to_string(dir.join("latest.md")).unwrap(),
        "latest.md must mirror the final numbered snapshot"
    );
    for seq in 1..=summary.snapshots {
        assert!(
            dir.join(format!("snapshot-{seq:06}.md")).exists(),
            "snapshot {seq} missing"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
