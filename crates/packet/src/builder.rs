//! High-level packet construction.
//!
//! [`PacketBuilder`] assembles complete IPv6 packets (header + transport +
//! payload) as `Vec<u8>`; the scanner models call these and hand the bytes to
//! the simulated network, exactly as a real scanning host would hand them to
//! a raw socket.

use crate::icmpv6::{Icmpv6Header, ICMPV6_HEADER_LEN};
use crate::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use crate::tcp::{TcpHeader, TCP_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use std::net::Ipv6Addr;

/// Builder for complete IPv6 packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src: Ipv6Addr,
    dst: Ipv6Addr,
    hop_limit: u8,
    flow_label: u32,
}

impl PacketBuilder {
    /// Starts a packet from `src` to `dst` with default hop limit 64.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        PacketBuilder {
            src,
            dst,
            hop_limit: 64,
            flow_label: 0,
        }
    }

    /// Overrides the hop limit (traceroute-type tools ramp this up).
    pub fn hop_limit(mut self, hl: u8) -> Self {
        self.hop_limit = hl;
        self
    }

    /// Overrides the flow label.
    pub fn flow_label(mut self, fl: u32) -> Self {
        self.flow_label = fl;
        self
    }

    /// Appends the IPv6 header for an upper layer of known length. The
    /// transport encoders are append-only, so the header can be written
    /// first and the packet assembled in the caller's buffer with no
    /// intermediate allocation.
    fn start_into(&self, next: NextHeader, upper_len: usize, out: &mut Vec<u8>) {
        let mut hdr = Ipv6Header::new(self.src, self.dst, next, upper_len as u16);
        hdr.hop_limit = self.hop_limit;
        hdr.flow_label = self.flow_label;
        out.reserve(IPV6_HEADER_LEN + upper_len);
        hdr.encode(out);
    }

    /// Builds an ICMPv6 Echo Request with the given payload.
    pub fn icmpv6_echo_request(&self, identifier: u16, sequence: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.icmpv6_echo_request_into(identifier, sequence, payload, &mut out);
        out
    }

    /// Appends a complete ICMPv6 Echo Request packet to `out`.
    pub fn icmpv6_echo_request_into(
        &self,
        identifier: u16,
        sequence: u16,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        self.icmpv6_into(
            Icmpv6Header::echo_request(identifier, sequence),
            payload,
            out,
        );
    }

    /// Builds an arbitrary ICMPv6 message.
    pub fn icmpv6(&self, header: Icmpv6Header, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.icmpv6_into(header, payload, &mut out);
        out
    }

    /// Appends a complete ICMPv6 packet to `out`.
    pub fn icmpv6_into(&self, header: Icmpv6Header, payload: &[u8], out: &mut Vec<u8>) {
        self.start_into(NextHeader::Icmpv6, ICMPV6_HEADER_LEN + payload.len(), out);
        header.encode(self.src, self.dst, payload, out);
    }

    /// Builds a TCP SYN probe (optionally with a payload, which some scan
    /// tools use to carry a fingerprint).
    pub fn tcp_syn(&self, src_port: u16, dst_port: u16, seq: u32, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.tcp_syn_into(src_port, dst_port, seq, payload, &mut out);
        out
    }

    /// Appends a complete TCP SYN packet to `out`.
    pub fn tcp_syn_into(
        &self,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        self.tcp_into(TcpHeader::syn(src_port, dst_port, seq), payload, out);
    }

    /// Builds an arbitrary TCP segment.
    pub fn tcp(&self, header: TcpHeader, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.tcp_into(header, payload, &mut out);
        out
    }

    /// Appends a complete TCP packet to `out`.
    pub fn tcp_into(&self, header: TcpHeader, payload: &[u8], out: &mut Vec<u8>) {
        self.start_into(NextHeader::Tcp, TCP_HEADER_LEN + payload.len(), out);
        header.encode(self.src, self.dst, payload, out);
    }

    /// Builds a UDP datagram.
    pub fn udp(&self, src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.udp_into(src_port, dst_port, payload, &mut out);
        out
    }

    /// Appends a complete UDP packet to `out`.
    pub fn udp_into(&self, src_port: u16, dst_port: u16, payload: &[u8], out: &mut Vec<u8>) {
        self.start_into(NextHeader::Udp, UDP_HEADER_LEN + payload.len(), out);
        UdpHeader::new(src_port, dst_port, payload.len()).encode(self.src, self.dst, payload, out);
    }
}

/// Amortizing encoder for runs of probes that share a source address.
///
/// Scanner probe streams arrive sorted by time within a scanner, so long
/// runs share one `(src, protocol)` pair. [`RunEncoder`] caches the
/// prefolded pseudo-header partial (see
/// [`crate::checksum::pseudo_header_partial`]) for all three transports of
/// the current source and only recomputes it when the source changes —
/// output bytes are identical to the equivalent [`PacketBuilder`] calls.
#[derive(Debug, Clone, Default)]
pub struct RunEncoder {
    /// Partials for next-header 58 (ICMPv6), 6 (TCP) and 17 (UDP) of the
    /// most recent source address.
    cached: Option<(Ipv6Addr, [u64; 3])>,
}

impl RunEncoder {
    /// Creates an encoder with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn partials(&mut self, src: Ipv6Addr) -> [u64; 3] {
        match self.cached {
            Some((cached_src, p)) if cached_src == src => p,
            _ => {
                let p = [
                    crate::checksum::pseudo_header_partial(src, 58),
                    crate::checksum::pseudo_header_partial(src, 6),
                    crate::checksum::pseudo_header_partial(src, 17),
                ];
                self.cached = Some((src, p));
                p
            }
        }
    }

    /// Replaces `out` with a complete ICMPv6 Echo Request packet.
    pub fn icmpv6_echo_request_into(
        &mut self,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        identifier: u16,
        sequence: u16,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let partial = self.partials(src)[0];
        out.clear();
        PacketBuilder::new(src, dst).start_into(
            NextHeader::Icmpv6,
            ICMPV6_HEADER_LEN + payload.len(),
            out,
        );
        Icmpv6Header::echo_request(identifier, sequence)
            .encode_with_partial(partial, dst, payload, out);
    }

    /// Replaces `out` with a complete TCP SYN packet.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp_syn_into(
        &mut self,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        seq: u32,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let partial = self.partials(src)[1];
        out.clear();
        PacketBuilder::new(src, dst).start_into(
            NextHeader::Tcp,
            TCP_HEADER_LEN + payload.len(),
            out,
        );
        TcpHeader::syn(src_port, dst_port, seq).encode_with_partial(partial, dst, payload, out);
    }

    /// Replaces `out` with a complete UDP packet.
    pub fn udp_into(
        &mut self,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let partial = self.partials(src)[2];
        out.clear();
        PacketBuilder::new(src, dst).start_into(
            NextHeader::Udp,
            UDP_HEADER_LEN + payload.len(),
            out,
        );
        UdpHeader::new(src_port, dst_port, payload.len())
            .encode_with_partial(partial, dst, payload, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{ParsedPacket, Transport};

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:8000::99".parse().unwrap(),
        )
    }

    #[test]
    fn echo_request_parses_back() {
        let bytes = builder().icmpv6_echo_request(7, 3, b"ping");
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.next_header, NextHeader::Icmpv6);
        match &p.transport {
            Transport::Icmpv6(h) => {
                assert_eq!(h.identifier, 7);
                assert_eq!(h.sequence, 3);
            }
            other => panic!("wrong transport {other:?}"),
        }
        assert_eq!(&p.payload[..], b"ping");
    }

    #[test]
    fn tcp_syn_parses_back() {
        let bytes = builder().tcp_syn(55555, 443, 1, &[]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.dst_port(), Some(443));
        assert_eq!(p.src_port(), Some(55555));
        assert!(p.payload.is_empty());
    }

    #[test]
    fn udp_parses_back_with_payload() {
        let bytes = builder().udp(40000, 33434, b"traceroute!");
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.dst_port(), Some(33434));
        assert_eq!(&p.payload[..], b"traceroute!");
    }

    #[test]
    fn hop_limit_and_flow_label_pass_through() {
        let bytes = builder().hop_limit(3).flow_label(0x1234).udp(1, 2, &[]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.hop_limit, 3);
        assert_eq!(p.header.flow_label, 0x1234);
    }

    #[test]
    fn into_variants_match_allocating_builders_across_reuse() {
        let b = builder();
        let mut buf = Vec::new();
        b.icmpv6_echo_request_into(7, 3, b"ping", &mut buf);
        assert_eq!(buf, b.icmpv6_echo_request(7, 3, b"ping"));
        buf.clear();
        b.tcp_syn_into(55555, 443, 9, b"fp", &mut buf);
        assert_eq!(buf, b.tcp_syn(55555, 443, 9, b"fp"));
        buf.clear();
        b.udp_into(40000, 33434, b"traceroute!", &mut buf);
        assert_eq!(buf, b.udp(40000, 33434, b"traceroute!"));
    }

    #[test]
    fn run_encoder_matches_builder_across_alternating_sources() {
        let srcs: [Ipv6Addr; 3] = [
            "2001:db8::1".parse().unwrap(),
            "2001:db8:77::2".parse().unwrap(),
            "2001:db8::1".parse().unwrap(), // revisit an earlier source
        ];
        let dst: Ipv6Addr = "2001:db8:8000::99".parse().unwrap();
        let mut enc = RunEncoder::new();
        let mut buf = Vec::new();
        for (i, &src) in srcs.iter().enumerate() {
            let b = PacketBuilder::new(src, dst);
            let id = 100 + i as u16;
            enc.icmpv6_echo_request_into(src, dst, id, 3, b"ping", &mut buf);
            assert_eq!(buf, b.icmpv6_echo_request(id, 3, b"ping"));
            enc.tcp_syn_into(src, dst, 55_000 + i as u16, 443, 9, b"fp", &mut buf);
            assert_eq!(buf, b.tcp_syn(55_000 + i as u16, 443, 9, b"fp"));
            enc.udp_into(src, dst, 40_000, 33_434, b"trace", &mut buf);
            assert_eq!(buf, b.udp(40_000, 33_434, b"trace"));
        }
    }

    #[test]
    fn payload_len_field_is_exact() {
        let bytes = builder().icmpv6_echo_request(1, 1, &[0u8; 100]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.payload_len as usize, bytes.len() - IPV6_HEADER_LEN);
    }
}
