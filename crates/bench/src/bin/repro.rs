//! `repro` — regenerates every table and figure of the paper and writes
//! EXPERIMENTS.md with paper-vs-measured comparisons.
//!
//! Usage: `cargo run -p sixscope-bench --bin repro --release [-- [scale] [--timing] [--chunk N]]`
//!
//! With `--timing`, prints a per-stage wall-clock breakdown (generate,
//! deliver, streaming, sessionize, index build, tables, figures) plus the
//! process peak RSS and writes it to BENCH_repro.json for machine
//! consumption.

use sixscope::json::Json;
use sixscope::sim::ScenarioConfig;
use sixscope::Pipeline;
use sixscope_bench::report::{figures_section, tables_section};
use sixscope_bench::{comparisons_markdown, peak_rss_kib, take_comparisons, SEED};
use std::fmt::Write as _;
use std::time::Instant;

/// Prints a pipeline error (with its cause chain) and exits with the
/// error's CLI exit code.
fn fail(err: &sixscope::Error) -> ! {
    eprintln!("repro: {err}");
    let mut source = std::error::Error::source(err);
    while let Some(cause) = source {
        eprintln!("  caused by: {cause}");
        source = std::error::Error::source(cause);
    }
    std::process::exit(err.exit_code() as i32);
}

fn main() {
    let mut scale = sixscope_bench::SCALE;
    let mut timing = false;
    let mut chunk: Option<usize> = None;
    let mut shards: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--timing" {
            timing = true;
        } else if arg == "--chunk" {
            // Streaming chunk size — output must be byte-identical at any
            // value (the CI equivalence check drives this).
            let value = args.next().unwrap_or_default();
            match value.parse() {
                Ok(0) | Err(_) => {
                    eprintln!("invalid --chunk value {value:?} (need a record count ≥ 1)");
                    std::process::exit(2);
                }
                Ok(n) => chunk = Some(n),
            }
        } else if arg == "--shards" {
            // Scatter the corpus over K shard files per telescope and
            // gather them back — output must be byte-identical to the
            // in-process run (the CI equivalence check drives this).
            let value = args.next().unwrap_or_default();
            match value.parse() {
                Ok(0) | Err(_) => {
                    eprintln!("invalid --shards value {value:?} (need a shard count ≥ 1)");
                    std::process::exit(2);
                }
                Ok(n) => shards = Some(n),
            }
        } else if let Ok(s) = arg.parse::<f64>() {
            scale = s;
        } else {
            eprintln!("usage: repro [scale] [--timing] [--chunk N] [--shards K]");
            std::process::exit(2);
        }
    }
    let threads = sixscope_types::num_threads(None);
    eprintln!(
        "running experiment: seed={SEED} scale={scale} (paper = 1.0), {threads} worker thread(s) …"
    );
    let t0 = Instant::now();
    let (a, sim) = if let Some(pieces) = shards {
        // Scatter/gather round trip: simulate once, write the corpus as
        // `pieces` shard files per telescope, then merge the files back.
        let (result, sim) =
            sixscope::sim::Scenario::new(ScenarioConfig::new(SEED, scale)).run_timed();
        let dir = std::env::temp_dir().join(format!("sixscope-shards-{}", std::process::id()));
        let paths = sixscope::shardfile::write_experiment_shards(&result, pieces, &dir)
            .unwrap_or_else(|e| fail(&e));
        eprintln!("scattered {} shard files to {}", paths.len(), dir.display());
        let analyzed = sixscope::shardfile::merge_experiment(result, &paths, None)
            .unwrap_or_else(|e| fail(&e));
        let _ = std::fs::remove_dir_all(&dir);
        (analyzed, sim)
    } else {
        let mut pipeline = Pipeline::simulate(ScenarioConfig::new(SEED, scale));
        if let Some(n) = chunk {
            pipeline = pipeline.chunk_records(n);
        }
        let out = pipeline.run_detailed().expect("simulated runs cannot fail");
        (out.analyzed, out.sim)
    };
    eprintln!(
        "experiment done in {:.1?}: {} packets captured, {} dropped unrouted, {} T4 responses",
        t0.elapsed(),
        a.result.total_packets(),
        a.result.dropped_unrouted,
        a.result.t4_responses,
    );
    if a.result.truncated_probes > 0 {
        eprintln!(
            "warning: generation cap truncated {} probe(s) — a scanner spec is \
             mis-scaled for this run",
            a.result.truncated_probes,
        );
    }

    let mut out = String::new();
    writeln!(out, "# EXPERIMENTS — paper vs. measured\n").unwrap();
    writeln!(
        out,
        "Run: seed `{SEED}`, scale `{scale}` (1.0 = the study's ~51M packets).\n\
         Absolute counts scale with `scale`; all shares/ratios are scale-free\n\
         and compared against the paper below.\n"
    )
    .unwrap();

    let tables_start = Instant::now();
    tables_section(&a, &mut out);
    let tables_secs = tables_start.elapsed().as_secs_f64();
    let figures_start = Instant::now();
    figures_section(&a, &mut out);
    let figures_secs = figures_start.elapsed().as_secs_f64();

    writeln!(out, "\n## Comparison summary\n").unwrap();
    let rows = take_comparisons();
    let holds = rows.iter().filter(|r| r.holds).count();
    out.push_str(&comparisons_markdown(&rows));
    writeln!(out, "\n**{holds} of {} shape checks hold.**", rows.len()).unwrap();

    std::fs::write("EXPERIMENTS.md", &out).expect("write EXPERIMENTS.md");
    println!("{out}");
    eprintln!("wrote EXPERIMENTS.md ({holds}/{} checks hold)", rows.len());

    if timing {
        let stages = [
            ("setup", sim.setup),
            ("generate", sim.generate),
            ("deliver", sim.deliver),
            ("streaming", a.timings.streaming),
            ("sessionize", a.timings.sessionize),
            ("index_build", a.timings.index_build),
            ("tables", tables_secs),
            ("figures", figures_secs),
        ];
        let total = t0.elapsed().as_secs_f64();
        eprintln!("timing breakdown ({threads} worker thread(s)):");
        for (name, secs) in stages {
            eprintln!("  {name:<12} {secs:>8.3} s");
        }
        eprintln!("  {:<12} {total:>8.3} s", "total");
        eprintln!("  peak open sessions: {}", a.peak_open_sessions);
        if let Some(kib) = peak_rss_kib() {
            eprintln!("  peak RSS: {kib} KiB");
        }
        let json = Json::obj([
            ("seed", Json::u(SEED)),
            ("scale", Json::Num(scale)),
            ("threads", Json::u(threads as u64)),
            ("packets", Json::u(a.result.total_packets() as u64)),
            (
                "stages",
                Json::Obj(
                    stages
                        .iter()
                        .map(|&(name, secs)| (name.to_string(), Json::Num(secs)))
                        .collect(),
                ),
            ),
            ("total", Json::Num(total)),
            ("peak_open_sessions", Json::u(a.peak_open_sessions as u64)),
            ("peak_rss_kib", peak_rss_kib().map_or(Json::Null, Json::u)),
        ]);
        std::fs::write("BENCH_repro.json", json.render() + "\n").expect("write BENCH_repro.json");
        eprintln!("wrote BENCH_repro.json");
    }
}
