//! BGP message framing and the four message types (RFC 4271 §4).
//!
//! OPEN carries the capabilities a modern IPv6 session needs: multiprotocol
//! IPv6 unicast (RFC 4760) and 4-byte AS numbers (RFC 6793). UPDATE carries
//! IPv6 reachability exclusively in MP_REACH/MP_UNREACH attributes — the
//! legacy IPv4 withdrawn-routes and NLRI fields stay empty, exactly as on a
//! real v6-only session.

use crate::attrs::PathAttributes;
use crate::error::BgpError;
use sixscope_types::Asn;

/// Message header length (16-byte marker + length + type).
pub const HEADER_LEN: usize = 19;
/// Maximum BGP message size.
pub const MAX_MESSAGE_LEN: usize = 4096;

const TYPE_OPEN: u8 = 1;
const TYPE_UPDATE: u8 = 2;
const TYPE_NOTIFICATION: u8 = 3;
const TYPE_KEEPALIVE: u8 = 4;

const CAP_CODE_MP: u8 = 1;
const CAP_CODE_AS4: u8 = 65;
const OPT_PARAM_CAPABILITY: u8 = 2;

/// An OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMessage {
    /// Advertised AS number (AS_TRANS in the 2-byte field when > 65535).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or >= 3).
    pub hold_time: u16,
    /// BGP identifier (traditionally the router's IPv4 address; opaque here).
    pub bgp_id: u32,
    /// Whether the multiprotocol IPv6-unicast capability is advertised.
    pub mp_ipv6: bool,
    /// Whether the 4-byte-AS capability is advertised.
    pub as4: bool,
}

impl OpenMessage {
    /// A standard OPEN for our speakers: MP-IPv6 + AS4, hold time 90 s.
    pub fn standard(asn: Asn, bgp_id: u32) -> Self {
        OpenMessage {
            asn,
            hold_time: 90,
            bgp_id,
            mp_ipv6: true,
            as4: true,
        }
    }
}

/// An UPDATE message (IPv6 content lives in the path attributes).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UpdateMessage {
    /// Path attributes, including MP_REACH / MP_UNREACH.
    pub attrs: PathAttributes,
}

/// A NOTIFICATION message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMessage {
    /// Error code.
    pub code: u8,
    /// Error subcode.
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

/// A KEEPALIVE message (no body).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeepaliveMessage;

/// Any BGP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// OPEN.
    Open(OpenMessage),
    /// UPDATE.
    Update(UpdateMessage),
    /// NOTIFICATION.
    Notification(NotificationMessage),
    /// KEEPALIVE.
    Keepalive,
}

impl BgpMessage {
    /// Short name for diagnostics.
    pub fn type_name(&self) -> &'static str {
        match self {
            BgpMessage::Open(_) => "OPEN",
            BgpMessage::Update(_) => "UPDATE",
            BgpMessage::Notification(_) => "NOTIFICATION",
            BgpMessage::Keepalive => "KEEPALIVE",
        }
    }

    /// Encodes the message with marker and length header.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        let type_code = match self {
            BgpMessage::Open(open) => {
                body.push(4); // version
                let two_byte = if open.asn.is_two_byte() {
                    open.asn.get() as u16
                } else {
                    Asn::TRANS.get() as u16
                };
                body.extend_from_slice(&two_byte.to_be_bytes());
                body.extend_from_slice(&open.hold_time.to_be_bytes());
                body.extend_from_slice(&open.bgp_id.to_be_bytes());
                // Optional parameters: one capability parameter.
                let mut caps = Vec::new();
                if open.mp_ipv6 {
                    caps.extend_from_slice(&[CAP_CODE_MP, 4, 0, 2, 0, 1]); // AFI 2, SAFI 1
                }
                if open.as4 {
                    caps.push(CAP_CODE_AS4);
                    caps.push(4);
                    caps.extend_from_slice(&open.asn.get().to_be_bytes());
                }
                if caps.is_empty() {
                    body.push(0);
                } else {
                    body.push(caps.len() as u8 + 2);
                    body.push(OPT_PARAM_CAPABILITY);
                    body.push(caps.len() as u8);
                    body.extend_from_slice(&caps);
                }
                TYPE_OPEN
            }
            BgpMessage::Update(update) => {
                body.extend_from_slice(&0u16.to_be_bytes()); // withdrawn routes len (IPv4)
                let mut attr_buf = Vec::new();
                update.attrs.encode(&mut attr_buf);
                body.extend_from_slice(&(attr_buf.len() as u16).to_be_bytes());
                body.extend_from_slice(&attr_buf);
                TYPE_UPDATE
            }
            BgpMessage::Notification(n) => {
                body.push(n.code);
                body.push(n.subcode);
                body.extend_from_slice(&n.data);
                TYPE_NOTIFICATION
            }
            BgpMessage::Keepalive => TYPE_KEEPALIVE,
        };
        let mut out = Vec::with_capacity(HEADER_LEN + body.len());
        out.extend_from_slice(&[0xff; 16]);
        out.extend_from_slice(&((HEADER_LEN + body.len()) as u16).to_be_bytes());
        out.push(type_code);
        out.extend_from_slice(&body);
        debug_assert!(out.len() <= MAX_MESSAGE_LEN);
        out
    }

    /// Decodes one message from the front of `buf`; returns it with the
    /// remaining bytes (messages may be concatenated on a stream).
    pub fn decode(buf: &[u8]) -> Result<(BgpMessage, &[u8]), BgpError> {
        if buf.len() < HEADER_LEN {
            return Err(BgpError::Truncated("message header"));
        }
        if buf[..16] != [0xff; 16] {
            return Err(BgpError::BadMarker);
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]);
        if (len as usize) < HEADER_LEN || len as usize > MAX_MESSAGE_LEN {
            return Err(BgpError::BadLength(len));
        }
        if buf.len() < len as usize {
            return Err(BgpError::Truncated("message body"));
        }
        let body = &buf[HEADER_LEN..len as usize];
        let rest = &buf[len as usize..];
        let msg = match buf[18] {
            TYPE_OPEN => BgpMessage::Open(decode_open(body)?),
            TYPE_UPDATE => BgpMessage::Update(decode_update(body)?),
            TYPE_NOTIFICATION => {
                if body.len() < 2 {
                    return Err(BgpError::Truncated("NOTIFICATION body"));
                }
                BgpMessage::Notification(NotificationMessage {
                    code: body[0],
                    subcode: body[1],
                    data: body[2..].to_vec(),
                })
            }
            TYPE_KEEPALIVE => {
                if !body.is_empty() {
                    return Err(BgpError::BadLength(len));
                }
                BgpMessage::Keepalive
            }
            t => return Err(BgpError::BadMessageType(t)),
        };
        Ok((msg, rest))
    }
}

fn decode_open(body: &[u8]) -> Result<OpenMessage, BgpError> {
    if body.len() < 10 {
        return Err(BgpError::Truncated("OPEN body"));
    }
    if body[0] != 4 {
        return Err(BgpError::UnsupportedVersion(body[0]));
    }
    let two_byte_asn = u16::from_be_bytes([body[1], body[2]]);
    let hold_time = u16::from_be_bytes([body[3], body[4]]);
    let bgp_id = u32::from_be_bytes([body[5], body[6], body[7], body[8]]);
    let opt_len = body[9] as usize;
    if body.len() < 10 + opt_len {
        return Err(BgpError::Truncated("OPEN optional parameters"));
    }
    let mut asn = Asn(two_byte_asn as u32);
    let mut mp_ipv6 = false;
    let mut as4 = false;
    let mut params = &body[10..10 + opt_len];
    while params.len() >= 2 {
        let ptype = params[0];
        let plen = params[1] as usize;
        if params.len() < 2 + plen {
            return Err(BgpError::Truncated("optional parameter"));
        }
        if ptype == OPT_PARAM_CAPABILITY {
            let mut caps = &params[2..2 + plen];
            while caps.len() >= 2 {
                let code = caps[0];
                let clen = caps[1] as usize;
                if caps.len() < 2 + clen {
                    return Err(BgpError::Truncated("capability"));
                }
                let cbody = &caps[2..2 + clen];
                match code {
                    CAP_CODE_MP if clen == 4 => {
                        let afi = u16::from_be_bytes([cbody[0], cbody[1]]);
                        let safi = cbody[3];
                        if afi == 2 && safi == 1 {
                            mp_ipv6 = true;
                        }
                    }
                    CAP_CODE_AS4 if clen == 4 => {
                        as4 = true;
                        asn = Asn(u32::from_be_bytes([cbody[0], cbody[1], cbody[2], cbody[3]]));
                    }
                    _ => {}
                }
                caps = &caps[2 + clen..];
            }
        }
        params = &params[2 + plen..];
    }
    Ok(OpenMessage {
        asn,
        hold_time,
        bgp_id,
        mp_ipv6,
        as4,
    })
}

fn decode_update(body: &[u8]) -> Result<UpdateMessage, BgpError> {
    if body.len() < 4 {
        return Err(BgpError::Truncated("UPDATE body"));
    }
    let withdrawn_len = u16::from_be_bytes([body[0], body[1]]) as usize;
    if body.len() < 2 + withdrawn_len + 2 {
        return Err(BgpError::Truncated("UPDATE withdrawn routes"));
    }
    // IPv4 withdrawn routes are ignored on a v6-only session.
    let attr_off = 2 + withdrawn_len;
    let attr_len = u16::from_be_bytes([body[attr_off], body[attr_off + 1]]) as usize;
    if body.len() < attr_off + 2 + attr_len {
        return Err(BgpError::Truncated("UPDATE attributes"));
    }
    let attrs = PathAttributes::decode(&body[attr_off + 2..attr_off + 2 + attr_len])?;
    Ok(UpdateMessage { attrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{MpReach, Origin};

    #[test]
    fn open_round_trip_with_4byte_asn() {
        let open = OpenMessage::standard(Asn(201701), 0x0a000001);
        let bytes = BgpMessage::Open(open.clone()).encode();
        let (msg, rest) = BgpMessage::decode(&bytes).unwrap();
        assert!(rest.is_empty());
        assert_eq!(msg, BgpMessage::Open(open));
    }

    #[test]
    fn open_as_trans_in_two_byte_field() {
        let open = OpenMessage::standard(Asn(4_200_000_000), 1);
        let bytes = BgpMessage::Open(open).encode();
        // The 2-byte ASN field (bytes 20..22 of the message) must be AS_TRANS.
        assert_eq!(
            u16::from_be_bytes([bytes[HEADER_LEN + 1], bytes[HEADER_LEN + 2]]),
            23456
        );
        // But decoding recovers the real ASN from the AS4 capability.
        let (msg, _) = BgpMessage::decode(&bytes).unwrap();
        match msg {
            BgpMessage::Open(o) => assert_eq!(o.asn, Asn(4_200_000_000)),
            _ => panic!(),
        }
    }

    #[test]
    fn update_round_trip() {
        let update = UpdateMessage {
            attrs: PathAttributes {
                origin: Some(Origin::Igp),
                as_path: vec![Asn(64500)],
                mp_reach: Some(MpReach {
                    next_hop: "2001:db8:ffff::1".parse().unwrap(),
                    prefixes: vec!["2001:db8::/32".parse().unwrap()],
                }),
                ..Default::default()
            },
        };
        let bytes = BgpMessage::Update(update.clone()).encode();
        let (msg, _) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Update(update));
    }

    #[test]
    fn keepalive_is_19_bytes() {
        let bytes = BgpMessage::Keepalive.encode();
        assert_eq!(bytes.len(), HEADER_LEN);
        let (msg, rest) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Keepalive);
        assert!(rest.is_empty());
    }

    #[test]
    fn notification_round_trip() {
        let n = NotificationMessage {
            code: 6,
            subcode: 2,
            data: vec![1, 2, 3],
        };
        let bytes = BgpMessage::Notification(n.clone()).encode();
        let (msg, _) = BgpMessage::decode(&bytes).unwrap();
        assert_eq!(msg, BgpMessage::Notification(n));
    }

    #[test]
    fn stream_of_messages_decodes_sequentially() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&BgpMessage::Keepalive.encode());
        stream.extend_from_slice(&BgpMessage::Open(OpenMessage::standard(Asn(1), 9)).encode());
        stream.extend_from_slice(&BgpMessage::Keepalive.encode());
        let (m1, rest) = BgpMessage::decode(&stream).unwrap();
        assert_eq!(m1, BgpMessage::Keepalive);
        let (m2, rest) = BgpMessage::decode(rest).unwrap();
        assert!(matches!(m2, BgpMessage::Open(_)));
        let (m3, rest) = BgpMessage::decode(rest).unwrap();
        assert_eq!(m3, BgpMessage::Keepalive);
        assert!(rest.is_empty());
    }

    #[test]
    fn bad_marker_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[3] = 0;
        assert_eq!(BgpMessage::decode(&bytes).unwrap_err(), BgpError::BadMarker);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = BgpMessage::Open(OpenMessage::standard(Asn(1), 1)).encode();
        bytes[HEADER_LEN] = 3; // BGP-3
        assert_eq!(
            BgpMessage::decode(&bytes).unwrap_err(),
            BgpError::UnsupportedVersion(3)
        );
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[17] = (HEADER_LEN + 1) as u8;
        bytes.push(0);
        assert!(BgpMessage::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = BgpMessage::Keepalive.encode();
        bytes[18] = 77;
        assert_eq!(
            BgpMessage::decode(&bytes).unwrap_err(),
            BgpError::BadMessageType(77)
        );
    }
}
