//! Quickstart: run a scaled-down version of the paper's full 11-month
//! experiment and print the headline results.
//!
//! ```sh
//! cargo run -p sixscope-examples --bin quickstart --release
//! ```

use sixscope::sim::ScenarioConfig;
use sixscope::{render, tables, Pipeline};
use sixscope_telescope::TelescopeId;

fn main() {
    // One seed, one scale: the whole study is deterministic from here.
    // Scale 0.01 ≈ 1% of the paper's ~51M packets; all shares are
    // scale-free.
    println!("running the 11-month experiment (seed 42, scale 0.01)…");
    let analyzed = Pipeline::simulate(ScenarioConfig::new(42, 0.01))
        .run()
        .expect("simulated runs cannot fail");

    println!(
        "\ncaptured {} packets across the four telescopes; \
         {} probes were dropped in unrouted space; T4 answered {} probes\n",
        analyzed.result.total_packets(),
        analyzed.result.dropped_unrouted,
        analyzed.result.t4_responses,
    );

    for id in TelescopeId::ALL {
        println!(
            "{id}: {:>8} packets, {:>6} sessions (/128), {:>5} sessions (/64)",
            analyzed.capture(id).len(),
            analyzed.sessions128(id).len(),
            analyzed.sessions64(id).len(),
        );
    }

    println!("\n{}", render::render_table2(&tables::table2(&analyzed)));
    println!("{}", render::render_table6(&tables::table6(&analyzed)));
    println!("{}", render::render_headline(&tables::headline(&analyzed)));
    println!(
        "Run `cargo run -p sixscope-bench --bin repro --release` for the full\n\
         paper-vs-measured report (EXPERIMENTS.md)."
    );
}
