//! `sixscope` — command-line front end to the toolkit.
//!
//! ```text
//! sixscope run [--seed N] [--scale F] [--out DIR]   run the full experiment
//! sixscope ingest <file.pcap>… [--report out.md]    hardened real-pcap ingest
//! sixscope analyze <telescope-prefix> <file.pcap>…  analyze real captures
//! sixscope schedule <covering/32>                   print the Fig.-2 split plan
//! sixscope classify <addr>…                         RFC 7707 address typing
//! ```
//!
//! The argument parser is hand-rolled (no CLI dependency): flags are
//! `--name value` pairs, everything else is positional.

use sixscope::{render, tables, Experiment};
use sixscope_analysis::addrtype;
use sixscope_analysis::classify::{addr_selection, profile_scanners};
use sixscope_telescope::{
    AggLevel, Capture, Sessionizer, SplitSchedule, TelescopeConfig, TelescopeId,
};
use sixscope_types::{Ipv6Prefix, SimTime};
use std::net::Ipv6Addr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "ingest" => cmd_ingest(rest),
        "analyze" => cmd_analyze(rest),
        "schedule" => cmd_schedule(rest),
        "classify" => cmd_classify(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("sixscope: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
sixscope — IPv6 network-telescope measurement toolkit

USAGE:
    sixscope run [--seed N] [--scale F] [--pcap-dir DIR] [--json true]
        Run the full 11-month experiment and print all tables
        (--json true prints one machine-readable JSON document instead).
        --pcap-dir also writes one pcap per telescope.

    sixscope ingest <capture.pcap> [more.pcap…] [--prefix P] [--report out.md]
        Ingest real pcap captures (LINKTYPE_RAW) with per-record damage
        recovery: damaged records are skipped and counted by reason, a
        file cut off mid-record keeps every complete record. Prints the
        recovery statistics and writes a markdown report (to --report,
        or stdout). --prefix filters to a telescope prefix (default ::/0).

    sixscope analyze <telescope-prefix> <capture.pcap> [more.pcap…]
        Analyze real pcap captures (LINKTYPE_RAW) of a telescope:
        sessions, temporal classes, address selection, tools.

    sixscope schedule <covering-prefix/32> [--weeks-baseline N]
        Print the bi-weekly asymmetric split plan (paper Fig. 2).

    sixscope classify <ipv6-addr> [more…]
        Classify addresses into RFC 7707 target classes.";

/// Parsed `--name value` flag pairs.
type Flags = Vec<(String, String)>;

/// Extracts `--name value` flags; returns remaining positionals.
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value"))?;
            flags.push((name.to_string(), value.clone()));
        } else {
            positional.push(a.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let seed: u64 = flag(&flags, "seed")
        .map(|v| v.parse().map_err(|_| "invalid --seed"))
        .transpose()?
        .unwrap_or(20230824);
    let scale: f64 = flag(&flags, "scale")
        .map(|v| v.parse().map_err(|_| "invalid --scale"))
        .transpose()?
        .unwrap_or(0.01);
    eprintln!("running experiment seed={seed} scale={scale}…");
    let analyzed = Experiment::new(seed, scale).run();
    if flag(&flags, "json").is_some_and(|v| v == "true" || v == "1") {
        println!("{}", sixscope::json::tables_json(&analyzed).render());
        return Ok(());
    }
    if let Some(dir) = flag(&flags, "pcap-dir") {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        for id in TelescopeId::ALL {
            // Re-encode the summarized capture to a pcap for inspection.
            let path = format!("{dir}/{id}.pcap");
            write_capture_pcap(analyzed.capture(id), &path)?;
            eprintln!("wrote {path}");
        }
    }
    println!("{}", render::render_table2(&tables::table2(&analyzed)));
    println!("{}", render::render_table3(&tables::table3(&analyzed)));
    println!("{}", render::render_table4(&tables::table4(&analyzed)));
    println!("{}", render::render_table5(&tables::table5(&analyzed)));
    println!("{}", render::render_table6(&tables::table6(&analyzed)));
    println!("{}", render::render_table7(&tables::table7(&analyzed)));
    println!("{}", render::render_table8(&tables::table8(&analyzed)));
    println!("{}", render::render_headline(&tables::headline(&analyzed)));
    Ok(())
}

/// Rebuilds raw packets from capture summaries and writes a pcap.
fn write_capture_pcap(capture: &Capture, path: &str) -> Result<(), String> {
    use sixscope_packet::{PacketBuilder, PcapRecord, PcapWriter};
    use sixscope_telescope::Protocol;
    let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
    let mut writer = PcapWriter::new(file).map_err(|e| e.to_string())?;
    for p in capture.packets() {
        let builder = PacketBuilder::new(p.src, p.dst);
        let bytes = match p.protocol {
            Protocol::Icmpv6 => builder.icmpv6_echo_request(0, 0, &p.payload),
            Protocol::Tcp => builder.tcp_syn(
                p.src_port.unwrap_or(0),
                p.dst_port.unwrap_or(0),
                0,
                &p.payload,
            ),
            Protocol::Udp | Protocol::Other => {
                builder.udp(p.src_port.unwrap_or(0), p.dst_port.unwrap_or(0), &p.payload)
            }
        };
        writer
            .write_record(&PcapRecord {
                ts: p.ts,
                ts_micros: 0,
                data: bytes,
            })
            .map_err(|e| e.to_string())?;
    }
    writer.into_inner().map_err(|e| e.to_string())?;
    Ok(())
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let (flags, files) = parse_flags(args)?;
    if files.is_empty() {
        return Err("usage: sixscope ingest <capture.pcap>… [--prefix P] [--report out.md]".into());
    }
    let prefix: sixscope_types::Ipv6Prefix = match flag(&flags, "prefix") {
        Some(p) => p.parse().map_err(|e| format!("bad --prefix: {e}"))?,
        None => sixscope_types::Ipv6Prefix::default_route(),
    };
    let mut ingest = sixscope::Ingest::new(prefix);
    for f in &files {
        let reader = std::fs::File::open(f).map_err(|e| format!("{f}: {e}"))?;
        let stats = ingest
            .add_pcap(std::io::BufReader::new(reader))
            .map_err(|e| format!("{f}: {e}"))?;
        eprintln!("{f}: {stats}");
    }
    let totals = ingest.stats();
    if files.len() > 1 {
        eprintln!("total: {totals}");
    }
    let report = ingest.report(&files.join(", "));
    match flag(&flags, "report") {
        Some(path) => {
            std::fs::write(path, &report).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path}");
        }
        None => print!("{report}"),
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let (_, positional) = parse_flags(args)?;
    let [prefix, files @ ..] = positional.as_slice() else {
        return Err("usage: sixscope analyze <telescope-prefix> <capture.pcap>…".into());
    };
    if files.is_empty() {
        return Err("no pcap files given".into());
    }
    let prefix: Ipv6Prefix = prefix
        .parse()
        .map_err(|e| format!("bad telescope prefix: {e}"))?;
    // Use a T3-style passive config shaped to the given prefix length.
    let config = TelescopeConfig {
        id: TelescopeId::T1,
        kind: sixscope_telescope::TelescopeKind::Passive,
        prefix,
        separately_announced: true,
        dns_exposed: None,
        productive_subnet: None,
    };
    let mut capture = Capture::new(config);
    for f in files {
        let reader = std::fs::File::open(f).map_err(|e| format!("{f}: {e}"))?;
        let n = capture
            .ingest_pcap(reader)
            .map_err(|e| format!("{f}: {e}"))?;
        eprintln!(
            "{f}: {n} packets in prefix (filtered {}, malformed {})",
            capture.filtered(),
            capture.malformed()
        );
    }
    println!("total packets: {}", capture.len());
    let sessions = Sessionizer::paper(AggLevel::Addr128).sessionize(&capture);
    let profiles = profile_scanners(&sessions);
    println!(
        "sessions (/128): {}, scanners: {}\n",
        sessions.len(),
        profiles.len()
    );
    println!(
        "{:<42} {:>6} {:>8}  {:<13} addr-selection (first session)",
        "source", "sess", "packets", "temporal"
    );
    for profile in &profiles {
        let first = &sessions[profile.session_indices[0]];
        let selection = addr_selection(first, &capture, prefix.len());
        println!(
            "{:<42} {:>6} {:>8}  {:<13} {}",
            profile.source.to_string(),
            profile.session_indices.len(),
            profile.packets,
            profile.temporal.to_string(),
            selection
        );
    }
    Ok(())
}

fn cmd_schedule(args: &[String]) -> Result<(), String> {
    let (flags, positional) = parse_flags(args)?;
    let [covering] = positional.as_slice() else {
        return Err("usage: sixscope schedule <covering-prefix/32>".into());
    };
    let covering: Ipv6Prefix = covering.parse().map_err(|e| format!("bad prefix: {e}"))?;
    if covering.len() != 32 {
        return Err("the paper's schedule splits a /32".into());
    }
    let mut schedule = SplitSchedule::paper(covering, SimTime::EPOCH);
    if let Some(weeks) = flag(&flags, "weeks-baseline") {
        let weeks: u64 = weeks.parse().map_err(|_| "invalid --weeks-baseline")?;
        schedule.baseline = sixscope_types::SimDuration::weeks(weeks);
    }
    println!(
        "baseline: {} with {} announced",
        schedule.baseline, covering
    );
    for cycle in 1..=schedule.cycles {
        let set = schedule.announced_set(cycle);
        let (lo, hi) = schedule.new_prefixes(cycle);
        println!(
            "cycle {cycle:>2} @ {}: withdraw all; +1d announce {} prefixes (new: {lo}, {hi})",
            schedule.cycle_start(cycle),
            set.len(),
        );
    }
    println!("\nfinal set:");
    for p in schedule.announced_set(schedule.cycles) {
        println!("  {p}");
    }
    Ok(())
}

fn cmd_classify(args: &[String]) -> Result<(), String> {
    let (_, positional) = parse_flags(args)?;
    if positional.is_empty() {
        return Err("usage: sixscope classify <ipv6-addr>…".into());
    }
    for s in &positional {
        let addr: Ipv6Addr = s.parse().map_err(|e| format!("{s}: {e}"))?;
        println!("{s:<42} {}", addrtype::classify(addr));
    }
    Ok(())
}
