//! The Internet checksum (RFC 1071) and the IPv6 pseudo-header (RFC 8200 §8.1).
//!
//! ICMPv6, TCP and UDP all checksum their header + payload prepended with a
//! pseudo-header of source address, destination address, upper-layer packet
//! length and next-header value.

use std::net::Ipv6Addr;

/// Incremental one's-complement sum. Feed byte slices, then [`Checksum::finish`].
#[derive(Debug, Default, Clone)]
pub struct Checksum {
    /// Deferred-carry accumulator. One's-complement addition is associative
    /// and commutative, so words may be summed in any grouping before the
    /// final fold; a 64-bit accumulator absorbs exabytes of input without
    /// overflow, which is what lets `add_bytes` sum eight bytes per step.
    sum: u64,
    /// A pending odd byte from the previous `add_bytes` call.
    pending: Option<u8>,
}

impl Checksum {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes from a partial sum captured with [`Checksum::partial`].
    ///
    /// One's-complement addition is associative and commutative, so a
    /// prefolded partial over any subset of the input words can seed a new
    /// accumulator and the final checksum is bit-identical to summing
    /// everything in one pass.
    pub fn with_partial(sum: u64) -> Self {
        Checksum { sum, pending: None }
    }

    /// The raw deferred-carry sum so far, for reuse via
    /// [`Checksum::with_partial`]. Must be taken at an even byte boundary.
    pub fn partial(&self) -> u64 {
        debug_assert!(self.pending.is_none(), "partial at an odd byte boundary");
        self.sum
    }

    /// Adds a 16-bit word.
    pub fn add_u16(&mut self, w: u16) {
        debug_assert!(
            self.pending.is_none(),
            "add_u16 between odd byte boundaries"
        );
        self.sum += w as u64;
    }

    /// Adds a byte slice (handles odd lengths across calls).
    ///
    /// The inner loop is word-at-a-time SWAR: each 8-byte chunk is loaded
    /// as one big-endian `u64` and its four 16-bit words are summed in two
    /// paired 32-bit lanes (no lane can carry: two 16-bit words top out at
    /// `0x1fffe`). The grouping is fold-equivalent to the byte-pair loop it
    /// replaces, and the branch-free body autovectorizes.
    pub fn add_bytes(&mut self, mut data: &[u8]) {
        if let Some(hi) = self.pending.take() {
            if let Some((&lo, rest)) = data.split_first() {
                self.sum += u16::from_be_bytes([hi, lo]) as u64;
                data = rest;
            } else {
                self.pending = Some(hi);
                return;
            }
        }
        const LANES: u64 = 0x0000_ffff_0000_ffff;
        let mut wide = data.chunks_exact(8);
        for c in &mut wide {
            let v = u64::from_be_bytes(c.try_into().expect("8-byte chunk"));
            let pairs = (v & LANES) + ((v >> 16) & LANES);
            self.sum += (pairs & 0xffff_ffff) + (pairs >> 32);
        }
        let mut chunks = wide.remainder().chunks_exact(2);
        for c in &mut chunks {
            self.sum += u16::from_be_bytes([c[0], c[1]]) as u64;
        }
        if let [last] = chunks.remainder() {
            self.pending = Some(*last);
        }
    }

    /// Folds and complements the sum into the final checksum value.
    pub fn finish(mut self) -> u16 {
        if let Some(hi) = self.pending.take() {
            self.sum += u16::from_be_bytes([hi, 0]) as u64;
        }
        let mut sum = self.sum;
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }
}

/// Computes the upper-layer checksum over the IPv6 pseudo-header plus
/// `upper` (transport header + payload, with its checksum field zeroed).
pub fn pseudo_header_checksum(src: Ipv6Addr, dst: Ipv6Addr, next_header: u8, upper: &[u8]) -> u16 {
    let mut ck = Checksum::new();
    ck.add_bytes(&src.octets());
    ck.add_bytes(&dst.octets());
    // Upper-layer packet length as a 32-bit field.
    let len = upper.len() as u32;
    ck.add_u16((len >> 16) as u16);
    ck.add_u16(len as u16);
    // Three zero bytes then the next-header value.
    ck.add_u16(0);
    ck.add_u16(next_header as u16);
    ck.add_bytes(upper);
    ck.finish()
}

/// Prefolds the pseudo-header fields that stay constant across a run of
/// probes from one source over one transport: the source address and the
/// next-header word. The returned partial seeds
/// [`pseudo_header_checksum_with_partial`], which only has to sum the
/// per-probe remainder (destination, length, upper bytes).
pub fn pseudo_header_partial(src: Ipv6Addr, next_header: u8) -> u64 {
    let mut ck = Checksum::new();
    ck.add_bytes(&src.octets());
    ck.add_u16(next_header as u16);
    ck.partial()
}

/// Completes an upper-layer checksum from a [`pseudo_header_partial`].
///
/// Bit-identical to [`pseudo_header_checksum`] with the same source and
/// next-header value: the one's-complement sum is order-independent, and
/// the zero word of the pseudo-header contributes nothing.
pub fn pseudo_header_checksum_with_partial(partial: u64, dst: Ipv6Addr, upper: &[u8]) -> u16 {
    let mut ck = Checksum::with_partial(partial);
    ck.add_bytes(&dst.octets());
    let len = upper.len() as u32;
    ck.add_u16((len >> 16) as u16);
    ck.add_u16(len as u16);
    ck.add_bytes(upper);
    ck.finish()
}

/// Verifies an upper-layer checksum: summing the packet *including* its
/// checksum field must yield zero.
pub fn verify_pseudo_header_checksum(
    src: Ipv6Addr,
    dst: Ipv6Addr,
    next_header: u8,
    upper_with_checksum: &[u8],
) -> bool {
    // finish() returns the complement; a valid packet sums to 0xffff, so the
    // complement is 0.
    pseudo_header_checksum(src, dst, next_header, upper_with_checksum) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Classic example from RFC 1071 §3: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
        let mut ck = Checksum::new();
        ck.add_bytes(&[0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7]);
        // Sum = 0x2ddf0 -> fold -> 0xddf2 -> complement -> 0x220d.
        assert_eq!(ck.finish(), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let mut a = Checksum::new();
        a.add_bytes(&[0xab]);
        let mut b = Checksum::new();
        b.add_bytes(&[0xab, 0x00]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn odd_boundary_across_calls() {
        let mut split = Checksum::new();
        split.add_bytes(&[0x12, 0x34, 0x56]);
        split.add_bytes(&[0x78, 0x9a, 0xbc]);
        let mut whole = Checksum::new();
        whole.add_bytes(&[0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        assert_eq!(split.finish(), whole.finish());
    }

    #[test]
    fn pseudo_header_checksum_round_trip() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        // A fake 8-byte upper-layer packet with checksum bytes at [2..4].
        let mut pkt = vec![0x80u8, 0x00, 0x00, 0x00, 0x12, 0x34, 0x00, 0x01];
        let ck = pseudo_header_checksum(src, dst, 58, &pkt);
        pkt[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(verify_pseudo_header_checksum(src, dst, 58, &pkt));
        // Corrupt one byte: verification must fail.
        pkt[5] ^= 0x01;
        assert!(!verify_pseudo_header_checksum(src, dst, 58, &pkt));
    }

    #[test]
    fn swar_matches_scalar_reference_at_every_length_and_split() {
        // Reference: the plain byte-pair sum the SWAR loop replaced.
        fn reference(data: &[u8]) -> u16 {
            let mut sum = 0u64;
            let mut chunks = data.chunks_exact(2);
            for c in &mut chunks {
                sum += u16::from_be_bytes([c[0], c[1]]) as u64;
            }
            if let [last] = chunks.remainder() {
                sum += u16::from_be_bytes([*last, 0]) as u64;
            }
            while sum >> 16 != 0 {
                sum = (sum & 0xffff) + (sum >> 16);
            }
            !(sum as u16)
        }
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect();
        for len in 0..data.len() {
            let slice = &data[..len];
            let mut whole = Checksum::new();
            whole.add_bytes(slice);
            assert_eq!(whole.finish(), reference(slice), "len {len}");
            // Split at an odd/even boundary to cross the pending-byte path.
            let mid = len / 3;
            let mut split = Checksum::new();
            split.add_bytes(&slice[..mid]);
            split.add_bytes(&slice[mid..]);
            assert_eq!(split.finish(), reference(slice), "len {len} split {mid}");
        }
    }

    #[test]
    fn partial_resume_matches_one_pass_checksum() {
        let src: Ipv6Addr = "2001:db8:f00::7".parse().unwrap();
        let upper: Vec<u8> = (0..53u8).collect();
        for next in [58u8, 6, 17] {
            let partial = pseudo_header_partial(src, next);
            for dst_low in 0..16u16 {
                let dst: Ipv6Addr = format!("2001:db8:8000::{dst_low}").parse().unwrap();
                for len in [0usize, 1, 7, 8, 20, 53] {
                    assert_eq!(
                        pseudo_header_checksum_with_partial(partial, dst, &upper[..len]),
                        pseudo_header_checksum(src, dst, next, &upper[..len]),
                        "next {next} dst {dst} len {len}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_payload_checksums() {
        let src: Ipv6Addr = "::1".parse().unwrap();
        let dst: Ipv6Addr = "::2".parse().unwrap();
        let ck = pseudo_header_checksum(src, dst, 17, &[]);
        // Deterministic and non-panicking; value depends only on pseudo-header.
        assert_eq!(ck, pseudo_header_checksum(src, dst, 17, &[]));
    }
}
