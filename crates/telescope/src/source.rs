//! Scan-source aggregation (paper §3.3).
//!
//! A *localizable scan source* is an address or an aggregate of addresses:
//! /128 is the finest view; /64 groups scanners that rotate addresses inside
//! their subnet (T2 sees 3× more /128 sources than /64 for this reason);
//! /48 is the coarsest aggregation used by related work. The paper analyzes
//! /128 and /64 side by side because the two levels diverge (Fig. 4).

use serde::{Deserialize, Serialize};
use sixscope_types::Ipv6Prefix;
use std::fmt;
use std::net::Ipv6Addr;

/// Source aggregation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AggLevel {
    /// Individual addresses.
    Addr128,
    /// /64 subnets.
    Subnet64,
    /// /48 prefixes.
    Prefix48,
}

impl AggLevel {
    /// The prefix length of the level.
    pub fn bits(self) -> u8 {
        match self {
            AggLevel::Addr128 => 128,
            AggLevel::Subnet64 => 64,
            AggLevel::Prefix48 => 48,
        }
    }
}

impl fmt::Display for AggLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}", self.bits())
    }
}

/// A scan source at a chosen aggregation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceKey {
    /// The aggregated prefix identifying the source.
    pub prefix: Ipv6Prefix,
}

impl SourceKey {
    /// Aggregates an address at the given level.
    pub fn new(addr: Ipv6Addr, level: AggLevel) -> Self {
        SourceKey {
            prefix: Ipv6Prefix::new(addr, level.bits()).expect("level bits are valid"),
        }
    }

    /// The aggregation level this key was built at.
    pub fn level(&self) -> AggLevel {
        match self.prefix.len() {
            128 => AggLevel::Addr128,
            64 => AggLevel::Subnet64,
            48 => AggLevel::Prefix48,
            other => unreachable!("source key with unexpected length /{other}"),
        }
    }

    /// True if `addr` belongs to this source aggregate.
    pub fn matches(&self, addr: Ipv6Addr) -> bool {
        self.prefix.contains(addr)
    }
}

impl fmt::Display for SourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.prefix.len() == 128 {
            write!(f, "{}", self.prefix.network())
        } else {
            write!(f, "{}", self.prefix)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn aggregation_levels() {
        let addr = a("2001:db8:1:2:3:4:5:6");
        assert_eq!(
            SourceKey::new(addr, AggLevel::Addr128).prefix.to_string(),
            "2001:db8:1:2:3:4:5:6/128"
        );
        assert_eq!(
            SourceKey::new(addr, AggLevel::Subnet64).prefix.to_string(),
            "2001:db8:1:2::/64"
        );
        assert_eq!(
            SourceKey::new(addr, AggLevel::Prefix48).prefix.to_string(),
            "2001:db8:1::/48"
        );
    }

    #[test]
    fn rotating_addresses_collapse_at_64() {
        // The T2 phenomenon: a scanner rotating IIDs within its /64.
        let s1 = SourceKey::new(a("2001:db8:1:2::aaaa"), AggLevel::Subnet64);
        let s2 = SourceKey::new(a("2001:db8:1:2::bbbb"), AggLevel::Subnet64);
        assert_eq!(s1, s2);
        let f1 = SourceKey::new(a("2001:db8:1:2::aaaa"), AggLevel::Addr128);
        let f2 = SourceKey::new(a("2001:db8:1:2::bbbb"), AggLevel::Addr128);
        assert_ne!(f1, f2);
    }

    #[test]
    fn level_round_trips() {
        for level in [AggLevel::Addr128, AggLevel::Subnet64, AggLevel::Prefix48] {
            assert_eq!(SourceKey::new(a("::1"), level).level(), level);
        }
    }

    #[test]
    fn matches_membership() {
        let key = SourceKey::new(a("2001:db8:1:2::1"), AggLevel::Subnet64);
        assert!(key.matches(a("2001:db8:1:2::ffff")));
        assert!(!key.matches(a("2001:db8:1:3::1")));
    }

    #[test]
    fn display_compact_for_host() {
        assert_eq!(
            SourceKey::new(a("2001:db8::7"), AggLevel::Addr128).to_string(),
            "2001:db8::7"
        );
        assert_eq!(AggLevel::Subnet64.to_string(), "/64");
    }
}
