//! TCP header (RFC 9293) — enough for SYN scanning and the reactive
//! telescope's SYN/ACK responses.
//!
//! In the paper TCP carries only 10.5% of packets but 92.8% of *sessions*:
//! port scanners send a handful of SYNs each. We encode a full 20-byte
//! header with correct checksums; options are not generated but a decoded
//! data-offset larger than 5 is tolerated.

use crate::checksum::{pseudo_header_checksum_with_partial, pseudo_header_partial};
use crate::error::PacketError;
use std::net::Ipv6Addr;

/// Length of a TCP header without options.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// SYN|ACK combination.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }
}

/// A decoded TCP header (options, if present, are skipped on decode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// A SYN probe as emitted by a port scanner.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65_535,
        }
    }

    /// The SYN/ACK a reactive telescope sends back for this SYN.
    pub fn syn_ack_for(&self, own_seq: u32) -> Self {
        TcpHeader {
            src_port: self.dst_port,
            dst_port: self.src_port,
            seq: own_seq,
            ack: self.seq.wrapping_add(1),
            flags: TcpFlags::SYN_ACK,
            window: 65_535,
        }
    }

    /// Encodes header + `payload` into `out` with a valid checksum.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr, payload: &[u8], out: &mut Vec<u8>) {
        self.encode_with_partial(pseudo_header_partial(src, 6), dst, payload, out);
    }

    /// Like [`TcpHeader::encode`], but resumes the checksum from a
    /// [`crate::checksum::pseudo_header_partial`] for the source address.
    pub fn encode_with_partial(
        &self,
        partial: u64,
        dst: Ipv6Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words, no options
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(payload);
        let ck = pseudo_header_checksum_with_partial(partial, dst, &out[start..]);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decodes the header; returns it together with the segment payload
    /// (skipping any options indicated by the data offset).
    pub fn decode(buf: &[u8]) -> Result<(TcpHeader, &[u8]), PacketError> {
        if buf.len() < TCP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "TCP header",
                need: TCP_HEADER_LEN,
                have: buf.len(),
            });
        }
        let data_offset = (buf[12] >> 4) as usize * 4;
        if data_offset < TCP_HEADER_LEN || data_offset > buf.len() {
            return Err(PacketError::LengthMismatch {
                what: "TCP data offset",
                declared: data_offset,
                actual: buf.len(),
            });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13]),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            &buf[data_offset..],
        ))
    }

    /// Verifies the checksum of a full TCP segment.
    pub fn verify_checksum(src: Ipv6Addr, dst: Ipv6Addr, segment: &[u8]) -> bool {
        crate::checksum::verify_pseudo_header_checksum(src, dst, 6, segment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::a".parse().unwrap(),
            "2001:db8::b".parse().unwrap(),
        )
    }

    #[test]
    fn syn_round_trip_with_valid_checksum() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::syn(54321, 443, 0xdeadbeef);
        let mut buf = Vec::new();
        hdr.encode(src, dst, &[], &mut buf);
        assert_eq!(buf.len(), TCP_HEADER_LEN);
        assert!(TcpHeader::verify_checksum(src, dst, &buf));
        let (decoded, payload) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(decoded, hdr);
        assert!(payload.is_empty());
    }

    #[test]
    fn syn_ack_swaps_ports_and_acks_seq() {
        let syn = TcpHeader::syn(1000, 80, 41);
        let sa = syn.syn_ack_for(7);
        assert_eq!(sa.src_port, 80);
        assert_eq!(sa.dst_port, 1000);
        assert_eq!(sa.ack, 42);
        assert!(sa.flags.contains(TcpFlags::SYN) && sa.flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn payload_is_checksummed() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        TcpHeader::syn(1, 2, 3).encode(src, dst, b"probe-data", &mut buf);
        assert!(TcpHeader::verify_checksum(src, dst, &buf));
        buf[TCP_HEADER_LEN] ^= 0x01;
        assert!(!TcpHeader::verify_checksum(src, dst, &buf));
    }

    #[test]
    fn decode_skips_options() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        TcpHeader::syn(1, 2, 3).encode(src, dst, &[], &mut buf);
        // Fake a data offset of 6 words (one 4-byte option) and append NOP padding.
        buf[12] = 6 << 4;
        buf.extend_from_slice(&[1, 1, 1, 0]);
        buf.extend_from_slice(b"xy");
        let (_, payload) = TcpHeader::decode(&buf).unwrap();
        assert_eq!(payload, b"xy");
    }

    #[test]
    fn decode_rejects_bad_offset() {
        let mut buf = vec![0u8; TCP_HEADER_LEN];
        buf[12] = 2 << 4; // offset 8 bytes < minimum 20
        assert!(matches!(
            TcpHeader::decode(&buf),
            Err(PacketError::LengthMismatch { .. })
        ));
        let mut buf = vec![0u8; TCP_HEADER_LEN];
        buf[12] = 15 << 4; // offset 60 > buffer
        assert!(TcpHeader::decode(&buf).is_err());
    }

    #[test]
    fn flags_algebra() {
        let f = TcpFlags::SYN.union(TcpFlags::ACK);
        assert_eq!(f, TcpFlags::SYN_ACK);
        assert!(f.contains(TcpFlags::SYN));
        assert!(!f.contains(TcpFlags::RST));
    }
}
