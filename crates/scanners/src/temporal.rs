//! Session scheduling: the generator side of the temporal taxonomy (§5.1).
//!
//! One-off scanners run a single session; periodic scanners repeat with a
//! stable period (hours to months) plus bounded jitter; intermittent
//! scanners draw irregular gaps from a heavy-tailed distribution so no
//! period is detectable.

use sixscope_types::{SimDuration, SimTime, Xoshiro256pp};

/// When a scanner's sessions start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalModel {
    /// A single session at the given time.
    OneOff {
        /// Session start.
        at: SimTime,
    },
    /// Stable period with bounded jitter (jitter < period/6 keeps the
    /// autocorrelation detector's gap test satisfied).
    Periodic {
        /// First session.
        start: SimTime,
        /// The period.
        period: SimDuration,
        /// Uniform jitter applied to each start (±jitter/2).
        jitter: SimDuration,
        /// No sessions at or after this time.
        until: SimTime,
    },
    /// Irregular recurrence: exponential gaps scaled by a heavy-tail
    /// multiplier, guaranteeing ≥ 2 sessions and no stable period.
    Intermittent {
        /// First session.
        start: SimTime,
        /// No sessions at or after this time.
        until: SimTime,
        /// Mean gap between sessions.
        mean_gap: SimDuration,
        /// Hard cap on the number of sessions.
        max_sessions: u32,
    },
}

impl TemporalModel {
    /// Generates the session start times.
    pub fn session_starts(&self, rng: &mut Xoshiro256pp) -> Vec<SimTime> {
        let mut out = Vec::new();
        self.session_starts_into(rng, &mut out);
        out
    }

    /// Fills `out` (cleared first) with the session start times. The batched
    /// generator reuses one scratch vector across scanners; values and RNG
    /// draws are identical to [`TemporalModel::session_starts`].
    pub fn session_starts_into(&self, rng: &mut Xoshiro256pp, out: &mut Vec<SimTime>) {
        out.clear();
        match self {
            TemporalModel::OneOff { at } => out.push(*at),
            TemporalModel::Periodic {
                start,
                period,
                jitter,
                until,
            } => {
                assert!(period.as_secs() > 0, "period must be positive");
                let mut t = *start;
                while t < *until {
                    let j = if jitter.as_secs() > 0 {
                        rng.below(jitter.as_secs()) as i64 - jitter.as_secs() as i64 / 2
                    } else {
                        0
                    };
                    let jittered = (t.as_secs() as i64 + j).max(0) as u64;
                    out.push(SimTime::from_secs(jittered));
                    t += *period;
                }
            }
            TemporalModel::Intermittent {
                start,
                until,
                mean_gap,
                max_sessions,
            } => {
                assert!(mean_gap.as_secs() > 0, "mean gap must be positive");
                out.push(*start);
                let mut t = *start;
                while out.len() < *max_sessions as usize {
                    // Heavy-tailed gaps: exponential base, occasionally
                    // stretched 3–10×, so the CV stays far above the
                    // period detector's threshold.
                    let mut gap = rng.exponential(1.0 / mean_gap.as_secs() as f64);
                    if rng.bool(0.25) {
                        gap *= 3.0 + rng.f64() * 7.0;
                    }
                    // Keep a floor above the session timeout so separate
                    // sessions stay separate.
                    let gap = gap.max(2.0 * 3600.0) as u64;
                    t += SimDuration::secs(gap);
                    if t >= *until {
                        break;
                    }
                    out.push(t);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_analysis::autocorr::PeriodDetector;
    use sixscope_analysis::classify::{temporal_class, TemporalClass};

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(5)
    }

    #[test]
    fn one_off_has_exactly_one_session() {
        let m = TemporalModel::OneOff {
            at: SimTime::from_secs(1234),
        };
        assert_eq!(m.session_starts(&mut rng()), vec![SimTime::from_secs(1234)]);
    }

    #[test]
    fn periodic_session_count_matches_span() {
        let m = TemporalModel::Periodic {
            start: SimTime::EPOCH,
            period: SimDuration::days(1),
            jitter: SimDuration::ZERO,
            until: SimTime::EPOCH + SimDuration::days(10),
        };
        let starts = m.session_starts(&mut rng());
        assert_eq!(starts.len(), 10);
        assert!(starts
            .windows(2)
            .all(|w| w[1] - w[0] == SimDuration::days(1)));
    }

    #[test]
    fn generated_periodic_is_classified_periodic() {
        let m = TemporalModel::Periodic {
            start: SimTime::EPOCH,
            period: SimDuration::days(1),
            jitter: SimDuration::mins(60),
            until: SimTime::EPOCH + SimDuration::weeks(3),
        };
        let starts = m.session_starts(&mut rng());
        assert_eq!(
            temporal_class(&starts, &PeriodDetector::default()),
            TemporalClass::Periodic
        );
    }

    #[test]
    fn generated_intermittent_is_classified_intermittent() {
        let m = TemporalModel::Intermittent {
            start: SimTime::EPOCH,
            until: SimTime::EPOCH + SimDuration::weeks(30),
            mean_gap: SimDuration::days(4),
            max_sessions: 20,
        };
        // Check several seeds: the class must be robust, not lucky.
        for seed in 0..10 {
            let mut r = Xoshiro256pp::seed_from_u64(seed);
            let starts = m.session_starts(&mut r);
            assert!(starts.len() >= 2, "seed {seed}: too few sessions");
            let class = temporal_class(&starts, &PeriodDetector::default());
            assert_ne!(
                class,
                TemporalClass::Periodic,
                "seed {seed} produced a detectable period"
            );
        }
    }

    #[test]
    fn intermittent_respects_bounds() {
        let until = SimTime::EPOCH + SimDuration::weeks(4);
        let m = TemporalModel::Intermittent {
            start: SimTime::EPOCH,
            until,
            mean_gap: SimDuration::days(2),
            max_sessions: 5,
        };
        let starts = m.session_starts(&mut rng());
        assert!(starts.len() <= 5);
        assert!(starts.iter().all(|&t| t < until));
        // Gaps stay above 2 h (distinct sessions under the 1 h timeout).
        assert!(starts
            .windows(2)
            .all(|w| w[1] - w[0] >= SimDuration::hours(2)));
    }

    #[test]
    fn periodic_jitter_never_goes_negative() {
        let m = TemporalModel::Periodic {
            start: SimTime::EPOCH,
            period: SimDuration::days(1),
            jitter: SimDuration::hours(12),
            until: SimTime::EPOCH + SimDuration::days(5),
        };
        let starts = m.session_starts(&mut rng());
        assert!(starts.iter().all(|t| t.as_secs() < u64::MAX / 2));
    }

    #[test]
    fn determinism_per_seed() {
        let m = TemporalModel::Intermittent {
            start: SimTime::EPOCH,
            until: SimTime::EPOCH + SimDuration::weeks(10),
            mean_gap: SimDuration::days(3),
            max_sessions: 50,
        };
        assert_eq!(m.session_starts(&mut rng()), m.session_starts(&mut rng()));
    }
}
