//! Property tests: BGP codec round-trips over arbitrary structured inputs,
//! decoder robustness on arbitrary bytes, and RIB invariants.

use proptest::prelude::*;
use sixscope_bgp::attrs::{MpReach, Origin, PathAttributes};
use sixscope_bgp::message::{BgpMessage, NotificationMessage, OpenMessage, UpdateMessage};
use sixscope_bgp::rib::{LocRib, Route};
use sixscope_types::{Asn, Ipv6Prefix, SimTime};
use std::net::Ipv6Addr;

fn arb_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 0u8..=128).prop_map(|(bits, len)| Ipv6Prefix::from_bits(bits, len).unwrap())
}

fn arb_origin() -> impl Strategy<Value = Origin> {
    prop_oneof![
        Just(Origin::Igp),
        Just(Origin::Egp),
        Just(Origin::Incomplete)
    ]
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::option::of(arb_origin()),
        proptest::collection::vec(any::<u32>(), 0..12),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        proptest::option::of((any::<u128>(), proptest::collection::vec(arb_prefix(), 0..8))),
        proptest::collection::vec(arb_prefix(), 0..8),
        proptest::collection::vec(any::<u32>(), 0..6),
    )
        .prop_map(
            |(origin, path, med, local_pref, reach, unreach, communities)| {
                // An empty AS_PATH only round-trips when the ORIGIN forces the
                // attribute block to exist; normalize to the encodable subset.
                let origin = if path.is_empty() && origin.is_none() && reach.is_none() {
                    Some(Origin::Igp)
                } else {
                    origin
                };
                PathAttributes {
                    origin,
                    as_path: path.into_iter().map(Asn).collect(),
                    med,
                    local_pref,
                    communities,
                    mp_reach: reach.map(|(nh, prefixes)| MpReach {
                        next_hop: Ipv6Addr::from(nh),
                        prefixes,
                    }),
                    mp_unreach: unreach,
                }
            },
        )
}

proptest! {
    #[test]
    fn attrs_round_trip(attrs in arb_attrs()) {
        let mut buf = Vec::new();
        attrs.encode(&mut buf);
        let back = PathAttributes::decode(&buf).unwrap();
        // AS_PATH of length zero encodes as an empty attribute; everything
        // else must survive exactly.
        prop_assert_eq!(back.as_path, attrs.as_path);
        prop_assert_eq!(back.med, attrs.med);
        prop_assert_eq!(back.local_pref, attrs.local_pref);
        prop_assert_eq!(back.communities, attrs.communities);
        prop_assert_eq!(back.mp_reach, attrs.mp_reach);
        prop_assert_eq!(back.mp_unreach, attrs.mp_unreach);
        if attrs.origin.is_some() {
            prop_assert_eq!(back.origin, attrs.origin);
        }
    }

    #[test]
    fn update_message_round_trip(attrs in arb_attrs()) {
        let msg = BgpMessage::Update(UpdateMessage { attrs });
        let bytes = msg.encode();
        let (back, rest) = BgpMessage::decode(&bytes).unwrap();
        prop_assert!(rest.is_empty());
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn open_message_round_trip(asn in any::<u32>(), hold in 3u16.., id in any::<u32>()) {
        let mut open = OpenMessage::standard(Asn(asn), id);
        open.hold_time = hold;
        let bytes = BgpMessage::Open(open.clone()).encode();
        let (back, _) = BgpMessage::decode(&bytes).unwrap();
        prop_assert_eq!(back, BgpMessage::Open(open));
    }

    #[test]
    fn notification_round_trip(code in any::<u8>(), sub in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let msg = BgpMessage::Notification(NotificationMessage { code, subcode: sub, data });
        let (back, _) = BgpMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = BgpMessage::decode(&bytes);
        let _ = PathAttributes::decode(&bytes);
    }

    #[test]
    fn rib_best_is_always_a_candidate(
        routes in proptest::collection::vec(
            ((any::<u128>(), 0u8..=64), 0u32..4, 1u32..4, 0u64..100),
            1..30,
        )
    ) {
        let mut rib = LocRib::new();
        let mut inserted: Vec<Route> = Vec::new();
        for ((bits, len), peer, pathlen, ts) in routes {
            let prefix = Ipv6Prefix::from_bits(bits, len).unwrap();
            let route = Route {
                prefix,
                next_hop: "2001:db8:f::1".parse().unwrap(),
                as_path: (0..pathlen).map(|i| Asn(100 + i)).collect(),
                origin: Origin::Igp,
                med: 0,
                local_pref: 100,
                communities: vec![],
                learned_from: peer,
                learned_at: SimTime::from_secs(ts),
            };
            // Mirror the RIB's replace semantics in the model.
            inserted.retain(|r| !(r.prefix == prefix && r.learned_from == peer));
            inserted.push(route.clone());
            rib.insert(route);
        }
        for (prefix, best) in rib.best_routes() {
            // The selected best is one of the live candidates...
            prop_assert!(inserted.iter().any(|r| &r.prefix == prefix
                && r.learned_from == best.learned_from));
            // ...and no candidate strictly beats it.
            for r in inserted.iter().filter(|r| &r.prefix == prefix) {
                prop_assert!(!r.better_than(best) || r == best);
            }
        }
    }

    #[test]
    fn rib_withdraw_all_empties(
        entries in proptest::collection::vec(((any::<u128>(), 0u8..=48), 0u32..3), 1..20)
    ) {
        let mut rib = LocRib::new();
        let mut keys = Vec::new();
        for ((bits, len), peer) in entries {
            let prefix = Ipv6Prefix::from_bits(bits, len).unwrap();
            rib.insert(Route {
                prefix,
                next_hop: "::1".parse().unwrap(),
                as_path: vec![Asn(1)],
                origin: Origin::Igp,
                med: 0,
                local_pref: 100,
                communities: vec![],
                learned_from: peer,
                learned_at: SimTime::EPOCH,
            });
            keys.push((prefix, peer));
        }
        for (prefix, peer) in keys {
            rib.withdraw(prefix, peer);
        }
        prop_assert!(rib.is_empty());
    }
}
