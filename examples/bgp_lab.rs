//! BGP control-plane lab: run the paper's asymmetric split schedule against
//! the simulated AS topology and watch the collector — the "BGP signal"
//! that reactive scanners consume.
//!
//! ```sh
//! cargo run -p sixscope-examples --bin bgp-lab --release
//! ```

use sixscope_bgp::topology::standard_topology;
use sixscope_bgp::RouteEventKind;
use sixscope_telescope::{ScheduleActionKind, SplitSchedule};
use sixscope_types::{Asn, SimDuration, SimTime};

fn main() {
    let origin = Asn(64500);
    let borrower = Asn(64510);
    let collector = Asn(64999);
    let covering = "2001:db8::/32".parse().unwrap();

    println!("establishing BGP sessions (origin, two transits, IXP core, borrower, collector)…");
    let mut topo = standard_topology(origin, borrower, collector, SimTime::EPOCH);

    let schedule = SplitSchedule::paper(covering, SimTime::EPOCH + SimDuration::days(1));
    println!(
        "executing the T1 schedule: {} weeks baseline + {} bi-weekly split cycles\n",
        12, schedule.cycles
    );

    for action in schedule.actions() {
        topo.run_until(action.at);
        match action.kind {
            ScheduleActionKind::Announce => topo.announce(origin, action.prefix, action.at),
            ScheduleActionKind::Withdraw => topo.withdraw(origin, action.prefix, action.at),
        }
    }
    topo.run_until(schedule.end() + SimDuration::hours(1));

    // The collector's event feed — what a looking glass / RIS sees.
    let events = topo.collector().events();
    let announces = events.iter().filter(|e| e.is_announce()).count();
    let withdraws = events.len() - announces;
    println!(
        "collector processed {} route events ({announces} announce, {withdraws} withdraw)",
        events.len()
    );

    // Reaction-latency view: when did each cycle's *new* prefixes become
    // visible, relative to the re-announcement instant?
    for cycle in [1u32, 8, 16] {
        let (lo, hi) = schedule.new_prefixes(cycle);
        let announce_at = schedule.cycle_start(cycle) + SimDuration::days(1);
        for prefix in [lo, hi] {
            let seen = events
                .iter()
                .find(|e| e.prefix == prefix && e.is_announce())
                .map(|e| e.ts);
            if let Some(ts) = seen {
                println!(
                    "cycle {cycle:>2}: {prefix:<24} visible {}s after announcement",
                    ts.as_secs() - announce_at.as_secs()
                );
            }
        }
    }

    // Final state: the 17-prefix table.
    let table = topo.global_table();
    println!("\nfinal global table ({} prefixes):", table.len());
    for prefix in &table {
        println!("  {prefix}");
    }

    // AS-path view for the most specific prefix.
    if let Some(last) = table.iter().max_by_key(|p| p.len()) {
        if let Some(route) = topo.speaker(collector).and_then(|s| s.rib().best(last)) {
            let path: Vec<String> = route.as_path.iter().map(|a| a.to_string()).collect();
            println!("\ncollector's AS path for {last}: {}", path.join(" → "));
        }
    }

    // Sample withdrawal event timing.
    if let Some(withdraw) = events
        .iter()
        .find(|e| matches!(e.kind, RouteEventKind::Withdraw))
    {
        println!(
            "\nfirst withdrawal seen at the collector: {} at t={}",
            withdraw.prefix, withdraw.ts
        );
    }
}
