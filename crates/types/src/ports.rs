//! Well-known transport ports and port classification used in Table 4.
//!
//! The paper aggregates the default traceroute destination range
//! `[33434, 33523]` into a single "Traceroute" row; everything else is
//! reported by its raw port number.

/// Default traceroute UDP destination range (base port 33434, 90 hops).
pub const TRACEROUTE_RANGE: std::ops::RangeInclusive<u16> = 33434..=33523;

/// HTTP.
pub const HTTP: u16 = 80;
/// HTTPS.
pub const HTTPS: u16 = 443;
/// FTP control.
pub const FTP: u16 = 21;
/// SSH.
pub const SSH: u16 = 22;
/// Telnet.
pub const TELNET: u16 = 23;
/// DNS.
pub const DNS: u16 = 53;
/// NTP.
pub const NTP: u16 = 123;
/// SNMP.
pub const SNMP: u16 = 161;
/// ISAKMP / IKE.
pub const ISAKMP: u16 = 500;
/// HTTP alternate.
pub const HTTP_ALT: u16 = 8080;
/// SMB.
pub const SMB: u16 = 445;
/// RDP.
pub const RDP: u16 = 3389;

/// True if `port` lies in the default traceroute destination range.
pub fn is_traceroute_port(port: u16) -> bool {
    TRACEROUTE_RANGE.contains(&port)
}

/// The label used by Table 4 for a UDP destination port: traceroute-range
/// ports collapse to one label, everything else is its number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortLabel {
    /// Any port in [`TRACEROUTE_RANGE`].
    Traceroute,
    /// A concrete port number.
    Port(u16),
}

impl PortLabel {
    /// Classifies a UDP destination port.
    pub fn classify_udp(port: u16) -> PortLabel {
        if is_traceroute_port(port) {
            PortLabel::Traceroute
        } else {
            PortLabel::Port(port)
        }
    }

    /// Classifies a TCP destination port (no aggregation applies).
    pub fn classify_tcp(port: u16) -> PortLabel {
        PortLabel::Port(port)
    }
}

impl std::fmt::Display for PortLabel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortLabel::Traceroute => f.write_str("Traceroute"),
            PortLabel::Port(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traceroute_range_boundaries() {
        assert!(is_traceroute_port(33434));
        assert!(is_traceroute_port(33523));
        assert!(!is_traceroute_port(33433));
        assert!(!is_traceroute_port(33524));
    }

    #[test]
    fn udp_classification_collapses_traceroute() {
        assert_eq!(PortLabel::classify_udp(33500), PortLabel::Traceroute);
        assert_eq!(PortLabel::classify_udp(DNS), PortLabel::Port(53));
    }

    #[test]
    fn tcp_classification_keeps_raw_ports() {
        assert_eq!(PortLabel::classify_tcp(33500), PortLabel::Port(33500));
    }

    #[test]
    fn display_labels() {
        assert_eq!(PortLabel::Traceroute.to_string(), "Traceroute");
        assert_eq!(PortLabel::Port(443).to_string(), "443");
    }
}
