//! Property tests: sessionizer invariants and split-schedule algebra.

use bytes::Bytes;
use proptest::prelude::*;
use sixscope_telescope::{
    AggLevel, Capture, CapturedPacket, IncrementalSessionizer, Protocol, Sessionizer, SourceKey,
    SplitSchedule, TelescopeConfig, TelescopeId,
};
use sixscope_types::{Ipv6Prefix, SimDuration, SimTime};
use std::net::Ipv6Addr;

fn capture_from(packets: Vec<(u64, u64)>) -> Capture {
    // (ts, source-index) pairs inside the T3 prefix.
    let mut cap = Capture::new(TelescopeConfig::t3("2001:db8:3::/48".parse().unwrap()));
    for (ts, src_idx) in packets {
        let src = Ipv6Addr::from((0x2a0a_u128 << 112) | ((src_idx % 5) as u128) << 64 | 1);
        cap.push(CapturedPacket {
            ts: SimTime::from_secs(ts),
            telescope: TelescopeId::T3,
            src,
            dst: "2001:db8:3::1".parse().unwrap(),
            protocol: Protocol::Icmpv6,
            src_port: None,
            dst_port: None,
            payload: Bytes::new(),
        });
    }
    cap
}

proptest! {
    /// Sessions partition the packets: every packet index appears in
    /// exactly one session.
    #[test]
    fn sessions_partition_packets(
        packets in proptest::collection::vec((0u64..2_000_000, any::<u64>()), 0..200)
    ) {
        let cap = capture_from(packets);
        let sessions = Sessionizer::paper(AggLevel::Addr128).sessionize(&cap);
        let mut seen = vec![false; cap.len()];
        for s in &sessions {
            for &i in &s.packet_indices {
                prop_assert!(!seen[i as usize], "packet {} in two sessions", i);
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "some packet not in any session");
    }

    /// Within a session: same source, time-ordered, gaps below the timeout.
    /// Across sessions of one source: gaps at or above the timeout.
    #[test]
    fn session_gap_invariants(
        packets in proptest::collection::vec((0u64..5_000_000, any::<u64>()), 1..200)
    ) {
        let cap = capture_from(packets);
        let timeout = SimDuration::hours(1);
        let sessions = Sessionizer::paper(AggLevel::Addr128).sessionize(&cap);
        for s in &sessions {
            let pkts: Vec<&CapturedPacket> = s.packets(&cap).collect();
            prop_assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
            prop_assert!(pkts
                .windows(2)
                .all(|w| w[1].ts.since(w[0].ts) < timeout));
            prop_assert!(pkts
                .iter()
                .all(|p| SourceKey::new(p.src, AggLevel::Addr128) == s.source));
            prop_assert_eq!(s.start, pkts.first().unwrap().ts);
            prop_assert_eq!(s.end, pkts.last().unwrap().ts);
        }
        // Consecutive sessions of the same source are separated by >= timeout.
        let mut by_source: std::collections::BTreeMap<SourceKey, Vec<(SimTime, SimTime)>> =
            Default::default();
        for s in &sessions {
            by_source.entry(s.source).or_default().push((s.start, s.end));
        }
        for ranges in by_source.values_mut() {
            ranges.sort();
            prop_assert!(ranges
                .windows(2)
                .all(|w| w[1].0.since(w[0].1) >= timeout));
        }
    }

    /// The incremental sessionizer with eviction active is exactly the
    /// batch sessionizer: eviction can only remove open entries whose gap
    /// already exceeds the timeout, so a session is never split while its
    /// packet gaps stay below the horizon — and the open table stays
    /// bounded by the number of live sources (5 here), not the corpus.
    #[test]
    fn incremental_eviction_never_splits_sessions(
        packets in proptest::collection::vec((0u64..5_000_000, any::<u64>()), 0..200)
    ) {
        let cap = capture_from(packets);
        let timeout = SimDuration::hours(1);
        let batch = Sessionizer::paper(AggLevel::Addr128).sessionize(&cap);
        let mut order: Vec<u32> = (0..cap.len() as u32).collect();
        order.sort_by_key(|&i| cap.packets()[i as usize].ts);
        let mut inc = IncrementalSessionizer::new(AggLevel::Addr128, timeout);
        for &i in &order {
            inc.push(i, &cap.packets()[i as usize]);
        }
        prop_assert!(inc.peak_open() <= 5, "open table grew past the live sources");
        let sessions = inc.finish();
        prop_assert_eq!(&sessions, &batch);
        for s in &sessions {
            let pkts: Vec<&CapturedPacket> = s.packets(&cap).collect();
            prop_assert!(pkts
                .windows(2)
                .all(|w| w[1].ts.since(w[0].ts) < timeout),
                "a session was split below the eviction horizon");
        }
    }

    /// Coarser aggregation never increases the session count.
    #[test]
    fn coarser_aggregation_merges(
        packets in proptest::collection::vec((0u64..2_000_000, any::<u64>()), 0..150)
    ) {
        let cap = capture_from(packets);
        let n128 = Sessionizer::paper(AggLevel::Addr128).sessionize(&cap).len();
        let n64 = Sessionizer::paper(AggLevel::Subnet64).sessionize(&cap).len();
        let n48 = Sessionizer::paper(AggLevel::Prefix48).sessionize(&cap).len();
        prop_assert!(n128 >= n64);
        prop_assert!(n64 >= n48);
    }

    /// A longer timeout never increases the session count.
    #[test]
    fn longer_timeout_merges(
        packets in proptest::collection::vec((0u64..2_000_000, any::<u64>()), 0..150),
        t1 in 60u64..7200,
        t2 in 60u64..7200,
    ) {
        let (short, long) = (t1.min(t2), t1.max(t2));
        let cap = capture_from(packets);
        let n_short = Sessionizer {
            level: AggLevel::Addr128,
            timeout: SimDuration::secs(short),
        }
        .sessionize(&cap)
        .len();
        let n_long = Sessionizer {
            level: AggLevel::Addr128,
            timeout: SimDuration::secs(long),
        }
        .sessionize(&cap)
        .len();
        prop_assert!(n_short >= n_long);
    }

    /// Schedule algebra: for any /32 covering prefix the announced sets are
    /// disjoint, cover the /32 exactly, and grow by one per cycle.
    #[test]
    fn schedule_partitions_for_any_covering(bits in any::<u128>()) {
        let covering = Ipv6Prefix::from_bits(bits, 32).unwrap();
        let schedule = SplitSchedule::paper(covering, SimTime::EPOCH);
        for cycle in 1..=schedule.cycles {
            let set = schedule.announced_set(cycle);
            prop_assert_eq!(set.len() as u32, cycle + 1);
            let total: u128 = set.iter().map(|p| p.address_count()).sum();
            prop_assert_eq!(total, covering.address_count());
            for (i, a) in set.iter().enumerate() {
                for b in set.iter().skip(i + 1) {
                    prop_assert!(!a.overlaps(b));
                }
            }
            // The split target of the next cycle is in this cycle's set.
            if cycle < schedule.cycles {
                prop_assert!(set.contains(&schedule.split_target(cycle + 1)));
            }
        }
    }
}
