//! End-to-end integration: run small experiments and assert the paper's
//! qualitative findings hold on the analyzed corpus — planted behavior must
//! be recovered by the measurement pipeline, never read from generator
//! state.

use sixscope::sim::ScenarioConfig;
use sixscope::{figures, tables, Analyzed, Pipeline};
use sixscope_analysis::classify::TemporalClass;
use sixscope_telescope::TelescopeId;
use std::sync::OnceLock;

fn run(seed: u64, scale: f64) -> Analyzed {
    Pipeline::simulate(ScenarioConfig::new(seed, scale))
        .run()
        .expect("simulated runs cannot fail")
}

fn corpus() -> &'static Analyzed {
    static CELL: OnceLock<Analyzed> = OnceLock::new();
    CELL.get_or_init(|| run(20230824, 0.02))
}

#[test]
fn telescope_visibility_ordering_holds() {
    // §6: separately announced telescopes receive orders of magnitude more
    // traffic than covered ones; reactive beats silent.
    let a = corpus();
    let t = tables::table5(a);
    let col = |id: TelescopeId| t.a.iter().find(|c| c.telescope == id).unwrap();
    assert!(col(TelescopeId::T1).packets > 100 * col(TelescopeId::T3).packets.max(1));
    assert!(col(TelescopeId::T2).packets > 100 * col(TelescopeId::T3).packets.max(1));
    assert!(col(TelescopeId::T4).packets > col(TelescopeId::T3).packets);
}

#[test]
fn bgp_splits_attract_traffic() {
    // §7.1: the split side outgrows the stable companion; weekly sources
    // and sessions grow during the split period.
    let h = tables::headline(corpus());
    assert!(h.split_vs_companion_packets_pct > 50.0);
    assert!(h.weekly_sources_growth_pct > 50.0);
    assert!(h.weekly_sessions_growth_pct > 50.0);
}

#[test]
fn one_off_scanners_dominate_scanner_counts() {
    // Table 6: ~70% of scanners appear only once, but periodic scanners
    // own the session mass.
    let t = tables::table6(corpus());
    let one_off = &t.temporal[0];
    assert_eq!(one_off.label, "One-off");
    assert!(
        (55.0..90.0).contains(&one_off.scanner_pct),
        "{}",
        one_off.scanner_pct
    );
    let periodic = t.temporal.iter().find(|r| r.label == "Periodic").unwrap();
    assert!(periodic.session_pct > 2.0 * periodic.scanner_pct);
}

#[test]
fn single_prefix_scanning_dominates_network_selection() {
    let t = tables::table6(corpus());
    let single = &t.network[0];
    assert_eq!(single.label, "Single-prefix scanning");
    assert!(single.scanner_pct > 70.0, "{}", single.scanner_pct);
    // Size-independent scanners are few but session-heavy.
    let si = t
        .network
        .iter()
        .find(|r| r.label == "Network-size independent")
        .unwrap();
    assert!(si.session_pct > si.scanner_pct);
}

#[test]
fn classifier_recovers_planted_tools() {
    // Table 7: the payload fingerprints planted by the generator must be
    // recovered from capture bytes alone, with Atlas on top.
    let rows = tables::table7(corpus());
    assert_eq!(rows[0].tool.to_string(), "RIPEAtlasProbe");
    assert!(rows[0].scanner_pct > 30.0);
    let names: Vec<String> = rows.iter().map(|r| r.tool.to_string()).collect();
    assert!(names.contains(&"Yarrp6".to_string()));
    assert!(names.contains(&"CAIDA Ark".to_string()));
}

#[test]
fn heavy_hitters_carry_packets_not_sessions() {
    let h = tables::headline(corpus());
    assert!(!h.heavy_hitters.is_empty());
    assert!(h.heavy_packet_pct > 40.0);
    assert!(h.heavy_session_pct < 10.0);
    assert!(h.heavy_packet_pct > 20.0 * h.heavy_session_pct);
}

#[test]
fn address_rotation_shows_only_at_t2() {
    // §6: T2 sees noticeably more /128 than /64 sources (rotators); T1's
    // levels stay close.
    let a = corpus();
    let t = tables::table5(a);
    let col = |id: TelescopeId| t.a.iter().find(|c| c.telescope == id).unwrap();
    let ratio = |id| col(id).sources128 as f64 / col(id).sources64.max(1) as f64;
    assert!(ratio(TelescopeId::T2) > ratio(TelescopeId::T1));
}

#[test]
fn t4_responds_and_t3_stays_silent() {
    let a = corpus();
    assert!(a.result.t4_responses > 0);
    // T3 records packets but never answers anything (it has no responder
    // in the pipeline at all); its volume stays a trickle.
    assert!(a.capture(TelescopeId::T3).len() < 100);
}

#[test]
fn withdrawn_prefixes_receive_nothing() {
    let a = corpus();
    let schedule = &a.result.schedule;
    for cycle in [1u32, 5, 10] {
        let gap_start = schedule.cycle_start(cycle);
        let gap_end = gap_start + sixscope_types::SimDuration::days(1);
        let during = a
            .capture(TelescopeId::T1)
            .packets()
            .iter()
            .filter(|p| p.ts >= gap_start && p.ts < gap_end)
            .count();
        assert_eq!(during, 0, "cycle {cycle}: packets during withdrawal gap");
    }
}

#[test]
fn figures_are_internally_consistent() {
    let a = corpus();
    // Fig. 4 curves end at 1.0 and are monotone.
    for curve in figures::fig4(a) {
        assert!(curve.points.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!((curve.points.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
    // Fig. 15 session totals equal the split-period session count.
    let cells = figures::fig15(a);
    let total: u64 = cells.iter().map(|c| c.sessions).sum();
    assert_eq!(total, a.t1_split_sessions().len() as u64);
    // Fig. 14: every rank curve is non-increasing.
    for counts in figures::fig14(a).values() {
        assert!(counts.windows(2).all(|w| w[0] >= w[1]));
    }
}

#[test]
fn nist_iid_vs_subnet_asymmetry() {
    // Appendix B / Fig. 17: scanners structure subnets but randomize IIDs.
    let cells = figures::fig17(corpus());
    assert!(!cells.is_empty());
    let rate = |iid: bool| {
        let (p, f) = cells
            .iter()
            .filter(|c| c.iid_part == iid)
            .fold((0u64, 0u64), |(p, f), c| (p + c.pass, f + c.fail));
        p as f64 / (p + f).max(1) as f64
    };
    assert!(rate(true) >= rate(false));
}

#[test]
fn intermittent_scanners_spread_wider_than_one_off() {
    // Fig. 14's key observation.
    let curves = figures::fig14(corpus());
    let breadth = |c: TemporalClass| curves.get(&c).map_or(0, Vec::len);
    assert!(breadth(TemporalClass::Intermittent) >= breadth(TemporalClass::OneOff));
}

#[test]
fn experiment_is_deterministic_across_runs() {
    let a = run(5, 0.002);
    let b = run(5, 0.002);
    assert_eq!(a.result.total_packets(), b.result.total_packets());
    for id in TelescopeId::ALL {
        assert_eq!(a.capture(id).packets(), b.capture(id).packets());
    }
    // And a different seed genuinely changes the world.
    let c = run(6, 0.002);
    assert_ne!(
        a.capture(TelescopeId::T1).len(),
        0,
        "sanity: T1 captured something"
    );
    assert_ne!(
        a.capture(TelescopeId::T1).packets(),
        c.capture(TelescopeId::T1).packets()
    );
}
