//! Errors for packet encoding, decoding and pcap I/O.

use std::fmt;

/// Why a single pcap record was rejected.
///
/// Real telescope captures (an 11-month `tcpdump -y RAW` deployment) contain
/// damaged records: length fields clipped by a crash, files cut off
/// mid-record when the capture process was killed, and plain bit rot. Each
/// damaged record maps to exactly one of these reasons, so recovery
/// statistics can report a per-reason breakdown. The variants that describe
/// truncation ([`MalformedRecord::TruncatedHeader`] and
/// [`MalformedRecord::TruncatedBody`]) end the stream — there are no more
/// bytes to re-synchronize on — while the length-field variants are
/// recoverable: the reader skips the advertised bytes and continues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MalformedRecord {
    /// `incl_len` exceeds the snapshot length declared in the file's own
    /// global header — no honest capture produces this.
    SnaplenExceeded {
        /// The record's declared captured length.
        incl_len: u32,
        /// The file's declared snapshot length.
        snaplen: u32,
    },
    /// `incl_len` exceeds the hard allocation ceiling
    /// ([`crate::pcap::MAX_RECORD_LEN`]) even though the file's snaplen
    /// nominally allows it.
    CapExceeded {
        /// The record's declared captured length.
        incl_len: u32,
    },
    /// `incl_len > orig_len`: a capture can clip a packet, never grow it.
    LengthInconsistent {
        /// The record's declared captured length.
        incl_len: u32,
        /// The record's declared original length.
        orig_len: u32,
    },
    /// End of file inside the 16-byte per-record header.
    TruncatedHeader {
        /// Header bytes that were present.
        have: usize,
    },
    /// End of file inside the record body.
    TruncatedBody {
        /// Body bytes the header promised.
        need: usize,
        /// Body bytes that were present.
        have: usize,
    },
}

impl MalformedRecord {
    /// Stable per-reason labels, in [`MalformedRecord::reason_index`] order.
    /// Ingest statistics index their skip counters with this.
    pub const REASONS: [&'static str; 5] = [
        "snaplen-exceeded",
        "cap-exceeded",
        "length-inconsistent",
        "truncated-header",
        "truncated-body",
    ];

    /// Index of this reason into [`MalformedRecord::REASONS`].
    pub fn reason_index(&self) -> usize {
        match self {
            MalformedRecord::SnaplenExceeded { .. } => 0,
            MalformedRecord::CapExceeded { .. } => 1,
            MalformedRecord::LengthInconsistent { .. } => 2,
            MalformedRecord::TruncatedHeader { .. } => 3,
            MalformedRecord::TruncatedBody { .. } => 4,
        }
    }

    /// The stable label for this reason.
    pub fn reason(&self) -> &'static str {
        Self::REASONS[self.reason_index()]
    }

    /// True for the reasons caused by the file ending mid-record — the
    /// signature of a live capture that was killed.
    pub fn is_truncation(&self) -> bool {
        matches!(
            self,
            MalformedRecord::TruncatedHeader { .. } | MalformedRecord::TruncatedBody { .. }
        )
    }
}

impl fmt::Display for MalformedRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MalformedRecord::SnaplenExceeded { incl_len, snaplen } => {
                write!(f, "incl_len {incl_len} exceeds file snaplen {snaplen}")
            }
            MalformedRecord::CapExceeded { incl_len } => {
                write!(f, "incl_len {incl_len} exceeds the record allocation cap")
            }
            MalformedRecord::LengthInconsistent { incl_len, orig_len } => {
                write!(f, "incl_len {incl_len} exceeds orig_len {orig_len}")
            }
            MalformedRecord::TruncatedHeader { have } => {
                write!(f, "EOF inside record header ({have} of 16 bytes)")
            }
            MalformedRecord::TruncatedBody { need, have } => {
                write!(f, "EOF inside record body ({have} of {need} bytes)")
            }
        }
    }
}

/// Errors produced while encoding or decoding packets and pcap files.
#[derive(Debug)]
pub enum PacketError {
    /// The buffer is shorter than the fixed header being decoded.
    Truncated {
        /// Which header was being decoded.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The IPv6 version field was not 6.
    BadVersion(u8),
    /// A declared length field disagrees with the actual buffer.
    LengthMismatch {
        /// Which length field.
        what: &'static str,
        /// Declared value.
        declared: usize,
        /// Actual available bytes.
        actual: usize,
    },
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// The pcap magic number was unrecognized.
    BadPcapMagic(u32),
    /// The pcap link type is not LINKTYPE_RAW (101).
    UnsupportedLinkType(u32),
    /// A single pcap record is damaged (see [`MalformedRecord`]).
    Malformed(MalformedRecord),
    /// A timestamp does not fit the 32-bit seconds field of classic pcap.
    TimestampOverflow(u64),
    /// A packet is too large for the 32-bit length fields of classic pcap.
    OversizedPacket(usize),
    /// An IPv6 extension-header chain deeper than the parser walks.
    ExtensionChainTooLong(usize),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            PacketError::BadVersion(v) => write!(f, "IP version {v} is not 6"),
            PacketError::LengthMismatch {
                what,
                declared,
                actual,
            } => write!(
                f,
                "{what} declares {declared} bytes but {actual} are available"
            ),
            PacketError::BadChecksum(what) => write!(f, "{what} checksum verification failed"),
            PacketError::BadPcapMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            PacketError::UnsupportedLinkType(l) => {
                write!(f, "unsupported pcap link type {l} (expected 101 = RAW)")
            }
            PacketError::Malformed(m) => write!(f, "malformed pcap record: {m}"),
            PacketError::TimestampOverflow(s) => {
                write!(f, "timestamp {s}s does not fit pcap's 32-bit seconds")
            }
            PacketError::OversizedPacket(n) => {
                write!(f, "packet of {n} bytes does not fit pcap's 32-bit lengths")
            }
            PacketError::ExtensionChainTooLong(n) => {
                write!(f, "IPv6 extension-header chain exceeds {n} headers")
            }
            PacketError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PacketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PacketError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PacketError {
    fn from(e: std::io::Error) -> Self {
        PacketError::Io(e)
    }
}
