//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in environments without network access to a crate
//! registry, so the external dependency is replaced by this path crate. It
//! implements exactly the subset sixscope uses: [`Bytes`] as a cheaply
//! cloneable, immutable byte buffer.

use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// A cheaply cloneable immutable byte buffer (reference-counted).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes(Arc<[u8]>);

/// Shared zero-length allocation: empty buffers are common on the ingest
/// hot path (payload-less probes), and cloning one `Arc` beats allocating
/// a fresh empty slice each time.
static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();

fn empty() -> Arc<[u8]> {
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes(empty())
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        if data.is_empty() {
            return Bytes::new();
        }
        Bytes(Arc::from(data))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        if v.is_empty() {
            return Bytes::new();
        }
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.0.iter() {
            for ch in std::ascii::escape_default(b) {
                write!(f, "{}", ch as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_equality() {
        let a = Bytes::copy_from_slice(b"yarrp");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(&a[..], b"yarrp");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn from_vec_and_slice_agree() {
        assert_eq!(Bytes::from(vec![1, 2, 3]), Bytes::from(&[1u8, 2, 3][..]));
    }

    #[test]
    fn empty_buffers_share_one_allocation() {
        let a = Bytes::new();
        let b = Bytes::copy_from_slice(&[]);
        let c = Bytes::from(Vec::new());
        assert!(Arc::ptr_eq(&a.0, &b.0));
        assert!(Arc::ptr_eq(&a.0, &c.0));
        assert!(a.is_empty());
    }
}
