//! The analyzed corpus: experiment output plus pre-computed sessions, the
//! columnar corpus index and metadata join helpers.

use crate::index::CorpusIndex;
use crate::pipeline::FeedConsumer;
use sixscope_analysis::classify::ScannerProfile;
use sixscope_sim::{CompiledVisibility, ExperimentResult};
use sixscope_telescope::{
    Capture, Feed, ScanSession, SimFeed, SourceKey, TelescopeId, SESSION_TIMEOUT,
};
use sixscope_types::{map_indexed, num_threads, AsInfo, Asn, PrefixTrie, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::time::Instant;

/// Wall-clock seconds of the analysis stages in [`Analyzed::from_result`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisTimings {
    /// The chunked feed phase end to end: sessionizer pushes plus index-
    /// shard appends across all telescopes (wall-clock of the parallel
    /// stage).
    pub streaming: f64,
    /// Time spent pushing packets into the incremental sessionizers
    /// (summed across the per-telescope jobs).
    pub sessionize: f64,
    /// The index shard-merge and finalize ([`CorpusIndex::from_shards`]).
    pub index_build: f64,
}

/// Chunking and eviction knobs of the streaming analysis;
/// [`crate::Pipeline`] fills this from its builder methods. The defaults
/// reproduce the batch behavior (one big chunk, the paper's 1-hour
/// timeout).
pub(crate) struct StreamSettings {
    /// Packets fed per chunk.
    pub chunk_records: usize,
    /// Session idle timeout (the eviction horizon).
    pub session_timeout: SimDuration,
    /// Worker threads (`None` defers to `SIXSCOPE_THREADS`).
    pub threads: Option<usize>,
}

impl Default for StreamSettings {
    fn default() -> Self {
        StreamSettings {
            chunk_records: usize::MAX,
            session_timeout: SESSION_TIMEOUT,
            threads: None,
        }
    }
}

/// Experiment output with sessions, scanner profiles and metadata joins.
pub struct Analyzed {
    /// The raw experiment result (captures, events, visibility, world).
    pub result: ExperimentResult,
    /// Scan sessions at /128 aggregation, per telescope.
    pub sessions128: BTreeMap<TelescopeId, Vec<ScanSession>>,
    /// Scan sessions at /64 aggregation, per telescope.
    pub sessions64: BTreeMap<TelescopeId, Vec<ScanSession>>,
    /// The columnar corpus index the tables and figures reduce over.
    pub index: CorpusIndex,
    /// Wall-clock of the analysis stages that built this corpus.
    pub timings: AnalysisTimings,
    /// High-water mark of the incremental sessionizers' open-session
    /// tables — the live-memory bound of the streaming analysis (maximum
    /// over all telescopes and both aggregation levels).
    pub peak_open_sessions: usize,
    /// Source /64-subnet → origin AS (the IP-to-AS join of the study).
    asn_by_subnet: PrefixTrie<Asn>,
}

impl Analyzed {
    /// Builds the corpus from a finished experiment — the batch path,
    /// expressed as one-big-chunk streaming through [`Analyzed::stream`].
    pub fn from_result(result: ExperimentResult) -> Analyzed {
        Self::stream(result, &StreamSettings::default())
    }

    /// Builds the corpus by driving each capture through a [`SimFeed`] into
    /// a [`FeedConsumer`] (incremental sessionizers at /128 and /64 plus an
    /// index-shard accumulator), then merging the shards into the
    /// [`CorpusIndex`] — the same consumer the pcap and live paths use.
    ///
    /// The four per-telescope feeds are independent pure functions of
    /// their capture, so they run on worker threads (`SIXSCOPE_THREADS`
    /// caps them; 1 forces serial); results are keyed by telescope, so
    /// scheduling cannot affect output, and chunk boundaries are invisible
    /// (DESIGN.md §10) — any `chunk_records` yields byte-identical output.
    pub(crate) fn stream(result: ExperimentResult, settings: &StreamSettings) -> Analyzed {
        let threads = num_threads(settings.threads);
        let stream_start = Instant::now();
        let compiled = CompiledVisibility::compile(&result.visibility);
        let fed = map_indexed(threads, &TelescopeId::ALL, |_, id| {
            let capture = &result.captures[id];
            let mut feed = SimFeed::new(capture, settings.chunk_records);
            let mut consumer = FeedConsumer::new(feed.sources_hint(), settings);
            loop {
                let chunk = feed.next_chunk().expect("sim feeds cannot fail");
                consumer.consume(capture, chunk.range, &compiled);
                if chunk.end_of_feed {
                    break;
                }
            }
            // Simulated captures are produced in time order, so the
            // incremental state is final as-is.
            let done = consumer.finish_in_order();
            (
                done.sessions128,
                done.sessions64,
                done.shard,
                done.sessionize,
                done.peak,
            )
        });
        let streaming = stream_start.elapsed().as_secs_f64();
        let mut sessions128 = BTreeMap::new();
        let mut sessions64 = BTreeMap::new();
        let mut shards = BTreeMap::new();
        let mut sessionize = 0.0;
        let mut peak_open_sessions = 0;
        for (id, (s128, s64, shard, secs, peak)) in TelescopeId::ALL.into_iter().zip(fed) {
            sessions128.insert(id, s128);
            sessions64.insert(id, s64);
            shards.insert(id, shard);
            sessionize += secs;
            peak_open_sessions = peak_open_sessions.max(peak);
        }
        let index_start = Instant::now();
        let index = CorpusIndex::from_shards(&result, shards, &sessions128, &sessions64, threads);
        let index_build = index_start.elapsed().as_secs_f64();
        Self::assemble(
            result,
            sessions128,
            sessions64,
            index,
            AnalysisTimings {
                streaming,
                sessionize,
                index_build,
            },
            peak_open_sessions,
        )
    }

    /// Final assembly (builds the AS join trie); shared by the streaming
    /// constructor above and [`crate::Pipeline`]'s pcap path.
    pub(crate) fn assemble(
        result: ExperimentResult,
        sessions128: BTreeMap<TelescopeId, Vec<ScanSession>>,
        sessions64: BTreeMap<TelescopeId, Vec<ScanSession>>,
        index: CorpusIndex,
        timings: AnalysisTimings,
        peak_open_sessions: usize,
    ) -> Analyzed {
        let mut asn_by_subnet = PrefixTrie::new();
        for scanner in &result.population.scanners {
            asn_by_subnet.insert(scanner.source.subnet(), scanner.asn);
        }
        Analyzed {
            result,
            sessions128,
            sessions64,
            index,
            timings,
            peak_open_sessions,
            asn_by_subnet,
        }
    }

    /// One telescope's capture.
    pub fn capture(&self, id: TelescopeId) -> &Capture {
        &self.result.captures[&id]
    }

    /// Sessions at /128 for one telescope.
    pub fn sessions128(&self, id: TelescopeId) -> &[ScanSession] {
        &self.sessions128[&id]
    }

    /// Sessions at /64 for one telescope.
    pub fn sessions64(&self, id: TelescopeId) -> &[ScanSession] {
        &self.sessions64[&id]
    }

    /// All /128 sessions across all telescopes.
    pub fn all_sessions128(&self) -> impl Iterator<Item = &ScanSession> {
        TelescopeId::ALL
            .into_iter()
            .flat_map(|id| self.sessions128[&id].iter())
    }

    /// Origin AS of a source address (routing-data join).
    pub fn asn_of(&self, src: Ipv6Addr) -> Option<Asn> {
        self.asn_by_subnet.lookup(src).map(|(_, asn)| *asn)
    }

    /// AS metadata of a source address.
    pub fn as_info_of(&self, src: Ipv6Addr) -> Option<&AsInfo> {
        self.asn_of(src)
            .and_then(|asn| self.result.population.as_info(asn))
    }

    /// Reverse DNS of a source address, if registered.
    pub fn rdns_of(&self, src: Ipv6Addr) -> Option<&str> {
        self.result.population.rdns.get(&src).map(String::as_str)
    }

    /// The boundary between the initial observation period and the split
    /// period (start of cycle 1).
    pub fn split_start(&self) -> SimTime {
        self.result.schedule.cycle_start(1)
    }

    /// Sessions at one telescope restricted to the initial 12 weeks.
    pub fn initial_sessions128(&self, id: TelescopeId) -> Vec<&ScanSession> {
        let boundary = self.split_start();
        self.sessions128[&id]
            .iter()
            .filter(|s| s.start < boundary)
            .collect()
    }

    /// T1 sessions during the split period (/128).
    pub fn t1_split_sessions(&self) -> Vec<&ScanSession> {
        let boundary = self.split_start();
        self.sessions128[&TelescopeId::T1]
            .iter()
            .filter(|s| s.start >= boundary)
            .collect()
    }

    /// Temporal scanner profiles of the T1 split period. The profiles are
    /// pre-computed on the corpus index; `session_indices` reference the
    /// returned slice.
    pub fn t1_split_profiles(&self) -> (&[ScanSession], &[ScannerProfile]) {
        let window = &self.index.split().window;
        (
            &self.sessions128[&TelescopeId::T1][window.range.clone()],
            &window.profiles,
        )
    }

    /// Distinct /128 sources at one telescope over a time range (ascending).
    pub fn sources128(&self, id: TelescopeId, from: SimTime, until: SimTime) -> Vec<SourceKey> {
        let col = self.index.telescope(id);
        let mut ids: Vec<u32> = col.src128[col.range(from, until)].to_vec();
        ids.sort_unstable();
        ids.dedup();
        ids.into_iter()
            .map(|i| self.index.sources.key128(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_sim::ScenarioConfig;

    fn analyzed() -> Analyzed {
        crate::Pipeline::simulate(ScenarioConfig::new(7, 0.004))
            .run()
            .expect("simulated runs cannot fail")
    }

    #[test]
    fn corpus_builds_sessions_for_every_telescope() {
        let a = analyzed();
        for id in TelescopeId::ALL {
            // /64 aggregation can only merge sessions, never create more.
            assert!(a.sessions64(id).len() <= a.sessions128(id).len());
        }
        assert!(!a.sessions128(TelescopeId::T1).is_empty());
    }

    #[test]
    fn asn_join_resolves_all_captured_sources() {
        let a = analyzed();
        for id in TelescopeId::ALL {
            for p in a.capture(id).packets() {
                assert!(
                    a.asn_of(p.src).is_some(),
                    "source {} has no AS mapping",
                    p.src
                );
            }
        }
    }

    #[test]
    fn rdns_join_finds_atlas_probes() {
        let a = analyzed();
        let atlas_sources = a
            .capture(TelescopeId::T1)
            .packets()
            .iter()
            .filter(|p| {
                a.rdns_of(p.src)
                    .is_some_and(|n| n.ends_with(".probes.atlas.ripe.net"))
            })
            .count();
        assert!(atlas_sources > 0, "no Atlas sources observed at T1");
    }

    #[test]
    fn split_period_partitions_sessions() {
        let a = analyzed();
        let initial = a.initial_sessions128(TelescopeId::T1).len();
        let split = a.t1_split_sessions().len();
        assert_eq!(initial + split, a.sessions128(TelescopeId::T1).len());
        assert!(split > initial, "the split period is 32 of 44 weeks");
    }

    #[test]
    fn t1_split_profiles_cover_all_sources() {
        let a = analyzed();
        let (sessions, profiles) = a.t1_split_profiles();
        let total_sessions: usize = profiles.iter().map(|p| p.session_indices.len()).sum();
        assert_eq!(total_sessions, sessions.len());
    }
}
