//! Per-nibble entropy profiling of target sets — the Entropy/IP idea
//! (Foremski et al., §2 of the paper): the Shannon entropy of each of the
//! 32 hex digits across a set of addresses reveals where a scanner's
//! generator is structured (entropy ≈ 0), enumerated (low entropy) or
//! random (entropy ≈ 4 bits).
//!
//! This complements the session-level NIST tests: NIST asks "is the bit
//! stream random?", the entropy profile asks "*which address segments* are
//! random?" — the distinction behind Fig. 12(b), where nibbles 11–12 are
//! structured while the last 80 bits are random.

use sixscope_types::nibble;

/// Per-nibble Shannon entropy in bits (`0.0..=4.0`), nibble 0 = the most
/// significant hex digit.
pub fn nibble_entropy(targets: &[u128]) -> [f64; 32] {
    let mut out = [0.0f64; 32];
    if targets.is_empty() {
        return out;
    }
    let n = targets.len() as f64;
    for (i, slot) in out.iter_mut().enumerate() {
        let mut counts = [0u64; 16];
        for &t in targets {
            counts[nibble(t, i) as usize] += 1;
        }
        let h: f64 = counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.log2()
            })
            .sum();
        *slot = h;
    }
    out
}

/// A contiguous run of nibbles with homogeneous randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First nibble index (inclusive).
    pub start: usize,
    /// Last nibble index (inclusive).
    pub end: usize,
    /// Whether the run is high-entropy (random-looking).
    pub random: bool,
}

impl Segment {
    /// Number of nibbles in the segment.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always false (segments are at least one nibble); the idiomatic pair
    /// to [`Segment::len`].
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Splits an entropy profile into alternating structured/random segments.
///
/// A nibble counts as random when its entropy is at least `threshold` bits
/// (2.0 is a good default: at least 4 effective values).
pub fn segments(profile: &[f64; 32], threshold: f64) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::new();
    for (i, &h) in profile.iter().enumerate() {
        let random = h >= threshold;
        match out.last_mut() {
            Some(seg) if seg.random == random => seg.end = i,
            _ => out.push(Segment {
                start: i,
                end: i,
                random,
            }),
        }
    }
    out
}

/// Convenience: the entropy profile of the *interface identifier* only
/// (nibbles 16..32), averaged — a quick scalar "how random are the IIDs".
pub fn mean_iid_entropy(targets: &[u128]) -> f64 {
    let profile = nibble_entropy(targets);
    profile[16..].iter().sum::<f64>() / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_types::Xoshiro256pp;

    #[test]
    fn constant_targets_have_zero_entropy() {
        let targets = vec![0x2001_0db8_u128 << 96 | 1; 50];
        let profile = nibble_entropy(&targets);
        assert!(profile.iter().all(|&h| h == 0.0));
        assert_eq!(mean_iid_entropy(&targets), 0.0);
    }

    #[test]
    fn random_iids_have_high_iid_entropy_and_zero_prefix_entropy() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let base = 0x2001_0db8_u128 << 96;
        let targets: Vec<u128> = (0..500).map(|_| base | rng.next_u64() as u128).collect();
        let profile = nibble_entropy(&targets);
        // Prefix nibbles fixed.
        assert!(profile[..8].iter().all(|&h| h == 0.0));
        // IID nibbles near 4 bits.
        assert!(profile[16..].iter().all(|&h| h > 3.5), "{profile:?}");
        assert!(mean_iid_entropy(&targets) > 3.5);
    }

    #[test]
    fn low_byte_enumeration_is_low_entropy_except_the_tail() {
        // ::1 .. ::256 — only the last two nibbles vary.
        let base = 0x2001_0db8_u128 << 96;
        let targets: Vec<u128> = (1..=256u128).map(|i| base | i).collect();
        let profile = nibble_entropy(&targets);
        assert!(profile[..29].iter().all(|&h| h < 1.0));
        assert!(profile[30] > 3.0, "second-to-last nibble cycles fully");
        assert!(profile[31] > 3.0, "last nibble cycles fully");
    }

    #[test]
    fn segments_detect_the_fig12b_shape() {
        // Structured subnet nibbles (11-12 iterate a few values), random
        // last 80 bits — the AS53667 session of Fig. 12(b).
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let base = 0x2001_0db8_u128 << 96;
        let targets: Vec<u128> = (0..400)
            .map(|i| {
                let subnet = (i % 4) as u128; // nibble 11-12 iterate
                let random80 = rng.next_u128() & ((1u128 << 80) - 1);
                base | (subnet << 80) | random80
            })
            .collect();
        let profile = nibble_entropy(&targets);
        let segs = segments(&profile, 2.0);
        // The leading fixed+iterated part is structured, the tail random.
        assert!(!segs.is_empty());
        assert!(!segs[0].random, "prefix segment must be structured");
        let last = segs.last().unwrap();
        assert!(last.random, "tail segment must be random");
        assert!(
            last.len() >= 18,
            "the last ~20 nibbles are random, got {}",
            last.len()
        );
        // Segments tile the 32 nibbles exactly.
        assert_eq!(segs.iter().map(Segment::len).sum::<usize>(), 32);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 31);
    }

    #[test]
    fn empty_input_is_all_zero() {
        let profile = nibble_entropy(&[]);
        assert!(profile.iter().all(|&h| h == 0.0));
    }

    #[test]
    fn segment_alternation_invariant() {
        let mut profile = [0.0f64; 32];
        for i in (0..32).step_by(2) {
            profile[i] = 4.0;
        }
        let segs = segments(&profile, 2.0);
        assert_eq!(segs.len(), 32, "strict alternation: 32 one-nibble segments");
        assert!(segs.windows(2).all(|w| w[0].random != w[1].random));
    }
}
