//! # sixscope-analysis
//!
//! The analysis half of the paper (§5 and the appendix): everything needed
//! to turn a telescope capture into the taxonomy labels, tool attributions
//! and aggregate statistics of the evaluation.
//!
//! * [`addrtype`] — RFC 7707 target-address classification (the `addr6`
//!   equivalent used for Table 3),
//! * [`nist`] — the four NIST SP 800-22 randomness tests of Appendix B
//!   (frequency, runs, spectral/FFT, cumulative sums),
//! * [`autocorr`] — autocorrelation period detection for the temporal
//!   taxonomy,
//! * [`mod@dbscan`] — generic density-based clustering,
//! * [`entropy`] — Entropy/IP-style per-nibble entropy profiling,
//! * [`classify`] — the three-axis scanner taxonomy (temporal behavior,
//!   network selection, address selection),
//! * [`fingerprint`] — payload clustering and public-tool identification
//!   (Table 7),
//! * [`heavy`] — heavy-hitter detection (>10% of a telescope's packets),
//! * [`intersect`] — UpSet-style cross-telescope intersections (Fig. 8),
//! * [`stats`] — CDFs, rank curves and correlation helpers.

pub mod addrtype;
pub mod autocorr;
pub mod classify;
pub mod dbscan;
pub mod entropy;
pub mod fingerprint;
pub mod heavy;
pub mod intersect;
pub mod nist;
pub mod special;
pub mod stats;

pub use addrtype::AddressType;
pub use classify::{AddrSelection, NetworkSelection, ScannerProfile, TemporalClass};
pub use dbscan::{dbscan, dbscan_indexed};
pub use fingerprint::{KnownTool, ToolMatch};
pub use heavy::HeavyHitter;
pub use nist::{NistOutcome, NistTest};
