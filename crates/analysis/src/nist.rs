//! The four NIST SP 800-22 randomness tests used in Appendix B.
//!
//! The paper tests each scan session's target addresses — the 64-bit IIDs
//! and the 32 subnet bits after the telescope's fixed prefix separately —
//! with the frequency (monobit), runs, spectral (FFT) and cumulative-sums
//! tests, at significance level α = 0.01, on sessions of ≥ 100 packets.
//!
//! Implementation notes:
//! * p-values follow SP 800-22 rev. 1a exactly for frequency, runs and
//!   cusum;
//! * the spectral test processes the largest power-of-two prefix of the
//!   sequence (the reference code's DFT is also applied to fixed-size
//!   blocks; thresholding constants follow the revised 0.95·n/2 form);
//! * bits are stored packed, 64 per `u64` word, MSB first. Frequency is a
//!   popcount, runs counting is an XOR against the shifted word, cusum
//!   walks the words through a per-byte prefix-extreme table without
//!   allocating, and the spectral test runs a real-input split FFT over a
//!   caller-provided scratch buffer with per-size twiddle tables. The
//!   statistics they feed into the p-value formulas (bit counts, run
//!   counts, peak partial sums, below-threshold bin counts) are integers,
//!   so the packed kernels reproduce the scalar [`reference`] p-values
//!   bit for bit — which the property tests in `tests/prop.rs` pin.

use crate::special::{erfc, normal_cdf};
use serde::{Deserialize, Serialize};

/// The tests the paper applies (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NistTest {
    /// Frequency (monobit).
    Frequency,
    /// Runs.
    Runs,
    /// Discrete Fourier transform (spectral).
    Fft,
    /// Cumulative sums, forward.
    CusumForward,
    /// Cumulative sums, backward.
    CusumBackward,
}

impl NistTest {
    /// The tests in the order of Fig. 17.
    pub const ALL: [NistTest; 5] = [
        NistTest::Frequency,
        NistTest::Runs,
        NistTest::Fft,
        NistTest::CusumForward,
        NistTest::CusumBackward,
    ];

    /// Short label for report rows.
    pub fn name(self) -> &'static str {
        match self {
            NistTest::Frequency => "frequency",
            NistTest::Runs => "runs",
            NistTest::Fft => "fft",
            NistTest::CusumForward => "cusum0",
            NistTest::CusumBackward => "cusum1",
        }
    }
}

/// Outcome of one test on one bit sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NistOutcome {
    /// Which test ran.
    pub test: NistTest,
    /// The computed p-value in `[0, 1]`.
    pub p_value: f64,
}

impl NistOutcome {
    /// Success at the paper's significance level (p ≥ 0.01 means the
    /// sequence is consistent with randomness).
    pub fn passes(&self) -> bool {
        self.p_value >= 0.01
    }
}

/// A packed bit sequence under test: 64 bits per word, MSB first, so
/// sequence bit `i` lives at bit `63 - i % 64` of `words[i / 64]`.
/// Unused low bits of the last word are always zero.
#[derive(Debug, Clone, Default)]
pub struct BitSequence {
    words: Vec<u64>,
    len: usize,
}

impl BitSequence {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `count` least significant bits of `value`, MSB first.
    pub fn push_bits(&mut self, value: u128, count: u32) {
        assert!(count <= 128);
        let mut remaining = count;
        while remaining > 0 {
            let used = (self.len % 64) as u32;
            if used == 0 {
                self.words.push(0);
            }
            let avail = 64 - used;
            let take = remaining.min(avail);
            let chunk = (value >> (remaining - take)) as u64 & mask_low(take);
            let last = self.words.last_mut().expect("word pushed above");
            *last |= chunk << (avail - take);
            self.len += take as usize;
            remaining -= take;
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw packed words (MSB-first; trailing bits of the last word zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The `i`-th bit of the sequence.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len);
        (self.words[i / 64] >> (63 - i % 64)) & 1 == 1
    }

    /// Unpacks to a `bool` vector (for the [`reference`] kernels/tests).
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.bit(i)).collect()
    }

    /// Runs one test, allocating spectral scratch internally.
    pub fn run(&self, test: NistTest) -> NistOutcome {
        self.run_with(test, &mut FftScratch::new())
    }

    /// Runs one test reusing the caller's spectral scratch buffer.
    pub fn run_with(&self, test: NistTest, scratch: &mut FftScratch) -> NistOutcome {
        let p_value = match test {
            NistTest::Frequency => frequency_p(&self.words, self.len),
            NistTest::Runs => runs_p(&self.words, self.len),
            NistTest::Fft => fft_p(&self.words, self.len, scratch),
            NistTest::CusumForward => cusum_p(&self.words, self.len, false),
            NistTest::CusumBackward => cusum_p(&self.words, self.len, true),
        };
        // The rational erfc approximation can overshoot 1 by ~1e-7.
        NistOutcome {
            test,
            p_value: p_value.clamp(0.0, 1.0),
        }
    }

    /// Runs all five tests.
    pub fn run_all(&self) -> Vec<NistOutcome> {
        self.run_all_with(&mut FftScratch::new())
    }

    /// Runs all five tests reusing the caller's spectral scratch buffer.
    pub fn run_all_with(&self, scratch: &mut FftScratch) -> Vec<NistOutcome> {
        NistTest::ALL
            .iter()
            .map(|&t| self.run_with(t, scratch))
            .collect()
    }
}

fn mask_low(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// SP 800-22 §2.1 — frequency (monobit), via popcount.
fn frequency_p(words: &[u64], len: usize) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let ones: i64 = words.iter().map(|w| w.count_ones() as i64).sum();
    // Σ(±1) = ones - zeros.
    let s = 2 * ones - len as i64;
    let s_obs = (s.abs() as f64) / (len as f64).sqrt();
    erfc(s_obs / std::f64::consts::SQRT_2)
}

/// Number of adjacent unequal bit pairs, via XOR against the 1-shifted word.
fn transitions(words: &[u64], len: usize) -> u64 {
    let mut trans = 0u64;
    let mut prev_last: Option<u64> = None;
    for (wi, &w) in words.iter().enumerate() {
        let m = if wi + 1 == words.len() {
            (len - wi * 64) as u32
        } else {
            64
        };
        if m >= 2 {
            // Bit v of w ^ (w << 1) is bit v xor bit v+1 of w; the pairs
            // internal to this word sit in the top m-1 value bits.
            let d = w ^ (w << 1);
            trans += (d & (!0u64 << (65 - m))).count_ones() as u64;
        }
        if let Some(p) = prev_last {
            trans += (p ^ (w >> 63)) & 1;
        }
        prev_last = Some((w >> (64 - m)) & 1);
    }
    trans
}

/// SP 800-22 §2.3 — runs.
fn runs_p(words: &[u64], len: usize) -> f64 {
    if len < 2 {
        return 0.0;
    }
    let ones: u64 = words.iter().map(|w| w.count_ones() as u64).sum();
    let pi = ones as f64 / len as f64;
    // Prerequisite frequency check.
    if (pi - 0.5).abs() >= 2.0 / (len as f64).sqrt() {
        return 0.0;
    }
    let v_obs = 1 + transitions(words, len);
    let n = len as f64;
    let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    erfc(num / den)
}

/// SP 800-22 §2.6 — discrete Fourier transform (spectral).
///
/// The ±1 samples are real, so the largest power-of-two prefix `n2` is
/// packed even/odd into a complex array of length `n2/2`, transformed once,
/// and the first `n2/2` bins of the full DFT reconstructed — half the
/// butterflies of the complex transform the [`reference`] kernel runs. The
/// p-value depends only on the *count* of bins below the (irrational)
/// threshold, so the ~1e-12 relative drift this reordering introduces in
/// the magnitudes never reaches the p-value bits.
fn fft_p(words: &[u64], len: usize, scratch: &mut FftScratch) -> f64 {
    if len < 16 {
        return 0.0;
    }
    let n2 = 1usize << (usize::BITS - 1 - len.leading_zeros());
    let m = n2 / 2;
    scratch.load_even_odd(words, n2);
    scratch.re2.resize(m, 0.0);
    scratch.im2.resize(m, 0.0);
    let tables = scratch
        .tables
        .entry(m)
        .or_insert_with(|| SizeTables::new(m));
    let in_first = stockham_fft(
        &mut scratch.re,
        &mut scratch.im,
        &mut scratch.re2,
        &mut scratch.im2,
        tables,
    );
    let n = n2 as f64;
    let threshold = ((1.0 / 0.05f64).ln() * n).sqrt();
    let (re, im) = if in_first {
        (&scratch.re, &scratch.im)
    } else {
        (&scratch.re2, &scratch.im2)
    };
    let n1 = if wide_lanes_available() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `wide_lanes_available` checked for AVX support.
        unsafe {
            spectral_count_avx(re, im, &tables.recon_re, &tables.recon_im, threshold)
        }
        #[cfg(not(target_arch = "x86_64"))]
        unreachable!()
    } else {
        spectral_count(re, im, &tables.recon_re, &tables.recon_im, threshold)
    };
    let n1 = n1 as f64;
    let n0 = 0.95 * m as f64;
    let d = (n1 - n0) / (n * 0.95 * 0.05 / 4.0).sqrt();
    erfc(d.abs() / std::f64::consts::SQRT_2)
}

/// Reusable spectral-test scratch: ping-pong data buffers plus per-size
/// twiddle tables (keyed by half-transform length, each built once).
#[derive(Debug, Default)]
pub struct FftScratch {
    re: Vec<f64>,
    im: Vec<f64>,
    re2: Vec<f64>,
    im2: Vec<f64>,
    tables: std::collections::BTreeMap<usize, SizeTables>,
}

impl FftScratch {
    /// Empty scratch; buffers and tables grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Splits the first `n2` bits into ±1 samples, even positions into
    /// `re`, odd into `im` (`n2` is a power of two ≥ 16, so pairs never
    /// straddle a word).
    fn load_even_odd(&mut self, words: &[u64], n2: usize) {
        let m = n2 / 2;
        self.re.clear();
        self.im.clear();
        self.re.reserve(m);
        self.im.reserve(m);
        for &w in &words[..n2 / 64] {
            for j in 0..32 {
                self.re.push(pm1(w >> (63 - 2 * j)));
                self.im.push(pm1(w >> (62 - 2 * j)));
            }
        }
        let rem = n2 % 64;
        if rem > 0 {
            let w = words[n2 / 64];
            for j in 0..rem / 2 {
                self.re.push(pm1(w >> (63 - 2 * j)));
                self.im.push(pm1(w >> (62 - 2 * j)));
            }
        }
    }
}

fn pm1(bit: u64) -> f64 {
    if bit & 1 == 1 {
        1.0
    } else {
        -1.0
    }
}

/// Twiddle tables for one half-transform size `m`: per-stage factors
/// packed contiguously (`m - 1` entries across all stages) plus the
/// `e^{-2πik/2m}` spectrum-reconstruction factors.
#[derive(Debug)]
struct SizeTables {
    stage_re: Vec<f64>,
    stage_im: Vec<f64>,
    recon_re: Vec<f64>,
    recon_im: Vec<f64>,
}

impl SizeTables {
    fn new(m: usize) -> Self {
        debug_assert!(m.is_power_of_two());
        let mut t = SizeTables {
            stage_re: Vec::with_capacity(m.saturating_sub(1)),
            stage_im: Vec::with_capacity(m.saturating_sub(1)),
            recon_re: vec![0.0; m],
            recon_im: vec![0.0; m],
        };
        fill_twiddles(
            &mut t.recon_re,
            &mut t.recon_im,
            -std::f64::consts::TAU / (2 * m) as f64,
        );
        // Every stage factor is a reconstruction factor: e^{-2πij/len} =
        // recon[j · 2m/len]. Derive the largest stage from recon and each
        // smaller stage from the next larger one (stride-2 each time), so
        // every copy streams instead of striding across the whole table.
        if m >= 2 {
            t.stage_re.resize(m - 1, 0.0);
            t.stage_im.resize(m - 1, 0.0);
            for j in 0..m / 2 {
                t.stage_re[m / 2 - 1 + j] = t.recon_re[2 * j];
                t.stage_im[m / 2 - 1 + j] = t.recon_im[2 * j];
            }
            let mut l = m;
            while l >= 4 {
                // The table for length l/2 (offset l/4 - 1) is every other
                // entry of the table for length l (offset l/2 - 1).
                let (lo_re, hi_re) = t.stage_re.split_at_mut(l / 2 - 1);
                let (lo_im, hi_im) = t.stage_im.split_at_mut(l / 2 - 1);
                for j in 0..l / 4 {
                    lo_re[l / 4 - 1 + j] = hi_re[2 * j];
                    lo_im[l / 4 - 1 + j] = hi_im[2 * j];
                }
                l /= 2;
            }
        }
        t
    }
}

/// Fills `re[k] + i·im[k] = e^{i·ang·k}` via the same complex-multiply
/// recurrence the in-loop twiddle update used, resynchronized against
/// `sin_cos` every 32 entries to keep the accumulated error ~1 ulp.
fn fill_twiddles(re: &mut [f64], im: &mut [f64], ang: f64) {
    let (w_im, w_re) = ang.sin_cos();
    let mut k = 0;
    while k < re.len() {
        let (s, c) = (ang * k as f64).sin_cos();
        let (mut cur_re, mut cur_im) = (c, s);
        let end = (k + 32).min(re.len());
        for j in k..end {
            re[j] = cur_re;
            im[j] = cur_im;
            let next_re = cur_re * w_re - cur_im * w_im;
            cur_im = cur_re * w_im + cur_im * w_re;
            cur_re = next_re;
        }
        k = end;
    }
}

/// Iterative radix-2 FFT (length must be a power of two).
///
/// Builds its twiddle tables and ping-pong buffer on every call; hot paths
/// that transform many sequences should go through
/// [`BitSequence::run_with`]/[`FftScratch`], which cache both.
pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
    let tables = SizeTables::new(re.len());
    let mut re2 = vec![0.0; re.len()];
    let mut im2 = vec![0.0; im.len()];
    if !stockham_fft(re, im, &mut re2, &mut im2, &tables) {
        re.copy_from_slice(&re2);
        im.copy_from_slice(&im2);
    }
}

/// Stockham autosort radix-2 FFT (decimation in frequency): natural-order
/// input and output, no bit-reversal pass, contiguous reads/writes in the
/// inner loop with a loop-invariant twiddle, so it vectorizes. Ping-pongs
/// between the `x` and `y` buffers each stage; returns true when the
/// result ends in `x`.
///
/// Stage with transform length `l` (halving from `n` to 2) and stride
/// `s = n/l` computes, for `p < l/2`, `q < s`:
/// `y[q + s·2p] = a + b` and `y[q + s·(2p+1)] = (a − b)·e^{-2πip/l}` with
/// `a = x[q + s·p]`, `b = x[q + s·(p + l/2)]`.
fn stockham_fft<'a>(
    mut x_re: &'a mut [f64],
    mut x_im: &'a mut [f64],
    mut y_re: &'a mut [f64],
    mut y_im: &'a mut [f64],
    tables: &SizeTables,
) -> bool {
    let n = x_re.len();
    debug_assert!(n.is_power_of_two());
    let wide = wide_lanes_available();
    let mut in_x = true;
    let mut l = n;
    let mut s = 1usize;
    if n.trailing_zeros() % 2 == 1 && l >= 2 {
        // Odd power of two: one radix-2 stage, then pure radix-4.
        let m = l / 2;
        // The packed stage tables hold e^{-2πip/len} for len = 2, 4, ...,
        // so the table for length `len` starts at len/2 - 1.
        let toff = m - 1;
        let (tr, ti) = (
            &tables.stage_re[toff..toff + m],
            &tables.stage_im[toff..toff + m],
        );
        if wide {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `wide_lanes_available` checked for AVX support.
            unsafe {
                stockham_stage2_avx(x_re, x_im, y_re, y_im, tr, ti, s)
            };
        } else {
            stockham_stage2(x_re, x_im, y_re, y_im, tr, ti, s);
        }
        std::mem::swap(&mut x_re, &mut y_re);
        std::mem::swap(&mut x_im, &mut y_im);
        in_x = !in_x;
        l /= 2;
        s *= 2;
    }
    while l >= 4 {
        let m = l / 4;
        let t1off = l / 2 - 1; // e^{-2πip/l}
        let t2off = l / 4 - 1; // e^{-2πip/(l/2)} = e^{-2πi·2p/l}
        let (t1r, t1i) = (
            &tables.stage_re[t1off..t1off + m],
            &tables.stage_im[t1off..t1off + m],
        );
        let (t2r, t2i) = (
            &tables.stage_re[t2off..t2off + m],
            &tables.stage_im[t2off..t2off + m],
        );
        if wide {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `wide_lanes_available` checked for AVX support.
            unsafe {
                stockham_stage4_avx(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i, s)
            };
        } else {
            stockham_stage4(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i, s);
        }
        std::mem::swap(&mut x_re, &mut y_re);
        std::mem::swap(&mut x_im, &mut y_im);
        in_x = !in_x;
        l /= 4;
        s *= 4;
    }
    in_x
}

/// Reconstructs the first `n2/2` bins of the full real-input DFT from the
/// half-size transform `Z` and counts magnitudes below `threshold`:
/// `X[k] = E[k] + w^k · O[k]` with `E[k] = (Z[k] + conj(Z[m-k]))/2`,
/// `O[k] = (Z[k] - conj(Z[m-k]))/(2i)` and `w = e^{-2πi/n2}`.
#[inline(always)]
fn spectral_count(re: &[f64], im: &[f64], recon_re: &[f64], recon_im: &[f64], t: f64) -> usize {
    let m = re.len();
    let mut n1 = 0usize;
    for k in 0..m {
        let mk = (m - k) & (m - 1);
        let (zr, zi) = (re[k], im[k]);
        let (yr, yi) = (re[mk], -im[mk]);
        let (er, ei) = ((zr + yr) / 2.0, (zi + yi) / 2.0);
        let (or, oi) = ((zi - yi) / 2.0, -(zr - yr) / 2.0);
        let (c, s) = (recon_re[k], recon_im[k]);
        let xr = er + c * or - s * oi;
        let xi = ei + c * oi + s * or;
        if (xr * xr + xi * xi).sqrt() < t {
            n1 += 1;
        }
    }
    n1
}

/// [`spectral_count`] compiled with 256-bit lanes; same operations, same
/// results (see [`wide_lanes_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn spectral_count_avx(
    re: &[f64],
    im: &[f64],
    recon_re: &[f64],
    recon_im: &[f64],
    t: f64,
) -> usize {
    spectral_count(re, im, recon_re, recon_im, t)
}

/// Whether 256-bit float lanes are available at runtime. AVX widens the
/// auto-vectorized loops without changing any individual IEEE operation
/// (no FMA contraction is enabled), so results are bit-identical to the
/// baseline path and the choice cannot perturb the determinism contract.
fn wide_lanes_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVX: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
        *AVX.get_or_init(|| std::arch::is_x86_feature_detected!("avx"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// One radix-2 Stockham stage: `m` butterfly groups of contiguous width
/// `s`.
#[inline(always)]
fn stockham_stage2(
    x_re: &[f64],
    x_im: &[f64],
    y_re: &mut [f64],
    y_im: &mut [f64],
    tr: &[f64],
    ti: &[f64],
    s: usize,
) {
    let m = tr.len();
    if s == 1 {
        // First-stage special case: one butterfly per group, so skip the
        // per-group slice setup (same operations in the same order, so the
        // results are bit-identical to the general path).
        for p in 0..m {
            let (wr, wi) = (tr[p], ti[p]);
            let (ar, ai) = (x_re[p], x_im[p]);
            let (br, bi) = (x_re[p + m], x_im[p + m]);
            y_re[2 * p] = ar + br;
            y_im[2 * p] = ai + bi;
            let (dr, di) = (ar - br, ai - bi);
            y_re[2 * p + 1] = dr * wr - di * wi;
            y_im[2 * p + 1] = dr * wi + di * wr;
        }
        return;
    }
    for p in 0..m {
        let (wr, wi) = (tr[p], ti[p]);
        let xa_re = &x_re[s * p..s * p + s];
        let xa_im = &x_im[s * p..s * p + s];
        let xb_re = &x_re[s * (p + m)..s * (p + m) + s];
        let xb_im = &x_im[s * (p + m)..s * (p + m) + s];
        let (ya_re, yb_re) = y_re[s * 2 * p..s * 2 * p + 2 * s].split_at_mut(s);
        let (ya_im, yb_im) = y_im[s * 2 * p..s * 2 * p + 2 * s].split_at_mut(s);
        for q in 0..s {
            let (ar, ai) = (xa_re[q], xa_im[q]);
            let (br, bi) = (xb_re[q], xb_im[q]);
            ya_re[q] = ar + br;
            ya_im[q] = ai + bi;
            let (dr, di) = (ar - br, ai - bi);
            yb_re[q] = dr * wr - di * wi;
            yb_im[q] = dr * wi + di * wr;
        }
    }
}

/// [`stockham_stage2`] compiled with 256-bit lanes; same operations, same
/// results (see [`wide_lanes_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn stockham_stage2_avx(
    x_re: &[f64],
    x_im: &[f64],
    y_re: &mut [f64],
    y_im: &mut [f64],
    tr: &[f64],
    ti: &[f64],
    s: usize,
) {
    stockham_stage2(x_re, x_im, y_re, y_im, tr, ti, s);
}

/// One radix-4 Stockham stage (`m = l/4` groups of width `s`): for
/// `a, b, c, d = x[s(p + km)]`, `k = 0..4`,
/// `y[s·4p]     = (a+c) + (b+d)`,
/// `y[s(4p+1)]  = w¹ₚ·((a−c) − i(b−d))`,
/// `y[s(4p+2)]  = w²ₚ·((a+c) − (b+d))`,
/// `y[s(4p+3)]  = w³ₚ·((a−c) + i(b−d))`, with `wₚ = e^{-2πip/l}`.
/// `w¹` and `w²` come straight from the packed stage tables (`w²ₚ` is the
/// length-`l/2` table entry); `w³ = w¹·w²` is formed per group.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn stockham_stage4(
    x_re: &[f64],
    x_im: &[f64],
    y_re: &mut [f64],
    y_im: &mut [f64],
    t1r: &[f64],
    t1i: &[f64],
    t2r: &[f64],
    t2i: &[f64],
    s: usize,
) {
    let m = t1r.len();
    if s == 1 {
        // First-stage special case: one butterfly per group, so skip the
        // per-group slice setup (same operations in the same order, so the
        // results are bit-identical to the general path).
        for p in 0..m {
            let (w1r, w1i) = (t1r[p], t1i[p]);
            let (w2r, w2i) = (t2r[p], t2i[p]);
            let (w3r, w3i) = (w1r * w2r - w1i * w2i, w1r * w2i + w1i * w2r);
            let (ar, ai) = (x_re[p], x_im[p]);
            let (br, bi) = (x_re[p + m], x_im[p + m]);
            let (cr, ci) = (x_re[p + 2 * m], x_im[p + 2 * m]);
            let (dr, di) = (x_re[p + 3 * m], x_im[p + 3 * m]);
            let (apcr, apci) = (ar + cr, ai + ci);
            let (amcr, amci) = (ar - cr, ai - ci);
            let (bpdr, bpdi) = (br + dr, bi + di);
            let (bmdr, bmdi) = (br - dr, bi - di);
            y_re[4 * p] = apcr + bpdr;
            y_im[4 * p] = apci + bpdi;
            let (t1re, t1im) = (amcr + bmdi, amci - bmdr);
            y_re[4 * p + 1] = t1re * w1r - t1im * w1i;
            y_im[4 * p + 1] = t1re * w1i + t1im * w1r;
            let (t2re, t2im) = (apcr - bpdr, apci - bpdi);
            y_re[4 * p + 2] = t2re * w2r - t2im * w2i;
            y_im[4 * p + 2] = t2re * w2i + t2im * w2r;
            let (t3re, t3im) = (amcr - bmdi, amci + bmdr);
            y_re[4 * p + 3] = t3re * w3r - t3im * w3i;
            y_im[4 * p + 3] = t3re * w3i + t3im * w3r;
        }
        return;
    }
    // Narrow groups (the second/third stages) spend more time on slice
    // bookkeeping than arithmetic; a compile-time width lets the q-loop
    // unroll completely. Same operations in the same order either way.
    match s {
        2 => return stockham_stage4_fixed::<2>(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i),
        4 => return stockham_stage4_fixed::<4>(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i),
        8 => return stockham_stage4_fixed::<8>(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i),
        _ => {}
    }
    for p in 0..m {
        let (w1r, w1i) = (t1r[p], t1i[p]);
        let (w2r, w2i) = (t2r[p], t2i[p]);
        let (w3r, w3i) = (w1r * w2r - w1i * w2i, w1r * w2i + w1i * w2r);
        let xa_re = &x_re[s * p..s * p + s];
        let xa_im = &x_im[s * p..s * p + s];
        let xb_re = &x_re[s * (p + m)..s * (p + m) + s];
        let xb_im = &x_im[s * (p + m)..s * (p + m) + s];
        let xc_re = &x_re[s * (p + 2 * m)..s * (p + 2 * m) + s];
        let xc_im = &x_im[s * (p + 2 * m)..s * (p + 2 * m) + s];
        let xd_re = &x_re[s * (p + 3 * m)..s * (p + 3 * m) + s];
        let xd_im = &x_im[s * (p + 3 * m)..s * (p + 3 * m) + s];
        let (y01_re, y23_re) = y_re[s * 4 * p..s * 4 * p + 4 * s].split_at_mut(2 * s);
        let (y0_re, y1_re) = y01_re.split_at_mut(s);
        let (y2_re, y3_re) = y23_re.split_at_mut(s);
        let (y01_im, y23_im) = y_im[s * 4 * p..s * 4 * p + 4 * s].split_at_mut(2 * s);
        let (y0_im, y1_im) = y01_im.split_at_mut(s);
        let (y2_im, y3_im) = y23_im.split_at_mut(s);
        for q in 0..s {
            let (ar, ai) = (xa_re[q], xa_im[q]);
            let (br, bi) = (xb_re[q], xb_im[q]);
            let (cr, ci) = (xc_re[q], xc_im[q]);
            let (dr, di) = (xd_re[q], xd_im[q]);
            let (apcr, apci) = (ar + cr, ai + ci);
            let (amcr, amci) = (ar - cr, ai - ci);
            let (bpdr, bpdi) = (br + dr, bi + di);
            let (bmdr, bmdi) = (br - dr, bi - di);
            y0_re[q] = apcr + bpdr;
            y0_im[q] = apci + bpdi;
            let (t1re, t1im) = (amcr + bmdi, amci - bmdr);
            y1_re[q] = t1re * w1r - t1im * w1i;
            y1_im[q] = t1re * w1i + t1im * w1r;
            let (t2re, t2im) = (apcr - bpdr, apci - bpdi);
            y2_re[q] = t2re * w2r - t2im * w2i;
            y2_im[q] = t2re * w2i + t2im * w2r;
            let (t3re, t3im) = (amcr - bmdi, amci + bmdr);
            y3_re[q] = t3re * w3r - t3im * w3i;
            y3_im[q] = t3re * w3i + t3im * w3r;
        }
    }
}

/// [`stockham_stage4`] with the group width `S` fixed at compile time so
/// the inner loop unrolls; identical operations and order, so identical
/// results.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn stockham_stage4_fixed<const S: usize>(
    x_re: &[f64],
    x_im: &[f64],
    y_re: &mut [f64],
    y_im: &mut [f64],
    t1r: &[f64],
    t1i: &[f64],
    t2r: &[f64],
    t2i: &[f64],
) {
    let m = t1r.len();
    let at = |v: &[f64], off: usize| -> [f64; S] { v[off..off + S].try_into().unwrap() };
    for p in 0..m {
        let (w1r, w1i) = (t1r[p], t1i[p]);
        let (w2r, w2i) = (t2r[p], t2i[p]);
        let (w3r, w3i) = (w1r * w2r - w1i * w2i, w1r * w2i + w1i * w2r);
        let xa_re = at(x_re, S * p);
        let xa_im = at(x_im, S * p);
        let xb_re = at(x_re, S * (p + m));
        let xb_im = at(x_im, S * (p + m));
        let xc_re = at(x_re, S * (p + 2 * m));
        let xc_im = at(x_im, S * (p + 2 * m));
        let xd_re = at(x_re, S * (p + 3 * m));
        let xd_im = at(x_im, S * (p + 3 * m));
        let (y01_re, y23_re) = y_re[S * 4 * p..S * 4 * p + 4 * S].split_at_mut(2 * S);
        let (y0_re, y1_re) = y01_re.split_at_mut(S);
        let (y2_re, y3_re) = y23_re.split_at_mut(S);
        let (y01_im, y23_im) = y_im[S * 4 * p..S * 4 * p + 4 * S].split_at_mut(2 * S);
        let (y0_im, y1_im) = y01_im.split_at_mut(S);
        let (y2_im, y3_im) = y23_im.split_at_mut(S);
        for q in 0..S {
            let (ar, ai) = (xa_re[q], xa_im[q]);
            let (br, bi) = (xb_re[q], xb_im[q]);
            let (cr, ci) = (xc_re[q], xc_im[q]);
            let (dr, di) = (xd_re[q], xd_im[q]);
            let (apcr, apci) = (ar + cr, ai + ci);
            let (amcr, amci) = (ar - cr, ai - ci);
            let (bpdr, bpdi) = (br + dr, bi + di);
            let (bmdr, bmdi) = (br - dr, bi - di);
            y0_re[q] = apcr + bpdr;
            y0_im[q] = apci + bpdi;
            let (t1re, t1im) = (amcr + bmdi, amci - bmdr);
            y1_re[q] = t1re * w1r - t1im * w1i;
            y1_im[q] = t1re * w1i + t1im * w1r;
            let (t2re, t2im) = (apcr - bpdr, apci - bpdi);
            y2_re[q] = t2re * w2r - t2im * w2i;
            y2_im[q] = t2re * w2i + t2im * w2r;
            let (t3re, t3im) = (amcr - bmdi, amci + bmdr);
            y3_re[q] = t3re * w3r - t3im * w3i;
            y3_im[q] = t3re * w3i + t3im * w3r;
        }
    }
}

/// [`stockham_stage4`] compiled with 256-bit lanes; same operations, same
/// results (see [`wide_lanes_available`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
#[allow(clippy::too_many_arguments)]
unsafe fn stockham_stage4_avx(
    x_re: &[f64],
    x_im: &[f64],
    y_re: &mut [f64],
    y_im: &mut [f64],
    t1r: &[f64],
    t1i: &[f64],
    t2r: &[f64],
    t2i: &[f64],
    s: usize,
) {
    stockham_stage4(x_re, x_im, y_re, y_im, t1r, t1i, t2r, t2i, s);
}

/// Per-byte cusum steps: net ±1 total plus the prefix-sum extremes,
/// MSB-first within the byte.
#[derive(Clone, Copy)]
struct ByteCusum {
    total: i8,
    min: i8,
    max: i8,
}

static CUSUM_LUT: [ByteCusum; 256] = build_cusum_lut();

const fn build_cusum_lut() -> [ByteCusum; 256] {
    let mut t = [ByteCusum {
        total: 0,
        min: 0,
        max: 0,
    }; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut sum = 0i8;
        let mut min = 0i8;
        let mut max = 0i8;
        let mut i = 0;
        while i < 8 {
            sum += if (b >> (7 - i)) & 1 == 1 { 1 } else { -1 };
            if sum < min {
                min = sum;
            }
            if sum > max {
                max = sum;
            }
            i += 1;
        }
        t[b] = ByteCusum {
            total: sum,
            min,
            max,
        };
        b += 1;
    }
    t
}

/// SP 800-22 §2.13 — cumulative sums, allocation-free.
///
/// The partial sums of ±1 steps are small integers, so the peak |sum| is
/// tracked in `i64` by walking the packed words a byte at a time through
/// [`CUSUM_LUT`] (in reverse, via `reverse_bits`, for the backward
/// variant); `|sum + p|` over a byte's prefixes peaks at one of the two
/// prefix extremes.
fn cusum_step_byte(b: u8, sum: &mut i64, z: &mut i64) {
    let e = CUSUM_LUT[b as usize];
    *z = (*z)
        .max((*sum + e.max as i64).abs())
        .max((*sum + e.min as i64).abs());
    *sum += e.total as i64;
}

fn cusum_step_bit(bit: u64, sum: &mut i64, z: &mut i64) {
    *sum += if bit & 1 == 1 { 1 } else { -1 };
    *z = (*z).max(sum.abs());
}

fn cusum_p(words: &[u64], len: usize, backward: bool) -> f64 {
    if len == 0 {
        return 0.0;
    }
    let mut sum = 0i64;
    let mut z = 0i64;
    let last_m = len - (words.len() - 1) * 64;
    if backward {
        // The last word's valid bits, last bit first.
        let w = words[words.len() - 1];
        for i in (0..last_m).rev() {
            cusum_step_bit(w >> (63 - i), &mut sum, &mut z);
        }
        for &w in words[..words.len() - 1].iter().rev() {
            let r = w.reverse_bits();
            for j in 0..8 {
                cusum_step_byte((r >> (56 - 8 * j)) as u8, &mut sum, &mut z);
            }
        }
    } else {
        for &w in &words[..words.len() - 1] {
            for j in 0..8 {
                cusum_step_byte((w >> (56 - 8 * j)) as u8, &mut sum, &mut z);
            }
        }
        let w = words[words.len() - 1];
        let full_bytes = last_m / 8;
        for j in 0..full_bytes {
            cusum_step_byte((w >> (56 - 8 * j)) as u8, &mut sum, &mut z);
        }
        for i in full_bytes * 8..last_m {
            cusum_step_bit(w >> (63 - i), &mut sum, &mut z);
        }
    }
    if z == 0 {
        return 0.0;
    }
    let n = len as f64;
    let z = z as f64;
    let sqrt_n = n.sqrt();
    let mut p = 1.0;
    let k_lo = (((-n / z) + 1.0) / 4.0).floor() as i64;
    let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo = (((-n / z) - 3.0) / 4.0).floor() as i64;
    let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    p.clamp(0.0, 1.0)
}

/// The scalar `Vec<bool>` kernels the packed implementations replaced,
/// retained verbatim as the ground truth for property tests and the
/// `kernels` criterion group.
pub mod reference {
    use crate::special::{erfc, normal_cdf};

    /// SP 800-22 §2.1 — frequency (monobit).
    pub fn frequency_p(bits: &[bool]) -> f64 {
        let n = bits.len();
        if n == 0 {
            return 0.0;
        }
        let s: i64 = bits.iter().map(|&b| if b { 1i64 } else { -1 }).sum();
        let s_obs = (s.abs() as f64) / (n as f64).sqrt();
        erfc(s_obs / std::f64::consts::SQRT_2)
    }

    /// SP 800-22 §2.3 — runs.
    pub fn runs_p(bits: &[bool]) -> f64 {
        let n = bits.len();
        if n < 2 {
            return 0.0;
        }
        let pi = bits.iter().filter(|&&b| b).count() as f64 / n as f64;
        // Prerequisite frequency check.
        if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
            return 0.0;
        }
        let v_obs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
        let n = n as f64;
        let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
        let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
        erfc(num / den)
    }

    /// SP 800-22 §2.6 — discrete Fourier transform (spectral).
    pub fn fft_p(bits: &[bool]) -> f64 {
        // Use the largest power-of-two prefix (see module docs).
        let n = bits.len();
        if n < 16 {
            return 0.0;
        }
        let n2 = 1usize << (usize::BITS - 1 - n.leading_zeros());
        let mut re: Vec<f64> = bits[..n2]
            .iter()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect();
        let mut im = vec![0.0f64; n2];
        fft_in_place(&mut re, &mut im);
        let n = n2 as f64;
        let threshold = ((1.0 / 0.05f64).ln() * n).sqrt();
        let half = n2 / 2;
        let n1 = (0..half)
            .filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold)
            .count() as f64;
        let n0 = 0.95 * half as f64;
        let d = (n1 - n0) / (n * 0.95 * 0.05 / 4.0).sqrt();
        erfc(d.abs() / std::f64::consts::SQRT_2)
    }

    /// Iterative radix-2 FFT with the per-block twiddle recurrence
    /// (length must be a power of two).
    pub fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
        let n = re.len();
        debug_assert!(n.is_power_of_two());
        // Bit-reversal permutation.
        let mut j = 0usize;
        for i in 1..n {
            let mut bit = n >> 1;
            while j & bit != 0 {
                j ^= bit;
                bit >>= 1;
            }
            j |= bit;
            if i < j {
                re.swap(i, j);
                im.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= n {
            let ang = -std::f64::consts::TAU / len as f64;
            let (w_re, w_im) = (ang.cos(), ang.sin());
            let mut i = 0;
            while i < n {
                let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
                for k in 0..len / 2 {
                    let (u_re, u_im) = (re[i + k], im[i + k]);
                    let (v_re, v_im) = (
                        re[i + k + len / 2] * cur_re - im[i + k + len / 2] * cur_im,
                        re[i + k + len / 2] * cur_im + im[i + k + len / 2] * cur_re,
                    );
                    re[i + k] = u_re + v_re;
                    im[i + k] = u_im + v_im;
                    re[i + k + len / 2] = u_re - v_re;
                    im[i + k + len / 2] = u_im - v_im;
                    let next_re = cur_re * w_re - cur_im * w_im;
                    cur_im = cur_re * w_im + cur_im * w_re;
                    cur_re = next_re;
                }
                i += len;
            }
            len <<= 1;
        }
    }

    /// SP 800-22 §2.13 — cumulative sums.
    pub fn cusum_p(bits: &[bool], backward: bool) -> f64 {
        let n = bits.len();
        if n == 0 {
            return 0.0;
        }
        let xs: Vec<f64> = if backward {
            bits.iter()
                .rev()
                .map(|&b| if b { 1.0 } else { -1.0 })
                .collect()
        } else {
            bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
        };
        let mut sum = 0.0f64;
        let mut z: f64 = 0.0;
        for x in xs {
            sum += x;
            z = z.max(sum.abs());
        }
        if z == 0.0 {
            return 0.0;
        }
        let n = n as f64;
        let sqrt_n = n.sqrt();
        let mut p = 1.0;
        let k_lo = (((-n / z) + 1.0) / 4.0).floor() as i64;
        let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
        for k in k_lo..=k_hi {
            let k = k as f64;
            p -=
                normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
        }
        let k_lo = (((-n / z) - 3.0) / 4.0).floor() as i64;
        let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
        for k in k_lo..=k_hi {
            let k = k as f64;
            p +=
                normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
        }
        p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_types::Xoshiro256pp;

    fn from_bits(s: &str) -> BitSequence {
        let mut seq = BitSequence::new();
        for c in s.chars() {
            seq.push_bits(if c == '1' { 1 } else { 0 }, 1);
        }
        seq
    }

    #[test]
    fn frequency_sp80022_example() {
        // SP 800-22 §2.1.8: ε = 1100100100001111110110101010001000,
        // n = 100-digit example is longer; use the documented 10-bit case:
        // ε = 1011010101, S = 2, p-value = 0.527089.
        let seq = from_bits("1011010101");
        let out = seq.run(NistTest::Frequency);
        assert!((out.p_value - 0.527089).abs() < 1e-4, "p = {}", out.p_value);
        assert!(out.passes());
    }

    #[test]
    fn runs_sp80022_example() {
        // SP 800-22 §2.3.8: ε = 1001101011, n = 10, p-value = 0.147232.
        let seq = from_bits("1001101011");
        let out = seq.run(NistTest::Runs);
        assert!((out.p_value - 0.147232).abs() < 1e-4, "p = {}", out.p_value);
    }

    #[test]
    fn cusum_sp80022_example() {
        // SP 800-22 §2.13.8: ε = 1011010111, n = 10, z = 4 (forward),
        // p-value = 0.4116588.
        let seq = from_bits("1011010111");
        let out = seq.run(NistTest::CusumForward);
        assert!(
            (out.p_value - 0.4116588).abs() < 1e-3,
            "p = {}",
            out.p_value
        );
    }

    #[test]
    fn constant_sequence_fails_everything() {
        let mut seq = BitSequence::new();
        seq.push_bits(0, 128);
        seq.push_bits(0, 128);
        for out in seq.run_all() {
            assert!(!out.passes(), "{:?} unexpectedly passed", out.test);
        }
    }

    #[test]
    fn alternating_sequence_fails_runs_and_fft() {
        let mut seq = BitSequence::new();
        for _ in 0..256 {
            seq.push_bits(0b10, 2);
        }
        // Perfectly balanced, so frequency passes...
        assert!(seq.run(NistTest::Frequency).passes());
        // ...but the oscillation is wildly non-random.
        assert!(!seq.run(NistTest::Runs).passes());
        assert!(!seq.run(NistTest::Fft).passes());
    }

    #[test]
    fn prng_output_passes_all_tests() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut seq = BitSequence::new();
        for _ in 0..64 {
            seq.push_bits(rng.next_u64() as u128, 64);
        }
        for out in seq.run_all() {
            assert!(
                out.passes(),
                "{} failed on PRNG output with p = {}",
                out.test.name(),
                out.p_value
            );
        }
    }

    #[test]
    fn structured_iid_bits_fail_frequency() {
        // Low-byte scanning: targets ::1 .. ::200 — IIDs almost all zero.
        let mut seq = BitSequence::new();
        for i in 1u128..=200 {
            seq.push_bits(i, 64);
        }
        assert!(!seq.run(NistTest::Frequency).passes());
        assert!(!seq.run(NistTest::CusumForward).passes());
    }

    #[test]
    fn random_iid_bits_pass_frequency() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seq = BitSequence::new();
        for _ in 0..200 {
            seq.push_bits(rng.next_u64() as u128, 64);
        }
        assert!(seq.run(NistTest::Frequency).passes());
    }

    #[test]
    fn empty_sequence_fails_gracefully() {
        let seq = BitSequence::new();
        for out in seq.run_all() {
            assert!(!out.passes());
            assert!(out.p_value.is_finite());
        }
    }

    #[test]
    fn push_bits_is_msb_first() {
        let mut seq = BitSequence::new();
        seq.push_bits(0b101, 3);
        assert_eq!(seq.to_bools(), vec![true, false, true]);
        assert_eq!(seq.len(), 3);
        assert!(seq.bit(0) && !seq.bit(1) && seq.bit(2));
        assert_eq!(seq.words(), &[0b101u64 << 61]);
    }

    #[test]
    fn push_bits_straddles_words() {
        let mut seq = BitSequence::new();
        seq.push_bits(0, 60);
        seq.push_bits(0xff, 8); // 4 bits in word 0, 4 in word 1
        assert_eq!(seq.len(), 68);
        assert_eq!(seq.words(), &[0xf, 0xf << 60]);
        let mut bools = vec![false; 60];
        bools.extend([true; 8]);
        assert_eq!(seq.to_bools(), bools);
    }

    #[test]
    fn packed_matches_reference_on_awkward_lengths() {
        // Word-boundary straddles, partial bytes, and a non-power-of-two
        // tail all at once; the FFT prefix logic sees several sizes.
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for len in [1usize, 7, 8, 9, 63, 64, 65, 100, 127, 128, 200, 515] {
            let mut seq = BitSequence::new();
            for _ in 0..len {
                seq.push_bits(rng.next_u64() as u128 & 1, 1);
            }
            assert_eq!(seq.len(), len);
            let bools = seq.to_bools();
            assert_eq!(
                seq.run(NistTest::Frequency).p_value,
                reference::frequency_p(&bools).clamp(0.0, 1.0),
                "frequency, len {len}"
            );
            assert_eq!(
                seq.run(NistTest::Runs).p_value,
                reference::runs_p(&bools).clamp(0.0, 1.0),
                "runs, len {len}"
            );
            assert_eq!(
                seq.run(NistTest::Fft).p_value,
                reference::fft_p(&bools).clamp(0.0, 1.0),
                "fft, len {len}"
            );
            for backward in [false, true] {
                let test = if backward {
                    NistTest::CusumBackward
                } else {
                    NistTest::CusumForward
                };
                assert_eq!(
                    seq.run(test).p_value,
                    reference::cusum_p(&bools, backward).clamp(0.0, 1.0),
                    "cusum backward={backward}, len {len}"
                );
            }
        }
    }

    #[test]
    fn fft_identity_check() {
        // DFT of an impulse is flat with magnitude 1.
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im);
        for k in 0..8 {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            assert!((mag - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut re = vec![1.0; 16];
        let mut im = vec![0.0; 16];
        fft_in_place(&mut re, &mut im);
        assert!((re[0] - 16.0).abs() < 1e-9);
        for k in 1..16 {
            assert!(re[k].abs() < 1e-9 && im[k].abs() < 1e-9);
        }
    }

    #[test]
    fn fft_matches_reference_fft() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut re: Vec<f64> = (0..256).map(|_| pm1(rng.next_u64())).collect();
        let mut im: Vec<f64> = (0..256).map(|_| pm1(rng.next_u64())).collect();
        let mut re2 = re.clone();
        let mut im2 = im.clone();
        fft_in_place(&mut re, &mut im);
        reference::fft_in_place(&mut re2, &mut im2);
        for k in 0..256 {
            assert!((re[k] - re2[k]).abs() < 1e-9 && (im[k] - im2[k]).abs() < 1e-9);
        }
    }
}
