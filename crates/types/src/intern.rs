//! Fast deterministic hashing and arena-backed interning.
//!
//! The streaming index used to intern every packet's source keys through
//! `BTreeSet` inserts — two ordered-tree walks per packet, each chasing
//! cache-cold nodes — and the sessionizer hashed its keys with the standard
//! library's SipHash. This module replaces both costs:
//!
//! * [`FxHasher`] is the rustc-compiler hash (a multiply-and-rotate mixer):
//!   3–4 arithmetic ops per 8-byte word, no per-process random state, so a
//!   hash value is a *deterministic* pure function of the key bytes — safe
//!   to use anywhere the byte-identical-output contract (DESIGN.md §6)
//!   applies.
//! * [`InternTable`] is a bump-arena of keys plus an open-addressing id
//!   table. Inserting assigns dense `u32` ids in first-encounter order;
//!   [`InternTable::sorted_remap`] converts them to ascending-key order at
//!   the end, so consumers that previously iterated a `BTreeSet` observe
//!   exactly the same id assignment (DESIGN.md §11).
//!
//! Determinism note: iteration over the *slot* table is never exposed —
//! only arena order (insertion order) and sorted order are, both of which
//! are pure functions of the key sequence.

use std::hash::{BuildHasherDefault, Hasher};

/// The 64-bit Fx multiplier (golden-ratio derived, as in rustc's FxHash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Deterministic multiply-rotate hasher (FxHash).
///
/// Not DoS-resistant — use only on keys an attacker cannot choose freely,
/// or where a flooded bucket costs time, not correctness. All sixscope
/// inputs are measurement data; worst case is a slow run, never a wrong
/// one.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`] — drop-in replacement for
/// `RandomState` in `HashMap`/`HashSet` type parameters.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one 128-bit word (an IPv6 address or prefix bits) directly —
/// the one-shot form of [`FxHasher`] used by the ingest hot path.
#[inline]
pub fn hash_u128(v: u128) -> u64 {
    let mut h = FxHasher::default();
    h.write_u128(v);
    h.finish()
}

/// An interned key: dense first-encounter id plus whether the insert
/// created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interned {
    /// Dense id in first-encounter order (also the arena index).
    pub id: u32,
    /// True when this insert was the key's first appearance.
    pub fresh: bool,
}

/// Arena-backed interning table: open-addressing id lookup over a bump
/// arena of keys.
///
/// Keys live contiguously in [`InternTable::keys`] (the arena), ids are
/// arena indices assigned in first-encounter order, and the slot table is
/// a power-of-two open-addressing array probed linearly from the key's
/// [`FxHasher`] hash. Compared to the `BTreeMap`/`BTreeSet` interning it
/// replaces, an insert is one hash plus (amortized) one cache line instead
/// of an ordered-tree walk.
///
/// For consumers that need *sorted* ids (the corpus index assigns source
/// ids in ascending key order), [`InternTable::sorted_remap`] produces the
/// ascending key vector plus a first-encounter-id → sorted-id remap.
#[derive(Debug, Clone)]
pub struct InternTable<K> {
    keys: Vec<K>,
    /// Slot array: `u32::MAX` = empty, else arena index. Length is a power
    /// of two, kept at least 2× the key count.
    slots: Vec<u32>,
    mask: usize,
}

const EMPTY: u32 = u32::MAX;

impl<K: Copy + Eq + Ord + std::hash::Hash> InternTable<K> {
    /// An empty table.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty table pre-sized for about `cap` distinct keys.
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(4) * 2).next_power_of_two();
        InternTable {
            keys: Vec::with_capacity(cap),
            slots: vec![EMPTY; slots],
            mask: slots - 1,
        }
    }

    /// Number of distinct keys interned.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True before the first insert.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The arena: interned keys in first-encounter order (id = index).
    pub fn keys(&self) -> &[K] {
        &self.keys
    }

    /// Consumes the table into its arena (keys in first-encounter order).
    pub fn into_keys(self) -> Vec<K> {
        self.keys
    }

    /// The interned keys in ascending order, leaving the table intact —
    /// the stable export of the shard wire format
    /// ([`InternTable::sorted_remap`] is the consuming form that also
    /// yields the id remap).
    pub fn sorted_keys(&self) -> Vec<K> {
        let mut keys = self.keys.clone();
        keys.sort_unstable();
        keys
    }

    /// Rebuilds a table by interning `keys` in iteration order — the
    /// import dual of [`InternTable::keys`]/[`InternTable::sorted_keys`].
    /// Ids land in iteration order, so feeding back an exported arena
    /// reproduces the original id assignment exactly.
    pub fn from_keys<I: IntoIterator<Item = K>>(keys: I) -> Self {
        let iter = keys.into_iter();
        let mut table = Self::with_capacity(iter.size_hint().0);
        for key in iter {
            table.insert(key);
        }
        table
    }

    #[inline]
    fn hash_of(key: &K) -> u64 {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        h.finish()
    }

    /// Interns `key`, returning its dense first-encounter id.
    #[inline]
    pub fn insert(&mut self, key: K) -> Interned {
        if (self.keys.len() + 1) * 2 > self.slots.len() {
            self.grow();
        }
        let mut slot = Self::hash_of(&key) as usize & self.mask;
        loop {
            let entry = self.slots[slot];
            if entry == EMPTY {
                let id = self.keys.len() as u32;
                self.keys.push(key);
                self.slots[slot] = id;
                return Interned { id, fresh: true };
            }
            if self.keys[entry as usize] == key {
                return Interned {
                    id: entry,
                    fresh: false,
                };
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Looks a key up without inserting.
    #[inline]
    pub fn get(&self, key: &K) -> Option<u32> {
        let mut slot = Self::hash_of(key) as usize & self.mask;
        loop {
            let entry = self.slots[slot];
            if entry == EMPTY {
                return None;
            }
            if self.keys[entry as usize] == *key {
                return Some(entry);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_len = (self.slots.len() * 2).max(8);
        self.slots = vec![EMPTY; new_len];
        self.mask = new_len - 1;
        for (id, key) in self.keys.iter().enumerate() {
            let mut slot = Self::hash_of(key) as usize & self.mask;
            while self.slots[slot] != EMPTY {
                slot = (slot + 1) & self.mask;
            }
            self.slots[slot] = id as u32;
        }
    }

    /// Folds another table's keys into this one (set union).
    pub fn absorb(&mut self, other: &InternTable<K>) {
        for &key in &other.keys {
            self.insert(key);
        }
    }

    /// Consumes the table into `(sorted_keys, remap)`: keys ascending, and
    /// `remap[first_encounter_id] = sorted_id`. Iterating `sorted_keys` is
    /// exactly iterating the equivalent `BTreeSet` — the deterministic
    /// final id assignment of DESIGN.md §11.
    pub fn sorted_remap(self) -> (Vec<K>, Vec<u32>) {
        let mut order: Vec<u32> = (0..self.keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| self.keys[i as usize]);
        let mut remap = vec![0u32; self.keys.len()];
        let mut sorted = Vec::with_capacity(self.keys.len());
        for (sorted_id, &arena_id) in order.iter().enumerate() {
            remap[arena_id as usize] = sorted_id as u32;
            sorted.push(self.keys[arena_id as usize]);
        }
        (sorted, remap)
    }
}

impl<K: Copy + Eq + Ord + std::hash::Hash> Default for InternTable<K> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fxhash_is_deterministic_across_instances() {
        assert_eq!(hash_u128(0x1234_5678), hash_u128(0x1234_5678));
        let mut a = FxHasher::default();
        a.write(b"sixscope");
        let mut b = FxHasher::default();
        b.write(b"sixscope");
        assert_eq!(a.finish(), b.finish());
        assert_ne!(hash_u128(1), hash_u128(2));
    }

    #[test]
    fn insert_assigns_first_encounter_ids() {
        let mut t = InternTable::new();
        assert_eq!(t.insert(30u64), Interned { id: 0, fresh: true });
        assert_eq!(t.insert(10u64), Interned { id: 1, fresh: true });
        assert_eq!(
            t.insert(30u64),
            Interned {
                id: 0,
                fresh: false
            }
        );
        assert_eq!(t.insert(20u64), Interned { id: 2, fresh: true });
        assert_eq!(t.keys(), &[30, 10, 20]);
        assert_eq!(t.get(&10), Some(1));
        assert_eq!(t.get(&99), None);
    }

    #[test]
    fn growth_preserves_ids_and_lookup() {
        let mut t = InternTable::with_capacity(0);
        let ids: Vec<u32> = (0..10_000u64).map(|k| t.insert(k * 7919).id).collect();
        assert_eq!(ids, (0..10_000u32).collect::<Vec<u32>>());
        for k in 0..10_000u64 {
            assert_eq!(t.get(&(k * 7919)), Some(k as u32));
        }
    }

    #[test]
    fn sorted_remap_matches_btreeset_order() {
        let keys = [44u64, 2, 99, 2, 17, 44, 0, 1_000_000];
        let mut t = InternTable::new();
        let first_ids: Vec<u32> = keys.iter().map(|&k| t.insert(k).id).collect();
        let reference: Vec<u64> = keys
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let (sorted, remap) = t.sorted_remap();
        assert_eq!(sorted, reference);
        // remap sends each first-encounter id to its rank in sorted order.
        for (&k, &fid) in keys.iter().zip(&first_ids) {
            let sid = remap[fid as usize] as usize;
            assert_eq!(sorted[sid], k);
        }
    }

    #[test]
    fn sorted_keys_exports_without_consuming() {
        let mut t = InternTable::new();
        for k in [9u64, 3, 7, 3] {
            t.insert(k);
        }
        assert_eq!(t.sorted_keys(), vec![3, 7, 9]);
        // The table is still usable with its original ids.
        assert_eq!(t.get(&9), Some(0));
        assert_eq!(t.keys(), &[9, 3, 7]);
    }

    #[test]
    fn from_keys_round_trips_the_arena() {
        let mut t = InternTable::new();
        for k in [42u64, 5, 17] {
            t.insert(k);
        }
        let rebuilt = InternTable::from_keys(t.keys().iter().copied());
        assert_eq!(rebuilt.keys(), t.keys());
        for (id, k) in t.keys().iter().enumerate() {
            assert_eq!(rebuilt.get(k), Some(id as u32));
        }
    }

    #[test]
    fn absorb_unions_key_sets() {
        let mut a = InternTable::new();
        a.insert(1u64);
        a.insert(2);
        let mut b = InternTable::new();
        b.insert(2u64);
        b.insert(3);
        a.absorb(&b);
        let (sorted, _) = a.sorted_remap();
        assert_eq!(sorted, vec![1, 2, 3]);
    }
}
