//! Autonomous system numbers and the source metadata the paper joins against.
//!
//! Table 8 classifies scan sources by the *network type* of their origin AS
//! (hosting, ISP, education, business, government); §4 counts origin ASes and
//! countries. These are plain labels in our model, attached to each AS by the
//! world generator.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 4-byte autonomous system number (RFC 6793).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Asn(pub u32);

impl Asn {
    /// Returns the raw number.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// True if the ASN fits in the legacy 2-byte space.
    pub const fn is_two_byte(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// The well-known AS_TRANS placeholder used when speaking to 2-byte peers.
    pub const TRANS: Asn = Asn(23456);
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse network type of an AS, following the categories of Table 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, PartialOrd, Ord)]
pub enum NetworkType {
    /// Server-hosting / cloud providers — where most heavy hitters live.
    Hosting,
    /// Access and transit ISPs — where most RIPE Atlas probes live.
    Isp,
    /// Universities and research networks.
    Education,
    /// Enterprise networks.
    Business,
    /// Government networks.
    Government,
    /// No classification available.
    Unknown,
}

impl NetworkType {
    /// All variants in Table 8 order.
    pub const ALL: [NetworkType; 6] = [
        NetworkType::Hosting,
        NetworkType::Isp,
        NetworkType::Education,
        NetworkType::Business,
        NetworkType::Government,
        NetworkType::Unknown,
    ];
}

impl fmt::Display for NetworkType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NetworkType::Hosting => "Hosting",
            NetworkType::Isp => "ISP",
            NetworkType::Education => "Education",
            NetworkType::Business => "Business",
            NetworkType::Government => "Government",
            NetworkType::Unknown => "Unknown",
        };
        f.write_str(s)
    }
}

/// ISO-3166-style two-letter country code (stored as two ASCII bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Builds a code from a two-character ASCII string.
    ///
    /// # Panics
    /// Panics if `s` is not exactly two ASCII bytes.
    pub fn new(s: &str) -> Self {
        let b = s.as_bytes();
        assert!(
            b.len() == 2 && b.is_ascii(),
            "country code must be 2 ASCII chars"
        );
        CountryCode([b[0].to_ascii_uppercase(), b[1].to_ascii_uppercase()])
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.0[0] as char, self.0[1] as char)
    }
}

/// Static metadata for one autonomous system in the simulated world.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Network type category (Table 8).
    pub network_type: NetworkType,
    /// Registration country.
    pub country: CountryCode,
    /// Human-readable name, used in report output and rDNS synthesis.
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asn_display_and_size_class() {
        assert_eq!(Asn(64512).to_string(), "AS64512");
        assert!(Asn(65535).is_two_byte());
        assert!(!Asn(4_200_000_000).is_two_byte());
        assert_eq!(Asn::TRANS.get(), 23456);
    }

    #[test]
    fn country_code_uppercases() {
        assert_eq!(CountryCode::new("de").to_string(), "DE");
        assert_eq!(CountryCode::new("US"), CountryCode::new("us"));
    }

    #[test]
    #[should_panic]
    fn country_code_rejects_wrong_length() {
        CountryCode::new("DEU");
    }

    #[test]
    fn network_type_order_matches_table8() {
        assert_eq!(NetworkType::ALL[0], NetworkType::Hosting);
        assert_eq!(NetworkType::ALL[5], NetworkType::Unknown);
        assert_eq!(NetworkType::Isp.to_string(), "ISP");
    }
}
