//! The late-data contract (DESIGN.md §14): a live feed drops a record iff
//! it is at least one eviction horizon older than the event-time
//! watermark, and dropping late records never changes the sessions formed
//! by on-time records.
//!
//! The filter is checked against an independent model (a running maximum
//! over raw timestamps), and the headline invariant is pinned by
//! construction: plant known-late records into a sorted on-time stream
//! and require the filtered session set to equal the session set of the
//! stream without the plants.

use proptest::collection::vec;
use proptest::prelude::*;
use sixscope_telescope::{
    AggLevel, Bytes, CapturedPacket, IncrementalSessionizer, LateFilter, Protocol, TelescopeId,
};
use sixscope_types::{SimDuration, SimTime};

const HORIZON_SECS: u64 = 100;

fn horizon() -> SimDuration {
    SimDuration::secs(HORIZON_SECS)
}

fn packet(src_host: u16, ts: u64) -> CapturedPacket {
    CapturedPacket {
        ts: SimTime::from_secs(ts),
        telescope: TelescopeId::T1,
        src: format!("2001:db8:f00:{src_host:x}::1").parse().unwrap(),
        dst: "2001:db8::1".parse().unwrap(),
        protocol: Protocol::Icmpv6,
        src_port: None,
        dst_port: None,
        payload: Bytes::new(),
    }
}

/// The model: a record is late iff the maximum timestamp seen before it
/// is at least one horizon ahead. (A late record's timestamp is below
/// the running maximum by definition, so "maximum over all earlier
/// records" and "maximum over earlier *admitted* records" coincide —
/// this is what makes the filter's watermark well-defined.)
fn model_late(times: &[u64]) -> Vec<bool> {
    let mut max_seen: Option<u64> = None;
    times
        .iter()
        .map(|&t| {
            let late = max_seen.is_some_and(|m| m.saturating_sub(t) >= HORIZON_SECS && m > 0);
            max_seen = Some(max_seen.map_or(t, |m| m.max(t)));
            late
        })
        .collect()
}

fn sessionize(packets: &[CapturedPacket]) -> Vec<Vec<u32>> {
    let mut sorted: Vec<CapturedPacket> = packets.to_vec();
    sorted.sort_by_key(|p| p.ts);
    let mut s = IncrementalSessionizer::new(AggLevel::Addr128, horizon());
    for (i, p) in sorted.iter().enumerate() {
        s.push(i as u32, p);
    }
    s.finish().into_iter().map(|s| s.packet_indices).collect()
}

proptest! {
    /// The filter's admit/reject decisions match the running-maximum
    /// model on arbitrary (unsorted) timestamp sequences, and the
    /// watermark is the maximum admitted timestamp.
    #[test]
    fn filter_matches_the_model(times in vec(0u64..5_000, 0..200)) {
        let model = model_late(&times);
        let mut filter = LateFilter::new(horizon());
        let mut max_admitted = 0u64;
        for (&t, &late) in times.iter().zip(&model) {
            prop_assert_eq!(!filter.admit(SimTime::from_secs(t)), late, "ts {}", t);
            if !late {
                max_admitted = max_admitted.max(t);
            }
        }
        prop_assert_eq!(filter.late_records(), model.iter().filter(|&&l| l).count() as u64);
        prop_assert_eq!(filter.watermark(), SimTime::from_secs(max_admitted));
    }

    /// A time-sorted stream never loses a record: watermark order means
    /// nothing is ever beyond the horizon.
    #[test]
    fn sorted_streams_drop_nothing(gaps in vec(0u64..500, 1..100)) {
        let mut filter = LateFilter::new(horizon());
        let mut ts = 0u64;
        for gap in gaps {
            ts += gap;
            prop_assert!(filter.admit(SimTime::from_secs(ts)));
        }
        prop_assert_eq!(filter.late_records(), 0);
    }

    /// Filtering is idempotent: the admitted stream passes a fresh filter
    /// untouched. Late drops never cascade into on-time drops.
    #[test]
    fn filtering_is_idempotent(times in vec(0u64..5_000, 0..200)) {
        let mut first = LateFilter::new(horizon());
        let admitted: Vec<u64> = times
            .into_iter()
            .filter(|&t| first.admit(SimTime::from_secs(t)))
            .collect();
        let mut second = LateFilter::new(horizon());
        for &t in &admitted {
            prop_assert!(second.admit(SimTime::from_secs(t)), "on-time record re-dropped");
        }
        prop_assert_eq!(second.late_records(), 0);
    }

    /// The headline invariant: plant known-late records into a sorted
    /// on-time stream; the filter must drop exactly the plants, and the
    /// session set over the filtered stream must equal the session set of
    /// the on-time stream alone.
    #[test]
    fn late_records_never_change_the_ontime_session_set(
        base in vec((0u16..5, 0u64..80), 1..60),
        plants in vec((0usize..1_000, 0u16..5, 0u64..50), 0..20),
    ) {
        // On-time stream: sorted, starting far enough from the epoch that
        // a planted record can always be one horizon behind.
        let mut ts = 2 * HORIZON_SECS;
        let ontime: Vec<CapturedPacket> = base
            .iter()
            .map(|&(src, gap)| {
                ts += gap;
                packet(src, ts)
            })
            .collect();
        // Interleave plants, each one horizon (plus a margin) behind the
        // running maximum at its insertion point — late by construction.
        let mut stream: Vec<(CapturedPacket, bool)> =
            ontime.iter().cloned().map(|p| (p, false)).collect();
        for &(pos, src, delta) in &plants {
            // Insert after at least one on-time record so a watermark exists.
            let at = 1 + pos % stream.len();
            let max_before = stream[..at]
                .iter()
                .map(|(p, _)| p.ts.as_secs())
                .max()
                .unwrap();
            let late_ts = max_before - HORIZON_SECS - delta.min(max_before - HORIZON_SECS);
            stream.insert(at, (packet(src, late_ts), true));
        }

        let mut filter = LateFilter::new(horizon());
        let mut kept = Vec::new();
        for (p, planted) in &stream {
            let admitted = filter.admit(p.ts);
            prop_assert_eq!(admitted, !planted, "plant status disagrees at ts {}", p.ts);
            if admitted {
                kept.push(p.clone());
            }
        }
        prop_assert_eq!(filter.late_records(), plants.len() as u64);
        prop_assert_eq!(sessionize(&kept), sessionize(&ontime));
    }
}
