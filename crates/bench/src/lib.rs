//! Shared helpers for the sixscope benchmark harness: one cached experiment
//! per (seed, scale) and the paper-vs-measured comparison rows written to
//! EXPERIMENTS.md.

use sixscope::sim::ScenarioConfig;
use sixscope::{Analyzed, Pipeline};
use std::sync::{Mutex, OnceLock};

pub mod report;

/// The default repro seed.
pub const SEED: u64 = 20230824; // the day T1 was first announced in the study

/// The default repro scale (≈ 2M packets; all reported shares are
/// scale-free).
pub const SCALE: f64 = 0.04;

/// A smaller scale for criterion timing runs.
pub const BENCH_SCALE: f64 = 0.008;

/// Runs (or returns the cached) experiment at the default repro scale.
pub fn corpus() -> &'static Analyzed {
    static CELL: OnceLock<Analyzed> = OnceLock::new();
    CELL.get_or_init(|| {
        Pipeline::simulate(ScenarioConfig::new(SEED, SCALE))
            .run()
            .expect("simulated runs cannot fail")
    })
}

/// Runs (or returns the cached) experiment at the bench scale.
pub fn bench_corpus() -> &'static Analyzed {
    static CELL: OnceLock<Analyzed> = OnceLock::new();
    CELL.get_or_init(|| {
        Pipeline::simulate(ScenarioConfig::new(SEED, BENCH_SCALE))
            .run()
            .expect("simulated runs cannot fail")
    })
}

/// Peak resident-set size of this process in kibibytes (`VmHWM` from
/// `/proc/self/status`), or `None` where procfs is unavailable. The repro
/// binary exports it so bounded-memory claims are observable in
/// BENCH_repro.json.
pub fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// One paper-vs-measured comparison row.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Experiment id ("Table 2", "Fig. 10", …).
    pub experiment: String,
    /// The quantity compared.
    pub metric: String,
    /// The paper's reported value (textual, may be approximate).
    pub paper: String,
    /// Our measured value.
    pub measured: String,
    /// Does the shape hold?
    pub holds: bool,
}

static COMPARISONS: Mutex<Vec<Comparison>> = Mutex::new(Vec::new());

/// Records a comparison row (collected into EXPERIMENTS.md by `repro`).
pub fn record(experiment: &str, metric: &str, paper: &str, measured: String, holds: bool) {
    record_row(Comparison {
        experiment: experiment.to_string(),
        metric: metric.to_string(),
        paper: paper.to_string(),
        measured,
        holds,
    });
}

/// Records an already-built comparison row. The report layer computes rows
/// in parallel and replays them through here in report order, so the global
/// comparison list stays deterministic.
pub fn record_row(row: Comparison) {
    COMPARISONS.lock().unwrap().push(row);
}

/// Drains all recorded comparisons.
pub fn take_comparisons() -> Vec<Comparison> {
    std::mem::take(&mut COMPARISONS.lock().unwrap())
}

/// Renders comparisons as a markdown table.
pub fn comparisons_markdown(rows: &[Comparison]) -> String {
    let mut out = String::from("| Experiment | Metric | Paper | Measured | Shape holds |\n");
    out.push_str("|---|---|---|---|---|\n");
    for r in rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} |\n",
            r.experiment,
            r.metric,
            r.paper,
            r.measured,
            if r.holds { "✓" } else { "✗" }
        ));
    }
    out
}
