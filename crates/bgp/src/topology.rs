//! A simulated AS graph: speakers wired by delayed links, plus a route
//! collector recording the global view.
//!
//! Every inter-AS message is real wire bytes queued with a per-link
//! propagation delay; [`Topology::run_until`] delivers them in timestamp
//! order and re-queues whatever the receiving speaker emits. The
//! [`Collector`] AS mirrors RIPE RIS: it records every announce/withdraw it
//! processes as a [`RouteEvent`] and maintains the table used both by
//! BGP-reactive scanners (the *signal*) and by the data plane (can a probe
//! reach the telescope right now?).

use crate::events::{RouteEvent, RouteEventKind};
use crate::message::BgpMessage;
use crate::rib::PeerId;
use crate::speaker::{Outbox, PeerRelation, Speaker};
use sixscope_types::{Asn, Ipv6Prefix, SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::net::Ipv6Addr;

/// A BGP adjacency between two ASes.
#[derive(Debug, Clone, Copy)]
pub struct Link {
    /// One endpoint.
    pub a: Asn,
    /// Other endpoint.
    pub b: Asn,
    /// One-way message propagation delay.
    pub delay: SimDuration,
}

/// The collector view: event log + current table.
#[derive(Debug, Clone, Default)]
pub struct Collector {
    events: Vec<RouteEvent>,
}

impl Collector {
    /// All recorded events in arrival order.
    pub fn events(&self) -> &[RouteEvent] {
        &self.events
    }

    /// Events with index `>= from`, for polling subscribers.
    pub fn events_since(&self, from: usize) -> &[RouteEvent] {
        &self.events[from.min(self.events.len())..]
    }
}

#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    to: Asn,
    from: Asn,
    bytes: Vec<u8>,
}

/// The simulated AS topology.
#[derive(Debug)]
pub struct Topology {
    speakers: BTreeMap<Asn, Speaker>,
    /// (local, remote) → peer id of remote inside local speaker.
    peer_ids: BTreeMap<(Asn, Asn), PeerId>,
    /// (local, remote) → link delay.
    delays: BTreeMap<(Asn, Asn), SimDuration>,
    queue: BinaryHeap<Reverse<(u64, u64)>>,
    in_flight: BTreeMap<u64, InFlight>,
    seq: u64,
    collector_asn: Option<Asn>,
    collector: Collector,
    now: SimTime,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology {
            speakers: BTreeMap::new(),
            peer_ids: BTreeMap::new(),
            delays: BTreeMap::new(),
            queue: BinaryHeap::new(),
            in_flight: BTreeMap::new(),
            seq: 0,
            collector_asn: None,
            collector: Collector::default(),
            now: SimTime::EPOCH,
        }
    }

    /// Adds an AS with its next-hop address.
    pub fn add_as(&mut self, asn: Asn, next_hop: Ipv6Addr) {
        self.speakers
            .insert(asn, Speaker::new(asn, asn.get(), next_hop));
    }

    /// Marks an AS as the route collector (it must already exist and be
    /// connected via [`Topology::connect`] with [`PeerRelation::Collector`]
    /// on the feeding side).
    pub fn set_collector(&mut self, asn: Asn) {
        assert!(self.speakers.contains_key(&asn), "collector AS must exist");
        self.collector_asn = Some(asn);
    }

    /// Connects `a` and `b`; `b_is` states what `b` is *to a* (e.g.
    /// `Provider` means b is a's provider). The reciprocal relation is
    /// derived automatically.
    pub fn connect(&mut self, a: Asn, b: Asn, b_is: PeerRelation, delay: SimDuration) {
        let a_is = match b_is {
            PeerRelation::Customer => PeerRelation::Provider,
            PeerRelation::Provider => PeerRelation::Customer,
            PeerRelation::Peer => PeerRelation::Peer,
            // If b is a collector from a's view, a is a provider-ish feed
            // from b's view; the collector never exports anyway.
            PeerRelation::Collector => PeerRelation::Provider,
        };
        let id_b_in_a = self
            .speakers
            .get_mut(&a)
            .expect("AS a exists")
            .add_peer(b, b_is);
        let id_a_in_b = self
            .speakers
            .get_mut(&b)
            .expect("AS b exists")
            .add_peer(a, a_is);
        self.peer_ids.insert((a, b), id_b_in_a);
        self.peer_ids.insert((b, a), id_a_in_b);
        self.delays.insert((a, b), delay);
        self.delays.insert((b, a), delay);
    }

    /// Starts every session and pumps until quiescent; returns when all
    /// sessions are Established.
    pub fn establish_all(&mut self, now: SimTime) {
        self.now = now;
        let starts: Vec<(Asn, Asn)> = self
            .peer_ids
            .keys()
            .filter(|(a, b)| a < b) // start each adjacency once, from one side
            .copied()
            .collect();
        for (a, b) in &starts {
            let pid = self.peer_ids[&(*a, *b)];
            let out = self.speakers.get_mut(a).unwrap().start_peer(pid, now);
            self.enqueue(*a, out, now);
            let pid = self.peer_ids[&(*b, *a)];
            let out = self.speakers.get_mut(b).unwrap().start_peer(pid, now);
            self.enqueue(*b, out, now);
        }
        // Deliver handshake traffic; establishment takes a few RTTs.
        let horizon = now + SimDuration::secs(600);
        self.run_until(horizon);
        for ((a, b), pid) in &self.peer_ids {
            assert!(
                self.speakers[a].peer_established(*pid),
                "session {a}->{b} failed to establish"
            );
        }
    }

    fn enqueue(&mut self, from: Asn, out: Outbox, now: SimTime) {
        for (pid, bytes) in out {
            // Reverse-map the peer id to the remote ASN.
            let to = *self
                .peer_ids
                .iter()
                .find(|((local, _), id)| *local == from && **id == pid)
                .map(|((_, remote), _)| remote)
                .expect("peer id maps to a remote AS");
            let delay = self.delays[&(from, to)];
            let deliver_at = now + delay;
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse((deliver_at.as_secs(), seq)));
            self.in_flight.insert(
                seq,
                InFlight {
                    deliver_at,
                    to,
                    from,
                    bytes,
                },
            );
        }
    }

    /// Delivers all in-flight messages scheduled at or before `t`.
    pub fn run_until(&mut self, t: SimTime) {
        while let Some(Reverse((at, seq))) = self.queue.peek().copied() {
            if at > t.as_secs() {
                break;
            }
            self.queue.pop();
            let msg = self.in_flight.remove(&seq).expect("queued message exists");
            self.now = msg.deliver_at.max(self.now);
            self.deliver(msg);
        }
        self.now = self.now.max(t);
    }

    fn deliver(&mut self, msg: InFlight) {
        // Record collector events before the speaker mutates state.
        if Some(msg.to) == self.collector_asn {
            self.record_collector_events(&msg);
        }
        let pid = self.peer_ids[&(msg.to, msg.from)];
        let now = msg.deliver_at;
        let out = match self
            .speakers
            .get_mut(&msg.to)
            .expect("destination AS exists")
            .handle_bytes(pid, now, &msg.bytes)
        {
            Ok(out) => out,
            // Session-level errors drop the message (a real router would
            // reset the session; our links never corrupt, so this only
            // fires in fault-injection tests).
            Err(_) => return,
        };
        self.enqueue(msg.to, out, now);
    }

    fn record_collector_events(&mut self, msg: &InFlight) {
        let mut bytes: &[u8] = &msg.bytes;
        while !bytes.is_empty() {
            let Ok((parsed, rest)) = BgpMessage::decode(bytes) else {
                return;
            };
            bytes = rest;
            if let BgpMessage::Update(update) = parsed {
                if let Some(reach) = &update.attrs.mp_reach {
                    for prefix in &reach.prefixes {
                        self.collector.events.push(RouteEvent {
                            ts: msg.deliver_at,
                            prefix: *prefix,
                            kind: RouteEventKind::Announce {
                                origin_as: update.attrs.as_path.last().copied().unwrap_or(Asn(0)),
                                as_path: update.attrs.as_path.clone(),
                            },
                        });
                    }
                }
                for prefix in &update.attrs.mp_unreach {
                    self.collector.events.push(RouteEvent {
                        ts: msg.deliver_at,
                        prefix: *prefix,
                        kind: RouteEventKind::Withdraw,
                    });
                }
            }
        }
    }

    /// Originates `prefix` from `asn` and queues the propagation.
    pub fn announce(&mut self, asn: Asn, prefix: Ipv6Prefix, now: SimTime) {
        self.now = self.now.max(now);
        let out = self
            .speakers
            .get_mut(&asn)
            .expect("origin AS exists")
            .announce(prefix, now);
        self.enqueue(asn, out, now);
    }

    /// Withdraws `prefix` at `asn` and queues the propagation.
    pub fn withdraw(&mut self, asn: Asn, prefix: Ipv6Prefix, now: SimTime) {
        self.now = self.now.max(now);
        let out = self
            .speakers
            .get_mut(&asn)
            .expect("origin AS exists")
            .withdraw(prefix, now);
        self.enqueue(asn, out, now);
    }

    /// The collector's event feed.
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// Longest-prefix match in the *collector's* table — the global
    /// reachability test used by the data plane.
    pub fn reachable(&self, addr: Ipv6Addr) -> Option<Ipv6Prefix> {
        let asn = self.collector_asn?;
        self.speakers[&asn].rib().lookup(addr).map(|(p, _)| *p)
    }

    /// The current set of globally visible prefixes (collector table).
    pub fn global_table(&self) -> Vec<Ipv6Prefix> {
        match self.collector_asn {
            Some(asn) => self.speakers[&asn]
                .rib()
                .best_routes()
                .into_iter()
                .map(|(p, _)| *p)
                .collect(),
            None => Vec::new(),
        }
    }

    /// Direct read access to one speaker (looking glass on any AS).
    pub fn speaker(&self, asn: Asn) -> Option<&Speaker> {
        self.speakers.get(&asn)
    }

    /// Number of messages still in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Current topology clock.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the standard experiment topology of the paper's setup (§3.2):
///
/// * `origin` — the authors' AS running FRR (hosts T1 and T2),
/// * two upstream transit providers interconnected at an IXP core,
/// * a `borrower` AS announcing the covering /29 (hosts T3 and T4),
/// * a route collector fed by both transits.
///
/// Returns the topology with all sessions established at `start`.
pub fn standard_topology(origin: Asn, borrower: Asn, collector: Asn, start: SimTime) -> Topology {
    let transit1 = Asn(3320);
    let transit2 = Asn(6939);
    let core = Asn(174);
    let mut topo = Topology::new();
    topo.add_as(origin, "2001:db8:ffff::1".parse().unwrap());
    topo.add_as(borrower, "2001:db8:ffff::2".parse().unwrap());
    topo.add_as(transit1, "2001:db8:ffff::10".parse().unwrap());
    topo.add_as(transit2, "2001:db8:ffff::11".parse().unwrap());
    topo.add_as(core, "2001:db8:ffff::12".parse().unwrap());
    topo.add_as(collector, "2001:db8:ffff::99".parse().unwrap());
    // Origin multihomes to both transits (seconds of BGP delay per hop).
    topo.connect(
        origin,
        transit1,
        PeerRelation::Provider,
        SimDuration::secs(2),
    );
    topo.connect(
        origin,
        transit2,
        PeerRelation::Provider,
        SimDuration::secs(3),
    );
    topo.connect(
        borrower,
        transit2,
        PeerRelation::Provider,
        SimDuration::secs(2),
    );
    topo.connect(transit1, core, PeerRelation::Peer, SimDuration::secs(5));
    topo.connect(transit2, core, PeerRelation::Peer, SimDuration::secs(4));
    topo.connect(
        transit1,
        collector,
        PeerRelation::Collector,
        SimDuration::secs(8),
    );
    topo.connect(
        transit2,
        collector,
        PeerRelation::Collector,
        SimDuration::secs(10),
    );
    topo.set_collector(collector);
    topo.establish_all(start);
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn topo() -> Topology {
        standard_topology(Asn(64500), Asn(64510), Asn(64999), SimTime::EPOCH)
    }

    #[test]
    fn standard_topology_establishes() {
        let t = topo();
        assert_eq!(t.in_flight(), 0, "handshake traffic drained");
        assert!(t.global_table().is_empty(), "nothing announced yet");
    }

    #[test]
    fn announcement_reaches_collector_with_delay() {
        let mut t = topo();
        let t0 = SimTime::from_secs(1000);
        t.announce(Asn(64500), p("2001:db8::/32"), t0);
        // Not yet visible immediately.
        t.run_until(t0 + SimDuration::secs(1));
        assert!(t.reachable("2001:db8::1".parse().unwrap()).is_none());
        // Fastest path: origin→transit1 (2 s) →collector (8 s) = 10 s.
        t.run_until(t0 + SimDuration::secs(60));
        assert_eq!(
            t.reachable("2001:db8::1".parse().unwrap()),
            Some(p("2001:db8::/32"))
        );
        let events = t.collector().events();
        assert!(!events.is_empty());
        let first = events.iter().find(|e| e.is_announce()).unwrap();
        assert_eq!(first.prefix, p("2001:db8::/32"));
        assert!(first.ts >= t0 + SimDuration::secs(10));
        match &first.kind {
            RouteEventKind::Announce { origin_as, as_path } => {
                assert_eq!(*origin_as, Asn(64500));
                assert!(!as_path.is_empty());
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn withdrawal_removes_reachability() {
        let mut t = topo();
        let t0 = SimTime::from_secs(1000);
        t.announce(Asn(64500), p("2001:db8::/32"), t0);
        t.run_until(t0 + SimDuration::secs(120));
        assert!(t.reachable("2001:db8::1".parse().unwrap()).is_some());
        let t1 = t0 + SimDuration::secs(3600);
        t.withdraw(Asn(64500), p("2001:db8::/32"), t1);
        t.run_until(t1 + SimDuration::secs(120));
        assert!(t.reachable("2001:db8::1".parse().unwrap()).is_none());
        assert!(t
            .collector()
            .events()
            .iter()
            .any(|e| matches!(e.kind, RouteEventKind::Withdraw)));
    }

    #[test]
    fn more_specific_wins_in_global_table() {
        let mut t = topo();
        let t0 = SimTime::from_secs(0);
        t.announce(Asn(64510), p("2001:db8::/29"), t0);
        t.announce(Asn(64500), p("2001:db8:4::/48"), t0);
        t.run_until(t0 + SimDuration::secs(120));
        // An address in the /48 resolves to the /48, not the covering /29.
        assert_eq!(
            t.reachable("2001:db8:4::1".parse().unwrap()),
            Some(p("2001:db8:4::/48"))
        );
        // An address outside the /48 but inside the /29 resolves to the /29.
        assert_eq!(
            t.reachable("2001:db8:5::1".parse().unwrap()),
            Some(p("2001:db8::/29"))
        );
    }

    #[test]
    fn silent_subnet_is_covered_not_distinct() {
        // T3's situation: never announced separately; only the covering /29
        // appears in the table.
        let mut t = topo();
        t.announce(Asn(64510), p("2001:db8::/29"), SimTime::EPOCH);
        t.run_until(SimTime::from_secs(120));
        let table = t.global_table();
        assert_eq!(table, vec![p("2001:db8::/29")]);
    }

    #[test]
    fn events_since_supports_polling() {
        let mut t = topo();
        t.announce(Asn(64500), p("2001:db8::/32"), SimTime::EPOCH);
        t.run_until(SimTime::from_secs(120));
        let n = t.collector().events().len();
        assert!(n >= 1);
        assert!(t.collector().events_since(n).is_empty());
        assert_eq!(t.collector().events_since(0).len(), n);
        t.announce(Asn(64500), p("2001:db8:8000::/33"), SimTime::from_secs(200));
        t.run_until(SimTime::from_secs(400));
        assert!(!t.collector().events_since(n).is_empty());
    }

    #[test]
    fn sixteen_prefix_announcement_converges() {
        // The final state of the T1 experiment: 17 prefixes at once.
        let mut t = topo();
        let base = p("2001:db8::/32");
        let mut prefixes = vec![base];
        // Generate the asymmetric split chain: /33 .. /48 plus companions.
        let mut current = base;
        for _ in 0..16 {
            let (lo, hi) = current.split().unwrap();
            prefixes.push(hi);
            current = lo;
        }
        prefixes.push(current);
        for (i, pre) in prefixes.iter().enumerate() {
            t.announce(Asn(64500), *pre, SimTime::from_secs(i as u64));
        }
        t.run_until(SimTime::from_secs(600));
        assert_eq!(t.in_flight(), 0);
        let table = t.global_table();
        assert_eq!(table.len(), prefixes.len());
    }
}
