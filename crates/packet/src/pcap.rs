//! Classic pcap file I/O (the `.pcap` format of libpcap/tcpdump).
//!
//! Captures are written with LINKTYPE_RAW (101): each record is a bare IP
//! packet, which is exactly what our telescopes receive. Files produced here
//! open in Wireshark; files produced by `tcpdump -w -y RAW` feed straight
//! into the analysis pipeline, so the pipeline works on real captures too.
//!
//! The writer emits the standard microsecond-resolution little-endian
//! format; the reader additionally accepts big-endian and
//! nanosecond-resolution magic values.

use crate::error::PacketError;
use sixscope_types::SimTime;
use std::io::{Read, Write};

const MAGIC_LE_US: u32 = 0xa1b2c3d4;
const MAGIC_LE_NS: u32 = 0xa1b23c4d;
const LINKTYPE_RAW: u32 = 101;

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Sub-second microseconds.
    pub ts_micros: u32,
    /// Raw packet bytes (an IPv6 packet under LINKTYPE_RAW).
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut out: W) -> Result<Self, PacketError> {
        out.write_all(&MAGIC_LE_US.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&65_535u32.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Appends one packet record.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<(), PacketError> {
        self.out
            .write_all(&(rec.ts.as_secs() as u32).to_le_bytes())?;
        self.out.write_all(&rec.ts_micros.to_le_bytes())?;
        let len = rec.data.len() as u32;
        self.out.write_all(&len.to_le_bytes())?; // incl_len
        self.out.write_all(&len.to_le_bytes())?; // orig_len
        self.out.write_all(&rec.data)?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> Result<W, PacketError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    nanos: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut input: R) -> Result<Self, PacketError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_LE_US => (false, false),
            MAGIC_LE_NS => (false, true),
            m if m.swap_bytes() == MAGIC_LE_US => (true, false),
            m if m.swap_bytes() == MAGIC_LE_NS => (true, true),
            m => return Err(PacketError::BadPcapMagic(m)),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        if linktype != LINKTYPE_RAW {
            return Err(PacketError::UnsupportedLinkType(linktype));
        }
        Ok(PcapReader {
            input,
            swapped,
            nanos,
        })
    }

    fn read_u32(&mut self) -> Result<Option<u32>, PacketError> {
        let mut b = [0u8; 4];
        match self.input.read_exact(&mut b) {
            Ok(()) => {
                let v = u32::from_le_bytes(b);
                Ok(Some(if self.swapped { v.swap_bytes() } else { v }))
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    /// Reads the next record, or `None` at end of file.
    pub fn read_record(&mut self) -> Result<Option<PcapRecord>, PacketError> {
        let Some(ts_sec) = self.read_u32()? else {
            return Ok(None);
        };
        let ts_frac = self.read_u32()?.ok_or_else(eof)?;
        let incl_len = self.read_u32()?.ok_or_else(eof)? as usize;
        let _orig_len = self.read_u32()?.ok_or_else(eof)?;
        let mut data = vec![0u8; incl_len];
        self.input.read_exact(&mut data)?;
        let ts_micros = if self.nanos { ts_frac / 1000 } else { ts_frac };
        Ok(Some(PcapRecord {
            ts: SimTime::from_secs(ts_sec as u64),
            ts_micros,
            data,
        }))
    }
}

fn eof() -> PacketError {
    PacketError::Io(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "truncated pcap record header",
    ))
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord, PacketError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample_records() -> Vec<PcapRecord> {
        let b = PacketBuilder::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        );
        vec![
            PcapRecord {
                ts: SimTime::from_secs(10),
                ts_micros: 500,
                data: b.icmpv6_echo_request(1, 1, b"probe"),
            },
            PcapRecord {
                ts: SimTime::from_secs(11),
                ts_micros: 0,
                data: b.tcp_syn(40000, 80, 7, &[]),
            },
            PcapRecord {
                ts: SimTime::from_secs(3600),
                ts_micros: 999_999,
                data: b.udp(40001, 33434, b"trace"),
            },
        ]
    }

    #[test]
    fn write_read_round_trip() {
        let records = sample_records();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let reader = PcapReader::new(&bytes[..]).unwrap();
        let back: Vec<PcapRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn global_header_is_24_bytes_with_raw_linktype() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.into_inner().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            MAGIC_LE_US
        );
        assert_eq!(
            u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let bytes = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(PacketError::BadPcapMagic(0))
        ));
    }

    #[test]
    fn reader_rejects_wrong_linktype() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes[20..24].copy_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(PacketError::UnsupportedLinkType(1))
        ));
    }

    #[test]
    fn reader_accepts_big_endian_files() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE_US.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&42u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let rec = r.read_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_secs(), 42);
        assert_eq!(rec.ts_micros, 7);
        assert_eq!(rec.data, vec![0xaa, 0xbb, 0xcc]);
        assert!(r.read_record().unwrap().is_none());
    }

    #[test]
    fn nanosecond_magic_scales_to_micros() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE_NS.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5_000_000u32.to_le_bytes()); // 5 ms in ns
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0x60);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let rec = r.read_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 5000);
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = PcapReader::new(&bytes[..bytes.len() - 4]).unwrap();
        assert!(r.read_record().is_err());
    }
}
