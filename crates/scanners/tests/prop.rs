//! Property tests for the scanner models: targets stay inside their scope,
//! probes always encode to parseable wire bytes, schedules respect bounds,
//! and generation is deterministic per seed.

use proptest::prelude::*;
use sixscope_packet::ParsedPacket;
use sixscope_scanners::scanner::StaticContext;
use sixscope_scanners::{
    AddressStrategy, GenScratch, NetworkStrategy, ProbeBatch, ScannerSpec, SourceModel,
    TemporalModel, ToolProfile,
};
use sixscope_types::{Asn, Ipv6Prefix, SimDuration, SimTime, Xoshiro256pp};

fn arb_strategy() -> impl Strategy<Value = AddressStrategy> {
    prop_oneof![
        (1u64..64).prop_map(|max| AddressStrategy::LowByte { max }),
        Just(AddressStrategy::LowByteOne),
        Just(AddressStrategy::SubnetAnycast),
        Just(AddressStrategy::ServicePorts),
        any::<u32>().prop_map(|base| AddressStrategy::EmbeddedIpv4 { base }),
        any::<[u8; 3]>().prop_map(|oui| AddressStrategy::Eui64 { oui }),
        Just(AddressStrategy::PatternWords),
        Just(AddressStrategy::RandomIid),
        Just(AddressStrategy::RandomFull),
        (1u8..24).prop_map(|stride_bits| AddressStrategy::SortedTraversal { stride_bits }),
        (33u8..64).prop_map(|sub_len| AddressStrategy::SequentialSubnets { sub_len }),
    ]
}

fn arb_prefix() -> impl Strategy<Value = Ipv6Prefix> {
    (any::<u128>(), 16u8..=64).prop_map(|(bits, len)| Ipv6Prefix::from_bits(bits, len).unwrap())
}

proptest! {
    /// Every strategy's targets stay inside the prefix it was given.
    #[test]
    fn targets_stay_in_prefix(
        strategy in arb_strategy(),
        prefix in arb_prefix(),
        count in 1u64..64,
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let hitlist = vec![prefix.low_byte_address()];
        for t in strategy.generate(prefix, count, &mut rng, &hitlist) {
            prop_assert!(prefix.contains(t), "{strategy:?} produced {t} outside {prefix}");
        }
    }

    /// Every probe a scanner emits encodes to valid, parseable IPv6 bytes
    /// whose header matches the probe.
    #[test]
    fn probes_always_parse(seed in any::<u64>(), strategy in arb_strategy()) {
        let prefix: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let ctx = StaticContext {
            announced: vec![prefix],
            events: vec![],
            hitlist: vec![prefix.low_byte_address()],
            responsive: None,
            end: SimTime::EPOCH + SimDuration::weeks(8),
        };
        let spec = ScannerSpec {
            id: 1,
            source: SourceModel::Fixed("2a0a::1".parse().unwrap()),
            asn: Asn(64500),
            temporal: TemporalModel::OneOff {
                at: SimTime::from_secs(100),
            },
            network: NetworkStrategy::AllAnnounced,
            address: strategy,
            tool: ToolProfile::yarrp6(),
            packets_per_prefix: 16,
            pps: 1.0,
            reactive: None,
            tga_followups: None,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut wire = Vec::new();
        for probe in spec.generate(&ctx, &mut rng) {
            probe.encode_into(&mut wire);
            let parsed = ParsedPacket::parse(&wire).unwrap();
            prop_assert_eq!(parsed.header.src, probe.src);
            prop_assert_eq!(parsed.header.dst, probe.dst);
        }
    }

    /// The batched columnar generation path emits exactly the reference
    /// per-probe stream for any address strategy and seed — including
    /// reactive session triggers and announce events at split-cycle
    /// boundaries, which both perturb the RNG draw sequence.
    #[test]
    fn batched_generation_equals_reference(seed in any::<u64>(), strategy in arb_strategy()) {
        let split_a: Ipv6Prefix = "2001:db8::/33".parse().unwrap();
        let split_b: Ipv6Prefix = "2001:db8:8000::/33".parse().unwrap();
        let ctx = StaticContext {
            announced: vec![split_a, split_b],
            events: vec![
                (SimTime::from_secs(500), "2001:db8::/32".parse().unwrap()),
                (SimTime::EPOCH + SimDuration::weeks(2), split_a),
                (SimTime::EPOCH + SimDuration::weeks(2), split_b),
            ],
            hitlist: vec![split_a.low_byte_address()],
            responsive: Some("2001:db8:4200::/48".parse().unwrap()),
            end: SimTime::EPOCH + SimDuration::weeks(6),
        };
        let spec = ScannerSpec {
            id: 7,
            source: SourceModel::RotatingIid {
                subnet: "2a0a::/64".parse().unwrap(),
                per_probe: true,
            },
            asn: Asn(64502),
            temporal: TemporalModel::Periodic {
                start: SimTime::from_secs(100),
                period: SimDuration::days(5),
                jitter: SimDuration::mins(30),
                until: ctx.end,
            },
            network: NetworkStrategy::Alternating,
            address: strategy,
            tool: ToolProfile::yarrp6(),
            packets_per_prefix: 8,
            pps: 2.0,
            reactive: Some(sixscope_scanners::scanner::Reactivity {
                delay: SimDuration::mins(5),
                probability: 0.5,
            }),
            tga_followups: Some(4),
        };
        let reference = spec.generate(&ctx, &mut Xoshiro256pp::seed_from_u64(seed));
        let mut batch = ProbeBatch::new();
        let mut scratch = GenScratch::new();
        spec.generate_into(&ctx, &mut Xoshiro256pp::seed_from_u64(seed), &mut scratch, &mut batch);
        batch.sort_by_ts();
        prop_assert_eq!(batch.len(), reference.len());
        for (pos, &row) in batch.sorted().iter().enumerate() {
            prop_assert_eq!(&batch.probe(row as usize), &reference[pos], "position {}", pos);
        }
    }

    /// Temporal models respect their bounds and never panic.
    #[test]
    fn temporal_models_respect_bounds(
        seed in any::<u64>(),
        period_h in 1u64..200,
        jitter_m in 0u64..59,
        span_w in 1u64..44,
        gap_d in 1u64..20,
        max_sessions in 2u32..40,
    ) {
        let until = SimTime::EPOCH + SimDuration::weeks(span_w);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let periodic = TemporalModel::Periodic {
            start: SimTime::EPOCH,
            period: SimDuration::hours(period_h),
            jitter: SimDuration::mins(jitter_m),
            until,
        };
        let starts = periodic.session_starts(&mut rng);
        prop_assert!(!starts.is_empty());
        // Jitter can push a start slightly past `until`, but never further
        // than the jitter half-width.
        for s in &starts {
            prop_assert!(s.as_secs() <= until.as_secs() + jitter_m * 60);
        }
        let intermittent = TemporalModel::Intermittent {
            start: SimTime::EPOCH,
            until,
            mean_gap: SimDuration::days(gap_d),
            max_sessions,
        };
        let starts = intermittent.session_starts(&mut rng);
        prop_assert!(starts.len() as u32 <= max_sessions);
        prop_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(starts.iter().all(|s| *s < until));
    }

    /// Scanner generation is a pure function of (spec, context, seed).
    #[test]
    fn generation_is_deterministic(seed in any::<u64>()) {
        let prefix: Ipv6Prefix = "2001:db8::/32".parse().unwrap();
        let ctx = StaticContext {
            announced: vec![prefix],
            events: vec![(SimTime::from_secs(500), prefix)],
            hitlist: vec![],
            responsive: None,
            end: SimTime::EPOCH + SimDuration::weeks(4),
        };
        let spec = ScannerSpec {
            id: 9,
            source: SourceModel::RotatingIid {
                subnet: "2a0a::/64".parse().unwrap(),
                per_probe: true,
            },
            asn: Asn(64501),
            temporal: TemporalModel::Intermittent {
                start: SimTime::from_secs(50),
                until: ctx.end,
                mean_gap: SimDuration::days(2),
                max_sessions: 6,
            },
            network: NetworkStrategy::SinglePrefix,
            address: AddressStrategy::RandomIid,
            tool: ToolProfile::random_bytes(),
            packets_per_prefix: 10,
            pps: 1.0,
            reactive: Some(sixscope_scanners::scanner::Reactivity {
                delay: SimDuration::mins(10),
                probability: 0.5,
            }),
            tga_followups: None,
        };
        let a = spec.generate(&ctx, &mut Xoshiro256pp::seed_from_u64(seed));
        let b = spec.generate(&ctx, &mut Xoshiro256pp::seed_from_u64(seed));
        prop_assert_eq!(a, b);
    }

    /// Network strategies only ever select announced prefixes (or their own
    /// fixed scope).
    #[test]
    fn selection_subset_of_announced(
        prefixes in proptest::collection::vec(arb_prefix(), 1..12),
        session_index in any::<u64>(),
        salt in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        for strategy in [
            NetworkStrategy::SinglePrefix,
            NetworkStrategy::PinnedPrefix { salt },
            NetworkStrategy::AllAnnounced,
            NetworkStrategy::SizeProportional { draws: 3 },
            NetworkStrategy::Alternating,
        ] {
            for sel in strategy.select(&prefixes, session_index, &mut rng) {
                prop_assert!(prefixes.contains(&sel), "{strategy:?} selected {sel}");
            }
        }
    }
}
