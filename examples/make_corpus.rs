//! Regenerates the checked-in corrupted-pcap corpus under `tests/corpus/`.
//!
//! The corpus exercises every branch of the recovery contract
//! (DESIGN.md §8): valid records, each `MalformedRecord` reason, a
//! packet-level malformation, and a file cut off mid-record. The files
//! are committed so the integration tests and the CI ingest smoke step
//! run against fixed bytes; this generator documents their provenance
//! and rebuilds them byte-identically:
//!
//! ```sh
//! cargo run -p sixscope-examples --bin make-corpus --release [out-dir]
//! ```

use sixscope_packet::{PacketBuilder, PcapRecord, PcapWriter, MAX_RECORD_LEN};
use sixscope_types::SimTime;
use std::net::Ipv6Addr;

const LINKTYPE_RAW: u32 = 101;

/// Classic pcap global header, LE microsecond variant.
fn global_header(snaplen: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&0xa1b2_c3d4u32.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes());
    out.extend_from_slice(&4u16.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&snaplen.to_le_bytes());
    out.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
    out
}

/// One record with independently controllable length fields and body.
fn record(out: &mut Vec<u8>, ts: u32, incl_len: u32, orig_len: u32, body: &[u8]) {
    out.extend_from_slice(&ts.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&incl_len.to_le_bytes());
    out.extend_from_slice(&orig_len.to_le_bytes());
    out.extend_from_slice(body);
}

/// A well-formed record: lengths match the body.
fn valid(out: &mut Vec<u8>, ts: u32, body: &[u8]) {
    record(out, ts, body.len() as u32, body.len() as u32, body);
}

fn src(n: u16) -> Ipv6Addr {
    format!("2a0a::bad:{n:x}").parse().unwrap()
}

fn dst(n: u16) -> Ipv6Addr {
    format!("2001:db8::{n:x}").parse().unwrap()
}

/// Hop-by-hop extension header followed by a TCP SYN — the probe shape
/// the extension-header walker must see through.
fn hbh_tcp_probe() -> Vec<u8> {
    let b = PacketBuilder::new(src(2), dst(2));
    let tcp = &b.tcp_syn(40_000, 443, 7, b"zmap6")[40..];
    let hbh = [6u8, 0, 1, 4, 0, 0, 0, 0];
    let mut out = Vec::new();
    let hdr = sixscope_packet::Ipv6Header::new(
        src(2),
        dst(2),
        sixscope_packet::NextHeader::Other(sixscope_packet::ipv6::ext::HOP_BY_HOP),
        (hbh.len() + tcp.len()) as u16,
    );
    hdr.encode(&mut out);
    out.extend_from_slice(&hbh);
    out.extend_from_slice(tcp);
    out
}

/// Three valid records, written through the library writer.
fn clean() -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    let bodies = [
        PacketBuilder::new(src(1), dst(1)).icmpv6_echo_request(7, 1, b"yarrp"),
        hbh_tcp_probe(),
        PacketBuilder::new(src(3), dst(3)).udp(40_001, 33_434, b"probe"),
    ];
    for (i, data) in bodies.into_iter().enumerate() {
        w.write_record(&PcapRecord {
            ts: SimTime::from_secs(100 + i as u64),
            ts_micros: 0,
            data,
        })
        .unwrap();
    }
    w.into_inner().unwrap()
}

/// The main damage mix: every recoverable reason, a malformed packet,
/// an out-of-prefix packet, and a truncated tail. Snaplen is 128 so a
/// snaplen violation stays tiny.
fn mixed() -> Vec<u8> {
    let mut out = global_header(128);
    // 1. valid ICMPv6 echo (parsed).
    valid(
        &mut out,
        100,
        &PacketBuilder::new(src(1), dst(1)).icmpv6_echo_request(7, 1, b"yarrp"),
    );
    // 2. valid hop-by-hop + TCP SYN (parsed; exercises the ext walker).
    valid(&mut out, 101, &hbh_tcp_probe());
    // 3. incl_len > orig_len: length-inconsistent, 90 filler bytes are
    //    discarded so the stream re-syncs on the next record.
    record(&mut out, 102, 90, 40, &[0xcc; 90]);
    // 4. valid record whose body is not IPv6 (version nibble 5):
    //    a malformed *packet*, not a malformed *record*.
    valid(&mut out, 103, &[0x5a; 60]);
    // 5. incl_len 200 > snaplen 128: snaplen-exceeded, body discarded.
    record(&mut out, 104, 200, 200, &[0xdd; 200]);
    // 6. valid UDP to an address outside 2001:db8::/32 (filtered when
    //    the test ingests under that prefix).
    valid(
        &mut out,
        105,
        &PacketBuilder::new(src(3), "2001:4860::99".parse().unwrap()).udp(40_001, 53, b"x"),
    );
    // 7. header promises 80 body bytes, file ends after 10: truncated
    //    tail — everything above must still have been yielded.
    record(&mut out, 106, 80, 80, &[0xee; 10]);
    out
}

/// Snaplen 0 (unset) so the hard allocation cap is the binding check:
/// a record claiming `MAX_RECORD_LEN + 1` bytes must be rejected before
/// allocation. Its discard runs off the end of the file, so the skip
/// also flags the truncated tail.
fn lying_lengths() -> Vec<u8> {
    let mut out = global_header(0);
    valid(
        &mut out,
        200,
        &PacketBuilder::new(src(4), dst(4)).icmpv6_echo_request(8, 1, b"ping"),
    );
    record(
        &mut out,
        201,
        MAX_RECORD_LEN + 1,
        MAX_RECORD_LEN + 1,
        &[0xaa; 16],
    );
    out
}

/// Two valid records, then 7 stray bytes — a partial record header.
fn truncated_header() -> Vec<u8> {
    let mut out = global_header(65_535);
    for (i, n) in [5u16, 6].into_iter().enumerate() {
        valid(
            &mut out,
            300 + i as u32,
            &PacketBuilder::new(src(n), dst(n)).icmpv6_echo_request(9, n, b"scan"),
        );
    }
    out.extend_from_slice(&[0x01; 7]);
    out
}

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tests/corpus".into());
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    for (name, bytes) in [
        ("clean.pcap", clean()),
        ("mixed.pcap", mixed()),
        ("lying_lengths.pcap", lying_lengths()),
        ("truncated_header.pcap", truncated_header()),
    ] {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, &bytes).expect("write corpus file");
        println!("wrote {path} ({} bytes)", bytes.len());
    }
}
