//! The streaming contract (DESIGN.md §10), pinned end to end: the chunked
//! bounded-memory pipeline must produce byte-identical output to the batch
//! path at every chunk size and thread count, even with damaged records
//! straddling chunk boundaries, and its open-session table must stay
//! bounded by the eviction horizon rather than by the corpus size.

use sixscope::{Pipeline, PipelineOutput};
use sixscope_packet::{PacketBuilder, PcapRecord, PcapWriter};
use sixscope_telescope::TelescopeId;
use sixscope_types::SimTime;
use std::net::Ipv6Addr;
use std::path::PathBuf;

const HOUR: u64 = 3600;
/// Distinct /64-separated sources in the synthetic corpus.
const SOURCES: u64 = 4;
/// Activity bursts per source, separated by 3 h (> the 1 h timeout), so
/// each burst opens a fresh session.
const BURSTS: u64 = 3;

fn source(s: u64) -> Ipv6Addr {
    Ipv6Addr::from((0x2a0a_u128 << 112) | ((s as u128) << 64) | 1)
}

/// One burst's records: every source interleaved, 6 packets each, with a
/// protocol mix so the report exercises all render paths.
fn burst_records(burst: u64) -> Vec<PcapRecord> {
    let base = 1_000 + burst * 3 * HOUR;
    let mut records = Vec::new();
    for j in 0..6u64 {
        for s in 0..SOURCES {
            let b = PacketBuilder::new(source(s), "2001:db8::1".parse().unwrap());
            let data = match (s + j) % 3 {
                0 => b.icmpv6_echo_request(1, j as u16, b"yarrp"),
                1 => b.tcp_syn(40_000, 443, j as u32, &[]),
                _ => b.udp(40_001, 33_434, b"probe"),
            };
            records.push(PcapRecord {
                ts: SimTime::from_secs(base + j * 60 + s * 10),
                ts_micros: 0,
                data,
            });
        }
    }
    records
}

/// A recoverable damaged record: `incl_len` (8) exceeds `orig_len` (2),
/// so the reader skips its 8 junk bytes and re-synchronizes.
fn damaged_record(ts: u32) -> Vec<u8> {
    let mut v = Vec::new();
    v.extend_from_slice(&ts.to_le_bytes());
    v.extend_from_slice(&0u32.to_le_bytes());
    v.extend_from_slice(&8u32.to_le_bytes());
    v.extend_from_slice(&2u32.to_le_bytes());
    v.extend_from_slice(&[0xde; 8]);
    v
}

fn pcap_with(records: &[PcapRecord]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for r in records {
        w.write_record(r).unwrap();
    }
    w.into_inner().unwrap()
}

/// Writes the two-file corpus: file A holds bursts 0 and 1 with a damaged
/// record between them (so damage lands mid-file, straddling chunk
/// boundaries at small chunk sizes); file B holds burst 2.
fn write_corpus() -> (PathBuf, Vec<PathBuf>) {
    let dir = std::env::temp_dir().join(format!("sixscope-stream-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut a = pcap_with(&burst_records(0));
    a.extend_from_slice(&damaged_record(2_000));
    // Strip the second writer's 24-byte global header to splice records.
    a.extend_from_slice(&pcap_with(&burst_records(1))[24..]);
    let b = pcap_with(&burst_records(2));

    let path_a = dir.join("a.pcap");
    let path_b = dir.join("b.pcap");
    std::fs::write(&path_a, a).unwrap();
    std::fs::write(&path_b, b).unwrap();
    (dir, vec![path_a, path_b])
}

fn run(paths: &[PathBuf], chunk: Option<usize>, threads: usize) -> PipelineOutput {
    let mut p = Pipeline::from_pcaps(paths.to_vec()).threads(threads);
    if let Some(n) = chunk {
        p = p.chunk_records(n);
    }
    p.run_detailed().expect("corpus must stream")
}

fn report(out: &PipelineOutput) -> String {
    sixscope::ingest::render_report(
        out.analyzed.capture(TelescopeId::T1),
        out.analyzed.sessions128(TelescopeId::T1),
        &out.stats,
        "corpus",
    )
}

#[test]
fn chunked_streaming_is_byte_identical_to_batch() {
    let (dir, paths) = write_corpus();
    let reference = run(&paths, None, 1);
    assert_eq!(
        reference.stats.skipped_total(),
        1,
        "the damaged record must be skip-counted"
    );
    let expected_sessions = (SOURCES * BURSTS) as usize;
    assert_eq!(
        reference.analyzed.sessions128(TelescopeId::T1).len(),
        expected_sessions
    );
    let reference_report = report(&reference);
    for chunk in [1usize, 7, 10_000] {
        for threads in [1usize, 8] {
            let out = run(&paths, Some(chunk), threads);
            assert_eq!(
                report(&out),
                reference_report,
                "report bytes diverged at chunk={chunk} threads={threads}"
            );
            assert_eq!(
                out.analyzed.sessions128(TelescopeId::T1),
                reference.analyzed.sessions128(TelescopeId::T1),
                "/128 sessions diverged at chunk={chunk} threads={threads}"
            );
            assert_eq!(
                out.analyzed.sessions64(TelescopeId::T1),
                reference.analyzed.sessions64(TelescopeId::T1),
                "/64 sessions diverged at chunk={chunk} threads={threads}"
            );
            assert_eq!(out.stats, reference.stats);
        }
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn open_session_table_is_bounded_by_the_eviction_horizon() {
    let (dir, paths) = write_corpus();
    let out = run(&paths, Some(7), 1);
    // 12 sessions total, but only SOURCES of them are ever live at once:
    // the 3 h inter-burst gap exceeds the 1 h eviction horizon, so each
    // burst's sessions are evicted before the next burst opens.
    let total = out.analyzed.sessions128(TelescopeId::T1).len();
    assert_eq!(total, (SOURCES * BURSTS) as usize);
    assert!(
        out.analyzed.peak_open_sessions <= SOURCES as usize,
        "peak open sessions {} exceeds the live-source bound {SOURCES}",
        out.analyzed.peak_open_sessions
    );
    assert!(out.analyzed.peak_open_sessions > 0);
    assert!(out.analyzed.peak_open_sessions < total);
    let _ = std::fs::remove_dir_all(dir);
}
