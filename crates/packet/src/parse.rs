//! Whole-packet parsing — the telescope's first processing step.
//!
//! [`ParsedPacket`] decodes the IPv6 header and the transport header and
//! keeps the upper-layer payload as a cheaply-cloneable [`bytes::Bytes`];
//! payload bytes feed the tool-fingerprint clustering of §5.4.

use crate::error::PacketError;
use crate::icmpv6::Icmpv6Header;
use crate::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use bytes::Bytes;

/// The decoded transport header of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// ICMPv6 message.
    Icmpv6(Icmpv6Header),
    /// TCP segment.
    Tcp(TcpHeader),
    /// UDP datagram.
    Udp(UdpHeader),
    /// An upper-layer protocol the telescope does not decode.
    Other(u8),
}

impl Transport {
    /// Short protocol label used in reports ("ICMPv6" / "TCP" / "UDP").
    pub fn protocol_name(&self) -> &'static str {
        match self {
            Transport::Icmpv6(_) => "ICMPv6",
            Transport::Tcp(_) => "TCP",
            Transport::Udp(_) => "UDP",
            Transport::Other(_) => "Other",
        }
    }
}

/// A fully parsed IPv6 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// The IPv6 fixed header.
    pub header: Ipv6Header,
    /// The decoded transport header.
    pub transport: Transport,
    /// Upper-layer payload (after the transport header).
    pub payload: Bytes,
}

impl ParsedPacket {
    /// Parses raw IPv6 packet bytes.
    ///
    /// The declared IPv6 payload length must fit in the buffer; extra
    /// trailing bytes (link padding) are ignored. Transport checksums are
    /// *not* enforced here — telescopes record damaged probes too — use the
    /// per-protocol `verify_checksum` helpers when validity matters.
    pub fn parse(buf: &[u8]) -> Result<ParsedPacket, PacketError> {
        let header = Ipv6Header::decode(buf)?;
        let declared = header.payload_len as usize;
        let rest = &buf[IPV6_HEADER_LEN..];
        if declared > rest.len() {
            return Err(PacketError::LengthMismatch {
                what: "IPv6 payload length",
                declared,
                actual: rest.len(),
            });
        }
        let upper = &rest[..declared];
        let (transport, payload) = match header.next_header {
            NextHeader::Icmpv6 => {
                let (h, p) = Icmpv6Header::decode(upper)?;
                (Transport::Icmpv6(h), p)
            }
            NextHeader::Tcp => {
                let (h, p) = TcpHeader::decode(upper)?;
                (Transport::Tcp(h), p)
            }
            NextHeader::Udp => {
                let (h, p) = UdpHeader::decode(upper)?;
                (Transport::Udp(h), p)
            }
            NextHeader::Other(v) => (Transport::Other(v), upper),
        };
        Ok(ParsedPacket {
            header,
            transport,
            payload: Bytes::copy_from_slice(payload),
        })
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.dst_port),
            Transport::Udp(h) => Some(h.dst_port),
            _ => None,
        }
    }

    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.src_port),
            Transport::Udp(h) => Some(h.src_port),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv6Addr;

    fn b() -> PacketBuilder {
        PacketBuilder::new(
            "2001:db8::1".parse::<Ipv6Addr>().unwrap(),
            "2001:db8::2".parse::<Ipv6Addr>().unwrap(),
        )
    }

    #[test]
    fn parse_rejects_overdeclared_payload() {
        let mut bytes = b().udp(1, 2, b"hello");
        // Claim 200 bytes of payload.
        bytes[4..6].copy_from_slice(&200u16.to_be_bytes());
        assert!(matches!(
            ParsedPacket::parse(&bytes),
            Err(PacketError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn parse_ignores_link_padding() {
        let mut bytes = b().udp(1, 2, b"hi");
        bytes.extend_from_slice(&[0u8; 6]); // Ethernet-style padding
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(&p.payload[..], b"hi");
    }

    #[test]
    fn other_protocol_is_preserved() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut hdr = crate::ipv6::Ipv6Header::new(src, dst, NextHeader::Other(132), 4);
        let mut bytes = Vec::new();
        hdr.payload_len = 4;
        hdr.encode(&mut bytes);
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.transport, Transport::Other(132));
        assert_eq!(&p.payload[..], &[1, 2, 3, 4]);
        assert_eq!(p.dst_port(), None);
    }

    #[test]
    fn protocol_names() {
        let p = ParsedPacket::parse(&b().icmpv6_echo_request(1, 1, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "ICMPv6");
        let p = ParsedPacket::parse(&b().tcp_syn(1, 2, 3, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "TCP");
        let p = ParsedPacket::parse(&b().udp(1, 2, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "UDP");
    }
}
