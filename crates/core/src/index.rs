//! The columnar corpus index: per-packet derived columns built once, so
//! every table and figure becomes a slice-and-count.
//!
//! The report layer used to re-derive the same per-packet facts — source
//! keys, RFC 7707 address class, port label, week/day bucket, AS metadata —
//! once per table and once per figure, walking every capture up to twenty
//! times. [`CorpusIndex::build`] walks each capture exactly once (in
//! parallel per telescope through [`map_indexed`]) and materializes dense
//! columns plus a handful of session-level caches; the consumers in
//! [`crate::tables`] and [`crate::figures`] then reduce over integer
//! columns.
//!
//! # Determinism obligations
//!
//! The byte-identical-output contract of DESIGN.md §6 extends to this
//! layer (§7): every column is a pure function of its capture, interning
//! assigns ids in ascending key order (so iterating ids ≡ iterating a
//! `BTreeMap` keyed by the underlying value), and all parallel stages go
//! through the order-preserving [`map_indexed`] over deterministic job
//! lists. Captures are time-sorted by construction, which makes every time
//! window a `partition_point` slice.

use crate::error::Error;
use sixscope_analysis::addrtype::classify;
use sixscope_analysis::classify::{
    addr_selection, profile_scanners, AddrSelection, ScannerProfile,
};
use sixscope_analysis::heavy::{heavy_hitters_from_counts, HeavyHitter, HEAVY_HITTER_SHARE};
use sixscope_sim::{CompiledVisibility, ExperimentResult};
use sixscope_telescope::{AggLevel, Capture, Protocol, ScanSession, SourceKey, TelescopeId};
use sixscope_types::ports::PortLabel;
use sixscope_types::{
    chunk_ranges, map_indexed, num_threads, InternTable, Ipv6Prefix, PrefixTrie, SimTime,
};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// Sentinel id for "no value" (unresolved AS, unrouted destination, …).
pub const NO_ID: u32 = u32::MAX;

/// Protocol code of [`Protocol::Icmpv6`].
pub const PROTO_ICMPV6: u8 = 0;
/// Protocol code of [`Protocol::Tcp`].
pub const PROTO_TCP: u8 = 1;
/// Protocol code of [`Protocol::Udp`].
pub const PROTO_UDP: u8 = 2;
/// Protocol code of [`Protocol::Other`].
pub const PROTO_OTHER: u8 = 3;

/// Dense protocol code (bit position for session protocol masks).
pub fn proto_code(p: Protocol) -> u8 {
    match p {
        Protocol::Icmpv6 => PROTO_ICMPV6,
        Protocol::Tcp => PROTO_TCP,
        Protocol::Udp => PROTO_UDP,
        Protocol::Other => PROTO_OTHER,
    }
}

/// Port-column code for "no classified destination port".
pub const PORT_NONE: u32 = 0;

/// Encodes a [`PortLabel`] as a dense `u32`. Code order equals
/// [`PortLabel`]'s `Ord` (`Traceroute` sorts before any `Port`), so sorting
/// codes sorts labels.
pub fn encode_port(label: PortLabel) -> u32 {
    match label {
        PortLabel::Traceroute => 1,
        PortLabel::Port(p) => p as u32 + 2,
    }
}

/// Inverse of [`encode_port`]; `None` for [`PORT_NONE`].
pub fn decode_port(code: u32) -> Option<PortLabel> {
    match code {
        PORT_NONE => None,
        1 => Some(PortLabel::Traceroute),
        p => Some(PortLabel::Port((p - 2) as u16)),
    }
}

/// The interned source universe: every /128 and /64 source observed at any
/// telescope, with per-source metadata resolved once.
///
/// Ids are assigned in ascending [`SourceKey`] order, so walking ids
/// `0..len` visits sources exactly as a `BTreeSet<SourceKey>` would.
#[derive(Debug, Clone)]
pub struct SourceTable {
    keys128: Vec<SourceKey>,
    keys64: Vec<SourceKey>,
    /// Hash lookup key → sorted id. Built by inserting the sorted key
    /// vectors in order, so arena ids coincide with sorted ids and a `get`
    /// is O(1) instead of a binary search per packet.
    lookup128: InternTable<SourceKey>,
    lookup64: InternTable<SourceKey>,
    /// Origin AS per /128 source via the routing-data join (`NO_ID` when
    /// the source's subnet has no mapping).
    asn128: Vec<u32>,
    /// Origin AS per /128 source, only where full AS *metadata* resolves.
    info_asn128: Vec<u32>,
    /// Country id per /128 source (index into `countries`; `NO_ID` when
    /// metadata is absent).
    country128: Vec<u32>,
    countries: Vec<String>,
}

impl SourceTable {
    /// Number of distinct /128 sources.
    pub fn len128(&self) -> usize {
        self.keys128.len()
    }

    /// Number of distinct /64 sources.
    pub fn len64(&self) -> usize {
        self.keys64.len()
    }

    /// The /128 source key of an id.
    pub fn key128(&self, id: u32) -> SourceKey {
        self.keys128[id as usize]
    }

    /// The /64 source key of an id.
    pub fn key64(&self, id: u32) -> SourceKey {
        self.keys64[id as usize]
    }

    /// Id of a /128 source key, if interned.
    pub fn id128(&self, key: &SourceKey) -> Option<u32> {
        self.lookup128.get(key)
    }

    /// Id of a /64 source key, if interned.
    pub fn id64(&self, key: &SourceKey) -> Option<u32> {
        self.lookup64.get(key)
    }

    /// Origin AS number of a /128 source id (`NO_ID` when unresolved).
    pub fn asn(&self, id: u32) -> u32 {
        self.asn128[id as usize]
    }

    /// Origin AS of a /128 source id where AS metadata exists.
    pub fn info_asn(&self, id: u32) -> u32 {
        self.info_asn128[id as usize]
    }

    /// Country id of a /128 source id (`NO_ID` when metadata is absent).
    pub fn country(&self, id: u32) -> u32 {
        self.country128[id as usize]
    }

    /// The interned country strings (ascending).
    pub fn countries(&self) -> &[String] {
        &self.countries
    }
}

/// Dense per-packet columns of one telescope's capture, index-aligned with
/// [`Capture::packets`]. The capture is time-sorted, so `ts` is
/// non-decreasing and any `[from, until)` window is a `partition_point`
/// slice.
#[derive(Debug, Clone)]
pub struct PacketColumns {
    /// Arrival time (non-decreasing).
    pub ts: Vec<SimTime>,
    /// Interned /128 source id.
    pub src128: Vec<u32>,
    /// Interned /64 source id.
    pub src64: Vec<u32>,
    /// RFC 7707 class of the destination ([`sixscope_analysis::addrtype::AddressType::code`]).
    pub class: Vec<u8>,
    /// Transport protocol code ([`proto_code`]).
    pub proto: Vec<u8>,
    /// Classified destination-port code ([`encode_port`]; [`PORT_NONE`]
    /// for ICMPv6/other or missing ports).
    pub port: Vec<u32>,
    /// Zero-based week bucket of the arrival time.
    pub week: Vec<u32>,
    /// Zero-based day bucket of the arrival time.
    pub day: Vec<u32>,
    /// Destination address bits. Lets per-session consumers (Fig. 14/17)
    /// assemble target-bit sequences straight from the column instead of
    /// re-walking the capture's packet structs.
    pub dst: Vec<u128>,
    /// Announced-prefix id covering the destination at arrival time
    /// (longest match through [`CompiledVisibility`]; `NO_ID` when
    /// unrouted). Ids index [`PacketColumns::prefixes`].
    pub prefix: Vec<u32>,
    prefixes: Vec<Ipv6Prefix>,
}

impl PacketColumns {
    /// Derives all columns from one capture.
    ///
    /// # Panics
    /// Panics when the capture is not time-sorted (simulated captures are
    /// by construction; replayed ones must be sorted first).
    pub fn build(
        capture: &Capture,
        sources: &SourceTable,
        visibility: &CompiledVisibility,
    ) -> PacketColumns {
        assert!(
            capture.is_time_sorted(),
            "corpus index requires a time-sorted capture"
        );
        let n = capture.len();
        let mut cols = PacketColumns {
            ts: Vec::with_capacity(n),
            src128: Vec::with_capacity(n),
            src64: Vec::with_capacity(n),
            class: Vec::with_capacity(n),
            proto: Vec::with_capacity(n),
            port: Vec::with_capacity(n),
            week: Vec::with_capacity(n),
            day: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            prefix: Vec::with_capacity(n),
            prefixes: Vec::new(),
        };
        // Prefix ids are assigned in first-encounter order (the intern
        // table's arena order); only the id→prefix direction is consumed,
        // so any stable assignment works.
        let mut prefix_ids: InternTable<Ipv6Prefix> = InternTable::new();
        for p in capture.packets() {
            cols.ts.push(p.ts);
            let k128 = SourceKey::new(p.src, AggLevel::Addr128);
            let k64 = SourceKey::new(p.src, AggLevel::Subnet64);
            cols.src128
                .push(sources.id128(&k128).expect("every packet source interned"));
            cols.src64.push(sources.id64(&k64).expect("interned /64"));
            cols.class.push(classify(p.dst).code());
            cols.proto.push(proto_code(p.protocol));
            let port = match (p.protocol, p.dst_port) {
                (Protocol::Tcp, Some(port)) => encode_port(PortLabel::classify_tcp(port)),
                (Protocol::Udp, Some(port)) => encode_port(PortLabel::classify_udp(port)),
                _ => PORT_NONE,
            };
            cols.port.push(port);
            cols.week.push(p.ts.week() as u32);
            cols.day.push(p.ts.day() as u32);
            cols.dst.push(u128::from(p.dst));
            let prefix = match visibility.lpm(p.dst, p.ts) {
                Some(pre) => prefix_ids.insert(pre).id,
                None => NO_ID,
            };
            cols.prefix.push(prefix);
        }
        cols.prefixes = prefix_ids.into_keys();
        cols
    }

    /// Number of packets.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the capture was empty.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// Index range of packets with `from <= ts < until`.
    pub fn range(&self, from: SimTime, until: SimTime) -> Range<usize> {
        let lo = self.ts.partition_point(|&t| t < from);
        let hi = self.ts.partition_point(|&t| t < until);
        lo..hi
    }

    /// Index range of packets with `ts < until`.
    pub fn range_until(&self, until: SimTime) -> Range<usize> {
        0..self.ts.partition_point(|&t| t < until)
    }

    /// Index range of packets with `ts >= from`.
    pub fn range_from(&self, from: SimTime) -> Range<usize> {
        self.ts.partition_point(|&t| t < from)..self.ts.len()
    }

    /// The interned announced prefixes (id = index).
    pub fn prefixes(&self) -> &[Ipv6Prefix] {
        &self.prefixes
    }
}

/// Append-only partial packet columns of one telescope — the mergeable
/// unit of the streaming pipeline (DESIGN.md §10).
///
/// A shard accumulates exactly the per-packet facts [`PacketColumns`]
/// stores, except that source addresses stay raw (`u128`): global source
/// ids cannot be assigned until every chunk has been seen. The streaming
/// pipeline appends one chunk at a time with [`IndexShard::push_range`],
/// merges shards in capture order with [`IndexShard::absorb`] (mirroring
/// `Capture::absorb`), and finally [`CorpusIndex::from_shards`] interns the
/// union of the shard source sets and resolves the raw columns to ids —
/// producing columns byte-identical to a batch [`PacketColumns::build`]
/// over the concatenated capture.
#[derive(Debug, Clone, Default)]
pub struct IndexShard {
    /// Shard-local source interning. Arena order is first-encounter; the
    /// merge sorts the union, so final ids still land in ascending key
    /// order exactly as the old `BTreeSet` union assigned them.
    ///
    /// (Fields are `pub(crate)` so the shard-file codec can write them out
    /// and rebuild validated shards without an intermediate copy.)
    pub(crate) sources128: InternTable<SourceKey>,
    pub(crate) sources64: InternTable<SourceKey>,
    pub(crate) ts: Vec<SimTime>,
    /// Raw source address per packet (resolved to ids at merge time).
    pub(crate) src: Vec<u128>,
    pub(crate) class: Vec<u8>,
    pub(crate) proto: Vec<u8>,
    pub(crate) port: Vec<u32>,
    pub(crate) week: Vec<u32>,
    pub(crate) day: Vec<u32>,
    pub(crate) dst: Vec<u128>,
    pub(crate) prefix: Vec<u32>,
    /// Shard-local announced-prefix interning (first-encounter order, as in
    /// [`PacketColumns::build`]); remapped on absorb.
    pub(crate) prefix_ids: InternTable<Ipv6Prefix>,
}

impl IndexShard {
    /// An empty shard.
    pub fn new() -> Self {
        IndexShard::default()
    }

    /// Number of packets appended so far.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True before the first packet.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The distinct /128 and /64 sources seen so far.
    pub fn source_counts(&self) -> (usize, usize) {
        (self.sources128.len(), self.sources64.len())
    }

    /// Appends one contiguous chunk of `capture`'s packets.
    ///
    /// # Panics
    /// Panics when the chunk's packets are not in non-decreasing time order
    /// relative to what the shard already holds — the shard-level form of
    /// [`PacketColumns::build`]'s time-sorted requirement.
    pub fn push_range(
        &mut self,
        capture: &Capture,
        range: Range<usize>,
        visibility: &CompiledVisibility,
    ) {
        let packets = &capture.packets()[range];
        self.ts.reserve(packets.len());
        // Packets are non-decreasing in time (asserted below), so the
        // epoch lookup rides a monotone cursor instead of a binary search
        // per packet.
        let epoch_cursor = std::cell::Cell::new(0);
        for p in packets {
            assert!(
                self.ts.last().is_none_or(|&t| t <= p.ts),
                "index shard requires non-decreasing packet times"
            );
            self.ts.push(p.ts);
            self.sources128
                .insert(SourceKey::new(p.src, AggLevel::Addr128));
            self.sources64
                .insert(SourceKey::new(p.src, AggLevel::Subnet64));
            // (InternTable::insert is idempotent, like the set insert it
            // replaced — one hash probe instead of an ordered-tree walk.)
            self.src.push(u128::from(p.src));
            self.class.push(classify(p.dst).code());
            self.proto.push(proto_code(p.protocol));
            let port = match (p.protocol, p.dst_port) {
                (Protocol::Tcp, Some(port)) => encode_port(PortLabel::classify_tcp(port)),
                (Protocol::Udp, Some(port)) => encode_port(PortLabel::classify_udp(port)),
                _ => PORT_NONE,
            };
            self.port.push(port);
            self.week.push(p.ts.week() as u32);
            self.day.push(p.ts.day() as u32);
            self.dst.push(u128::from(p.dst));
            let prefix = match visibility.lpm_cached(p.dst, p.ts, &epoch_cursor) {
                Some(pre) => self.prefix_ids.insert(pre).id,
                None => NO_ID,
            };
            self.prefix.push(prefix);
        }
    }

    /// Order-preserving merge: appends `other`'s columns after this shard's
    /// (chunks must be absorbed in capture order, like `Capture::absorb`
    /// shards), unions the source sets, and remaps `other`'s local prefix
    /// ids — preserving global first-encounter order, so the merged shard
    /// is indistinguishable from one built sequentially.
    ///
    /// # Panics
    /// Panics when `other` starts before this shard ends (time order) —
    /// appropriate for the in-process streaming path, where chunk order is
    /// a pipeline invariant and violating it is a bug. File-loaded shards
    /// are user input, not invariants: route those through
    /// [`IndexShard::try_absorb`] instead.
    pub fn absorb(&mut self, other: IndexShard) {
        if let (Some(&end), Some(&start)) = (self.ts.last(), other.ts.first()) {
            assert!(end <= start, "absorbing an out-of-order index shard");
        }
        self.merge_unchecked(other);
    }

    /// Checked form of [`IndexShard::absorb`] for shards loaded from files:
    /// an out-of-order shard yields [`Error::Analysis`] (CLI exit code 6)
    /// instead of aborting the process, and `self` is left untouched.
    pub fn try_absorb(&mut self, other: IndexShard) -> Result<(), Error> {
        if let (Some(&end), Some(&start)) = (self.ts.last(), other.ts.first()) {
            if end > start {
                return Err(Error::Analysis(format!(
                    "out-of-order index shard: previous shard ends at t={} \
                     but next starts at t={} — pass shard files in capture \
                     order",
                    end.as_secs(),
                    start.as_secs()
                )));
            }
        }
        self.merge_unchecked(other);
        Ok(())
    }

    /// The shared merge body of [`IndexShard::absorb`] and
    /// [`IndexShard::try_absorb`]; callers have already established time
    /// order.
    fn merge_unchecked(&mut self, other: IndexShard) {
        let remap: Vec<u32> = other
            .prefix_ids
            .keys()
            .iter()
            .map(|&pre| self.prefix_ids.insert(pre).id)
            .collect();
        // One exact reservation per column, then append — the merge path
        // must never grow a destination vector mid-extend (realloc churn is
        // what this guards against; the debug assertion pins it).
        let n = other.ts.len();
        self.prefix.reserve_exact(n);
        self.ts.reserve_exact(n);
        self.src.reserve_exact(n);
        self.class.reserve_exact(n);
        self.proto.reserve_exact(n);
        self.port.reserve_exact(n);
        self.week.reserve_exact(n);
        self.day.reserve_exact(n);
        self.dst.reserve_exact(n);
        let cap_before = (self.ts.capacity(), self.dst.capacity());
        for id in other.prefix {
            self.prefix.push(if id == NO_ID {
                NO_ID
            } else {
                remap[id as usize]
            });
        }
        self.ts.extend(other.ts);
        self.src.extend(other.src);
        self.class.extend(other.class);
        self.proto.extend(other.proto);
        self.port.extend(other.port);
        self.week.extend(other.week);
        self.day.extend(other.day);
        self.dst.extend(other.dst);
        debug_assert_eq!(
            (self.ts.capacity(), self.dst.capacity()),
            cap_before,
            "IndexShard::absorb reallocated mid-merge"
        );
        self.sources128.absorb(&other.sources128);
        self.sources64.absorb(&other.sources64);
    }

    /// Resolves the raw source column against the final interned source
    /// table, consuming the shard into finished [`PacketColumns`].
    fn finalize(self, sources: &SourceTable) -> PacketColumns {
        let mut src128 = Vec::with_capacity(self.src.len());
        let mut src64 = Vec::with_capacity(self.src.len());
        for &raw in &self.src {
            let addr = std::net::Ipv6Addr::from(raw);
            let k128 = SourceKey::new(addr, AggLevel::Addr128);
            let k64 = SourceKey::new(addr, AggLevel::Subnet64);
            // O(1) hash lookups against the final table — this loop runs
            // twice per packet and used to binary-search a sorted vector.
            src128.push(sources.id128(&k128).expect("every packet source interned"));
            src64.push(sources.id64(&k64).expect("interned /64"));
        }
        PacketColumns {
            ts: self.ts,
            src128,
            src64,
            class: self.class,
            proto: self.proto,
            port: self.port,
            week: self.week,
            day: self.day,
            dst: self.dst,
            prefix: self.prefix,
            prefixes: self.prefix_ids.into_keys(),
        }
    }
}

/// Dense per-session columns, index-aligned with the session vector they
/// were built from. Session starts are non-decreasing (sessions are created
/// at first-packet time from time-sorted captures), so start-time windows
/// are `partition_point` slices too.
#[derive(Debug, Clone)]
pub struct SessionColumns {
    /// First-packet time (non-decreasing).
    pub start: Vec<SimTime>,
    /// Interned source id (at the session's aggregation level).
    pub source: Vec<u32>,
    /// Packet count.
    pub packets: Vec<u32>,
    /// Bitmask of protocol codes present (`1 << proto_code`).
    pub proto_mask: Vec<u8>,
}

impl SessionColumns {
    /// Derives the columns for one telescope's session list.
    pub fn build(
        sessions: &[ScanSession],
        level: AggLevel,
        sources: &SourceTable,
        packets: &PacketColumns,
    ) -> SessionColumns {
        let mut cols = SessionColumns {
            start: Vec::with_capacity(sessions.len()),
            source: Vec::with_capacity(sessions.len()),
            packets: Vec::with_capacity(sessions.len()),
            proto_mask: Vec::with_capacity(sessions.len()),
        };
        for s in sessions {
            cols.start.push(s.start);
            let id = match level {
                AggLevel::Addr128 => sources.id128(&s.source).expect("session source interned"),
                _ => sources.id64(&s.source).expect("interned /64"),
            };
            cols.source.push(id);
            cols.packets.push(s.packet_indices.len() as u32);
            let mut mask = 0u8;
            for &pi in &s.packet_indices {
                mask |= 1 << packets.proto[pi as usize];
            }
            cols.proto_mask.push(mask);
        }
        assert!(
            cols.start.windows(2).all(|w| w[0] <= w[1]),
            "session starts must be non-decreasing"
        );
        cols
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.start.len()
    }

    /// True when no sessions exist.
    pub fn is_empty(&self) -> bool {
        self.start.is_empty()
    }

    /// Index range of sessions with `from <= start < until`.
    pub fn range(&self, from: SimTime, until: SimTime) -> Range<usize> {
        let lo = self.start.partition_point(|&t| t < from);
        let hi = self.start.partition_point(|&t| t < until);
        lo..hi
    }
}

/// A contiguous window of one telescope's /128 sessions together with its
/// temporal scanner profiles. `profiles[*].session_indices` are relative to
/// the window (add `range.start` for capture-level session indices).
#[derive(Debug, Clone)]
pub struct ProfiledWindow {
    /// Window into the telescope's /128 session vector.
    pub range: Range<usize>,
    /// Temporal profiles of the window's scanners.
    pub profiles: Vec<ScannerProfile>,
}

/// Caches for the T1 split period: the profiled window plus per-session
/// announcement-cycle attribution.
#[derive(Debug, Clone)]
pub struct SplitCache {
    /// All T1 /128 sessions starting at or after the split boundary.
    pub window: ProfiledWindow,
    /// The same window clipped to the layout end (what Fig. 15 profiles);
    /// `None` when no session starts past the layout end and the unbounded
    /// window is identical.
    pub bounded: Option<ProfiledWindow>,
    /// `SplitSchedule::cycle_at` of each window session's start.
    pub cycles: Vec<Option<u32>>,
    /// Most-specific announced prefixes each window session probed,
    /// evaluated against the announced set of its cycle (the final set for
    /// sessions at or past the final cycle start). Sorted ascending.
    pub prefix_hits: Vec<Vec<Ipv6Prefix>>,
}

/// The full corpus index carried on [`crate::Analyzed`].
#[derive(Debug, Clone)]
pub struct CorpusIndex {
    /// The interned source universe.
    pub sources: SourceTable,
    packets: BTreeMap<TelescopeId, PacketColumns>,
    sess128: BTreeMap<TelescopeId, SessionColumns>,
    sess64: BTreeMap<TelescopeId, SessionColumns>,
    /// Cached address-selection per /128 session: all sessions for T1,
    /// the initial window for the other telescopes.
    addr_sel: BTreeMap<TelescopeId, Vec<AddrSelection>>,
    initial: BTreeMap<TelescopeId, ProfiledWindow>,
    split: SplitCache,
    heavy: BTreeMap<TelescopeId, Vec<HeavyHitter>>,
}

impl CorpusIndex {
    /// Builds the index from a finished experiment and its session lists.
    ///
    /// All stages fan out through [`map_indexed`] over deterministic job
    /// lists (per telescope, or contiguous [`chunk_ranges`] shards), so the
    /// index — and everything derived from it — is identical at any
    /// `SIXSCOPE_THREADS`.
    pub fn build(
        result: &ExperimentResult,
        sessions128: &BTreeMap<TelescopeId, Vec<ScanSession>>,
        sessions64: &BTreeMap<TelescopeId, Vec<ScanSession>>,
    ) -> CorpusIndex {
        let threads = num_threads(None);
        // Batch is one-big-chunk streaming: build one shard per telescope
        // in a single push, then merge. One code path, byte-identical
        // output either way (DESIGN.md §10).
        let compiled = CompiledVisibility::compile(&result.visibility);
        let built = map_indexed(threads, &TelescopeId::ALL, |_, id| {
            let capture = &result.captures[id];
            let mut shard = IndexShard::new();
            shard.push_range(capture, 0..capture.len(), &compiled);
            shard
        });
        let shards: BTreeMap<TelescopeId, IndexShard> =
            TelescopeId::ALL.into_iter().zip(built).collect();
        Self::from_shards(result, shards, sessions128, sessions64, threads)
    }

    /// Assembles the index from per-telescope [`IndexShard`]s the streaming
    /// pipeline accumulated. Every telescope must have a shard (empty is
    /// fine) whose length matches its capture in `result`.
    ///
    /// The merge is deterministic: the source universe is the union of the
    /// shard key sets (an intern-table union *sorted* before id
    /// assignment, so ids land in ascending key order exactly as the old
    /// `BTreeSet` union assigned them), raw source columns resolve to ids
    /// by O(1) hash lookup, and all downstream stages reduce over those
    /// columns through order-preserving [`map_indexed`].
    pub fn from_shards(
        result: &ExperimentResult,
        shards: BTreeMap<TelescopeId, IndexShard>,
        sessions128: &BTreeMap<TelescopeId, Vec<ScanSession>>,
        sessions64: &BTreeMap<TelescopeId, Vec<ScanSession>>,
        threads: usize,
    ) -> CorpusIndex {
        // Stage A: the source universe (union of shard key sets), then
        // per-source metadata.
        let mut all128: InternTable<SourceKey> = InternTable::new();
        let mut all64: InternTable<SourceKey> = InternTable::new();
        for id in TelescopeId::ALL {
            let shard = shards.get(&id).expect("a shard per telescope");
            assert_eq!(
                shard.len(),
                result.captures[&id].len(),
                "shard/capture length mismatch at {id}"
            );
            all128.absorb(&shard.sources128);
            all64.absorb(&shard.sources64);
        }
        let sources = Self::build_source_table(result, all128, all64);

        // Stage B: finalize per-telescope packet columns (resolve the raw
        // source columns against the final table). `map_indexed` hands out
        // references, so each shard is moved through a take-once cell.
        let cells: Vec<(TelescopeId, std::sync::Mutex<Option<IndexShard>>)> = shards
            .into_iter()
            .map(|(id, shard)| (id, std::sync::Mutex::new(Some(shard))))
            .collect();
        let built = map_indexed(threads, &cells, |_, (id, cell)| {
            let shard = cell
                .lock()
                .expect("no panics while holding the cell")
                .take()
                .expect("each shard finalized exactly once");
            (*id, shard.finalize(&sources))
        });
        let packets: BTreeMap<TelescopeId, PacketColumns> = built.into_iter().collect();

        // Stage C: session columns (four telescopes × two levels).
        let jobs: Vec<(TelescopeId, AggLevel)> = TelescopeId::ALL
            .into_iter()
            .flat_map(|id| [(id, AggLevel::Addr128), (id, AggLevel::Subnet64)])
            .collect();
        let built = map_indexed(threads, &jobs, |_, &(id, level)| {
            let sessions = match level {
                AggLevel::Addr128 => &sessions128[&id],
                _ => &sessions64[&id],
            };
            SessionColumns::build(sessions, level, &sources, &packets[&id])
        });
        let mut sess128: BTreeMap<TelescopeId, SessionColumns> = BTreeMap::new();
        let mut sess64: BTreeMap<TelescopeId, SessionColumns> = BTreeMap::new();
        for ((id, level), cols) in jobs.iter().copied().zip(built) {
            match level {
                AggLevel::Addr128 => sess128.insert(id, cols),
                _ => sess64.insert(id, cols),
            };
        }

        // Stage D: address selection. T1 needs full coverage (Fig. 12/15);
        // the other telescopes only their initial window (Fig. 7b).
        let boundary = result.schedule.cycle_start(1);
        let sel_jobs: Vec<(TelescopeId, Range<usize>)> = TelescopeId::ALL
            .into_iter()
            .flat_map(|id| {
                let covered = if id == TelescopeId::T1 {
                    sess128[&id].len()
                } else {
                    sess128[&id].range(SimTime::EPOCH, boundary).end
                };
                chunk_ranges(covered, threads)
                    .into_iter()
                    .map(move |r| (id, r))
            })
            .collect();
        let built = map_indexed(threads, &sel_jobs, |_, (id, r)| {
            let capture = &result.captures[id];
            let prefix_len = capture.config().prefix.len();
            sessions128[id][r.clone()]
                .iter()
                .map(|s| addr_selection(s, capture, prefix_len))
                .collect::<Vec<AddrSelection>>()
        });
        let mut addr_sel: BTreeMap<TelescopeId, Vec<AddrSelection>> = TelescopeId::ALL
            .into_iter()
            .map(|id| (id, Vec::new()))
            .collect();
        for ((id, _), shard) in sel_jobs.iter().zip(built) {
            addr_sel.get_mut(id).expect("all telescopes").extend(shard);
        }

        // Stage E: profiled windows (initial per telescope, T1 split).
        let mut initial = BTreeMap::new();
        for id in TelescopeId::ALL {
            let range = sess128[&id].range(SimTime::EPOCH, boundary);
            let profiles = profile_scanners(&sessions128[&id][range.clone()]);
            initial.insert(id, ProfiledWindow { range, profiles });
        }
        let t1 = &sessions128[&TelescopeId::T1];
        let t1_cols = &sess128[&TelescopeId::T1];
        let lo = t1_cols.range(SimTime::EPOCH, boundary).end;
        let window = ProfiledWindow {
            range: lo..t1.len(),
            profiles: profile_scanners(&t1[lo..]),
        };
        let hi_end = t1_cols.range(SimTime::EPOCH, result.layout.end).end;
        let bounded = (hi_end != t1.len()).then(|| ProfiledWindow {
            range: lo..hi_end,
            profiles: profile_scanners(&t1[lo..hi_end]),
        });

        // Stage F: per-session cycle attribution for the split window.
        let schedule = &result.schedule;
        let cycles: Vec<Option<u32>> = t1[lo..]
            .iter()
            .map(|s| schedule.cycle_at(s.start))
            .collect();
        let final_cycle = schedule.cycles;
        let final_start = schedule.cycle_start(final_cycle);
        let sets: Vec<Vec<Ipv6Prefix>> = (1..=final_cycle)
            .map(|c| schedule.announced_set(c))
            .collect();
        let capture = &result.captures[&TelescopeId::T1];
        let hit_jobs = chunk_ranges(t1.len() - lo, threads);
        let built = map_indexed(threads, &hit_jobs, |_, r| {
            r.clone()
                .map(|i| {
                    let s = &t1[lo + i];
                    let announced: &[Ipv6Prefix] = if s.start >= final_start {
                        match final_cycle {
                            0 => &[],
                            c => &sets[c as usize - 1],
                        }
                    } else {
                        match cycles[i] {
                            Some(c) if c >= 1 => &sets[c as usize - 1],
                            _ => &[],
                        }
                    };
                    session_prefix_hits(s, capture, announced)
                })
                .collect::<Vec<Vec<Ipv6Prefix>>>()
        });
        let prefix_hits: Vec<Vec<Ipv6Prefix>> = built.into_iter().flatten().collect();
        let split = SplitCache {
            window,
            bounded,
            cycles,
            prefix_hits,
        };

        // Stage G: heavy hitters from the interned per-source counts.
        let heavy = TelescopeId::ALL
            .into_iter()
            .map(|id| {
                let col = &packets[&id];
                let mut counts = vec![0u64; sources.len128()];
                for &src in &col.src128 {
                    counts[src as usize] += 1;
                }
                let hitters = heavy_hitters_from_counts(
                    id,
                    col.len() as u64,
                    counts
                        .iter()
                        .enumerate()
                        .filter(|&(_, &c)| c > 0)
                        .map(|(i, &c)| (sources.key128(i as u32), c)),
                    HEAVY_HITTER_SHARE,
                );
                (id, hitters)
            })
            .collect();

        CorpusIndex {
            sources,
            packets,
            sess128,
            sess64,
            addr_sel,
            initial,
            split,
            heavy,
        }
    }

    fn build_source_table(
        result: &ExperimentResult,
        all128: InternTable<SourceKey>,
        all64: InternTable<SourceKey>,
    ) -> SourceTable {
        let mut asn_by_subnet: PrefixTrie<u32> = PrefixTrie::new();
        for scanner in &result.population.scanners {
            asn_by_subnet.insert(scanner.source.subnet(), scanner.asn.get());
        }
        // Deterministic final id assignment: ascending key order, exactly
        // the order a `BTreeSet` union would have yielded (DESIGN.md §11).
        let (keys128, _) = all128.sorted_remap();
        let (keys64, _) = all64.sorted_remap();
        // Re-intern the sorted keys so hash lookups return sorted ids.
        let mut lookup128 = InternTable::with_capacity(keys128.len());
        for &k in &keys128 {
            lookup128.insert(k);
        }
        let mut lookup64 = InternTable::with_capacity(keys64.len());
        for &k in &keys64 {
            lookup64.insert(k);
        }
        let mut asn128 = Vec::with_capacity(keys128.len());
        let mut info_asn128 = Vec::with_capacity(keys128.len());
        let mut country_names = Vec::with_capacity(keys128.len());
        let mut country_set: BTreeSet<String> = BTreeSet::new();
        for key in &keys128 {
            let addr = key.prefix.network();
            let asn = asn_by_subnet.lookup(addr).map(|(_, &a)| a);
            asn128.push(asn.unwrap_or(NO_ID));
            let info = asn.and_then(|a| result.population.as_info(sixscope_types::Asn(a)));
            match info {
                Some(info) => {
                    info_asn128.push(info.asn.get());
                    let country = info.country.to_string();
                    country_set.insert(country.clone());
                    country_names.push(Some(country));
                }
                None => {
                    info_asn128.push(NO_ID);
                    country_names.push(None);
                }
            }
        }
        let countries: Vec<String> = country_set.into_iter().collect();
        let country128 = country_names
            .into_iter()
            .map(|name| match name {
                Some(name) => countries.binary_search(&name).expect("interned") as u32,
                None => NO_ID,
            })
            .collect();
        SourceTable {
            keys128,
            keys64,
            lookup128,
            lookup64,
            asn128,
            info_asn128,
            country128,
            countries,
        }
    }

    /// One telescope's packet columns.
    pub fn telescope(&self, id: TelescopeId) -> &PacketColumns {
        &self.packets[&id]
    }

    /// One telescope's /128 session columns.
    pub fn sessions128(&self, id: TelescopeId) -> &SessionColumns {
        &self.sess128[&id]
    }

    /// One telescope's /64 session columns.
    pub fn sessions64(&self, id: TelescopeId) -> &SessionColumns {
        &self.sess64[&id]
    }

    /// Cached address selection per /128 session. Valid for indices below
    /// the vector length: all of T1, the initial window elsewhere.
    pub fn addr_sel(&self, id: TelescopeId) -> &[AddrSelection] {
        &self.addr_sel[&id]
    }

    /// The profiled initial-period window of one telescope.
    pub fn initial(&self, id: TelescopeId) -> &ProfiledWindow {
        &self.initial[&id]
    }

    /// The T1 split-period caches.
    pub fn split(&self) -> &SplitCache {
        &self.split
    }

    /// The split window clipped to the layout end (Fig. 15's population).
    pub fn split_bounded(&self) -> &ProfiledWindow {
        self.split.bounded.as_ref().unwrap_or(&self.split.window)
    }

    /// Heavy hitters of one telescope (descending packets).
    pub fn heavy(&self, id: TelescopeId) -> &[HeavyHitter] {
        &self.heavy[&id]
    }
}

/// The most-specific announced prefixes a session probed, one entry per
/// prefix, ascending. Mirrors the per-packet attribution of Table 6 /
/// Fig. 10: each packet counts toward the longest announced prefix
/// containing its destination.
pub fn session_prefix_hits(
    session: &ScanSession,
    capture: &Capture,
    announced: &[Ipv6Prefix],
) -> Vec<Ipv6Prefix> {
    if announced.is_empty() {
        return Vec::new();
    }
    let mut hit: BTreeSet<Ipv6Prefix> = BTreeSet::new();
    for p in session.packets(capture) {
        let best = announced
            .iter()
            .filter(|pre| pre.contains(p.dst))
            .max_by_key(|pre| pre.len());
        if let Some(pre) = best {
            hit.insert(*pre);
        }
    }
    hit.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_codes_round_trip_and_order_like_labels() {
        assert_eq!(decode_port(PORT_NONE), None);
        let labels = [
            PortLabel::Traceroute,
            PortLabel::Port(0),
            PortLabel::Port(80),
            PortLabel::Port(443),
            PortLabel::Port(u16::MAX),
        ];
        for &l in &labels {
            assert_eq!(decode_port(encode_port(l)), Some(l));
        }
        // Code order ≡ label order.
        for w in labels.windows(2) {
            assert!(encode_port(w[0]) < encode_port(w[1]));
            assert!(w[0] < w[1]);
        }
    }

    /// A minimal shard whose packets sit at the given timestamps — enough
    /// structure to exercise the absorb order check.
    fn shard_at(ts: &[u64]) -> IndexShard {
        let mut s = IndexShard::new();
        for &t in ts {
            s.ts.push(SimTime::from_secs(t));
            s.src.push(1);
            s.class.push(0);
            s.proto.push(0);
            s.port.push(0);
            s.week.push(0);
            s.day.push(0);
            s.dst.push(2);
            s.prefix.push(NO_ID);
        }
        s
    }

    #[test]
    fn try_absorb_accepts_in_order_shards() {
        let mut acc = shard_at(&[0, 10]);
        acc.try_absorb(shard_at(&[10, 20])).unwrap();
        acc.try_absorb(shard_at(&[])).unwrap();
        acc.try_absorb(shard_at(&[20])).unwrap();
        assert_eq!(acc.len(), 5);
    }

    #[test]
    fn try_absorb_rejects_out_of_order_shards_without_mutating() {
        let mut acc = shard_at(&[0, 10]);
        let err = acc.try_absorb(shard_at(&[9])).unwrap_err();
        assert!(matches!(err, Error::Analysis(_)));
        assert!(err.to_string().contains("out-of-order"));
        assert_eq!(acc.len(), 2, "failed absorb must leave the shard intact");
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn absorb_panics_on_out_of_order_shards() {
        let mut acc = shard_at(&[0, 10]);
        acc.absorb(shard_at(&[9]));
    }

    #[test]
    fn proto_codes_are_dense_and_distinct() {
        let all = [
            Protocol::Icmpv6,
            Protocol::Tcp,
            Protocol::Udp,
            Protocol::Other,
        ];
        let codes: Vec<u8> = all.iter().map(|&p| proto_code(p)).collect();
        assert_eq!(codes, vec![0, 1, 2, 3]);
    }
}
