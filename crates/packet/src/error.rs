//! Errors for packet encoding, decoding and pcap I/O.

use std::fmt;

/// Errors produced while encoding or decoding packets and pcap files.
#[derive(Debug)]
pub enum PacketError {
    /// The buffer is shorter than the fixed header being decoded.
    Truncated {
        /// Which header was being decoded.
        what: &'static str,
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// The IPv6 version field was not 6.
    BadVersion(u8),
    /// A declared length field disagrees with the actual buffer.
    LengthMismatch {
        /// Which length field.
        what: &'static str,
        /// Declared value.
        declared: usize,
        /// Actual available bytes.
        actual: usize,
    },
    /// A checksum did not verify.
    BadChecksum(&'static str),
    /// The pcap magic number was unrecognized.
    BadPcapMagic(u32),
    /// The pcap link type is not LINKTYPE_RAW (101).
    UnsupportedLinkType(u32),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated { what, need, have } => {
                write!(f, "truncated {what}: need {need} bytes, have {have}")
            }
            PacketError::BadVersion(v) => write!(f, "IP version {v} is not 6"),
            PacketError::LengthMismatch {
                what,
                declared,
                actual,
            } => write!(
                f,
                "{what} declares {declared} bytes but {actual} are available"
            ),
            PacketError::BadChecksum(what) => write!(f, "{what} checksum verification failed"),
            PacketError::BadPcapMagic(m) => write!(f, "unrecognized pcap magic {m:#010x}"),
            PacketError::UnsupportedLinkType(l) => {
                write!(f, "unsupported pcap link type {l} (expected 101 = RAW)")
            }
            PacketError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for PacketError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PacketError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PacketError {
    fn from(e: std::io::Error) -> Self {
        PacketError::Io(e)
    }
}
