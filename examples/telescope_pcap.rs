//! Operate a telescope on pcap files — the workflow a real deployment uses.
//!
//! This example plays the role of a small darknet operator:
//!
//! 1. scan traffic arrives as raw IPv6 packets (here: synthesized by a few
//!    scanner models, exactly the bytes a NIC would deliver),
//! 2. the capture is teed to a classic pcap file (`telescope.pcap`,
//!    LINKTYPE_RAW — opens in Wireshark),
//! 3. the pcap is read back into a fresh capture, sessionized with the
//!    paper's 1-hour timeout, and every session is classified.
//!
//! ```sh
//! cargo run -p sixscope-examples --bin telescope-pcap --release
//! ```

use sixscope_analysis::classify::{addr_selection, profile_scanners};
use sixscope_analysis::fingerprint::identify;
use sixscope_scanners::scanner::StaticContext;
use sixscope_scanners::{
    AddressStrategy, NetworkStrategy, ScannerSpec, SourceModel, TemporalModel, ToolProfile,
};
use sixscope_telescope::{AggLevel, Capture, Sessionizer, TelescopeConfig};
use sixscope_types::{Asn, SimDuration, SimTime, Xoshiro256pp};

fn main() {
    let prefix = "2001:db8:fade::/48".parse().unwrap();
    let config = TelescopeConfig::t3(prefix);

    // --- 1. synthesize a day of scan traffic from three scanner models ---
    let ctx = StaticContext {
        announced: vec![prefix],
        events: vec![],
        hitlist: vec![],
        responsive: None,
        end: SimTime::EPOCH + SimDuration::days(2),
    };
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let scanners = vec![
        ScannerSpec {
            id: 1,
            source: SourceModel::Fixed("2a0a::1:1".parse().unwrap()),
            asn: Asn(64601),
            temporal: TemporalModel::OneOff {
                at: SimTime::from_secs(600),
            },
            network: NetworkStrategy::AllAnnounced,
            address: AddressStrategy::LowByte { max: 32 },
            tool: ToolProfile::yarrp6(),
            packets_per_prefix: 32,
            pps: 2.0,
            reactive: None,
            tga_followups: None,
        },
        ScannerSpec {
            id: 2,
            source: SourceModel::Fixed("2a0a::2:2".parse().unwrap()),
            asn: Asn(64602),
            temporal: TemporalModel::Periodic {
                start: SimTime::from_secs(3600),
                period: SimDuration::hours(6),
                jitter: SimDuration::mins(5),
                until: ctx.end,
            },
            network: NetworkStrategy::AllAnnounced,
            address: AddressStrategy::RandomIid,
            tool: ToolProfile::random_bytes(),
            packets_per_prefix: 150,
            pps: 5.0,
            reactive: None,
            tga_followups: None,
        },
        ScannerSpec {
            id: 3,
            source: SourceModel::Fixed("2a0a::3:3".parse().unwrap()),
            asn: Asn(64603),
            temporal: TemporalModel::OneOff {
                at: SimTime::from_secs(7200),
            },
            network: NetworkStrategy::AllAnnounced,
            address: AddressStrategy::ServicePorts,
            tool: ToolProfile::web_syn(),
            packets_per_prefix: 10,
            pps: 1.0,
            reactive: None,
            tga_followups: None,
        },
    ];

    // --- 2. capture with a pcap tee ---
    let pcap_path = std::env::temp_dir().join("sixscope-telescope.pcap");
    let file = std::fs::File::create(&pcap_path).expect("create pcap");
    let mut live = Capture::new(config.clone());
    live.attach_pcap(file).expect("attach pcap tee");
    let mut wire: Vec<(SimTime, Vec<u8>)> = Vec::new();
    let mut buf = Vec::new();
    for spec in &scanners {
        let mut stream = rng.split(&format!("scanner-{}", spec.id));
        for probe in spec.generate(&ctx, &mut stream) {
            probe.encode_into(&mut buf);
            wire.push((probe.ts, buf.clone()));
        }
    }
    wire.sort_by_key(|(ts, _)| *ts);
    for (ts, bytes) in &wire {
        live.ingest(*ts, bytes);
    }
    drop(live); // flush the tee
    println!(
        "wrote {} packets to {} (classic pcap, LINKTYPE_RAW — try `tcpdump -r`)",
        wire.len(),
        pcap_path.display()
    );

    // --- 3. read back and analyze, as an offline pipeline would ---
    // The recovering reader is what a real deployment uses: damaged
    // records are skipped and counted instead of aborting the file.
    let mut offline = Capture::new(config);
    let reader = std::fs::File::open(&pcap_path).expect("open pcap");
    let stats = offline.ingest_pcap_recovering(reader).expect("parse pcap");
    println!("re-read from disk: {stats}");

    let sessions = Sessionizer::paper(AggLevel::Addr128).sessionize(&offline);
    println!("\n{} scan sessions:", sessions.len());
    let profiles = profile_scanners(&sessions);
    for profile in &profiles {
        let first_session = &sessions[profile.session_indices[0]];
        let selection = addr_selection(first_session, &offline, 48);
        let payload = first_session
            .packets(&offline)
            .find(|p| !p.payload.is_empty())
            .map(|p| p.payload.clone())
            .unwrap_or_default();
        println!(
            "  {} — {} sessions, {} packets, temporal: {}, addresses: {}, tool: {}",
            profile.source,
            profile.session_indices.len(),
            profile.packets,
            profile.temporal,
            selection,
            identify(&payload, None),
        );
    }
}
