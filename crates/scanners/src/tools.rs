//! Tool profiles: protocol mixes and payload formats (§5.4, Table 7).
//!
//! Each profile emits the payload bytes of its real-world counterpart —
//! the same signatures `sixscope-analysis::fingerprint` knows, exactly as
//! a real Yarrp binary emits the format its source code documents.

use sixscope_analysis::fingerprint::signatures;
use sixscope_types::{ports, Xoshiro256pp};

/// What probe payloads look like.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No payload (bare SYNs, minimal pings).
    Empty,
    /// A static tool signature followed by an incrementing counter (state
    /// encoding, like Yarrp's timestamp/TTL fields).
    SignatureCounter(&'static [u8]),
    /// High-entropy random bytes of a fixed length.
    Random {
        /// Payload length.
        len: usize,
    },
    /// A fixed literal.
    Fixed(&'static [u8]),
}

impl Payload {
    /// Materializes the payload for the `n`-th probe.
    pub fn bytes(&self, n: u64, rng: &mut Xoshiro256pp) -> Vec<u8> {
        let mut out = Vec::new();
        self.bytes_into(n, rng, &mut out);
        out
    }

    /// Appends the payload for the `n`-th probe to `out`. The batched
    /// generator writes straight into the probe arena; bytes and RNG draws
    /// are identical to [`Payload::bytes`].
    pub fn bytes_into(&self, n: u64, rng: &mut Xoshiro256pp, out: &mut Vec<u8>) {
        match self {
            Payload::Empty => {}
            Payload::SignatureCounter(sig) => {
                out.extend_from_slice(sig);
                // `-{n:010}` without the format machinery: a dash, then the
                // decimal digits zero-padded to at least ten places.
                let mut digits = [b'0'; 20];
                let mut i = digits.len();
                let mut v = n;
                loop {
                    i -= 1;
                    digits[i] = b'0' + (v % 10) as u8;
                    v /= 10;
                    if v == 0 {
                        break;
                    }
                }
                i = i.min(digits.len() - 10);
                out.push(b'-');
                out.extend_from_slice(&digits[i..]);
            }
            Payload::Random { len } => {
                for _ in 0..*len {
                    out.push(rng.next_u32() as u8);
                }
            }
            Payload::Fixed(bytes) => out.extend_from_slice(bytes),
        }
    }
}

/// One probe's transport choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKindTemplate {
    /// ICMPv6 echo request.
    Icmp,
    /// TCP SYN to one of the listed ports (cycled).
    TcpPorts(&'static [u16]),
    /// UDP to one of the listed ports (cycled).
    UdpPorts(&'static [u16]),
    /// UDP to the traceroute range (incrementing within it).
    UdpTraceroute,
}

/// Weighted protocol mix of a tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolMix {
    /// `(template, weight)` pairs.
    pub choices: Vec<(ProbeKindTemplate, f64)>,
}

impl ProtocolMix {
    /// Pure ICMPv6.
    pub fn icmp() -> Self {
        ProtocolMix {
            choices: vec![(ProbeKindTemplate::Icmp, 1.0)],
        }
    }

    /// Pure UDP traceroute.
    pub fn traceroute() -> Self {
        ProtocolMix {
            choices: vec![(ProbeKindTemplate::UdpTraceroute, 1.0)],
        }
    }

    /// TCP SYN scanning over the given ports.
    pub fn tcp(ports: &'static [u16]) -> Self {
        ProtocolMix {
            choices: vec![(ProbeKindTemplate::TcpPorts(ports), 1.0)],
        }
    }

    /// Draws a template for the `n`-th probe.
    pub fn draw(&self, rng: &mut Xoshiro256pp) -> ProbeKindTemplate {
        let mut weights = Vec::new();
        self.weights_into(&mut weights);
        self.draw_with(&weights, rng)
    }

    /// Fills `out` with the weight column, for reuse across a whole burst
    /// via [`ProtocolMix::draw_with`].
    pub fn weights_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.choices.iter().map(|(_, w)| *w));
    }

    /// Like [`ProtocolMix::draw`] with a precomputed weight column.
    pub fn draw_with(&self, weights: &[f64], rng: &mut Xoshiro256pp) -> ProbeKindTemplate {
        self.choices[rng.weighted_index(weights)].0
    }
}

/// A complete tool profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolProfile {
    /// Human-readable name (matches Table 7 where applicable).
    pub name: &'static str,
    /// Payload format.
    pub payload: Payload,
    /// Protocol mix.
    pub mix: ProtocolMix,
}

/// The common TCP scan ports, HTTP-weighted: port 80 appears in 87% of
/// TCP sessions vs. 29% for 443 (Table 4), so knocks favor HTTP 2:1.
pub const WEB_PORTS: [u16; 3] = [ports::HTTP, ports::HTTPS, ports::HTTP];
/// Top-5 TCP ports of Table 4.
pub const TOP_TCP_PORTS: [u16; 5] = [
    ports::HTTP,
    ports::HTTPS,
    ports::FTP,
    ports::HTTP_ALT,
    ports::SSH,
];
/// Non-traceroute UDP ports of Table 4.
pub const TOP_UDP_PORTS: [u16; 4] = [ports::DNS, ports::SNMP, ports::ISAKMP, ports::NTP];
/// Per-service single-port lists so one prober sticks to one service.
pub const UDP_SERVICE_PORTS: [[u16; 1]; 4] =
    [[ports::DNS], [ports::SNMP], [ports::ISAKMP], [ports::NTP]];
/// A broad port list for wide vertical scans (72 ports ≥ 1k sessions in
/// the paper; scanners cycling this list reproduce the tail).
pub const BROAD_TCP_PORTS: [u16; 72] = [
    21, 22, 23, 25, 53, 80, 81, 88, 110, 111, 113, 119, 123, 135, 137, 139, 143, 161, 179, 389,
    427, 443, 444, 445, 465, 500, 512, 513, 514, 515, 548, 554, 587, 631, 636, 646, 873, 902, 990,
    993, 995, 1025, 1080, 1099, 1433, 1521, 1723, 1900, 2049, 2121, 2181, 2375, 3128, 3268, 3306,
    3389, 4443, 5060, 5432, 5555, 5900, 5985, 6379, 7001, 8000, 8080, 8443, 8888, 9090, 9200,
    11211, 27017,
];

impl ToolProfile {
    /// RIPE Atlas probe: ICMP/UDP traceroute toward `::1` targets.
    pub fn ripe_atlas() -> Self {
        ToolProfile {
            name: "RIPEAtlasProbe",
            payload: Payload::SignatureCounter(signatures::RIPE_ATLAS),
            mix: ProtocolMix {
                choices: vec![
                    (ProbeKindTemplate::Icmp, 0.85),
                    (ProbeKindTemplate::UdpTraceroute, 0.15),
                ],
            },
        }
    }

    /// Yarrp6: randomized high-speed topology probing.
    pub fn yarrp6() -> Self {
        ToolProfile {
            name: "Yarrp6",
            payload: Payload::SignatureCounter(signatures::YARRP6),
            mix: ProtocolMix::icmp(),
        }
    }

    /// Classic traceroute6.
    pub fn traceroute() -> Self {
        ToolProfile {
            name: "Traceroute",
            payload: Payload::Fixed(signatures::TRACEROUTE),
            mix: ProtocolMix::traceroute(),
        }
    }

    /// Htrace6.
    pub fn htrace6() -> Self {
        ToolProfile {
            name: "Htrace6",
            payload: Payload::SignatureCounter(signatures::HTRACE6),
            mix: ProtocolMix::icmp(),
        }
    }

    /// 6Seeks.
    pub fn six_seeks() -> Self {
        ToolProfile {
            name: "6Seeks",
            payload: Payload::SignatureCounter(signatures::SIX_SEEKS),
            mix: ProtocolMix::icmp(),
        }
    }

    /// 6Scan (regional-encoding scanner).
    pub fn six_scan() -> Self {
        ToolProfile {
            name: "6Scan",
            payload: Payload::SignatureCounter(signatures::SIX_SCAN),
            mix: ProtocolMix::icmp(),
        }
    }

    /// CAIDA Ark / scamper.
    pub fn caida_ark() -> Self {
        ToolProfile {
            name: "CAIDA Ark",
            payload: Payload::SignatureCounter(signatures::CAIDA_ARK),
            mix: ProtocolMix {
                choices: vec![
                    (ProbeKindTemplate::Icmp, 0.8),
                    (ProbeKindTemplate::UdpTraceroute, 0.2),
                ],
            },
        }
    }

    /// A bare TCP SYN scanner over the top web ports.
    pub fn web_syn() -> Self {
        ToolProfile {
            name: "web-syn",
            payload: Payload::Empty,
            mix: ProtocolMix::tcp(&WEB_PORTS),
        }
    }

    /// A broad vertical TCP scanner.
    pub fn broad_tcp() -> Self {
        ToolProfile {
            name: "broad-tcp",
            payload: Payload::Empty,
            mix: ProtocolMix::tcp(&BROAD_TCP_PORTS),
        }
    }

    /// An unknown tool with random-byte payloads (the unattributed
    /// clusters of §5.4).
    pub fn random_bytes() -> Self {
        ToolProfile {
            name: "random-bytes",
            payload: Payload::Random { len: 32 },
            mix: ProtocolMix::icmp(),
        }
    }

    /// A UDP service prober for one service (DNS, SNMP, ISAKMP or NTP) —
    /// the non-traceroute rows of Table 4's UDP side. `service` indexes
    /// [`UDP_SERVICE_PORTS`].
    pub fn udp_services(service: usize) -> Self {
        ToolProfile {
            name: "udp-services",
            payload: Payload::Random { len: 24 },
            mix: ProtocolMix {
                choices: vec![(
                    ProbeKindTemplate::UdpPorts(&UDP_SERVICE_PORTS[service % 4]),
                    1.0,
                )],
            },
        }
    }

    /// A DNS query blaster (the UDP heavy hitter: 85% of all UDP packets
    /// were DNS requests from a single scanner).
    pub fn dns_blaster() -> Self {
        ToolProfile {
            name: "dns-blaster",
            payload: Payload::SignatureCounter(b"\x12\x34\x01\x00dnsq"),
            mix: ProtocolMix {
                choices: vec![(ProbeKindTemplate::UdpPorts(&DNS_PORT), 1.0)],
            },
        }
    }
}

const DNS_PORT: [u16; 1] = [ports::DNS];

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_analysis::fingerprint::{identify, KnownTool, ToolMatch};

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(1)
    }

    #[test]
    fn tool_payloads_are_identified_by_the_analysis_side() {
        let cases = [
            (ToolProfile::ripe_atlas(), KnownTool::RipeAtlasProbe),
            (ToolProfile::yarrp6(), KnownTool::Yarrp6),
            (ToolProfile::traceroute(), KnownTool::Traceroute),
            (ToolProfile::htrace6(), KnownTool::Htrace6),
            (ToolProfile::six_seeks(), KnownTool::SixSeeks),
            (ToolProfile::six_scan(), KnownTool::SixScan),
            (ToolProfile::caida_ark(), KnownTool::CaidaArk),
        ];
        let mut r = rng();
        for (profile, expect) in cases {
            let payload = profile.payload.bytes(42, &mut r);
            assert_eq!(
                identify(&payload, None),
                ToolMatch::Tool(expect),
                "{} not identified",
                profile.name
            );
        }
    }

    #[test]
    fn random_payloads_classify_as_random_bytes() {
        let mut r = rng();
        let payload = ToolProfile::random_bytes().payload.bytes(0, &mut r);
        assert_eq!(identify(&payload, None), ToolMatch::RandomBytes);
    }

    #[test]
    fn empty_payloads_are_unidentified() {
        let mut r = rng();
        let payload = ToolProfile::web_syn().payload.bytes(0, &mut r);
        assert!(payload.is_empty());
        assert_eq!(identify(&payload, None), ToolMatch::Unidentified);
    }

    #[test]
    fn signature_counter_varies_but_keeps_prefix() {
        let mut r = rng();
        let p = Payload::SignatureCounter(signatures::YARRP6);
        let a = p.bytes(1, &mut r);
        let b = p.bytes(2, &mut r);
        assert_ne!(a, b);
        assert!(a.starts_with(signatures::YARRP6));
        assert!(b.starts_with(signatures::YARRP6));
    }

    #[test]
    fn signature_counter_encoding_matches_format_at_all_widths() {
        let mut r = rng();
        let p = Payload::SignatureCounter(signatures::YARRP6);
        for n in [
            0u64,
            1,
            9,
            1_234_567_890,
            9_999_999_999,
            10_000_000_000,
            u64::MAX,
        ] {
            let mut expect = signatures::YARRP6.to_vec();
            expect.extend_from_slice(format!("-{n:010}").as_bytes());
            assert_eq!(p.bytes(n, &mut r), expect, "n = {n}");
        }
    }

    #[test]
    fn protocol_mix_draw_respects_weights() {
        let mix = ProtocolMix {
            choices: vec![
                (ProbeKindTemplate::Icmp, 0.9),
                (ProbeKindTemplate::UdpTraceroute, 0.1),
            ],
        };
        let mut r = rng();
        let icmp = (0..1000)
            .filter(|_| matches!(mix.draw(&mut r), ProbeKindTemplate::Icmp))
            .count();
        assert!(icmp > 850 && icmp < 950, "icmp draws: {icmp}");
    }

    #[test]
    fn broad_port_list_has_72_unique_ports() {
        let mut sorted = BROAD_TCP_PORTS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 72);
    }
}
