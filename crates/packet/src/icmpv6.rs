//! ICMPv6 (RFC 4443) — the dominant protocol at every telescope in the paper
//! (66% of all captured packets).
//!
//! Scanners mostly send Echo Requests; topology tools (Yarrp, traceroute)
//! elicit Time Exceeded and Destination Unreachable from routers. The
//! reactive telescope T4 answers Echo Requests with Echo Replies.

use crate::checksum::{pseudo_header_checksum_with_partial, pseudo_header_partial};
use crate::error::PacketError;
use std::net::Ipv6Addr;

/// Length of the ICMPv6 fixed header (type, code, checksum, 4 message bytes).
pub const ICMPV6_HEADER_LEN: usize = 8;

/// ICMPv6 message types the telescope understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Icmpv6Type {
    /// Destination Unreachable (1).
    DestUnreachable,
    /// Packet Too Big (2).
    PacketTooBig,
    /// Time Exceeded (3).
    TimeExceeded,
    /// Parameter Problem (4).
    ParamProblem,
    /// Echo Request (128).
    EchoRequest,
    /// Echo Reply (129).
    EchoReply,
    /// Any other type, kept verbatim.
    Other(u8),
}

impl Icmpv6Type {
    /// Wire value.
    pub fn value(self) -> u8 {
        match self {
            Icmpv6Type::DestUnreachable => 1,
            Icmpv6Type::PacketTooBig => 2,
            Icmpv6Type::TimeExceeded => 3,
            Icmpv6Type::ParamProblem => 4,
            Icmpv6Type::EchoRequest => 128,
            Icmpv6Type::EchoReply => 129,
            Icmpv6Type::Other(v) => v,
        }
    }

    /// Classifies a wire value.
    pub fn from_value(v: u8) -> Icmpv6Type {
        match v {
            1 => Icmpv6Type::DestUnreachable,
            2 => Icmpv6Type::PacketTooBig,
            3 => Icmpv6Type::TimeExceeded,
            4 => Icmpv6Type::ParamProblem,
            128 => Icmpv6Type::EchoRequest,
            129 => Icmpv6Type::EchoReply,
            other => Icmpv6Type::Other(other),
        }
    }

    /// True for error messages (type < 128).
    pub fn is_error(self) -> bool {
        self.value() < 128
    }
}

/// A decoded ICMPv6 header. For echo messages the 4 message-body bytes are
/// the identifier and sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Icmpv6Header {
    /// Message type.
    pub icmp_type: Icmpv6Type,
    /// Message code.
    pub code: u8,
    /// Echo identifier (or upper half of the reserved/message field).
    pub identifier: u16,
    /// Echo sequence number (or lower half of the reserved/message field).
    pub sequence: u16,
}

impl Icmpv6Header {
    /// A standard Echo Request header.
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        Icmpv6Header {
            icmp_type: Icmpv6Type::EchoRequest,
            code: 0,
            identifier,
            sequence,
        }
    }

    /// The Echo Reply answering this Echo Request (same id/seq).
    pub fn echo_reply_for(&self) -> Self {
        Icmpv6Header {
            icmp_type: Icmpv6Type::EchoReply,
            code: 0,
            identifier: self.identifier,
            sequence: self.sequence,
        }
    }

    /// Encodes header + `payload` into `out`, computing the checksum over the
    /// pseudo-header for `src`/`dst`.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr, payload: &[u8], out: &mut Vec<u8>) {
        self.encode_with_partial(pseudo_header_partial(src, 58), dst, payload, out);
    }

    /// Like [`Icmpv6Header::encode`], but resumes the checksum from a
    /// [`crate::checksum::pseudo_header_partial`] for the source address —
    /// run encoders amortize that prefix across probes sharing one source.
    pub fn encode_with_partial(
        &self,
        partial: u64,
        dst: Ipv6Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.push(self.icmp_type.value());
        out.push(self.code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.identifier.to_be_bytes());
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(payload);
        let ck = pseudo_header_checksum_with_partial(partial, dst, &out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decodes the header; returns it together with the message payload.
    pub fn decode(buf: &[u8]) -> Result<(Icmpv6Header, &[u8]), PacketError> {
        if buf.len() < ICMPV6_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "ICMPv6 header",
                need: ICMPV6_HEADER_LEN,
                have: buf.len(),
            });
        }
        Ok((
            Icmpv6Header {
                icmp_type: Icmpv6Type::from_value(buf[0]),
                code: buf[1],
                identifier: u16::from_be_bytes([buf[4], buf[5]]),
                sequence: u16::from_be_bytes([buf[6], buf[7]]),
            },
            &buf[ICMPV6_HEADER_LEN..],
        ))
    }

    /// Verifies the checksum of a full ICMPv6 message (header + payload).
    pub fn verify_checksum(src: Ipv6Addr, dst: Ipv6Addr, message: &[u8]) -> bool {
        crate::checksum::verify_pseudo_header_checksum(src, dst, 58, message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        )
    }

    #[test]
    fn echo_round_trip_with_valid_checksum() {
        let (src, dst) = addrs();
        let hdr = Icmpv6Header::echo_request(0x1234, 7);
        let mut buf = Vec::new();
        hdr.encode(src, dst, b"sixscope-probe", &mut buf);
        assert!(Icmpv6Header::verify_checksum(src, dst, &buf));
        let (decoded, payload) = Icmpv6Header::decode(&buf).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(payload, b"sixscope-probe");
    }

    #[test]
    fn corrupted_message_fails_checksum() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        Icmpv6Header::echo_request(1, 1).encode(src, dst, b"x", &mut buf);
        buf[8] ^= 0xff;
        assert!(!Icmpv6Header::verify_checksum(src, dst, &buf));
    }

    #[test]
    fn echo_reply_mirrors_id_and_seq() {
        let req = Icmpv6Header::echo_request(42, 9);
        let rep = req.echo_reply_for();
        assert_eq!(rep.icmp_type, Icmpv6Type::EchoReply);
        assert_eq!(rep.identifier, 42);
        assert_eq!(rep.sequence, 9);
    }

    #[test]
    fn type_classification() {
        assert_eq!(Icmpv6Type::from_value(3), Icmpv6Type::TimeExceeded);
        assert!(Icmpv6Type::TimeExceeded.is_error());
        assert!(!Icmpv6Type::EchoRequest.is_error());
        assert_eq!(Icmpv6Type::from_value(135), Icmpv6Type::Other(135));
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(matches!(
            Icmpv6Header::decode(&[128, 0, 0]),
            Err(PacketError::Truncated { .. })
        ));
    }
}
