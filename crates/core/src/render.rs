//! Text renderers: print the regenerated tables and figure series in the
//! paper's row format (used by the `repro` harness and EXPERIMENTS.md).

use crate::figures::{BiweeklySeries, GrowthCurve, NibbleMatrix, TaxonomyCell};
use crate::tables::{AddressTypeRow, NetworkTypeRow, ToolRow};
use crate::tables::{CorpusOverview, Headline, Table2, Table4, Table5, Table6};
use std::fmt::Write;

/// Renders the §4 corpus overview.
pub fn render_overview(label: &str, o: &CorpusOverview) -> String {
    format!(
        "Corpus overview ({label}): {} packets from {} /128 sources ({} /64 subnets), \
         {} (/128) / {} (/64) sessions, {} ASes, {} countries\n",
        o.packets, o.sources128, o.sources64, o.sessions128, o.sessions64, o.ases, o.countries
    )
}

/// Renders Table 2.
pub fn render_table2(t: &Table2) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 2 — packets, sessions, sources per transport protocol"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>6} {:>10} {:>6} {:>10} {:>6}",
        "Protocol", "Packets", "[%]", "Sessions", "[%]", "Sources", "[%]"
    )
    .unwrap();
    for r in &t.rows {
        writeln!(
            out,
            "{:<8} {:>12} {:>6.1} {:>10} {:>6.1} {:>10} {:>6.1}",
            r.protocol.name(),
            r.packets,
            r.packet_pct,
            r.sessions,
            r.session_pct,
            r.sources,
            r.source_pct
        )
        .unwrap();
    }
    writeln!(
        out,
        "total    {:>12}        {:>10}        {:>10}",
        t.total_packets, t.total_sessions, t.total_sources
    )
    .unwrap();
    out
}

/// Renders Table 3.
pub fn render_table3(rows: &[AddressTypeRow]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 3 — distribution of target address types").unwrap();
    writeln!(
        out,
        "{:<15} {:>12} {:>7} {:>10} {:>7}",
        "Address Type", "Packets", "[%]", "Sources", "[%]"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<15} {:>12} {:>7.2} {:>10} {:>7.2}",
            r.address_type.to_string(),
            r.packets,
            r.packet_pct,
            r.sources,
            r.source_pct
        )
        .unwrap();
    }
    out
}

/// Renders Table 4.
pub fn render_table4(t: &Table4) -> String {
    let mut out = String::new();
    writeln!(out, "Table 4 — top 5 ports by /64 sessions").unwrap();
    writeln!(
        out,
        "{:<5} {:<12} {:>9} {:>6}   {:<12} {:>9} {:>6}",
        "Rank", "TCP Port", "[#]", "[%]", "UDP Port", "[#]", "[%]"
    )
    .unwrap();
    for i in 0..5 {
        let tcp = t.tcp.get(i);
        let udp = t.udp.get(i);
        writeln!(
            out,
            "#{:<4} {:<12} {:>9} {:>6.1}   {:<12} {:>9} {:>6.1}",
            i + 1,
            tcp.map_or(String::new(), |r| r.port.to_string()),
            tcp.map_or(0, |r| r.sessions),
            tcp.map_or(0.0, |r| r.pct),
            udp.map_or(String::new(), |r| r.port.to_string()),
            udp.map_or(0, |r| r.sessions),
            udp.map_or(0.0, |r| r.pct),
        )
        .unwrap();
    }
    writeln!(
        out,
        "distinct ports: {} TCP, {} UDP (traceroute range aggregated)",
        t.distinct_tcp_ports, t.distinct_udp_ports
    )
    .unwrap();
    out
}

/// Renders Table 5 (both halves).
pub fn render_table5(t: &Table5) -> String {
    let mut out = String::new();
    writeln!(out, "Table 5a — telescope comparison, initial period").unwrap();
    write!(out, "{:<18}", "").unwrap();
    for c in &t.a {
        write!(out, "{:>12}", c.telescope.to_string()).unwrap();
    }
    writeln!(out).unwrap();
    type ColumnGetter = fn(&crate::tables::Table5aColumn) -> u64;
    let rows: [(&str, ColumnGetter); 5] = [
        ("/128 sources", |c| c.sources128),
        ("/64 sources", |c| c.sources64),
        ("ASN", |c| c.asns),
        ("Destination addr.", |c| c.destinations),
        ("Packets", |c| c.packets),
    ];
    for (label, get) in rows {
        write!(out, "{label:<18}").unwrap();
        for c in &t.a {
            write!(out, "{:>12}", get(c)).unwrap();
        }
        writeln!(out).unwrap();
    }
    writeln!(out, "\nTable 5b — distinct sources per protocol").unwrap();
    for c in &t.b {
        write!(out, "{:<4}", c.telescope.to_string()).unwrap();
        for (proto, n, p) in &c.rows {
            write!(out, "  {}: {} ({:.1}%)", proto.name(), n, p).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

/// Renders Table 6.
pub fn render_table6(t: &Table6) -> String {
    let mut out = String::new();
    writeln!(out, "Table 6 — taxonomy classification (T1, split period)").unwrap();
    writeln!(
        out,
        "{:<26} {:>9} {:>7} {:>9} {:>7}",
        "Classification", "Scanners", "[%]", "Sessions", "[%]"
    )
    .unwrap();
    writeln!(out, "Temporal behavior").unwrap();
    for r in &t.temporal {
        writeln!(
            out,
            "  {:<24} {:>9} {:>7.2} {:>9} {:>7.2}",
            r.label, r.scanners, r.scanner_pct, r.sessions, r.session_pct
        )
        .unwrap();
    }
    writeln!(out, "Network selection").unwrap();
    for r in &t.network {
        writeln!(
            out,
            "  {:<24} {:>9} {:>7.2} {:>9} {:>7.2}",
            r.label, r.scanners, r.scanner_pct, r.sessions, r.session_pct
        )
        .unwrap();
    }
    out
}

/// Renders Table 7.
pub fn render_table7(rows: &[ToolRow]) -> String {
    let mut out = String::new();
    writeln!(out, "Table 7 — identified scan tools (T1, split period)").unwrap();
    writeln!(
        out,
        "{:<16} {:>9} {:>7} {:>9} {:>7}",
        "Scan Tool", "Scanners", "[%]", "Sessions", "[%]"
    )
    .unwrap();
    for r in rows {
        writeln!(
            out,
            "{:<16} {:>9} {:>7.2} {:>9} {:>7.2}",
            r.tool.to_string(),
            r.scanners,
            r.scanner_pct,
            r.sessions,
            r.session_pct
        )
        .unwrap();
    }
    out
}

/// Renders Table 8.
pub fn render_table8(rows: &[NetworkTypeRow]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 8 — network types of scan sources (T1, split period)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>9} {:>7} {:>9} {:>7} {:>12} {:>7}",
        "Network", "Scanners", "[%]", "Sessions", "[%]", "Packets", "[%]"
    )
    .unwrap();
    for r in rows {
        let label = if r.without_heavy_hitters {
            "  w/o Hit.".to_string()
        } else {
            r.network_type.to_string()
        };
        writeln!(
            out,
            "{:<12} {:>9} {:>7.2} {:>9} {:>7.2} {:>12} {:>7.2}",
            label, r.scanners, r.scanner_pct, r.sessions, r.session_pct, r.packets, r.packet_pct
        )
        .unwrap();
    }
    out
}

/// Renders the §7.1 headline numbers.
pub fn render_headline(h: &Headline) -> String {
    let mut out = String::new();
    writeln!(out, "Headline findings (§7.1)").unwrap();
    writeln!(
        out,
        "  packets, split /33 vs companion /33:   {:+.0}%   (paper: +286%)",
        h.split_vs_companion_packets_pct
    )
    .unwrap();
    writeln!(
        out,
        "  weekly sources growth (split period):  {:+.0}%   (paper: +275%)",
        h.weekly_sources_growth_pct
    )
    .unwrap();
    writeln!(
        out,
        "  weekly sessions growth (split period): {:+.0}%   (paper: +555%)",
        h.weekly_sessions_growth_pct
    )
    .unwrap();
    writeln!(
        out,
        "  one-off scanner share:                 {:.1}%  (paper: 69.7%)",
        h.one_off_scanner_pct
    )
    .unwrap();
    writeln!(
        out,
        "  final-cycle /48 session share:         {:.1}%  (paper: 15.7%)",
        h.final_48_session_pct
    )
    .unwrap();
    writeln!(
        out,
        "  heavy hitters: {} sources, {:.0}% of packets, {:.2}% of sessions (paper: 10 / 73% / 0.04%)",
        h.heavy_hitters.len(),
        h.heavy_packet_pct,
        h.heavy_session_pct
    )
    .unwrap();
    out
}

/// Renders a taxonomy cell grid (Figs. 7b / 15).
pub fn render_taxonomy(cells: &[TaxonomyCell]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<4} {:<14} {:<12} {:>9}",
        "Tel", "Temporal", "AddrSel", "Sessions"
    )
    .unwrap();
    for c in cells {
        writeln!(
            out,
            "{:<4} {:<14} {:<12} {:>9}",
            c.telescope.to_string(),
            c.temporal.to_string(),
            c.addr_selection.to_string(),
            c.sessions
        )
        .unwrap();
    }
    out
}

/// Renders growth curves (Fig. 4) at a few sample points.
pub fn render_growth(curves: &[GrowthCurve]) -> String {
    let mut out = String::new();
    for c in curves {
        let n = c.points.len();
        let samples: Vec<String> = [0, n / 4, n / 2, 3 * n / 4, n.saturating_sub(1)]
            .iter()
            .filter(|&&i| i < n)
            .map(|&i| format!("{:.2}", c.points[i].1))
            .collect();
        writeln!(out, "{:<14} {}", c.label, samples.join(" → ")).unwrap();
    }
    out
}

/// Renders the bi-weekly T1-vs-rest series (Fig. 11).
pub fn render_biweekly(s: &BiweeklySeries) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<8} {:>12} {:>12}",
        "bi-week", "T1 sessions", "rest sessions"
    )
    .unwrap();
    let rest: std::collections::BTreeMap<u64, u64> =
        s.others.iter().map(|&(b, n, _)| (b, n)).collect();
    for &(b, n, _) in &s.t1 {
        writeln!(
            out,
            "{:<8} {:>12} {:>12}",
            b,
            n,
            rest.get(&b).copied().unwrap_or(0)
        )
        .unwrap();
    }
    out
}

/// Renders a nibble matrix as hex art (down-sampled to at most `max_rows`).
pub fn render_nibbles(m: &NibbleMatrix, max_rows: usize) -> String {
    let mut out = String::new();
    writeln!(out, "session from {} — {} targets", m.source, m.rows.len()).unwrap();
    let step = (m.rows.len() / max_rows.max(1)).max(1);
    for row in m.rows.iter().step_by(step).take(max_rows) {
        for &n in row {
            write!(out, "{n:x}").unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{ClassRow, ProtocolRow};
    use sixscope_telescope::Protocol;

    #[test]
    fn table2_renders_all_rows() {
        let t = Table2 {
            rows: vec![ProtocolRow {
                protocol: Protocol::Icmpv6,
                packets: 1000,
                packet_pct: 66.2,
                sessions: 10,
                session_pct: 20.1,
                sources: 5,
                source_pct: 56.5,
            }],
            total_packets: 1000,
            total_sessions: 10,
            total_sources: 5,
        };
        let s = render_table2(&t);
        assert!(s.contains("ICMPv6"));
        assert!(s.contains("66.2"));
        assert!(s.contains("total"));
    }

    #[test]
    fn table6_renders_sections() {
        let row = ClassRow {
            label: "One-off".into(),
            scanners: 10,
            scanner_pct: 69.7,
            sessions: 10,
            session_pct: 8.9,
        };
        let t = Table6 {
            temporal: vec![row.clone()],
            network: vec![ClassRow {
                label: "Single-prefix scanning".into(),
                ..row
            }],
        };
        let s = render_table6(&t);
        assert!(s.contains("Temporal behavior"));
        assert!(s.contains("Network selection"));
        assert!(s.contains("One-off"));
        assert!(s.contains("Single-prefix"));
    }

    #[test]
    fn nibble_rendering_downsamples() {
        let m = NibbleMatrix {
            source: sixscope_telescope::SourceKey::new(
                "2001:db8::1".parse().unwrap(),
                sixscope_telescope::AggLevel::Addr128,
            ),
            rows: vec![[0xa; 32]; 1000],
        };
        let s = render_nibbles(&m, 10);
        let hex_lines = s.lines().filter(|l| l.starts_with('a')).count();
        assert!(hex_lines <= 10);
        assert!(s.contains("1000 targets"));
    }
}
