//! Property tests for the analysis toolkit: NIST p-value sanity, DBSCAN
//! label validity and determinism, address-classifier totality, statistics
//! invariants, and packed-kernel equivalence against the retained naive
//! references.

use proptest::prelude::*;
use sixscope_analysis::addrtype::{classify, AddressType};
use sixscope_analysis::autocorr::{self, PeriodDetector};
use sixscope_analysis::dbscan::{cluster_count, dbscan, dbscan_indexed, Assignment};
use sixscope_analysis::nist::{self, BitSequence, NistTest};
use sixscope_analysis::special::{erfc, normal_cdf};
use sixscope_analysis::stats::{ecdf, percent_change, rank_descending};
use sixscope_types::SimTime;
use std::net::Ipv6Addr;

proptest! {
    /// The word-packed NIST kernels reproduce the naive bit-vector
    /// references bit-for-bit, including sequences that end mid-word.
    #[test]
    fn nist_packed_matches_reference(
        words in proptest::collection::vec(any::<u64>(), 0..40),
        tail in any::<u64>(),
        tail_len in 0u32..64,
    ) {
        let mut seq = BitSequence::new();
        for w in &words {
            seq.push_bits(*w as u128, 64);
        }
        if tail_len > 0 {
            seq.push_bits((tail & ((1u64 << tail_len) - 1)) as u128, tail_len);
        }
        let bits = seq.to_bools();
        prop_assert_eq!(bits.len(), words.len() * 64 + tail_len as usize);
        for out in seq.run_all() {
            let want = match out.test {
                NistTest::Frequency => nist::reference::frequency_p(&bits),
                NistTest::Runs => nist::reference::runs_p(&bits),
                NistTest::Fft => nist::reference::fft_p(&bits),
                NistTest::CusumForward => nist::reference::cusum_p(&bits, false),
                NistTest::CusumBackward => nist::reference::cusum_p(&bits, true),
            };
            prop_assert_eq!(
                out.p_value.to_bits(),
                want.to_bits(),
                "{:?}: packed {} vs reference {}",
                out.test,
                out.p_value,
                want
            );
        }
    }

    /// The Wiener–Khinchin period detector makes the same discrete decision
    /// (detected or not, and which period) as the O(n·lag) ACF reference on
    /// arbitrary session-start trains.
    #[test]
    fn autocorr_fft_matches_reference(
        offsets in proptest::collection::vec(0u64..3_000_000, 0..80),
        stretch in 1u64..40,
    ) {
        let starts: Vec<SimTime> = offsets
            .iter()
            .map(|&o| SimTime::from_secs(o * stretch % 10_000_000))
            .collect();
        let det = PeriodDetector::default();
        let fast = det.detect(&starts);
        let slow = autocorr::reference::detect(&det, &starts);
        prop_assert_eq!(fast.is_some(), slow.is_some());
        if let (Some(f), Some(s)) = (fast, slow) {
            prop_assert_eq!(f.period, s.period);
        }
    }

    /// The sorted-projection DBSCAN labels every random 1-D point set
    /// exactly like the O(n²) scan.
    #[test]
    fn dbscan_indexed_matches_scan(
        points in proptest::collection::vec(-100.0f64..100.0, 0..80),
        eps in 0.1f64..10.0,
        min_pts in 1usize..5,
    ) {
        let d = |a: &f64, b: &f64| (a - b).abs();
        prop_assert_eq!(
            dbscan(&points, eps, min_pts, d),
            dbscan_indexed(&points, eps, min_pts, |&p| p, d)
        );
    }

    /// Every NIST test returns a finite p-value in [0, 1] on any input.
    #[test]
    fn nist_p_values_are_sane(words in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut seq = BitSequence::new();
        for w in &words {
            seq.push_bits(*w as u128, 64);
        }
        for test in NistTest::ALL {
            let out = seq.run(test);
            prop_assert!(out.p_value.is_finite());
            prop_assert!((0.0..=1.0).contains(&out.p_value), "{:?} p={}", test, out.p_value);
        }
    }

    /// The classifier is total and deterministic over the address space.
    #[test]
    fn addrtype_total_and_deterministic(bits in any::<u128>()) {
        let addr = Ipv6Addr::from(bits);
        let a = classify(addr);
        let b = classify(addr);
        prop_assert_eq!(a, b);
        prop_assert!(AddressType::ALL.contains(&a));
        // Classification only depends on the IID.
        let other_prefix = Ipv6Addr::from((bits & 0xffff_ffff_ffff_ffff) | (0x3fff_u128 << 112));
        prop_assert_eq!(classify(other_prefix), a);
    }

    /// DBSCAN: deterministic, labels contiguous from zero, core points of
    /// the same dense blob share a cluster.
    #[test]
    fn dbscan_label_validity(
        points in proptest::collection::vec(-100.0f64..100.0, 0..60),
        eps in 0.1f64..10.0,
        min_pts in 1usize..5,
    ) {
        let d = |a: &f64, b: &f64| (a - b).abs();
        let out1 = dbscan(&points, eps, min_pts, d);
        let out2 = dbscan(&points, eps, min_pts, d);
        prop_assert_eq!(&out1, &out2);
        let k = cluster_count(&out1);
        for a in &out1 {
            if let Assignment::Cluster(c) = a {
                prop_assert!(*c < k);
            }
        }
        // Every cluster id below k is used by at least one point.
        for c in 0..k {
            prop_assert!(out1.iter().any(|a| a.cluster() == Some(c)));
        }
        // A noise point has fewer than min_pts neighbors OR borders no core;
        // at minimum it must not be density-core itself only if isolated:
        for (i, a) in out1.iter().enumerate() {
            if *a == Assignment::Noise {
                let neighbors = points
                    .iter()
                    .filter(|p| (*p - points[i]).abs() <= eps)
                    .count();
                prop_assert!(neighbors < min_pts, "core point marked noise");
            }
        }
    }

    /// erfc is monotone decreasing and bounded in (0, 2).
    #[test]
    fn erfc_monotone(x in -5.0f64..5.0, dx in 0.001f64..2.0) {
        prop_assert!(erfc(x) > erfc(x + dx));
        prop_assert!(erfc(x) > 0.0 && erfc(x) < 2.0);
    }

    /// Φ is a CDF: monotone, in [0,1], symmetric around zero.
    #[test]
    fn normal_cdf_properties(x in -6.0f64..6.0) {
        let v = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
    }

    /// ecdf ends at exactly 1 and is monotone in both coordinates.
    #[test]
    fn ecdf_invariants(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let pts = ecdf(values.clone());
        prop_assert_eq!(pts.len(), values.len());
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
        prop_assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    /// rank_descending is a sorted permutation.
    #[test]
    fn rank_descending_permutes(values in proptest::collection::vec(any::<u64>(), 0..100)) {
        let ranked = rank_descending(values.clone());
        prop_assert!(ranked.windows(2).all(|w| w[0] >= w[1]));
        let mut a = values;
        let mut b = ranked;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// percent_change round-trips: applying the change recovers `after`.
    #[test]
    fn percent_change_roundtrip(before in 0.001f64..1e9, after in 0.0f64..1e9) {
        let pct = percent_change(before, after);
        let recovered = before * (1.0 + pct / 100.0);
        prop_assert!((recovered - after).abs() < 1e-6 * after.max(1.0));
    }
}
