//! The parallel-determinism contract (DESIGN.md §6): the experiment's
//! output is byte-identical at any worker-thread count. Generation fans
//! scanners out to workers and delivery shards the probe list, but the
//! merged captures, drop counters and T4 responses must not move by a
//! single bit between `threads = 1`, `2` and `8`.

use sixscope_sim::{ExperimentResult, Scenario, ScenarioConfig};
use sixscope_telescope::TelescopeId;

fn run_with(threads: usize) -> ExperimentResult {
    let mut config = ScenarioConfig::new(20_230_824, 0.008);
    config.threads = Some(threads);
    Scenario::new(config).run()
}

#[test]
fn captures_are_byte_identical_across_thread_counts() {
    let serial = run_with(1);
    assert!(
        serial.total_packets() > 1000,
        "reference run too small to be meaningful ({} packets)",
        serial.total_packets()
    );
    for threads in [2, 8] {
        let parallel = run_with(threads);
        for id in TelescopeId::ALL {
            let a = serial.capture(id);
            let b = parallel.capture(id);
            assert_eq!(
                a.packets(),
                b.packets(),
                "{id:?} capture diverged at {threads} threads"
            );
            assert_eq!(a.filtered(), b.filtered(), "{id:?} filter counter diverged");
            assert_eq!(
                a.malformed(),
                b.malformed(),
                "{id:?} malformed counter diverged"
            );
        }
        assert_eq!(
            serial.dropped_unrouted, parallel.dropped_unrouted,
            "unrouted-drop count diverged at {threads} threads"
        );
        assert_eq!(
            serial.t4_responses, parallel.t4_responses,
            "T4 response count diverged at {threads} threads"
        );
        assert_eq!(
            serial.truncated_probes, parallel.truncated_probes,
            "truncation count diverged at {threads} threads"
        );
    }
}
