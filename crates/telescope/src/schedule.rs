//! The T1 announcement schedule: bi-weekly asymmetric prefix splitting
//! (paper §3.1, Fig. 2).
//!
//! After a baseline phase with the covering /32 announced stably, every two
//! weeks:
//!
//! 1. all currently announced prefixes are **withdrawn for one day**,
//! 2. the next day a new set is announced: all previous prefixes *except
//!    the one being split*, plus the two halves of the split prefix.
//!
//! The split target is always the most-specific prefix that does **not**
//! contain the low-byte address inherited from its parent — i.e. the *high*
//! half of the previous split — so each cycle exposes two prefixes whose
//! `::1` addresses were never announced before. After 16 cycles the set
//! holds 17 prefixes and the most-specific is a /48.

use serde::{Deserialize, Serialize};
use sixscope_types::{Ipv6Prefix, SimDuration, SimTime};

/// What a schedule action does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScheduleActionKind {
    /// Announce the prefix in BGP.
    Announce,
    /// Withdraw the prefix from BGP.
    Withdraw,
}

/// One timed control-plane action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleAction {
    /// When to perform it.
    pub at: SimTime,
    /// Announce or withdraw.
    pub kind: ScheduleActionKind,
    /// The affected prefix.
    pub prefix: Ipv6Prefix,
}

/// The full T1 schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitSchedule {
    /// The covering prefix (the paper's untainted /32).
    pub covering: Ipv6Prefix,
    /// Experiment start (first announcement of the covering prefix).
    pub start: SimTime,
    /// Baseline phase length (paper: 12 weeks).
    pub baseline: SimDuration,
    /// Length of one announcement cycle (paper: 2 weeks).
    pub cycle_len: SimDuration,
    /// Withdrawal gap at each cycle boundary (paper: 1 day).
    pub withdraw_gap: SimDuration,
    /// Number of split cycles (paper: 16, reaching /48).
    pub cycles: u32,
}

impl SplitSchedule {
    /// The paper's exact schedule for a given covering /32.
    pub fn paper(covering: Ipv6Prefix, start: SimTime) -> Self {
        assert_eq!(covering.len(), 32, "the paper splits a /32");
        SplitSchedule {
            covering,
            start,
            baseline: SimDuration::weeks(12),
            cycle_len: SimDuration::weeks(2),
            withdraw_gap: SimDuration::days(1),
            cycles: 16,
        }
    }

    /// The announced prefix set during cycle `k` (0 = baseline).
    ///
    /// Cycle k ≥ 1 holds `k + 1` prefixes: the low halves of splits 1..=k
    /// plus the final high half. The covering prefix itself is only
    /// announced during the baseline.
    pub fn announced_set(&self, cycle: u32) -> Vec<Ipv6Prefix> {
        assert!(cycle <= self.cycles, "cycle {cycle} beyond schedule");
        if cycle == 0 {
            return vec![self.covering];
        }
        let mut set = Vec::with_capacity(cycle as usize + 1);
        let mut current = self.covering;
        for _ in 0..cycle {
            let (lo, hi) = current.split().expect("len < 128 throughout");
            set.push(lo);
            current = hi;
        }
        set.push(current);
        set
    }

    /// The prefix that is newly *split* entering cycle `k` (k ≥ 1): the
    /// high half from the previous cycle (or the covering prefix for k = 1).
    pub fn split_target(&self, cycle: u32) -> Ipv6Prefix {
        assert!((1..=self.cycles).contains(&cycle));
        let mut current = self.covering;
        for _ in 1..cycle {
            let (_, hi) = current.split().expect("len < 128 throughout");
            current = hi;
        }
        current
    }

    /// The two prefixes first announced in cycle `k` (k ≥ 1).
    pub fn new_prefixes(&self, cycle: u32) -> (Ipv6Prefix, Ipv6Prefix) {
        self.split_target(cycle).split().expect("len < 128")
    }

    /// The *stable companion*: the /33 low half announced from cycle 1 to
    /// the end and never split again (the +286% comparison baseline).
    pub fn companion(&self) -> Ipv6Prefix {
        self.covering.split().expect("a /32 splits").0
    }

    /// The iteratively split /33 (the high half of the first split).
    pub fn split_side(&self) -> Ipv6Prefix {
        self.covering.split().expect("a /32 splits").1
    }

    /// Start time of cycle `k` (0 = baseline start).
    pub fn cycle_start(&self, cycle: u32) -> SimTime {
        if cycle == 0 {
            self.start
        } else {
            self.start + self.baseline + self.cycle_len.saturating_mul((cycle - 1) as u64)
        }
    }

    /// End of the schedule (end of the last cycle).
    pub fn end(&self) -> SimTime {
        self.cycle_start(self.cycles) + self.cycle_len
    }

    /// The cycle active at `t` (`None` before start or after the end).
    /// During a withdrawal gap the *upcoming* cycle is reported.
    pub fn cycle_at(&self, t: SimTime) -> Option<u32> {
        if t < self.start || t >= self.end() {
            return None;
        }
        if t < self.start + self.baseline {
            return Some(0);
        }
        let into = t.since(self.start + self.baseline).as_secs();
        Some((into / self.cycle_len.as_secs()) as u32 + 1)
    }

    /// Generates the complete timed action list: the initial announcement,
    /// then per cycle the withdraw-all / announce-new-set pair.
    pub fn actions(&self) -> Vec<ScheduleAction> {
        let mut actions = vec![ScheduleAction {
            at: self.start,
            kind: ScheduleActionKind::Announce,
            prefix: self.covering,
        }];
        for cycle in 1..=self.cycles {
            let boundary = self.cycle_start(cycle);
            // Withdraw everything announced in the previous cycle.
            for prefix in self.announced_set(cycle - 1) {
                actions.push(ScheduleAction {
                    at: boundary,
                    kind: ScheduleActionKind::Withdraw,
                    prefix,
                });
            }
            // One day later, announce the new set.
            for prefix in self.announced_set(cycle) {
                actions.push(ScheduleAction {
                    at: boundary + self.withdraw_gap,
                    kind: ScheduleActionKind::Announce,
                    prefix,
                });
            }
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn sched() -> SplitSchedule {
        SplitSchedule::paper(p("2001:db8::/32"), SimTime::EPOCH)
    }

    #[test]
    fn baseline_announces_only_covering() {
        assert_eq!(sched().announced_set(0), vec![p("2001:db8::/32")]);
    }

    #[test]
    fn cycle_one_is_the_two_halves() {
        assert_eq!(
            sched().announced_set(1),
            vec![p("2001:db8::/33"), p("2001:db8:8000::/33")]
        );
    }

    #[test]
    fn split_always_takes_the_half_without_inherited_low_byte() {
        let s = sched();
        for cycle in 1..=16 {
            let target = s.split_target(cycle);
            if cycle > 1 {
                // The split target must not contain its parent's low-byte
                // address (which was announced in the previous cycle).
                let parent = target.parent().unwrap();
                assert!(
                    !target.contains(parent.low_byte_address()),
                    "cycle {cycle}: {target} contains inherited low-byte"
                );
            }
        }
    }

    #[test]
    fn new_prefixes_have_fresh_low_bytes() {
        let s = sched();
        let mut seen_low_bytes = vec![s.covering.low_byte_address()];
        for cycle in 1..=16 {
            let (lo, hi) = s.new_prefixes(cycle);
            // The high half's low-byte address is always fresh.
            assert!(!seen_low_bytes.contains(&hi.low_byte_address()));
            for pre in [lo, hi] {
                if !seen_low_bytes.contains(&pre.low_byte_address()) {
                    seen_low_bytes.push(pre.low_byte_address());
                }
            }
        }
    }

    #[test]
    fn final_cycle_has_17_prefixes_down_to_48() {
        let s = sched();
        let final_set = s.announced_set(16);
        assert_eq!(final_set.len(), 17);
        let max_len = final_set.iter().map(|p| p.len()).max().unwrap();
        assert_eq!(max_len, 48);
        // Exactly two /48s (the last split pair).
        assert_eq!(final_set.iter().filter(|p| p.len() == 48).count(), 2);
        // The set is disjoint and covers the /32 exactly.
        for (i, a) in final_set.iter().enumerate() {
            for b in final_set.iter().skip(i + 1) {
                assert!(!a.overlaps(b), "{a} overlaps {b}");
            }
        }
        let total: u128 = final_set.iter().map(|p| p.address_count()).sum();
        assert_eq!(total, s.covering.address_count());
    }

    #[test]
    fn set_grows_by_one_each_cycle() {
        let s = sched();
        for cycle in 1..=16u32 {
            assert_eq!(s.announced_set(cycle).len() as u32, cycle + 1);
        }
    }

    #[test]
    fn companion_is_stable_across_cycles() {
        let s = sched();
        let companion = s.companion();
        assert_eq!(companion, p("2001:db8::/33"));
        for cycle in 1..=16 {
            assert!(s.announced_set(cycle).contains(&companion));
        }
        assert_eq!(s.split_side(), p("2001:db8:8000::/33"));
    }

    #[test]
    fn cycle_timing() {
        let s = sched();
        assert_eq!(s.cycle_start(0), SimTime::EPOCH);
        assert_eq!(s.cycle_start(1).as_secs(), SimDuration::weeks(12).as_secs());
        assert_eq!(
            s.cycle_start(2).as_secs(),
            (SimDuration::weeks(12) + SimDuration::weeks(2)).as_secs()
        );
        // 12 weeks baseline + 16 × 2 weeks = 44 weeks total (11 months).
        assert_eq!(s.end().as_secs(), SimDuration::weeks(44).as_secs());
    }

    #[test]
    fn cycle_at_maps_times_correctly() {
        let s = sched();
        assert_eq!(s.cycle_at(SimTime::EPOCH), Some(0));
        assert_eq!(s.cycle_at(s.cycle_start(1)), Some(1));
        // Mid-baseline.
        assert_eq!(s.cycle_at(SimTime::EPOCH + SimDuration::weeks(5)), Some(0));
        // Mid-cycle 3.
        assert_eq!(s.cycle_at(s.cycle_start(3) + SimDuration::days(5)), Some(3));
        assert_eq!(s.cycle_at(s.end()), None);
    }

    #[test]
    fn actions_withdraw_then_reannounce_with_gap() {
        let s = sched();
        let actions = s.actions();
        // Initial announce + per cycle: k withdrawals + (k+1) announcements.
        let expected: usize = 1 + (1..=16).map(|k| k + (k + 1)).sum::<usize>();
        assert_eq!(actions.len(), expected);
        // Cycle-1 boundary: the /32 is withdrawn, the two /33s appear a day
        // later.
        let boundary = s.cycle_start(1);
        let withdraws: Vec<_> = actions
            .iter()
            .filter(|a| a.at == boundary && a.kind == ScheduleActionKind::Withdraw)
            .collect();
        assert_eq!(withdraws.len(), 1);
        assert_eq!(withdraws[0].prefix, p("2001:db8::/32"));
        let announces: Vec<_> = actions
            .iter()
            .filter(|a| {
                a.at == boundary + SimDuration::days(1) && a.kind == ScheduleActionKind::Announce
            })
            .collect();
        assert_eq!(announces.len(), 2);
    }

    #[test]
    fn actions_are_time_ordered() {
        let actions = sched().actions();
        assert!(actions.windows(2).all(|w| w[0].at <= w[1].at));
    }
}
