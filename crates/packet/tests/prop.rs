//! Property tests: every packet the builder can produce must parse back to
//! the same fields with a valid checksum, and pcap round-trips are lossless.

use proptest::prelude::*;
use sixscope_packet::{PacketBuilder, ParsedPacket, PcapReader, PcapRecord, PcapWriter, Transport};
use sixscope_types::SimTime;
use std::net::Ipv6Addr;

fn arb_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #[test]
    fn icmpv6_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        id in any::<u16>(), seq in any::<u16>(),
        payload in arb_payload(),
        hop in any::<u8>(),
    ) {
        let bytes = PacketBuilder::new(src, dst)
            .hop_limit(hop)
            .icmpv6_echo_request(id, seq, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.header.src, src);
        prop_assert_eq!(p.header.dst, dst);
        prop_assert_eq!(p.header.hop_limit, hop);
        match p.transport {
            Transport::Icmpv6(h) => {
                prop_assert_eq!(h.identifier, id);
                prop_assert_eq!(h.sequence, seq);
            }
            ref other => prop_assert!(false, "wrong transport {:?}", other),
        }
        prop_assert_eq!(&p.payload[..], &payload[..]);
        // Checksums must verify.
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::icmpv6::Icmpv6Header::verify_checksum(src, dst, upper));
    }

    #[test]
    fn tcp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
        payload in arb_payload(),
    ) {
        let bytes = PacketBuilder::new(src, dst).tcp_syn(sp, dp, seq, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.src_port(), Some(sp));
        prop_assert_eq!(p.dst_port(), Some(dp));
        prop_assert_eq!(&p.payload[..], &payload[..]);
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::tcp::TcpHeader::verify_checksum(src, dst, upper));
    }

    #[test]
    fn udp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in arb_payload(),
    ) {
        let bytes = PacketBuilder::new(src, dst).udp(sp, dp, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.src_port(), Some(sp));
        prop_assert_eq!(p.dst_port(), Some(dp));
        prop_assert_eq!(&p.payload[..], &payload[..]);
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::udp::UdpHeader::verify_checksum(src, dst, upper));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = ParsedPacket::parse(&bytes);
    }

    #[test]
    fn pcap_round_trip(
        records in proptest::collection::vec(
            (any::<u32>(), 0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        )
    ) {
        let records: Vec<PcapRecord> = records
            .into_iter()
            .map(|(ts, us, data)| PcapRecord {
                ts: SimTime::from_secs(ts as u64),
                ts_micros: us,
                data,
            })
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let back: Vec<PcapRecord> = PcapReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(back, records);
    }
}
