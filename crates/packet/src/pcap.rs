//! Classic pcap file I/O (the `.pcap` format of libpcap/tcpdump).
//!
//! Captures are written with LINKTYPE_RAW (101): each record is a bare IP
//! packet, which is exactly what our telescopes receive. Files produced here
//! open in Wireshark; files produced by `tcpdump -w -y RAW` feed straight
//! into the analysis pipeline, so the pipeline works on real captures too.
//!
//! The writer emits the standard microsecond-resolution little-endian
//! format; the reader additionally accepts big-endian and
//! nanosecond-resolution magic values.
//!
//! Real captures are damaged in predictable ways — a killed `tcpdump`
//! leaves a half-written final record, disk corruption flips length
//! fields — so the reader never trusts a length field: `incl_len` is
//! validated against the file's own snaplen and the [`MAX_RECORD_LEN`]
//! ceiling before any allocation, and
//! [`PcapReader::read_record_recovering`] turns per-record damage into
//! typed [`RecordOutcome`]s instead of aborting the file.

use crate::error::{MalformedRecord, PacketError};
use sixscope_types::SimTime;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC_LE_US: u32 = 0xa1b2c3d4;
const MAGIC_LE_NS: u32 = 0xa1b23c4d;
const LINKTYPE_RAW: u32 = 101;

/// Hard ceiling on a single record's captured length (1 MiB).
///
/// LINKTYPE_RAW records are bare IPv6 packets, so 40 + 65535 bytes is the
/// realistic maximum; the ceiling leaves generous headroom for jumbo
/// payloads while making a corrupt 4 GiB `incl_len` un-allocatable.
pub const MAX_RECORD_LEN: u32 = 1 << 20;

/// The snapshot length the writer declares (and enforces) in its header.
const WRITER_SNAPLEN: u32 = 65_535;

/// One captured packet record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Sub-second microseconds.
    pub ts_micros: u32,
    /// Raw packet bytes (an IPv6 packet under LINKTYPE_RAW).
    pub data: Vec<u8>,
}

/// Streaming pcap writer.
pub struct PcapWriter<W: Write> {
    out: W,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header and returns the writer.
    pub fn new(mut out: W) -> Result<Self, PacketError> {
        out.write_all(&MAGIC_LE_US.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // version major
        out.write_all(&4u16.to_le_bytes())?; // version minor
        out.write_all(&0i32.to_le_bytes())?; // thiszone
        out.write_all(&0u32.to_le_bytes())?; // sigfigs
        out.write_all(&WRITER_SNAPLEN.to_le_bytes())?; // snaplen
        out.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { out })
    }

    /// Appends one packet record.
    ///
    /// Rejects (rather than silently wrapping) timestamps past the 32-bit
    /// seconds horizon and packets whose length does not fit `orig_len`.
    /// Data longer than the advertised snaplen is clipped exactly as a real
    /// capture would clip it: `incl_len` bytes on the wire, the true size
    /// in `orig_len`.
    pub fn write_record(&mut self, rec: &PcapRecord) -> Result<(), PacketError> {
        let secs = rec.ts.as_secs();
        let secs32 = u32::try_from(secs).map_err(|_| PacketError::TimestampOverflow(secs))?;
        let orig_len = u32::try_from(rec.data.len())
            .map_err(|_| PacketError::OversizedPacket(rec.data.len()))?;
        let incl_len = orig_len.min(WRITER_SNAPLEN);
        self.out.write_all(&secs32.to_le_bytes())?;
        self.out.write_all(&rec.ts_micros.to_le_bytes())?;
        self.out.write_all(&incl_len.to_le_bytes())?;
        self.out.write_all(&orig_len.to_le_bytes())?;
        self.out.write_all(&rec.data[..incl_len as usize])?;
        Ok(())
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> Result<W, PacketError> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Outcome of one recoverable read step (see
/// [`PcapReader::read_record_recovering`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordOutcome {
    /// A complete, well-formed record.
    Record(PcapRecord),
    /// A damaged record was skipped; the stream is re-synchronized on the
    /// next record boundary.
    Skipped(MalformedRecord),
    /// The file ends inside a record (a live capture that was killed). All
    /// preceding records were yielded; no further reads will succeed.
    TruncatedTail(MalformedRecord),
}

/// Streaming pcap reader.
pub struct PcapReader<R: Read> {
    input: R,
    swapped: bool,
    nanos: bool,
    /// The file's declared snapshot length (0 = writer declared none).
    snaplen: u32,
    /// Set once a truncated tail was reported; further recoverable reads
    /// return end-of-file instead of re-reading garbage.
    exhausted: bool,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    pub fn new(mut input: R) -> Result<Self, PacketError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr)?;
        let magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_LE_US => (false, false),
            MAGIC_LE_NS => (false, true),
            m if m.swap_bytes() == MAGIC_LE_US => (true, false),
            m if m.swap_bytes() == MAGIC_LE_NS => (true, true),
            m => return Err(PacketError::BadPcapMagic(m)),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let linktype = read_u32(&hdr[20..24]);
        if linktype != LINKTYPE_RAW {
            return Err(PacketError::UnsupportedLinkType(linktype));
        }
        Ok(PcapReader {
            input,
            swapped,
            nanos,
            snaplen: read_u32(&hdr[16..20]),
            exhausted: false,
        })
    }

    /// The snapshot length declared by the file's global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Fills `buf` as far as the input allows; returns the bytes read.
    fn read_fully(&mut self, buf: &mut [u8]) -> Result<usize, PacketError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.input.read(&mut buf[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(filled)
    }

    /// Reads the next record, or `None` at end of file.
    ///
    /// Every length field is validated before allocation: `incl_len` must
    /// not exceed the file's snaplen, the [`MAX_RECORD_LEN`] ceiling, or
    /// `orig_len`. Violations and mid-record EOF return
    /// [`PacketError::Malformed`]; callers that want to continue past the
    /// damage use [`PcapReader::read_record_recovering`] instead.
    pub fn read_record(&mut self) -> Result<Option<PcapRecord>, PacketError> {
        let mut hdr = [0u8; 16];
        let have = self.read_fully(&mut hdr)?;
        if have == 0 {
            return Ok(None);
        }
        if have < hdr.len() {
            return Err(PacketError::Malformed(MalformedRecord::TruncatedHeader {
                have,
            }));
        }
        let field = |i: usize| {
            let v = u32::from_le_bytes([hdr[i], hdr[i + 1], hdr[i + 2], hdr[i + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let (ts_sec, ts_frac, incl_len, orig_len) = (field(0), field(4), field(8), field(12));
        if self.snaplen != 0 && incl_len > self.snaplen {
            return Err(PacketError::Malformed(MalformedRecord::SnaplenExceeded {
                incl_len,
                snaplen: self.snaplen,
            }));
        }
        if incl_len > MAX_RECORD_LEN {
            return Err(PacketError::Malformed(MalformedRecord::CapExceeded {
                incl_len,
            }));
        }
        if incl_len > orig_len {
            return Err(PacketError::Malformed(
                MalformedRecord::LengthInconsistent { incl_len, orig_len },
            ));
        }
        let mut data = vec![0u8; incl_len as usize];
        let have = self.read_fully(&mut data)?;
        if have < data.len() {
            return Err(PacketError::Malformed(MalformedRecord::TruncatedBody {
                need: data.len(),
                have,
            }));
        }
        let ts_micros = if self.nanos { ts_frac / 1000 } else { ts_frac };
        Ok(Some(PcapRecord {
            ts: SimTime::from_secs(ts_sec as u64),
            ts_micros,
            data,
        }))
    }

    /// Reads the next record with skip-and-count recovery, or `None` at end
    /// of file.
    ///
    /// Damage is confined to the record it occurs in: a record with a
    /// rejected length field is skipped (its advertised bytes are discarded
    /// in bounded chunks, so the stream stays synchronized on the next
    /// record boundary) and reported as [`RecordOutcome::Skipped`]; a file
    /// cut off mid-record yields [`RecordOutcome::TruncatedTail`] once and
    /// then end-of-file. `Err` is reserved for real I/O failures.
    pub fn read_record_recovering(&mut self) -> Result<Option<RecordOutcome>, PacketError> {
        if self.exhausted {
            return Ok(None);
        }
        match self.read_record() {
            Ok(Some(rec)) => Ok(Some(RecordOutcome::Record(rec))),
            Ok(None) => Ok(None),
            Err(PacketError::Malformed(m)) if m.is_truncation() => {
                self.exhausted = true;
                Ok(Some(RecordOutcome::TruncatedTail(m)))
            }
            Err(PacketError::Malformed(m)) => {
                let advertised = match m {
                    MalformedRecord::SnaplenExceeded { incl_len, .. }
                    | MalformedRecord::CapExceeded { incl_len }
                    | MalformedRecord::LengthInconsistent { incl_len, .. } => incl_len,
                    _ => unreachable!("truncation handled above"),
                };
                if self.discard(u64::from(advertised))? {
                    Ok(Some(RecordOutcome::Skipped(m)))
                } else {
                    self.exhausted = true;
                    Ok(Some(RecordOutcome::TruncatedTail(m)))
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Discards `n` bytes through a bounded scratch buffer. Returns `false`
    /// if the input ended first.
    fn discard(&mut self, mut n: u64) -> Result<bool, PacketError> {
        let mut scratch = [0u8; 8192];
        while n > 0 {
            let want = scratch.len().min(usize::try_from(n).unwrap_or(usize::MAX));
            let got = self.read_fully(&mut scratch[..want])?;
            if got == 0 {
                return Ok(false);
            }
            n -= got as u64;
        }
        Ok(true)
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<PcapRecord, PacketError>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read_record().transpose()
    }
}

/// Chunked streaming source over a recovering reader: yields up to
/// `chunk_records` [`RecordOutcome`]s at a time, so a consumer holds one
/// chunk of records in memory instead of a whole capture file.
///
/// Recovery semantics are exactly [`PcapReader::read_record_recovering`]'s —
/// chunk boundaries are invisible in the outcome sequence. `Err` (real I/O
/// failure only) ends the iteration.
pub struct PcapChunks<R: Read> {
    reader: PcapReader<R>,
    chunk_records: usize,
    failed: bool,
}

impl<R: Read> PcapChunks<R> {
    /// Wraps an open reader; `chunk_records` is clamped to at least 1.
    pub fn new(reader: PcapReader<R>, chunk_records: usize) -> Self {
        PcapChunks {
            reader,
            chunk_records: chunk_records.max(1),
            failed: false,
        }
    }
}

impl<R: Read> Iterator for PcapChunks<R> {
    type Item = Result<Vec<RecordOutcome>, PacketError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let mut out = Vec::new();
        while out.len() < self.chunk_records {
            match self.reader.read_record_recovering() {
                Ok(Some(outcome)) => out.push(outcome),
                Ok(None) => break,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
        if out.is_empty() {
            None
        } else {
            Some(Ok(out))
        }
    }
}

/// One captured packet record, borrowed from the underlying file bytes.
///
/// The zero-copy counterpart of [`PcapRecord`]: `data` is a subslice of
/// the capture file (an [`MappedPcap`] mapping or any in-memory byte
/// slice), so yielding a record allocates nothing. Views live only as
/// long as the backing bytes — promote with [`RecordView::to_owned`]
/// when a record must outlive them (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Sub-second microseconds.
    pub ts_micros: u32,
    /// Raw packet bytes (an IPv6 packet under LINKTYPE_RAW).
    pub data: &'a [u8],
}

impl RecordView<'_> {
    /// Copies the view out into an owned [`PcapRecord`].
    pub fn to_owned(&self) -> PcapRecord {
        PcapRecord {
            ts: self.ts,
            ts_micros: self.ts_micros,
            data: self.data.to_vec(),
        }
    }
}

/// Outcome of one recoverable zero-copy read step (see
/// [`SliceReader::read_record_recovering`]).
///
/// The borrowed counterpart of [`RecordOutcome`]; the two encode the same
/// taxonomy and a [`SliceReader`] yields exactly the outcome sequence a
/// [`PcapReader`] yields over the same bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewOutcome<'a> {
    /// A complete, well-formed record.
    Record(RecordView<'a>),
    /// A damaged record was skipped; the stream is re-synchronized on the
    /// next record boundary.
    Skipped(MalformedRecord),
    /// The file ends inside a record. All preceding records were yielded;
    /// no further reads will succeed.
    TruncatedTail(MalformedRecord),
}

impl ViewOutcome<'_> {
    /// Copies the outcome out into its owned [`RecordOutcome`] form.
    pub fn to_owned(&self) -> RecordOutcome {
        match self {
            ViewOutcome::Record(v) => RecordOutcome::Record(v.to_owned()),
            ViewOutcome::Skipped(m) => RecordOutcome::Skipped(*m),
            ViewOutcome::TruncatedTail(m) => RecordOutcome::TruncatedTail(*m),
        }
    }
}

/// Zero-copy recovering pcap reader over an in-memory byte slice.
///
/// Parses the same global-header dialects as [`PcapReader`] (both endians,
/// micro- and nanosecond magic) and applies the same per-record validation
/// in the same order, but yields borrowed [`RecordView`]s instead of
/// allocating a `Vec<u8>` per record. Because the whole file is addressable,
/// recovery is a cursor adjustment: skipping a damaged record advances the
/// offset past its advertised bytes, and no copy-out is ever needed to
/// re-synchronize — the "copy-out at re-sync boundaries" obligation of
/// streaming readers vanishes in slice mode.
pub struct SliceReader<'a> {
    data: &'a [u8],
    pos: usize,
    swapped: bool,
    nanos: bool,
    snaplen: u32,
    exhausted: bool,
}

/// Resumable cursor state of a [`SliceReader`] — everything but the byte
/// slice itself.
///
/// Tail-following readers save this across remaps of a growing capture
/// file: a truncated tail never advances the cursor (the offset stays at
/// the start of the incomplete record), so [`SliceReader::resume`] over a
/// longer snapshot of the same file re-reads exactly the bytes the writer
/// was still producing — including a record whose header or body was cut
/// mid-write and completed later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SliceReaderState {
    pos: usize,
    swapped: bool,
    nanos: bool,
    snaplen: u32,
}

impl SliceReaderState {
    /// Byte offset of the next unread record header.
    pub fn offset(&self) -> usize {
        self.pos
    }
}

impl<'a> SliceReader<'a> {
    /// Validates the 24-byte global header and positions the cursor on the
    /// first record.
    pub fn new(data: &'a [u8]) -> Result<Self, PacketError> {
        if data.len() < 24 {
            return Err(PacketError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "pcap global header needs 24 bytes",
            )));
        }
        let magic = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        let (swapped, nanos) = match magic {
            MAGIC_LE_US => (false, false),
            MAGIC_LE_NS => (false, true),
            m if m.swap_bytes() == MAGIC_LE_US => (true, false),
            m if m.swap_bytes() == MAGIC_LE_NS => (true, true),
            m => return Err(PacketError::BadPcapMagic(m)),
        };
        let read_u32 = |b: &[u8]| {
            let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
            if swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let linktype = read_u32(&data[20..24]);
        if linktype != LINKTYPE_RAW {
            return Err(PacketError::UnsupportedLinkType(linktype));
        }
        Ok(SliceReader {
            data,
            pos: 24,
            swapped,
            nanos,
            snaplen: read_u32(&data[16..20]),
            exhausted: false,
        })
    }

    /// The snapshot length declared by the file's global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// The resumable cursor state — see [`SliceReaderState`]. The
    /// `exhausted` latch is deliberately not part of the state: resuming
    /// over a longer snapshot of the same file clears it, so a truncated
    /// tail can complete once the writer catches up.
    pub fn state(&self) -> SliceReaderState {
        SliceReaderState {
            pos: self.pos,
            swapped: self.swapped,
            nanos: self.nanos,
            snaplen: self.snaplen,
        }
    }

    /// Byte offset of the next unread record header.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// True once the reader has hit end of data (clean or truncated); only
    /// [`SliceReader::resume`] over a longer slice can make progress again.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Re-creates a reader over a (possibly longer) snapshot of the same
    /// file from a saved [`SliceReaderState`], without re-validating or
    /// re-reading the prefix. `data` must extend the bytes the state was
    /// saved from; a slice shorter than the saved offset yields a reader
    /// that reports a truncated tail at the boundary.
    pub fn resume(data: &'a [u8], state: SliceReaderState) -> SliceReader<'a> {
        SliceReader {
            data,
            pos: state.pos.min(data.len()),
            swapped: state.swapped,
            nanos: state.nanos,
            snaplen: state.snaplen,
            exhausted: false,
        }
    }

    /// Reads the next record with skip-and-count recovery, or `None` at end
    /// of file.
    ///
    /// Infallible (unlike the streaming reader there is no I/O to fail):
    /// damage maps to [`ViewOutcome::Skipped`] / [`ViewOutcome::TruncatedTail`]
    /// exactly as [`PcapReader::read_record_recovering`] maps it, including
    /// the reported-once-then-EOF truncation semantics.
    #[allow(clippy::should_implement_trait)]
    pub fn read_record_recovering(&mut self) -> Option<ViewOutcome<'a>> {
        if self.exhausted {
            return None;
        }
        let remaining = self.data.len() - self.pos;
        if remaining == 0 {
            return None;
        }
        if remaining < 16 {
            self.exhausted = true;
            return Some(ViewOutcome::TruncatedTail(
                MalformedRecord::TruncatedHeader { have: remaining },
            ));
        }
        let hdr = &self.data[self.pos..self.pos + 16];
        let field = |i: usize| {
            let v = u32::from_le_bytes([hdr[i], hdr[i + 1], hdr[i + 2], hdr[i + 3]]);
            if self.swapped {
                v.swap_bytes()
            } else {
                v
            }
        };
        let (ts_sec, ts_frac, incl_len, orig_len) = (field(0), field(4), field(8), field(12));
        // Same validation order as the streaming reader so the same damage
        // produces the same MalformedRecord reason.
        let malformed = if self.snaplen != 0 && incl_len > self.snaplen {
            Some(MalformedRecord::SnaplenExceeded {
                incl_len,
                snaplen: self.snaplen,
            })
        } else if incl_len > MAX_RECORD_LEN {
            Some(MalformedRecord::CapExceeded { incl_len })
        } else if incl_len > orig_len {
            Some(MalformedRecord::LengthInconsistent { incl_len, orig_len })
        } else {
            None
        };
        let body = self.pos + 16;
        let end = body.checked_add(incl_len as usize);
        if let Some(m) = malformed {
            // Skip the advertised bytes; a skip running off the end of the
            // slice is the streaming reader's discard-hit-EOF case.
            return Some(match end {
                Some(end) if end <= self.data.len() => {
                    self.pos = end;
                    ViewOutcome::Skipped(m)
                }
                _ => {
                    self.exhausted = true;
                    ViewOutcome::TruncatedTail(m)
                }
            });
        }
        match end {
            Some(end) if end <= self.data.len() => {
                self.pos = end;
                let ts_micros = if self.nanos { ts_frac / 1000 } else { ts_frac };
                Some(ViewOutcome::Record(RecordView {
                    ts: SimTime::from_secs(ts_sec as u64),
                    ts_micros,
                    data: &self.data[body..end],
                }))
            }
            _ => {
                self.exhausted = true;
                Some(ViewOutcome::TruncatedTail(MalformedRecord::TruncatedBody {
                    need: incl_len as usize,
                    have: self.data.len() - body,
                }))
            }
        }
    }

    /// Collects up to `chunk_records` outcomes into `out` (cleared first).
    /// Returns `false` once the stream is finished and `out` is empty —
    /// the chunked feed used by the streaming pipeline. Chunk boundaries
    /// are invisible in the outcome sequence.
    pub fn next_chunk(&mut self, chunk_records: usize, out: &mut Vec<ViewOutcome<'a>>) -> bool {
        out.clear();
        let want = chunk_records.max(1);
        while out.len() < want {
            match self.read_record_recovering() {
                Some(outcome) => out.push(outcome),
                None => break,
            }
        }
        !out.is_empty()
    }
}

impl<'a> Iterator for SliceReader<'a> {
    type Item = ViewOutcome<'a>;
    fn next(&mut self) -> Option<Self::Item> {
        self.read_record_recovering()
    }
}

#[cfg(unix)]
mod mmap_sys {
    //! Minimal read-only `mmap(2)` bindings.
    //!
    //! Declared directly (std already links libc on every unix target) so
    //! the zero-copy reader needs no external crate. Only `PROT_READ` +
    //! `MAP_PRIVATE` mappings of regular files are ever created.
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// How a [`MappedPcap`] holds the file bytes.
enum Backing {
    /// A read-only private `mmap(2)` of the file.
    #[cfg(unix)]
    Mapped { ptr: *mut u8, len: usize },
    /// The whole file read into memory (the fallback path).
    Owned(Vec<u8>),
}

/// A capture file held as one contiguous byte slice, preferring `mmap(2)`.
///
/// [`MappedPcap::open`] maps the file read-only when possible and silently
/// falls back to reading it into an owned buffer when it cannot (empty
/// file, exotic filesystem, non-unix target). Either way [`MappedPcap::data`]
/// exposes identical bytes, so [`SliceReader`]s built over it behave
/// identically — the fallback changes memory residency, never statistics.
///
/// The mapping snapshots the file's length at open time; bytes appended by
/// a still-running capture process are picked up by the *next* open, which
/// matches the buffered reader's behavior of reading to the EOF it sees.
pub struct MappedPcap {
    backing: Backing,
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never mutated or
// remapped after construction, so shared references to its bytes may move
// across threads like any other immutable buffer.
unsafe impl Send for MappedPcap {}
unsafe impl Sync for MappedPcap {}

impl MappedPcap {
    /// Opens `path`, mapping it when the platform and file allow and
    /// falling back to a buffered whole-file read otherwise.
    pub fn open(path: &Path) -> Result<Self, PacketError> {
        let file = std::fs::File::open(path)?;
        #[cfg(unix)]
        {
            let len = file.metadata()?.len();
            // mmap(2) rejects zero-length mappings; tiny or empty files go
            // through the fallback (and then fail header validation with
            // the same error the streaming reader reports).
            if len > 0 && usize::try_from(len).is_ok() {
                use std::os::unix::io::AsRawFd;
                let len = len as usize;
                let ptr = unsafe {
                    mmap_sys::mmap(
                        std::ptr::null_mut(),
                        len,
                        mmap_sys::PROT_READ,
                        mmap_sys::MAP_PRIVATE,
                        file.as_raw_fd(),
                        0,
                    )
                };
                if ptr as isize != -1 && !ptr.is_null() {
                    return Ok(MappedPcap {
                        backing: Backing::Mapped {
                            ptr: ptr as *mut u8,
                            len,
                        },
                    });
                }
            }
        }
        Self::from_reader(file)
    }

    /// Opens `path` through the buffered fallback unconditionally — the
    /// path exercised by tests that pin fallback/mmap equivalence.
    pub fn open_buffered(path: &Path) -> Result<Self, PacketError> {
        Self::from_reader(std::fs::File::open(path)?)
    }

    fn from_reader<R: Read>(mut input: R) -> Result<Self, PacketError> {
        let mut buf = Vec::new();
        input.read_to_end(&mut buf)?;
        Ok(MappedPcap {
            backing: Backing::Owned(buf),
        })
    }

    /// The file bytes (identical on both backings).
    pub fn data(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len came from a successful mmap that lives until
            // Drop, and the mapping is never written through.
            Backing::Mapped { ptr, len } => unsafe {
                std::slice::from_raw_parts(*ptr as *const u8, *len)
            },
            Backing::Owned(v) => v,
        }
    }

    /// True when the bytes are an actual memory mapping (false on the
    /// buffered fallback).
    pub fn used_mmap(&self) -> bool {
        match self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }

    /// A zero-copy recovering reader over the file bytes.
    pub fn reader(&self) -> Result<SliceReader<'_>, PacketError> {
        SliceReader::new(self.data())
    }
}

impl Drop for MappedPcap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly one munmap of a region this struct mmapped.
            unsafe {
                mmap_sys::munmap(ptr as *mut std::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    fn sample_records() -> Vec<PcapRecord> {
        let b = PacketBuilder::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
        );
        vec![
            PcapRecord {
                ts: SimTime::from_secs(10),
                ts_micros: 500,
                data: b.icmpv6_echo_request(1, 1, b"probe"),
            },
            PcapRecord {
                ts: SimTime::from_secs(11),
                ts_micros: 0,
                data: b.tcp_syn(40000, 80, 7, &[]),
            },
            PcapRecord {
                ts: SimTime::from_secs(3600),
                ts_micros: 999_999,
                data: b.udp(40001, 33434, b"trace"),
            },
        ]
    }

    #[test]
    fn write_read_round_trip() {
        let records = sample_records();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let reader = PcapReader::new(&bytes[..]).unwrap();
        let back: Vec<PcapRecord> = reader.map(Result::unwrap).collect();
        assert_eq!(back, records);
    }

    #[test]
    fn chunked_reading_is_boundary_invisible() {
        // Good records plus a damaged one plus a truncated tail: chunked
        // iteration must yield exactly the outcome sequence the plain
        // recovering loop produces, at any chunk size.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        let mut bytes = w.into_inner().unwrap();
        // incl_len 8 > orig_len 2, body present → Skipped(LengthInconsistent).
        bytes.extend_from_slice(&9u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xab; 8]);
        bytes.extend_from_slice(&[0u8; 5]); // header cut off by EOF
        let mut reference = Vec::new();
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        while let Some(outcome) = r.read_record_recovering().unwrap() {
            reference.push(outcome);
        }
        assert!(reference
            .iter()
            .any(|o| matches!(o, RecordOutcome::Skipped(_))));
        assert!(reference
            .iter()
            .any(|o| matches!(o, RecordOutcome::TruncatedTail(_))));
        for chunk in [1usize, 2, 1000] {
            let reader = PcapReader::new(&bytes[..]).unwrap();
            let mut chunk_sizes = Vec::new();
            let mut chunked: Vec<RecordOutcome> = Vec::new();
            for c in PcapChunks::new(reader, chunk) {
                let c = c.unwrap();
                chunk_sizes.push(c.len());
                chunked.extend(c);
            }
            assert_eq!(chunked, reference, "chunk size {chunk}");
            assert!(chunk_sizes.iter().all(|&n| n >= 1 && n <= chunk));
        }
    }

    #[test]
    fn global_header_is_24_bytes_with_raw_linktype() {
        let w = PcapWriter::new(Vec::new()).unwrap();
        let bytes = w.into_inner().unwrap();
        assert_eq!(bytes.len(), 24);
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            MAGIC_LE_US
        );
        assert_eq!(
            u32::from_le_bytes(bytes[20..24].try_into().unwrap()),
            LINKTYPE_RAW
        );
    }

    #[test]
    fn reader_rejects_bad_magic() {
        let bytes = [0u8; 24];
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(PacketError::BadPcapMagic(0))
        ));
    }

    #[test]
    fn reader_rejects_wrong_linktype() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes[20..24].copy_from_slice(&1u32.to_le_bytes()); // LINKTYPE_ETHERNET
        assert!(matches!(
            PcapReader::new(&bytes[..]),
            Err(PacketError::UnsupportedLinkType(1))
        ));
    }

    #[test]
    fn reader_accepts_big_endian_files() {
        // Hand-build a big-endian header + one record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE_US.to_be_bytes());
        bytes.extend_from_slice(&2u16.to_be_bytes());
        bytes.extend_from_slice(&4u16.to_be_bytes());
        bytes.extend_from_slice(&0i32.to_be_bytes());
        bytes.extend_from_slice(&0u32.to_be_bytes());
        bytes.extend_from_slice(&65_535u32.to_be_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_be_bytes());
        bytes.extend_from_slice(&42u32.to_be_bytes()); // ts_sec
        bytes.extend_from_slice(&7u32.to_be_bytes()); // ts_usec
        bytes.extend_from_slice(&3u32.to_be_bytes()); // incl
        bytes.extend_from_slice(&3u32.to_be_bytes()); // orig
        bytes.extend_from_slice(&[0xaa, 0xbb, 0xcc]);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let rec = r.read_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_secs(), 42);
        assert_eq!(rec.ts_micros, 7);
        assert_eq!(rec.data, vec![0xaa, 0xbb, 0xcc]);
        assert!(r.read_record().unwrap().is_none());
    }

    #[test]
    fn nanosecond_magic_scales_to_micros() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE_NS.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5_000_000u32.to_le_bytes()); // 5 ms in ns
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0x60);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let rec = r.read_record().unwrap().unwrap();
        assert_eq!(rec.ts_micros, 5000);
    }

    #[test]
    fn truncated_record_is_an_error_not_a_panic() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = PcapReader::new(&bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(
            r.read_record(),
            Err(PacketError::Malformed(
                MalformedRecord::TruncatedBody { .. }
            ))
        ));
    }

    /// Appends a raw record header (+ body) to `bytes` in LE layout.
    fn push_record(bytes: &mut Vec<u8>, incl: u32, orig: u32, body: &[u8]) {
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&incl.to_le_bytes());
        bytes.extend_from_slice(&orig.to_le_bytes());
        bytes.extend_from_slice(body);
    }

    #[test]
    fn oversized_incl_len_is_a_typed_error_without_allocation() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        // Overwrite incl_len with a 4 GiB-adjacent value.
        bytes[32..36].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.read_record(),
            Err(PacketError::Malformed(MalformedRecord::SnaplenExceeded {
                incl_len: u32::MAX,
                snaplen: 65_535,
            }))
        ));
    }

    #[test]
    fn cap_applies_when_the_file_snaplen_is_absurd() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes[16..20].copy_from_slice(&u32::MAX.to_le_bytes()); // snaplen
        bytes[32..36].copy_from_slice(&(MAX_RECORD_LEN + 1).to_le_bytes());
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert_eq!(r.snaplen(), u32::MAX);
        assert!(matches!(
            r.read_record(),
            Err(PacketError::Malformed(MalformedRecord::CapExceeded { .. }))
        ));
    }

    #[test]
    fn recovering_reader_skips_bad_record_and_resynchronizes() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let records = sample_records();
        w.write_record(&records[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        // A record whose incl_len (8) exceeds its orig_len (4): contradictory
        // lengths, but the 8 advertised body bytes are present, so the reader
        // can skip straight over them.
        push_record(&mut bytes, 8, 4, &[0xeeu8; 8]);
        // A well-formed record after the damage.
        push_record(&mut bytes, 3, 3, &[1, 2, 3]);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::Record(rec)) if rec == records[0]
        ));
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::Skipped(
                MalformedRecord::LengthInconsistent {
                    incl_len: 8,
                    orig_len: 4,
                }
            ))
        ));
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::Record(rec)) if rec.data == [1, 2, 3]
        ));
        assert!(r.read_record_recovering().unwrap().is_none());
    }

    #[test]
    fn truncated_tail_is_reported_once_then_eof() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let records = sample_records();
        w.write_record(&records[0]).unwrap();
        w.write_record(&records[1]).unwrap();
        let bytes = w.into_inner().unwrap();
        // Cut the file off inside the second record's body.
        let mut r = PcapReader::new(&bytes[..bytes.len() - 2]).unwrap();
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::Record(_))
        ));
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::TruncatedTail(
                MalformedRecord::TruncatedBody { .. }
            ))
        ));
        assert!(r.read_record_recovering().unwrap().is_none());
        assert!(r.read_record_recovering().unwrap().is_none());
    }

    #[test]
    fn skip_hitting_eof_counts_as_truncated_tail() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        // Damaged record advertising 100 body bytes, of which only 5 exist.
        push_record(&mut bytes, 100, 50, &[0u8; 5]);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::Record(_))
        ));
        assert!(matches!(
            r.read_record_recovering().unwrap(),
            Some(RecordOutcome::TruncatedTail(
                MalformedRecord::LengthInconsistent { .. }
            ))
        ));
        assert!(r.read_record_recovering().unwrap().is_none());
    }

    /// Streams `bytes` through both the owned recovering reader and the
    /// zero-copy slice reader and asserts identical outcome sequences.
    fn assert_readers_agree(bytes: &[u8]) {
        let mut owned = Vec::new();
        let mut r = PcapReader::new(bytes).unwrap();
        while let Some(outcome) = r.read_record_recovering().unwrap() {
            owned.push(outcome);
        }
        let borrowed: Vec<RecordOutcome> = SliceReader::new(bytes)
            .unwrap()
            .map(|o| o.to_owned())
            .collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn slice_reader_matches_streaming_reader_on_clean_files() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        assert_readers_agree(&w.into_inner().unwrap());
    }

    #[test]
    fn slice_reader_matches_streaming_reader_on_damage() {
        // Same damage catalog the owned-reader tests use: inconsistent
        // lengths mid-file, a skip running off EOF, a truncated header.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        let clean = w.into_inner().unwrap();

        let mut skipped = clean.clone();
        push_record(&mut skipped, 8, 4, &[0xee; 8]);
        push_record(&mut skipped, 3, 3, &[1, 2, 3]);
        assert_readers_agree(&skipped);

        let mut tail_skip = clean.clone();
        push_record(&mut tail_skip, 100, 50, &[0u8; 5]);
        assert_readers_agree(&tail_skip);

        let mut cut_header = clean.clone();
        cut_header.extend_from_slice(&[0u8; 7]);
        assert_readers_agree(&cut_header);

        let cut_body = &clean[..clean.len() - 2];
        assert_readers_agree(cut_body);
    }

    #[test]
    fn slice_reader_resume_continues_where_it_stopped() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        // Read one record, capture the cursor, resume a fresh reader: the
        // resumed outcome sequence equals the unread remainder.
        let mut first = SliceReader::new(&bytes).unwrap();
        let mut views = Vec::new();
        assert!(first.next_chunk(1, &mut views));
        assert_eq!(views.len(), 1);
        let state = first.state();
        assert!(state.offset() > 24, "cursor moved past the global header");
        let rest: Vec<RecordOutcome> = SliceReader::resume(&bytes, state)
            .map(|o| o.to_owned())
            .collect();
        let full: Vec<RecordOutcome> = SliceReader::new(&bytes)
            .unwrap()
            .map(|o| o.to_owned())
            .collect();
        assert_eq!(rest, full[1..]);
    }

    #[test]
    fn slice_reader_resume_rereads_a_completed_tail() {
        // A truncated tail leaves the cursor at the in-flight record's
        // start; resuming over the completed file reads that record whole.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let records = sample_records();
        w.write_record(&records[0]).unwrap();
        w.write_record(&records[1]).unwrap();
        let full = w.into_inner().unwrap();
        let cut = full.len() - 2;

        let mut r = SliceReader::new(&full[..cut]).unwrap();
        assert!(matches!(r.next(), Some(ViewOutcome::Record(_))));
        let at_tail = r.state();
        assert!(matches!(r.next(), Some(ViewOutcome::TruncatedTail(_))));
        assert!(r.is_exhausted());
        // The truncated outcome did not advance the cursor.
        assert_eq!(r.state().offset(), at_tail.offset());

        let mut resumed = SliceReader::resume(&full, r.state());
        assert!(!resumed.is_exhausted(), "resume clears exhaustion");
        match resumed.next() {
            Some(ViewOutcome::Record(rec)) => assert_eq!(rec.data, &records[1].data[..]),
            other => panic!("expected the completed record, got {other:?}"),
        }
        assert!(resumed.next().is_none());
    }

    #[test]
    fn slice_reader_resume_clamps_past_eof() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let bytes = w.into_inner().unwrap();
        let mut r = SliceReader::new(&bytes).unwrap();
        while r.next().is_some() {}
        let state = r.state();
        // Resuming over a shorter snapshot than the cursor has seen (a
        // writer that truncated its own file) yields nothing, not a panic.
        let mut shorter = SliceReader::resume(&bytes[..24], state);
        assert!(shorter.next().is_none());
    }

    #[test]
    fn slice_reader_rejects_the_same_headers() {
        assert!(matches!(
            SliceReader::new(&[0u8; 24]),
            Err(PacketError::BadPcapMagic(0))
        ));
        assert!(matches!(
            SliceReader::new(&[0u8; 3]),
            Err(PacketError::Io(_))
        ));
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&sample_records()[0]).unwrap();
        let mut bytes = w.into_inner().unwrap();
        bytes[20..24].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            SliceReader::new(&bytes),
            Err(PacketError::UnsupportedLinkType(1))
        ));
    }

    #[test]
    fn slice_reader_handles_big_endian_and_nanos() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC_LE_NS.to_le_bytes());
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&4u16.to_le_bytes());
        bytes.extend_from_slice(&0i32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&65_535u32.to_le_bytes());
        bytes.extend_from_slice(&LINKTYPE_RAW.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&5_000_000u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.push(0x60);
        let mut r = SliceReader::new(&bytes).unwrap();
        match r.read_record_recovering() {
            Some(ViewOutcome::Record(v)) => {
                assert_eq!(v.ts_micros, 5000);
                assert_eq!(v.data, &[0x60]);
            }
            other => panic!("expected record, got {other:?}"),
        }
        assert!(r.read_record_recovering().is_none());
    }

    #[test]
    fn slice_chunks_are_boundary_invisible() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        let mut bytes = w.into_inner().unwrap();
        push_record(&mut bytes, 8, 2, &[0xab; 8]);
        let reference: Vec<RecordOutcome> = SliceReader::new(&bytes)
            .unwrap()
            .map(|o| o.to_owned())
            .collect();
        for chunk in [1usize, 2, 1000] {
            let mut r = SliceReader::new(&bytes).unwrap();
            let mut buf = Vec::new();
            let mut collected = Vec::new();
            while r.next_chunk(chunk, &mut buf) {
                assert!(!buf.is_empty() && buf.len() <= chunk);
                collected.extend(buf.iter().map(|o| o.to_owned()));
            }
            assert_eq!(collected, reference, "chunk size {chunk}");
        }
    }

    #[test]
    fn mapped_pcap_matches_buffered_fallback() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in sample_records() {
            w.write_record(&r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sixscope-mmap-test-{}.pcap", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedPcap::open(&path).unwrap();
        let buffered = MappedPcap::open_buffered(&path).unwrap();
        assert!(!buffered.used_mmap());
        assert_eq!(mapped.data(), buffered.data());
        let a: Vec<RecordOutcome> = mapped.reader().unwrap().map(|o| o.to_owned()).collect();
        let b: Vec<RecordOutcome> = buffered.reader().unwrap().map(|o| o.to_owned()).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_pcap_empty_file_falls_back_and_reports_header_error() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("sixscope-mmap-empty-{}.pcap", std::process::id()));
        std::fs::write(&path, b"").unwrap();
        let mapped = MappedPcap::open(&path).unwrap();
        assert!(!mapped.used_mmap());
        assert!(mapped.reader().is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn writer_rejects_post_2106_timestamps() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let rec = PcapRecord {
            ts: SimTime::from_secs(u64::from(u32::MAX) + 1),
            ts_micros: 0,
            data: vec![0x60],
        };
        assert!(matches!(
            w.write_record(&rec),
            Err(PacketError::TimestampOverflow(_))
        ));
    }

    #[test]
    fn writer_clips_oversnaplen_data_and_records_orig_len() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let rec = PcapRecord {
            ts: SimTime::from_secs(9),
            ts_micros: 0,
            data: vec![0xabu8; 70_000],
        };
        w.write_record(&rec).unwrap();
        let bytes = w.into_inner().unwrap();
        let incl = u32::from_le_bytes(bytes[32..36].try_into().unwrap());
        let orig = u32::from_le_bytes(bytes[36..40].try_into().unwrap());
        assert_eq!(incl, 65_535);
        assert_eq!(orig, 70_000);
        assert_eq!(bytes.len(), 24 + 16 + 65_535);
        // The clipped record reads back cleanly (incl_len < orig_len is a
        // legitimate snaplen clip, not damage).
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let back = r.read_record().unwrap().unwrap();
        assert_eq!(back.data.len(), 65_535);
        assert!(r.read_record().unwrap().is_none());
    }
}
