//! Network-selection strategies: which announced prefixes a session probes
//! (the generator side of §5.2).

use sixscope_types::{Ipv6Prefix, Xoshiro256pp};
use std::net::Ipv6Addr;

/// How a scanner picks target networks from the announced-prefix view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkStrategy {
    /// One announced prefix per session (the choice may vary between
    /// sessions) — RIPE Atlas and Alpha Strike style.
    SinglePrefix,
    /// One announced prefix per *announcement period*: the choice is a
    /// deterministic function of the announced set, so it stays fixed while
    /// the set is stable and may change when the set changes — the paper's
    /// single-prefix scanners whose "chosen (arbitrary) prefix may vary
    /// between periods" (§5.2).
    PinnedPrefix {
        /// Per-scanner salt so different scanners pin different prefixes.
        salt: u64,
    },
    /// Every announced prefix, once per session — size-independent.
    AllAnnounced,
    /// Prefixes drawn with probability proportional to their address count
    /// — a coarse sweep that hits larger prefixes more often
    /// (size-dependent).
    SizeProportional {
        /// Prefixes drawn per session.
        draws: u32,
    },
    /// Alternates between [`NetworkStrategy::AllAnnounced`]-like and
    /// [`NetworkStrategy::SinglePrefix`]-like behavior across *announcement
    /// periods* (keyed on the announced set, like
    /// [`NetworkStrategy::PinnedPrefix`]) — the paper's "inconsistent"
    /// scanners: consistent within a cycle, changing between cycles
    /// (64 sources, 48% of sessions).
    Alternating,
    /// Fixed literal targets regardless of announcements (the DNS-exposed
    /// address of T2 is reached this way).
    FixedTargets(Vec<Ipv6Addr>),
    /// Random sampling in one fixed covering prefix (how silent subnets
    /// like T3 receive their rare packets).
    CoveringRandom(Ipv6Prefix),
}

impl NetworkStrategy {
    /// Selects the prefixes this session will probe. `session_index`
    /// provides the alternation state for [`NetworkStrategy::Alternating`].
    ///
    /// [`NetworkStrategy::FixedTargets`] and
    /// [`NetworkStrategy::CoveringRandom`] do not select announced
    /// prefixes; they return their own scope.
    pub fn select(
        &self,
        announced: &[Ipv6Prefix],
        session_index: u64,
        rng: &mut Xoshiro256pp,
    ) -> Vec<Ipv6Prefix> {
        let mut out = Vec::new();
        let mut weights = Vec::new();
        self.select_into(announced, session_index, rng, &mut weights, &mut out);
        out
    }

    /// Fills `out` (cleared first) with the session's prefixes. `weights` is
    /// scratch for the size-proportional draw so a burst reuses one buffer.
    /// Selections and RNG draws are identical to [`NetworkStrategy::select`].
    pub fn select_into(
        &self,
        announced: &[Ipv6Prefix],
        session_index: u64,
        rng: &mut Xoshiro256pp,
        weights: &mut Vec<f64>,
        out: &mut Vec<Ipv6Prefix>,
    ) {
        out.clear();
        match self {
            NetworkStrategy::SinglePrefix => {
                if !announced.is_empty() {
                    out.push(*rng.choose(announced));
                }
            }
            NetworkStrategy::PinnedPrefix { salt } => {
                if announced.is_empty() {
                    return;
                }
                let h = set_hash(announced, *salt);
                out.push(announced[(h % announced.len() as u64) as usize]);
            }
            NetworkStrategy::AllAnnounced => out.extend_from_slice(announced),
            NetworkStrategy::SizeProportional { draws } => {
                if announced.is_empty() {
                    return;
                }
                // Weights ∝ address count; use the prefix-length exponent
                // directly to avoid astronomically large floats.
                weights.clear();
                weights.extend(
                    announced
                        .iter()
                        .map(|p| 2f64.powi((64 - p.len().min(64)) as i32)),
                );
                for _ in 0..*draws {
                    let pick = announced[rng.weighted_index(weights)];
                    if !out.contains(&pick) {
                        out.push(pick);
                    }
                }
            }
            NetworkStrategy::Alternating => {
                let _ = session_index;
                // The announced set grows by one prefix per cycle, so its
                // size parity flips every announcement period — a clean
                // "changes behavior between periods" signal.
                if announced.len() % 2 == 0 {
                    NetworkStrategy::AllAnnounced.select_into(
                        announced,
                        session_index,
                        rng,
                        weights,
                        out,
                    )
                } else {
                    NetworkStrategy::PinnedPrefix {
                        salt: set_hash(announced, 1),
                    }
                    .select_into(announced, session_index, rng, weights, out)
                }
            }
            NetworkStrategy::FixedTargets(_) => {}
            NetworkStrategy::CoveringRandom(covering) => out.push(*covering),
        }
    }
}

/// FNV-style fold of an announced set plus a salt: stable within an
/// announcement period, fresh across periods.
fn set_hash(announced: &[Ipv6Prefix], salt: u64) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ salt;
    for p in announced {
        h ^= p.bits() as u64 ^ (p.len() as u64) << 56;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn announced() -> Vec<Ipv6Prefix> {
        vec![
            p("2001:db8::/33"),
            p("2001:db8:8000::/34"),
            p("2001:db8:c000::/34"),
        ]
    }

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(3)
    }

    #[test]
    fn single_prefix_picks_exactly_one() {
        let mut r = rng();
        for i in 0..20 {
            let sel = NetworkStrategy::SinglePrefix.select(&announced(), i, &mut r);
            assert_eq!(sel.len(), 1);
            assert!(announced().contains(&sel[0]));
        }
    }

    #[test]
    fn all_announced_returns_everything() {
        let sel = NetworkStrategy::AllAnnounced.select(&announced(), 0, &mut rng());
        assert_eq!(sel, announced());
    }

    #[test]
    fn size_proportional_prefers_larger_prefixes() {
        let mut r = rng();
        let mut hits = [0u32; 3];
        for _ in 0..3000 {
            let sel =
                NetworkStrategy::SizeProportional { draws: 1 }.select(&announced(), 0, &mut r);
            let idx = announced().iter().position(|p| *p == sel[0]).unwrap();
            hits[idx] += 1;
        }
        // The /33 holds half the space; each /34 a quarter.
        assert!(hits[0] > hits[1] && hits[0] > hits[2]);
        let share = hits[0] as f64 / 3000.0;
        assert!((share - 0.5).abs() < 0.05, "share of /33 was {share}");
    }

    #[test]
    fn alternating_is_stable_within_a_period_and_varies_across() {
        let mut r = rng();
        // Within one announced set the behavior is fixed.
        let a = NetworkStrategy::Alternating.select(&announced(), 0, &mut r);
        let b = NetworkStrategy::Alternating.select(&announced(), 5, &mut r);
        assert_eq!(a.len(), b.len());
        // Across many different sets, both modes occur.
        let base: Ipv6Prefix = p("2001:db8::/32");
        let mut saw_all = false;
        let mut saw_single = false;
        let mut current = base;
        let mut set = vec![base];
        for _ in 0..12 {
            let (lo, hi) = current.split().unwrap();
            set.pop();
            set.push(lo);
            set.push(hi);
            current = hi;
            let sel = NetworkStrategy::Alternating.select(&set, 0, &mut r);
            if sel.len() == set.len() {
                saw_all = true;
            } else if sel.len() == 1 {
                saw_single = true;
            }
        }
        assert!(saw_all && saw_single, "alternation never switched modes");
    }

    #[test]
    fn pinned_prefix_is_deterministic_per_period() {
        let mut r = rng();
        let strat = NetworkStrategy::PinnedPrefix { salt: 99 };
        let a = strat.select(&announced(), 0, &mut r);
        let b = strat.select(&announced(), 7, &mut r);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        // Different salts spread across prefixes.
        let picks: std::collections::BTreeSet<Ipv6Prefix> = (0..32u64)
            .map(|salt| NetworkStrategy::PinnedPrefix { salt }.select(&announced(), 0, &mut r)[0])
            .collect();
        assert!(picks.len() > 1, "all salts pinned the same prefix");
    }

    #[test]
    fn empty_announcement_view() {
        let mut r = rng();
        assert!(NetworkStrategy::SinglePrefix
            .select(&[], 0, &mut r)
            .is_empty());
        assert!(NetworkStrategy::AllAnnounced
            .select(&[], 0, &mut r)
            .is_empty());
        assert!(NetworkStrategy::SizeProportional { draws: 3 }
            .select(&[], 0, &mut r)
            .is_empty());
    }

    #[test]
    fn covering_random_ignores_announcements() {
        let covering = p("2001:db8::/29");
        let sel = NetworkStrategy::CoveringRandom(covering).select(&announced(), 0, &mut rng());
        assert_eq!(sel, vec![covering]);
    }

    #[test]
    fn fixed_targets_select_no_prefixes() {
        let strat = NetworkStrategy::FixedTargets(vec!["2001:db8::1".parse().unwrap()]);
        assert!(strat.select(&announced(), 0, &mut rng()).is_empty());
    }
}
