//! Property tests: the columnar corpus index must agree with a naive
//! recomputation straight off the captures, for randomized small corpora.
//!
//! The index trades per-query scans for one up-front columnarization pass;
//! these tests pin the contract that the trade is observationally free —
//! table2, table3 and the corpus overview are pure functions of the raw
//! packets and sessions, however they are computed.

use proptest::prelude::*;
use sixscope::analysis::addrtype::{self, AddressType};
use sixscope::scanners::population::Population;
use sixscope::scanners::{ExperimentLayout, PopulationSpec};
use sixscope::sim::{ExperimentResult, TumHitlist, Visibility};
use sixscope::tables;
use sixscope::telescope::{
    Bytes, Capture, CapturedPacket, Protocol, SplitSchedule, TelescopeConfig, TelescopeId,
};
use sixscope::types::{Ipv6Prefix, SimDuration, SimTime};
use sixscope::Analyzed;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv6Addr;
use std::sync::OnceLock;

/// One tiny population shared by all cases (building it per case would
/// dominate the test; the packets vary, the metadata world does not).
fn population() -> &'static (ExperimentLayout, Population) {
    static CELL: OnceLock<(ExperimentLayout, Population)> = OnceLock::new();
    CELL.get_or_init(|| {
        let layout = ExperimentLayout::default_plan();
        let pop = PopulationSpec::tiny(7).build(&layout);
        (layout, pop)
    })
}

/// A raw generated packet, before placement into a capture.
#[derive(Debug, Clone)]
struct RawPacket {
    telescope: usize,
    src_choice: usize,
    iid: u8,
    dst_bits: u128,
    ts_secs: u64,
    proto: u8,
    port: u16,
}

fn raw_packet() -> impl Strategy<Value = RawPacket> {
    (
        0..4usize,
        0..16usize,
        any::<u8>(),
        any::<u128>(),
        0..SimDuration::weeks(44).as_secs(),
        0..3u8,
        any::<u16>(),
    )
        .prop_map(
            |(telescope, src_choice, iid, dst_bits, ts_secs, proto, port)| RawPacket {
                telescope,
                src_choice,
                iid,
                dst_bits,
                ts_secs,
                proto,
                port,
            },
        )
}

/// Materializes raw packets into the four telescope captures.
fn build_result(raws: &[RawPacket]) -> ExperimentResult {
    let (layout, pop) = population();
    // Source pool: scanner subnets (so the AS join resolves) plus ULA
    // subnets outside the population (so the NO_ID path is exercised).
    let known: Vec<Ipv6Prefix> = pop
        .scanners
        .iter()
        .take(12)
        .map(|s| s.source.subnet())
        .collect();
    let unknown: Vec<Ipv6Prefix> = (0..4u32)
        .map(|i| {
            let addr: Ipv6Addr = format!("fd00:{i}::").parse().unwrap();
            Ipv6Prefix::new(addr, 64).unwrap()
        })
        .collect();
    let configs = [
        TelescopeConfig::t1(layout.t1),
        TelescopeConfig::t2(layout.t2),
        TelescopeConfig::t3(layout.t3),
        TelescopeConfig::t4(layout.t4),
    ];
    let mut packets: BTreeMap<TelescopeId, Vec<CapturedPacket>> = BTreeMap::new();
    for raw in raws {
        let config = &configs[raw.telescope];
        let subnet = if raw.src_choice < known.len() {
            known[raw.src_choice]
        } else {
            unknown[raw.src_choice - known.len()]
        };
        let src = subnet.nth_address(1 + u128::from(raw.iid % 8));
        let (protocol, dst_port) = match raw.proto {
            0 => (Protocol::Icmpv6, None),
            1 => (Protocol::Tcp, Some(raw.port)),
            _ => (Protocol::Udp, Some(raw.port)),
        };
        packets.entry(config.id).or_default().push(CapturedPacket {
            ts: SimTime::from_secs(raw.ts_secs),
            telescope: config.id,
            src,
            dst: config.prefix.nth_address(raw.dst_bits),
            protocol,
            src_port: dst_port.map(|_| 40000),
            dst_port,
            payload: Bytes::new(),
        });
    }
    let mut captures = BTreeMap::new();
    for config in configs {
        let id = config.id;
        let mut capture = Capture::new(config);
        let mut list = packets.remove(&id).unwrap_or_default();
        list.sort_by_key(|p| p.ts);
        for p in list {
            capture.push(p);
        }
        captures.insert(id, capture);
    }
    let visibility = Visibility::from_events(&[]);
    let hitlist = TumHitlist::build(&[], &visibility);
    ExperimentResult {
        layout: layout.clone(),
        schedule: SplitSchedule::paper(layout.t1, layout.start),
        captures,
        events: Vec::new(),
        visibility,
        population: pop.clone(),
        hitlist,
        t4_responses: 0,
        dropped_unrouted: 0,
        truncated_probes: 0,
    }
}

proptest! {
    #[test]
    fn table2_matches_naive_recomputation(raws in proptest::collection::vec(raw_packet(), 0..80)) {
        let a = Analyzed::from_result(build_result(&raws));
        let t2 = tables::table2(&a);

        let mut packets: BTreeMap<Protocol, u64> = BTreeMap::new();
        let mut sources: BTreeMap<Protocol, BTreeSet<Ipv6Addr>> = BTreeMap::new();
        let mut all_sources: BTreeSet<Ipv6Addr> = BTreeSet::new();
        let mut total_packets = 0u64;
        for id in TelescopeId::ALL {
            for p in a.capture(id).packets() {
                total_packets += 1;
                *packets.entry(p.protocol).or_default() += 1;
                sources.entry(p.protocol).or_default().insert(p.src);
                all_sources.insert(p.src);
            }
        }
        let mut sessions: BTreeMap<Protocol, u64> = BTreeMap::new();
        let mut total_sessions = 0u64;
        for id in TelescopeId::ALL {
            for s in a.sessions128(id) {
                total_sessions += 1;
                let protos: BTreeSet<Protocol> = s
                    .packets(a.capture(id))
                    .map(|p| p.protocol)
                    .collect();
                for proto in protos {
                    *sessions.entry(proto).or_default() += 1;
                }
            }
        }

        prop_assert_eq!(t2.total_packets, total_packets);
        prop_assert_eq!(t2.total_sessions, total_sessions);
        prop_assert_eq!(t2.total_sources, all_sources.len() as u64);
        for row in &t2.rows {
            prop_assert_eq!(row.packets, packets.get(&row.protocol).copied().unwrap_or(0));
            prop_assert_eq!(row.sessions, sessions.get(&row.protocol).copied().unwrap_or(0));
            prop_assert_eq!(
                row.sources,
                sources.get(&row.protocol).map_or(0, |s| s.len() as u64)
            );
        }
    }

    #[test]
    fn table3_matches_naive_recomputation(raws in proptest::collection::vec(raw_packet(), 0..80)) {
        let a = Analyzed::from_result(build_result(&raws));
        let t3 = tables::table3(&a);

        let mut packets: BTreeMap<u8, u64> = BTreeMap::new();
        let mut sources: BTreeMap<u8, BTreeSet<Ipv6Addr>> = BTreeMap::new();
        for id in TelescopeId::ALL {
            for p in a.capture(id).packets() {
                let code = addrtype::classify(p.dst).code();
                *packets.entry(code).or_default() += 1;
                sources.entry(code).or_default().insert(p.src);
            }
        }
        prop_assert_eq!(t3.len(), AddressType::ALL.len());
        for row in &t3 {
            let code = row.address_type.code();
            prop_assert_eq!(row.packets, packets.get(&code).copied().unwrap_or(0));
            prop_assert_eq!(
                row.sources,
                sources.get(&code).map_or(0, |s| s.len() as u64)
            );
        }
        // Sorted by packets descending.
        for pair in t3.windows(2) {
            prop_assert!(pair[0].packets >= pair[1].packets);
        }
    }

    #[test]
    fn overview_matches_naive_recomputation(
        raws in proptest::collection::vec(raw_packet(), 0..80),
        w1 in 0..SimDuration::weeks(45).as_secs(),
        w2 in 0..SimDuration::weeks(45).as_secs(),
    ) {
        let a = Analyzed::from_result(build_result(&raws));
        let from = SimTime::from_secs(w1.min(w2));
        let until = SimTime::from_secs(w1.max(w2));
        let ov = tables::corpus_overview(&a, from, until);

        let mut packets = 0u64;
        let mut srcs: BTreeSet<Ipv6Addr> = BTreeSet::new();
        let mut subnets: BTreeSet<Ipv6Prefix> = BTreeSet::new();
        for id in TelescopeId::ALL {
            for p in a.capture(id).packets() {
                if p.ts >= from && p.ts < until {
                    packets += 1;
                    srcs.insert(p.src);
                    subnets.insert(Ipv6Prefix::new(p.src, 64).unwrap());
                }
            }
        }
        let mut ases = BTreeSet::new();
        let mut countries = BTreeSet::new();
        for &src in &srcs {
            if let Some(info) = a.as_info_of(src) {
                ases.insert(info.asn);
                countries.insert(info.country);
            }
        }
        let in_window = |s: &&sixscope::telescope::ScanSession| s.start >= from && s.start < until;
        let sessions128: usize = TelescopeId::ALL
            .iter()
            .map(|&id| a.sessions128(id).iter().filter(in_window).count())
            .sum();
        let sessions64: usize = TelescopeId::ALL
            .iter()
            .map(|&id| a.sessions64(id).iter().filter(in_window).count())
            .sum();

        prop_assert_eq!(ov.packets, packets);
        prop_assert_eq!(ov.sources128, srcs.len() as u64);
        prop_assert_eq!(ov.sources64, subnets.len() as u64);
        prop_assert_eq!(ov.sessions128, sessions128 as u64);
        prop_assert_eq!(ov.sessions64, sessions64 as u64);
        prop_assert_eq!(ov.ases, ases.len() as u64);
        prop_assert_eq!(ov.countries, countries.len() as u64);
    }

    /// Scatter the corpus over shard *files* and gather them back: the
    /// merged corpus must equal the in-process one — packets, sessions at
    /// both aggregation levels, and the rendered tables — for any capture
    /// and any piece count (DESIGN.md §13).
    #[test]
    fn shard_files_round_trip_to_the_in_process_corpus(
        raws in proptest::collection::vec(raw_packet(), 0..60),
        pieces in 1..4usize,
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "sixscope-prop-shards-{}-{}",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed)
        ));
        let direct = Analyzed::from_result(build_result(&raws));
        let paths = sixscope::shardfile::write_experiment_shards(&build_result(&raws), pieces, &dir)
            .expect("scatter of a valid corpus cannot fail");
        let merged = sixscope::shardfile::merge_experiment(build_result(&raws), &paths, None)
            .expect("gather of freshly written shards cannot fail");
        std::fs::remove_dir_all(&dir).ok();
        for id in TelescopeId::ALL {
            prop_assert_eq!(merged.capture(id).packets(), direct.capture(id).packets());
            prop_assert_eq!(merged.sessions128(id), direct.sessions128(id));
            prop_assert_eq!(merged.sessions64(id), direct.sessions64(id));
        }
        prop_assert_eq!(
            sixscope::render::render_table2(&tables::table2(&merged)),
            sixscope::render::render_table2(&tables::table2(&direct))
        );
        prop_assert_eq!(
            sixscope::render::render_table3(&tables::table3(&merged)),
            sixscope::render::render_table3(&tables::table3(&direct))
        );
    }
}
