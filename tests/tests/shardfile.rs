//! Structure-aware mutation harness for the `.sixshard` decoder.
//!
//! A shard file produced by the real scatter path (`Pipeline::to_shard`
//! over a generated pcap) is mutated ≥10k times with seeded byte flips,
//! field splices, truncations and version bumps, and every mutant is
//! pushed through [`decode_shard`]. The contract under test
//! (DESIGN.md §13):
//!
//! * every input returns `Ok` or a typed `ShardError` — never a panic,
//! * no count field drives an allocation past the bytes actually present
//!   (the test completing in bounded memory is the proof),
//! * the outcome is a pure function of the bytes: the same seed produces
//!   the same aggregate outcome on every run,
//! * the untouched file round-trips canonically: decode → encode
//!   reproduces the input bytes.

use sixscope::shardfile::{decode_shard, encode_shard, ShardError};
use sixscope::Pipeline;
use sixscope_packet::{PacketBuilder, PcapRecord, PcapWriter};
use sixscope_types::{SimTime, Xoshiro256pp};

const MUTATIONS: usize = 12_000;
const SEED: u64 = 0x5ead_f11e;

/// A small but structurally diverse pcap: all three transports, repeat
/// sources (multi-packet sessions), a timeout-straddling gap, payloads.
fn base_pcap() -> Vec<u8> {
    let a = PacketBuilder::new(
        "2a0a::bad:1".parse().unwrap(),
        "2001:db8:3::42".parse().unwrap(),
    );
    let b = PacketBuilder::new(
        "2a0a::bad:2".parse().unwrap(),
        "2001:db8:3::7".parse().unwrap(),
    );
    let records: Vec<(u64, Vec<u8>)> = vec![
        (100, a.icmpv6_echo_request(7, 1, b"yarrp")),
        (150, a.tcp_syn(40_000, 443, 0xdead_beef, &[])),
        (200, b.udp(40_001, 33_434, &[0xab; 64])),
        (260, a.icmpv6_echo_request(7, 2, &[])),
        // Past the 1 h session timeout: a second session per source.
        (8_000, a.tcp_syn(40_002, 80, 1, b"GET / HTTP/1.1")),
        (8_050, b.udp(40_003, 53, b"probe")),
    ];
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for (ts, data) in records {
        w.write_record(&PcapRecord {
            ts: SimTime::from_secs(ts),
            ts_micros: 0,
            data,
        })
        .unwrap();
    }
    w.into_inner().unwrap()
}

/// Writes the base pcap, shards it through the real scatter path, and
/// returns the `.sixshard` bytes.
fn base_shard_bytes() -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "sixscope-shard-mutation-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let pcap = dir.join("base.pcap");
    std::fs::write(&pcap, base_pcap()).unwrap();
    let out = dir.join("base.sixshard");
    Pipeline::from_pcaps([&pcap])
        .to_shard(&out)
        .expect("sharding a clean pcap cannot fail");
    let bytes = std::fs::read(&out).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    bytes
}

/// Applies one seeded mutation to `buf`.
fn mutate(rng: &mut Xoshiro256pp, buf: &mut Vec<u8>) {
    match rng.below(6) {
        // Flip a random byte.
        0 => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] ^= rng.next_u32() as u8 | 1;
        }
        // Overwrite a 4-byte field with an extreme value (targets tags,
        // counts and flag bytes when it lands there).
        1 if buf.len() >= 4 => {
            let i = rng.below((buf.len() - 4) as u64 + 1) as usize;
            let v: u32 = *rng.choose(&[0, 1, 0xffff, 65_536, u32::MAX]);
            buf[i..i + 4].copy_from_slice(&v.to_le_bytes());
        }
        // Overwrite an 8-byte field with an extreme value (targets the
        // section lengths and element counts when it lands there).
        2 if buf.len() >= 8 => {
            let i = rng.below((buf.len() - 8) as u64 + 1) as usize;
            let v: u64 = *rng.choose(&[0, 1, u64::from(u32::MAX), u64::MAX, 1 << 40]);
            buf[i..i + 8].copy_from_slice(&v.to_le_bytes());
        }
        // Truncate at a random point (killed-transfer simulation).
        3 => {
            let at = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(at);
        }
        // Duplicate a random slice onto the tail (desynchronizes the
        // section table against the payload bytes).
        4 => {
            let start = rng.below(buf.len() as u64) as usize;
            let len = rng.below((buf.len() - start) as u64 + 1) as usize;
            let slice = buf[start..start + len].to_vec();
            buf.extend_from_slice(&slice);
        }
        // Bump the format version field.
        _ => {
            if buf.len() >= 12 {
                let v = rng.next_u32();
                buf[8..12].copy_from_slice(&v.to_le_bytes());
            }
        }
    }
}

/// Aggregate outcome of one full run; equality pins determinism.
#[derive(Debug, PartialEq, Eq)]
struct RunSummary {
    decoded: u64,
    bad_magic: u64,
    bad_version: u64,
    truncated: u64,
    oversized: u64,
    corrupt: u64,
    fingerprint: u64,
}

fn run(seed: u64, mutations: usize) -> RunSummary {
    let base = base_shard_bytes();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut s = RunSummary {
        decoded: 0,
        bad_magic: 0,
        bad_version: 0,
        truncated: 0,
        oversized: 0,
        corrupt: 0,
        fingerprint: 0,
    };
    let mix = |s: &mut RunSummary, v: u64| {
        s.fingerprint = s.fingerprint.rotate_left(7) ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    };
    for _ in 0..mutations {
        let mut buf = base.clone();
        // One to three stacked mutations per input.
        for _ in 0..=rng.below(3) {
            if buf.is_empty() {
                break;
            }
            mutate(&mut rng, &mut buf);
        }
        match decode_shard(&buf) {
            Ok(shard) => {
                // A mutant that still decodes must uphold the round-trip
                // contract like any valid shard.
                assert_eq!(
                    encode_shard(&shard),
                    buf,
                    "a decodable mutant must re-encode canonically"
                );
                s.decoded += 1;
                mix(&mut s, shard.capture.len() as u64);
            }
            Err(e) => {
                match &e {
                    ShardError::BadMagic => s.bad_magic += 1,
                    ShardError::UnsupportedVersion(_) => s.bad_version += 1,
                    ShardError::Truncated { .. } => s.truncated += 1,
                    ShardError::Oversized { .. } => s.oversized += 1,
                    ShardError::Corrupt { .. } => s.corrupt += 1,
                }
                // The rendered message is part of the deterministic
                // outcome (it names the section and the violation).
                let text = e.to_string();
                let mut h = 0u64;
                for b in text.bytes() {
                    h = h.rotate_left(5) ^ u64::from(b);
                }
                mix(&mut s, h);
            }
        }
    }
    s
}

#[test]
fn untouched_shard_decodes_and_round_trips() {
    let bytes = base_shard_bytes();
    let shard = decode_shard(&bytes).expect("the scatter path writes valid shards");
    assert_eq!(shard.capture.len(), 6);
    assert_eq!(encode_shard(&shard), bytes, "encoding must be canonical");
}

#[test]
fn mutated_shards_never_panic_and_errors_are_structured() {
    let s = run(SEED, MUTATIONS);
    let total = s.decoded + s.bad_magic + s.bad_version + s.truncated + s.oversized + s.corrupt;
    assert_eq!(
        total, MUTATIONS as u64,
        "every mutant must be accounted for"
    );
    // The mutation mix must actually exercise the error taxonomy: a run
    // where whole categories never fire means the harness went blind.
    assert!(s.bad_magic > 0, "no mutant hit the magic: {s:?}");
    assert!(s.bad_version > 0, "no mutant hit the version: {s:?}");
    assert!(s.truncated > 0, "no mutant truncated a section: {s:?}");
    assert!(s.corrupt > 0, "no mutant corrupted a section: {s:?}");
}

#[test]
fn mutation_outcome_is_deterministic_per_seed() {
    let a = run(SEED ^ 1, 1_500);
    let b = run(SEED ^ 1, 1_500);
    assert_eq!(a, b, "the same seed must reproduce the same outcome");
    let c = run(SEED ^ 2, 1_500);
    assert_ne!(
        a.fingerprint, c.fingerprint,
        "different seeds should explore different mutants"
    );
}
