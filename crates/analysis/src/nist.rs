//! The four NIST SP 800-22 randomness tests used in Appendix B.
//!
//! The paper tests each scan session's target addresses — the 64-bit IIDs
//! and the 32 subnet bits after the telescope's fixed prefix separately —
//! with the frequency (monobit), runs, spectral (FFT) and cumulative-sums
//! tests, at significance level α = 0.01, on sessions of ≥ 100 packets.
//!
//! Implementation notes:
//! * p-values follow SP 800-22 rev. 1a exactly for frequency, runs and
//!   cusum;
//! * the spectral test processes the largest power-of-two prefix of the
//!   sequence (the reference code's DFT is also applied to fixed-size
//!   blocks; thresholding constants follow the revised 0.95·n/2 form).

use crate::special::{erfc, normal_cdf};
use serde::{Deserialize, Serialize};

/// The tests the paper applies (Appendix B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NistTest {
    /// Frequency (monobit).
    Frequency,
    /// Runs.
    Runs,
    /// Discrete Fourier transform (spectral).
    Fft,
    /// Cumulative sums, forward.
    CusumForward,
    /// Cumulative sums, backward.
    CusumBackward,
}

impl NistTest {
    /// The tests in the order of Fig. 17.
    pub const ALL: [NistTest; 5] = [
        NistTest::Frequency,
        NistTest::Runs,
        NistTest::Fft,
        NistTest::CusumForward,
        NistTest::CusumBackward,
    ];

    /// Short label for report rows.
    pub fn name(self) -> &'static str {
        match self {
            NistTest::Frequency => "frequency",
            NistTest::Runs => "runs",
            NistTest::Fft => "fft",
            NistTest::CusumForward => "cusum0",
            NistTest::CusumBackward => "cusum1",
        }
    }
}

/// Outcome of one test on one bit sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NistOutcome {
    /// Which test ran.
    pub test: NistTest,
    /// The computed p-value in `[0, 1]`.
    pub p_value: f64,
}

impl NistOutcome {
    /// Success at the paper's significance level (p ≥ 0.01 means the
    /// sequence is consistent with randomness).
    pub fn passes(&self) -> bool {
        self.p_value >= 0.01
    }
}

/// A packed bit sequence under test.
#[derive(Debug, Clone, Default)]
pub struct BitSequence {
    bits: Vec<bool>,
}

impl BitSequence {
    /// Empty sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the `count` least significant bits of `value`, MSB first.
    pub fn push_bits(&mut self, value: u128, count: u32) {
        assert!(count <= 128);
        for i in (0..count).rev() {
            self.bits.push((value >> i) & 1 == 1);
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Raw access.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Runs one test.
    pub fn run(&self, test: NistTest) -> NistOutcome {
        let p_value = match test {
            NistTest::Frequency => frequency_p(&self.bits),
            NistTest::Runs => runs_p(&self.bits),
            NistTest::Fft => fft_p(&self.bits),
            NistTest::CusumForward => cusum_p(&self.bits, false),
            NistTest::CusumBackward => cusum_p(&self.bits, true),
        };
        // The rational erfc approximation can overshoot 1 by ~1e-7.
        NistOutcome {
            test,
            p_value: p_value.clamp(0.0, 1.0),
        }
    }

    /// Runs all five tests.
    pub fn run_all(&self) -> Vec<NistOutcome> {
        NistTest::ALL.iter().map(|&t| self.run(t)).collect()
    }
}

/// SP 800-22 §2.1 — frequency (monobit).
fn frequency_p(bits: &[bool]) -> f64 {
    let n = bits.len();
    if n == 0 {
        return 0.0;
    }
    let s: i64 = bits.iter().map(|&b| if b { 1i64 } else { -1 }).sum();
    let s_obs = (s.abs() as f64) / (n as f64).sqrt();
    erfc(s_obs / std::f64::consts::SQRT_2)
}

/// SP 800-22 §2.3 — runs.
fn runs_p(bits: &[bool]) -> f64 {
    let n = bits.len();
    if n < 2 {
        return 0.0;
    }
    let pi = bits.iter().filter(|&&b| b).count() as f64 / n as f64;
    // Prerequisite frequency check.
    if (pi - 0.5).abs() >= 2.0 / (n as f64).sqrt() {
        return 0.0;
    }
    let v_obs = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let n = n as f64;
    let num = (v_obs as f64 - 2.0 * n * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n).sqrt() * pi * (1.0 - pi);
    erfc(num / den)
}

/// SP 800-22 §2.6 — discrete Fourier transform (spectral).
fn fft_p(bits: &[bool]) -> f64 {
    // Use the largest power-of-two prefix (see module docs).
    let n = bits.len();
    if n < 16 {
        return 0.0;
    }
    let n2 = 1usize << (usize::BITS - 1 - n.leading_zeros());
    let mut re: Vec<f64> = bits[..n2]
        .iter()
        .map(|&b| if b { 1.0 } else { -1.0 })
        .collect();
    let mut im = vec![0.0f64; n2];
    fft_in_place(&mut re, &mut im);
    let n = n2 as f64;
    let threshold = ((1.0 / 0.05f64).ln() * n).sqrt();
    let half = n2 / 2;
    let n1 = (0..half)
        .filter(|&k| (re[k] * re[k] + im[k] * im[k]).sqrt() < threshold)
        .count() as f64;
    let n0 = 0.95 * half as f64;
    let d = (n1 - n0) / (n * 0.95 * 0.05 / 4.0).sqrt();
    erfc(d.abs() / std::f64::consts::SQRT_2)
}

/// Iterative radix-2 Cooley–Tukey FFT (length must be a power of two).
fn fft_in_place(re: &mut [f64], im: &mut [f64]) {
    let n = re.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -std::f64::consts::TAU / len as f64;
        let (w_re, w_im) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_re, mut cur_im) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (u_re, u_im) = (re[i + k], im[i + k]);
                let (v_re, v_im) = (
                    re[i + k + len / 2] * cur_re - im[i + k + len / 2] * cur_im,
                    re[i + k + len / 2] * cur_im + im[i + k + len / 2] * cur_re,
                );
                re[i + k] = u_re + v_re;
                im[i + k] = u_im + v_im;
                re[i + k + len / 2] = u_re - v_re;
                im[i + k + len / 2] = u_im - v_im;
                let next_re = cur_re * w_re - cur_im * w_im;
                cur_im = cur_re * w_im + cur_im * w_re;
                cur_re = next_re;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// SP 800-22 §2.13 — cumulative sums.
fn cusum_p(bits: &[bool], backward: bool) -> f64 {
    let n = bits.len();
    if n == 0 {
        return 0.0;
    }
    let xs: Vec<f64> = if backward {
        bits.iter()
            .rev()
            .map(|&b| if b { 1.0 } else { -1.0 })
            .collect()
    } else {
        bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect()
    };
    let mut sum = 0.0f64;
    let mut z: f64 = 0.0;
    for x in xs {
        sum += x;
        z = z.max(sum.abs());
    }
    if z == 0.0 {
        return 0.0;
    }
    let n = n as f64;
    let sqrt_n = n.sqrt();
    let mut p = 1.0;
    let k_lo = (((-n / z) + 1.0) / 4.0).floor() as i64;
    let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p -= normal_cdf((4.0 * k + 1.0) * z / sqrt_n) - normal_cdf((4.0 * k - 1.0) * z / sqrt_n);
    }
    let k_lo = (((-n / z) - 3.0) / 4.0).floor() as i64;
    let k_hi = (((n / z) - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let k = k as f64;
        p += normal_cdf((4.0 * k + 3.0) * z / sqrt_n) - normal_cdf((4.0 * k + 1.0) * z / sqrt_n);
    }
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_types::Xoshiro256pp;

    fn from_bits(s: &str) -> BitSequence {
        let mut seq = BitSequence::new();
        for c in s.chars() {
            seq.push_bits(if c == '1' { 1 } else { 0 }, 1);
        }
        seq
    }

    #[test]
    fn frequency_sp80022_example() {
        // SP 800-22 §2.1.8: ε = 1100100100001111110110101010001000,
        // n = 100-digit example is longer; use the documented 10-bit case:
        // ε = 1011010101, S = 2, p-value = 0.527089.
        let seq = from_bits("1011010101");
        let out = seq.run(NistTest::Frequency);
        assert!((out.p_value - 0.527089).abs() < 1e-4, "p = {}", out.p_value);
        assert!(out.passes());
    }

    #[test]
    fn runs_sp80022_example() {
        // SP 800-22 §2.3.8: ε = 1001101011, n = 10, p-value = 0.147232.
        let seq = from_bits("1001101011");
        let out = seq.run(NistTest::Runs);
        assert!((out.p_value - 0.147232).abs() < 1e-4, "p = {}", out.p_value);
    }

    #[test]
    fn cusum_sp80022_example() {
        // SP 800-22 §2.13.8: ε = 1011010111, n = 10, z = 4 (forward),
        // p-value = 0.4116588.
        let seq = from_bits("1011010111");
        let out = seq.run(NistTest::CusumForward);
        assert!(
            (out.p_value - 0.4116588).abs() < 1e-3,
            "p = {}",
            out.p_value
        );
    }

    #[test]
    fn constant_sequence_fails_everything() {
        let mut seq = BitSequence::new();
        seq.push_bits(0, 128);
        seq.push_bits(0, 128);
        for out in seq.run_all() {
            assert!(!out.passes(), "{:?} unexpectedly passed", out.test);
        }
    }

    #[test]
    fn alternating_sequence_fails_runs_and_fft() {
        let mut seq = BitSequence::new();
        for _ in 0..256 {
            seq.push_bits(0b10, 2);
        }
        // Perfectly balanced, so frequency passes...
        assert!(seq.run(NistTest::Frequency).passes());
        // ...but the oscillation is wildly non-random.
        assert!(!seq.run(NistTest::Runs).passes());
        assert!(!seq.run(NistTest::Fft).passes());
    }

    #[test]
    fn prng_output_passes_all_tests() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let mut seq = BitSequence::new();
        for _ in 0..64 {
            seq.push_bits(rng.next_u64() as u128, 64);
        }
        for out in seq.run_all() {
            assert!(
                out.passes(),
                "{} failed on PRNG output with p = {}",
                out.test.name(),
                out.p_value
            );
        }
    }

    #[test]
    fn structured_iid_bits_fail_frequency() {
        // Low-byte scanning: targets ::1 .. ::200 — IIDs almost all zero.
        let mut seq = BitSequence::new();
        for i in 1u128..=200 {
            seq.push_bits(i, 64);
        }
        assert!(!seq.run(NistTest::Frequency).passes());
        assert!(!seq.run(NistTest::CusumForward).passes());
    }

    #[test]
    fn random_iid_bits_pass_frequency() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut seq = BitSequence::new();
        for _ in 0..200 {
            seq.push_bits(rng.next_u64() as u128, 64);
        }
        assert!(seq.run(NistTest::Frequency).passes());
    }

    #[test]
    fn empty_sequence_fails_gracefully() {
        let seq = BitSequence::new();
        for out in seq.run_all() {
            assert!(!out.passes());
            assert!(out.p_value.is_finite());
        }
    }

    #[test]
    fn push_bits_is_msb_first() {
        let mut seq = BitSequence::new();
        seq.push_bits(0b101, 3);
        assert_eq!(seq.bits(), &[true, false, true]);
        assert_eq!(seq.len(), 3);
    }

    #[test]
    fn fft_identity_check() {
        // DFT of an impulse is flat with magnitude 1.
        let mut re = vec![0.0; 8];
        let mut im = vec![0.0; 8];
        re[0] = 1.0;
        fft_in_place(&mut re, &mut im);
        for k in 0..8 {
            let mag = (re[k] * re[k] + im[k] * im[k]).sqrt();
            assert!((mag - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut re = vec![1.0; 16];
        let mut im = vec![0.0; 16];
        fft_in_place(&mut re, &mut im);
        assert!((re[0] - 16.0).abs() < 1e-9);
        for k in 1..16 {
            assert!(re[k].abs() < 1e-9 && im[k].abs() < 1e-9);
        }
    }
}
