//! The BGP session finite state machine (RFC 4271 §8, condensed).
//!
//! Our transport is an in-memory reliable byte stream, so the TCP-level
//! Connect/Active dance collapses: [`SessionFsm::start`] goes straight to
//! OpenSent and emits the OPEN. From there the FSM follows the standard
//! path — OpenSent → OpenConfirm on a valid OPEN, OpenConfirm → Established
//! on a KEEPALIVE — with negotiated hold timers, periodic keepalives
//! (hold/3), hold-timer expiry and NOTIFICATION handling.

use crate::error::BgpError;
use crate::message::{BgpMessage, NotificationMessage, OpenMessage};
use sixscope_types::{SimDuration, SimTime};

/// FSM states (Connect/Active are merged into the instantaneous transport).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Session not started.
    Idle,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for the first KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

impl State {
    fn name(self) -> &'static str {
        match self {
            State::Idle => "Idle",
            State::OpenSent => "OpenSent",
            State::OpenConfirm => "OpenConfirm",
            State::Established => "Established",
        }
    }
}

/// A BGP session state machine for one peer.
#[derive(Debug, Clone)]
pub struct SessionFsm {
    state: State,
    local_open: OpenMessage,
    peer_open: Option<OpenMessage>,
    /// Negotiated hold time (minimum of both OPENs); zero disables timers.
    hold_time: SimDuration,
    last_received: SimTime,
    last_keepalive_sent: SimTime,
}

impl SessionFsm {
    /// Creates an FSM in Idle with the OPEN parameters we will offer.
    pub fn new(local_open: OpenMessage) -> Self {
        SessionFsm {
            state: State::Idle,
            local_open,
            peer_open: None,
            hold_time: SimDuration::ZERO,
            last_received: SimTime::EPOCH,
            last_keepalive_sent: SimTime::EPOCH,
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// True once UPDATEs may be exchanged.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// The peer's OPEN, available from OpenConfirm onwards.
    pub fn peer_open(&self) -> Option<&OpenMessage> {
        self.peer_open.as_ref()
    }

    /// Negotiated hold time (zero until OPENs are exchanged or if disabled).
    pub fn hold_time(&self) -> SimDuration {
        self.hold_time
    }

    /// Starts the session: transitions Idle → OpenSent and returns the OPEN
    /// to transmit. Starting a non-idle session resets it first.
    pub fn start(&mut self, now: SimTime) -> Vec<BgpMessage> {
        self.state = State::OpenSent;
        self.peer_open = None;
        self.hold_time = SimDuration::ZERO;
        self.last_received = now;
        self.last_keepalive_sent = now;
        vec![BgpMessage::Open(self.local_open.clone())]
    }

    /// Resets to Idle (administrative stop or after an error).
    pub fn stop(&mut self) {
        self.state = State::Idle;
        self.peer_open = None;
        self.hold_time = SimDuration::ZERO;
    }

    /// Processes an incoming message; returns messages to transmit.
    ///
    /// UPDATE payloads are *not* interpreted here — the speaker handles
    /// routing; the FSM only validates that UPDATEs arrive in Established.
    pub fn handle(&mut self, now: SimTime, msg: &BgpMessage) -> Result<Vec<BgpMessage>, BgpError> {
        self.last_received = now;
        match (&self.state, msg) {
            (State::OpenSent, BgpMessage::Open(open)) => {
                if open.hold_time != 0 && open.hold_time < 3 {
                    self.state = State::Idle;
                    return Ok(vec![BgpMessage::Notification(NotificationMessage {
                        code: 2,    // OPEN Message Error
                        subcode: 6, // Unacceptable Hold Time
                        data: vec![],
                    })]);
                }
                self.hold_time =
                    SimDuration::secs(self.local_open.hold_time.min(open.hold_time) as u64);
                self.peer_open = Some(open.clone());
                self.state = State::OpenConfirm;
                self.last_keepalive_sent = now;
                Ok(vec![BgpMessage::Keepalive])
            }
            (State::OpenConfirm, BgpMessage::Keepalive) => {
                self.state = State::Established;
                Ok(vec![])
            }
            (State::Established, BgpMessage::Keepalive) => Ok(vec![]),
            (State::Established, BgpMessage::Update(_)) => Ok(vec![]),
            (_, BgpMessage::Notification(n)) => {
                self.state = State::Idle;
                Err(BgpError::PeerNotification {
                    code: n.code,
                    subcode: n.subcode,
                })
            }
            (state, msg) => {
                let err = BgpError::UnexpectedMessage {
                    state: state.name(),
                    message: msg.type_name(),
                };
                self.state = State::Idle;
                Err(err)
            }
        }
    }

    /// Advances timers: emits keepalives every `hold/3` and raises
    /// [`BgpError::HoldTimerExpired`] when the peer has gone silent.
    pub fn tick(&mut self, now: SimTime) -> Result<Vec<BgpMessage>, BgpError> {
        if self.state == State::Idle || self.hold_time == SimDuration::ZERO {
            return Ok(vec![]);
        }
        if now.since(self.last_received) >= self.hold_time {
            self.state = State::Idle;
            return Err(BgpError::HoldTimerExpired);
        }
        let keepalive_interval = SimDuration::secs((self.hold_time.as_secs() / 3).max(1));
        if matches!(self.state, State::OpenConfirm | State::Established)
            && now.since(self.last_keepalive_sent) >= keepalive_interval
        {
            self.last_keepalive_sent = now;
            return Ok(vec![BgpMessage::Keepalive]);
        }
        Ok(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_types::Asn;

    fn open(asn: u32) -> OpenMessage {
        OpenMessage::standard(Asn(asn), asn)
    }

    /// Drives two FSMs against each other until both are established.
    fn establish(a: &mut SessionFsm, b: &mut SessionFsm, now: SimTime) {
        let mut to_b = a.start(now);
        let mut to_a = b.start(now);
        for _ in 0..4 {
            let next_to_a: Vec<BgpMessage> = to_b
                .drain(..)
                .flat_map(|m| b.handle(now, &m).unwrap())
                .collect();
            let next_to_b: Vec<BgpMessage> = to_a
                .drain(..)
                .flat_map(|m| a.handle(now, &m).unwrap())
                .collect();
            to_a = next_to_a;
            to_b = next_to_b;
            if a.is_established() && b.is_established() {
                return;
            }
        }
        panic!(
            "sessions failed to establish: {:?} / {:?}",
            a.state(),
            b.state()
        );
    }

    #[test]
    fn two_fsms_establish_via_message_exchange() {
        let mut a = SessionFsm::new(open(64500));
        let mut b = SessionFsm::new(open(64501));
        establish(&mut a, &mut b, SimTime::EPOCH);
        assert_eq!(a.peer_open().unwrap().asn, Asn(64501));
        assert_eq!(b.peer_open().unwrap().asn, Asn(64500));
        assert_eq!(a.hold_time(), SimDuration::secs(90));
    }

    #[test]
    fn hold_time_is_negotiated_to_minimum() {
        let mut short = open(1);
        short.hold_time = 30;
        let mut a = SessionFsm::new(short);
        let mut b = SessionFsm::new(open(2));
        establish(&mut a, &mut b, SimTime::EPOCH);
        assert_eq!(a.hold_time(), SimDuration::secs(30));
        assert_eq!(b.hold_time(), SimDuration::secs(30));
    }

    #[test]
    fn unacceptable_hold_time_is_notified() {
        let mut a = SessionFsm::new(open(1));
        a.start(SimTime::EPOCH);
        let mut bad = open(2);
        bad.hold_time = 2;
        let out = a.handle(SimTime::EPOCH, &BgpMessage::Open(bad)).unwrap();
        assert!(matches!(
            &out[..],
            [BgpMessage::Notification(n)] if n.code == 2 && n.subcode == 6
        ));
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn keepalives_are_emitted_periodically() {
        let mut a = SessionFsm::new(open(1));
        let mut b = SessionFsm::new(open(2));
        let t0 = SimTime::EPOCH;
        establish(&mut a, &mut b, t0);
        // At hold/3 = 30 s a keepalive is due.
        assert!(a.tick(t0 + SimDuration::secs(29)).unwrap().is_empty());
        let out = a.tick(t0 + SimDuration::secs(30)).unwrap();
        assert_eq!(out, vec![BgpMessage::Keepalive]);
        // Not again immediately.
        assert!(a.tick(t0 + SimDuration::secs(31)).unwrap().is_empty());
    }

    #[test]
    fn hold_timer_expiry_tears_down() {
        let mut a = SessionFsm::new(open(1));
        let mut b = SessionFsm::new(open(2));
        let t0 = SimTime::EPOCH;
        establish(&mut a, &mut b, t0);
        let err = a.tick(t0 + SimDuration::secs(90)).unwrap_err();
        assert_eq!(err, BgpError::HoldTimerExpired);
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn keepalive_refreshes_hold_timer() {
        let mut a = SessionFsm::new(open(1));
        let mut b = SessionFsm::new(open(2));
        let t0 = SimTime::EPOCH;
        establish(&mut a, &mut b, t0);
        a.handle(t0 + SimDuration::secs(60), &BgpMessage::Keepalive)
            .unwrap();
        // 90 s after t0 but only 30 s after the keepalive: still up.
        assert!(a.tick(t0 + SimDuration::secs(90)).is_ok());
        assert!(a.is_established());
    }

    #[test]
    fn update_in_open_sent_is_a_protocol_error() {
        let mut a = SessionFsm::new(open(1));
        a.start(SimTime::EPOCH);
        let err = a
            .handle(SimTime::EPOCH, &BgpMessage::Update(Default::default()))
            .unwrap_err();
        assert!(matches!(err, BgpError::UnexpectedMessage { .. }));
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn notification_tears_down() {
        let mut a = SessionFsm::new(open(1));
        let mut b = SessionFsm::new(open(2));
        establish(&mut a, &mut b, SimTime::EPOCH);
        let err = a
            .handle(
                SimTime::EPOCH,
                &BgpMessage::Notification(NotificationMessage {
                    code: 6,
                    subcode: 4,
                    data: vec![],
                }),
            )
            .unwrap_err();
        assert_eq!(
            err,
            BgpError::PeerNotification {
                code: 6,
                subcode: 4
            }
        );
        assert_eq!(a.state(), State::Idle);
    }

    #[test]
    fn restart_after_teardown_works() {
        let mut a = SessionFsm::new(open(1));
        let mut b = SessionFsm::new(open(2));
        establish(&mut a, &mut b, SimTime::EPOCH);
        a.stop();
        b.stop();
        establish(&mut a, &mut b, SimTime::from_secs(1000));
        assert!(a.is_established());
    }
}
