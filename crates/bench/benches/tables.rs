//! Criterion benchmarks regenerating every *table* of the paper.
//!
//! Each bench target recomputes one table from the shared experiment corpus
//! and asserts its headline shape, so `cargo bench` both times the analysis
//! pipeline and re-validates the reproduction.

use criterion::{criterion_group, criterion_main, Criterion};
use sixscope::tables;
use sixscope_bench::bench_corpus;
use sixscope_telescope::{Protocol, TelescopeId};
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let a = bench_corpus();
    // Shape assertion (paper: ICMPv6 dominates packets, TCP dominates sessions).
    let t = tables::table2(a);
    assert_eq!(t.rows[0].protocol, Protocol::Icmpv6);
    assert!(t.rows[0].packets > t.rows[2].packets);
    let tcp = &t.rows[2];
    assert!(tcp.session_pct > t.rows[0].session_pct);
    c.bench_function("table2_protocols", |b| {
        b.iter(|| black_box(tables::table2(a)))
    });
}

fn bench_table3(c: &mut Criterion) {
    let a = bench_corpus();
    let rows = tables::table3(a);
    assert_eq!(rows[0].address_type.to_string(), "randomized");
    c.bench_function("table3_address_types", |b| {
        b.iter(|| black_box(tables::table3(a)))
    });
}

fn bench_table4(c: &mut Criterion) {
    let a = bench_corpus();
    let t = tables::table4(a);
    assert_eq!(t.tcp[0].port.to_string(), "80");
    assert_eq!(t.udp[0].port.to_string(), "Traceroute");
    c.bench_function("table4_top_ports", |b| {
        b.iter(|| black_box(tables::table4(a)))
    });
}

fn bench_table5(c: &mut Criterion) {
    let a = bench_corpus();
    let t = tables::table5(a);
    let get = |id: TelescopeId| t.a.iter().find(|col| col.telescope == id).unwrap();
    assert!(get(TelescopeId::T1).packets > get(TelescopeId::T3).packets);
    assert!(get(TelescopeId::T4).packets > get(TelescopeId::T3).packets);
    c.bench_function("table5_telescope_comparison", |b| {
        b.iter(|| black_box(tables::table5(a)))
    });
}

fn bench_table6(c: &mut Criterion) {
    let a = bench_corpus();
    let t = tables::table6(a);
    assert!(t.temporal[0].scanner_pct > 50.0, "one-off majority");
    c.bench_function("table6_taxonomy", |b| {
        b.iter(|| black_box(tables::table6(a)))
    });
}

fn bench_table7(c: &mut Criterion) {
    let a = bench_corpus();
    let rows = tables::table7(a);
    assert_eq!(rows[0].tool.to_string(), "RIPEAtlasProbe");
    c.bench_function("table7_tools", |b| b.iter(|| black_box(tables::table7(a))));
}

fn bench_table8(c: &mut Criterion) {
    let a = bench_corpus();
    let rows = tables::table8(a);
    assert!(!rows.is_empty());
    c.bench_function("table8_network_types", |b| {
        b.iter(|| black_box(tables::table8(a)))
    });
}

fn bench_headline(c: &mut Criterion) {
    let a = bench_corpus();
    let h = tables::headline(a);
    assert!(h.split_vs_companion_packets_pct > 0.0);
    c.bench_function("headline_metrics", |b| {
        b.iter(|| black_box(tables::headline(a)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_table2, bench_table3, bench_table4, bench_table5,
              bench_table6, bench_table7, bench_table8, bench_headline
}
criterion_main!(benches);
