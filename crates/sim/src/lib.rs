//! # sixscope-sim
//!
//! The experiment driver that joins the substrates:
//!
//! 1. **Control plane** — the BGP topology of §3.2 executes the T1 split
//!    schedule plus the stable T2 and covering-/29 announcements; every
//!    update propagates as wire bytes to the route collector.
//! 2. **Visibility** — the collector's event stream becomes per-prefix
//!    visibility intervals: the ground truth for both the scanners' world
//!    view and data-plane deliverability.
//! 3. **World** — AS metadata, reverse DNS and the TUM-style hitlist with
//!    its ~5-day publication lag.
//! 4. **Data plane** — every scanner emits probes; a probe reaches a
//!    telescope only if its destination is covered by a visible prefix at
//!    send time and the telescope's capture filter accepts it. T4 answers.
//!
//! [`scenario::Scenario::run`] executes the full 11-month experiment and
//! returns the captures and metadata the analysis pipeline consumes.

pub mod compiled;
pub mod scenario;
pub mod visibility;
pub mod world;

pub use compiled::CompiledVisibility;
pub use scenario::{ExperimentResult, IrrPolicy, Scenario, ScenarioConfig, ScenarioTimings};
pub use visibility::Visibility;
pub use world::TumHitlist;
