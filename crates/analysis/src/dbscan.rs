//! DBSCAN — density-based clustering (Ester et al., KDD'96).
//!
//! Used twice in the paper: clustering payload byte-representations to group
//! scan tools (§5.4), and grouping per-prefix session counts for the
//! network-selection taxonomy (§5.2). The implementation is generic over a
//! point type and a distance function, deterministic (iteration order is
//! input order), and O(n²) — fine at our cluster sizes (hundreds of payload
//! shapes, dozens of prefixes).

/// Cluster assignment of one point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Noise: not density-reachable from any core point.
    Noise,
    /// Member of the cluster with this id (0-based).
    Cluster(usize),
}

impl Assignment {
    /// The cluster id, if clustered.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Assignment::Cluster(c) => Some(c),
            Assignment::Noise => None,
        }
    }
}

/// Runs DBSCAN over `points` with neighborhood radius `eps` and core-point
/// threshold `min_pts` (the point itself counts toward `min_pts`, matching
/// the original formulation).
///
/// Region queries scan all points, so this is O(n²) in distance calls; for
/// points with a cheap 1-Lipschitz projection use [`dbscan_indexed`], which
/// produces identical labels. Retained as the ground-truth reference for the
/// property tests and the `kernels` criterion group.
///
/// Returns one [`Assignment`] per input point.
pub fn dbscan<P>(
    points: &[P],
    eps: f64,
    min_pts: usize,
    dist: impl Fn(&P, &P) -> f64,
) -> Vec<Assignment> {
    let n = points.len();
    expand_clusters(n, min_pts, |i| {
        (0..n)
            .filter(|&j| dist(&points[i], &points[j]) <= eps)
            .collect()
    })
}

/// DBSCAN with a sorted-projection neighbor index.
///
/// `proj` maps each point to a scalar key that must be 1-Lipschitz with
/// respect to `dist` — `|proj(a) - proj(b)| <= dist(a, b)` for all pairs —
/// so every `eps`-neighbor of a point lies within `eps` of its key. Region
/// queries then binary-search the sorted key array and verify `dist` only
/// inside that window, instead of scanning all n points. For 1-D data with
/// absolute-difference distance the identity projection is exact and the
/// window *is* the neighborhood; for higher-dimensional Euclidean points any
/// single coordinate works as the projection.
///
/// Labels are identical to [`dbscan`]: neighbor sets are the same point
/// sets, returned in the same ascending-index order, and the expansion loop
/// is shared.
pub fn dbscan_indexed<P>(
    points: &[P],
    eps: f64,
    min_pts: usize,
    proj: impl Fn(&P) -> f64,
    dist: impl Fn(&P, &P) -> f64,
) -> Vec<Assignment> {
    let n = points.len();
    // Point indices sorted by projection key (index-tiebreak keeps the sort
    // fully deterministic under equal keys).
    let mut order: Vec<usize> = (0..n).collect();
    let keys: Vec<f64> = points.iter().map(&proj).collect();
    order.sort_unstable_by(|&a, &b| keys[a].total_cmp(&keys[b]).then(a.cmp(&b)));
    let sorted_keys: Vec<f64> = order.iter().map(|&i| keys[i]).collect();
    expand_clusters(n, min_pts, |i| {
        let lo = sorted_keys.partition_point(|&k| k < keys[i] - eps);
        let hi = sorted_keys.partition_point(|&k| k <= keys[i] + eps);
        let mut nbrs: Vec<usize> = order[lo..hi]
            .iter()
            .copied()
            .filter(|&j| dist(&points[i], &points[j]) <= eps)
            .collect();
        // The window is in key order; the linear-scan reference emits
        // ascending indices, and label assignment depends on that order.
        nbrs.sort_unstable();
        nbrs
    })
}

/// The shared worklist expansion: visits points in input order, grows each
/// core point's cluster breadth-first. `neighbors(i)` must return the indices
/// of all points within `eps` of point `i` (including `i`), ascending.
///
/// An `enqueued` bitset keeps the worklist duplicate-free: without it,
/// `queue.extend(jn)` re-pushes already-labeled indices and the queue can
/// grow O(n²) on dense clusters. Filtering is behavior-preserving — a
/// duplicate entry is always labeled by the time it would be popped, so the
/// original loop skipped it anyway.
fn expand_clusters(
    n: usize,
    min_pts: usize,
    mut neighbors: impl FnMut(usize) -> Vec<usize>,
) -> Vec<Assignment> {
    const UNVISITED: usize = usize::MAX;
    const NOISE: usize = usize::MAX - 1;
    let mut labels = vec![UNVISITED; n];
    let mut enqueued = vec![false; n];
    let mut next_cluster = 0usize;
    for i in 0..n {
        if labels[i] != UNVISITED {
            continue;
        }
        let nbrs = neighbors(i);
        if nbrs.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        let cluster = next_cluster;
        next_cluster += 1;
        labels[i] = cluster;
        // Expand the cluster via a worklist.
        let mut queue: Vec<usize> = Vec::with_capacity(nbrs.len());
        for x in nbrs {
            if !enqueued[x] {
                enqueued[x] = true;
                queue.push(x);
            }
        }
        let mut qi = 0;
        while qi < queue.len() {
            let j = queue[qi];
            qi += 1;
            if labels[j] == NOISE {
                labels[j] = cluster; // border point
            }
            if labels[j] != UNVISITED {
                continue;
            }
            labels[j] = cluster;
            let jn = neighbors(j);
            if jn.len() >= min_pts {
                for x in jn {
                    if !enqueued[x] {
                        enqueued[x] = true;
                        queue.push(x);
                    }
                }
            }
        }
    }
    labels
        .into_iter()
        .map(|l| {
            if l == NOISE || l == UNVISITED {
                Assignment::Noise
            } else {
                Assignment::Cluster(l)
            }
        })
        .collect()
}

/// Number of clusters in an assignment vector.
pub fn cluster_count(assignments: &[Assignment]) -> usize {
    assignments
        .iter()
        .filter_map(|a| a.cluster())
        .max()
        .map_or(0, |m| m + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1(a: &f64, b: &f64) -> f64 {
        (a - b).abs()
    }

    #[test]
    fn two_well_separated_blobs() {
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let out = dbscan(&points, 0.5, 2, d1);
        assert_eq!(cluster_count(&out), 2);
        assert_eq!(out[0], out[1]);
        assert_eq!(out[1], out[2]);
        assert_eq!(out[3], out[4]);
        assert_ne!(out[0], out[3]);
    }

    #[test]
    fn isolated_point_is_noise() {
        let points = [0.0, 0.1, 5.0];
        let out = dbscan(&points, 0.5, 2, d1);
        assert_eq!(out[2], Assignment::Noise);
        assert!(out[0].cluster().is_some());
    }

    #[test]
    fn chain_connectivity_merges() {
        // Points spaced 0.4 apart chain into a single cluster at eps 0.5.
        let points: Vec<f64> = (0..10).map(|i| i as f64 * 0.4).collect();
        let out = dbscan(&points, 0.5, 2, d1);
        assert_eq!(cluster_count(&out), 1);
        assert!(out.iter().all(|a| a.cluster() == Some(0)));
    }

    #[test]
    fn min_pts_one_clusters_everything() {
        let points = [0.0, 100.0, 200.0];
        let out = dbscan(&points, 0.5, 1, d1);
        assert_eq!(cluster_count(&out), 3);
        assert!(out.iter().all(|a| a.cluster().is_some()));
    }

    #[test]
    fn empty_input() {
        let points: [f64; 0] = [];
        assert!(dbscan(&points, 1.0, 2, d1).is_empty());
    }

    #[test]
    fn border_point_joins_cluster() {
        // 0.0 and 0.4 are core (each has 3 neighbors incl. self at eps 0.5
        // with min_pts 3 via 0.0,0.4,0.8 chain); 0.9 is border.
        let points = [0.0, 0.4, 0.8, 1.2];
        let out = dbscan(&points, 0.5, 3, d1);
        // All should end in the same cluster (1.2 as border of 0.8).
        assert_eq!(cluster_count(&out), 1);
        assert!(out.iter().all(|a| a.cluster() == Some(0)));
    }

    #[test]
    fn determinism() {
        let points = [0.0, 0.1, 0.2, 10.0, 10.1, 3.0];
        let a = dbscan(&points, 0.5, 2, d1);
        let b = dbscan(&points, 0.5, 2, d1);
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_matches_scan_on_1d() {
        let cases: [&[f64]; 4] = [
            &[0.0, 0.1, 0.2, 10.0, 10.1, 3.0],
            &[0.0, 0.4, 0.8, 1.2],
            &[5.0, 5.0, 5.0, 5.0], // equal keys
            &[],
        ];
        for points in cases {
            for min_pts in [1, 2, 3] {
                let scan = dbscan(points, 0.5, min_pts, d1);
                let indexed = dbscan_indexed(points, 0.5, min_pts, |&x| x, d1);
                assert_eq!(scan, indexed);
            }
        }
    }

    #[test]
    fn indexed_matches_scan_with_coordinate_projection() {
        let points = vec![[0.0, 0.0], [0.0, 0.1], [5.0, 5.0], [5.0, 5.1], [0.1, 0.05]];
        let dist = |a: &[f64; 2], b: &[f64; 2]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let scan = dbscan(&points, 0.5, 2, dist);
        let indexed = dbscan_indexed(&points, 0.5, 2, |p| p[1], dist);
        assert_eq!(scan, indexed);
    }

    #[test]
    fn works_with_vector_points() {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.0, 0.1],
            vec![5.0, 5.0],
            vec![5.0, 5.1],
        ];
        let dist = |a: &Vec<f64>, b: &Vec<f64>| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        let out = dbscan(&points, 0.5, 2, dist);
        assert_eq!(cluster_count(&out), 2);
    }
}
