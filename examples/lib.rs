//! Runnable examples for the sixscope toolkit; see the binary targets.
