//! `sixscope serve` — the live telescope daemon.
//!
//! A long-running loop that drives a [`Feed`] (a growing pcap via
//! [`TailFeed`], or a simulated experiment via [`SimFeed`]) through the
//! same [`FeedConsumer`] the batch pipeline uses, and checkpoints the
//! analysis as it goes:
//!
//! * **Snapshots** — every `--snapshot-every N` revealed records the
//!   current report is written to `--out DIR` as `snapshot-NNNNNN.md`
//!   plus `latest.md`, each via write-to-temp + atomic rename, so a
//!   reader never observes a torn file.
//! * **Status** — one JSON line per checkpoint (packets, sessions, peak
//!   open sessions, late/skipped counts, watermark) to `--status-fd`.
//! * **Shutdown** — SIGTERM/SIGINT set a flag; the loop notices, flushes
//!   a final checkpoint, and exits cleanly (exit code 0).
//!
//! The final checkpoint over a finished pcap is byte-identical to batch
//! `sixscope analyze` over the same file (and, for `--sim`, to the
//! pipeline's [`Analyzed::stream`]): the daemon's incremental state *is*
//! the batch state once the feed drains, and disorder falls back to the
//! same sort-and-re-feed path (DESIGN.md §10, §14).

use crate::corpus::{AnalysisTimings, Analyzed, StreamSettings};
use crate::index::{CorpusIndex, IndexShard};
use crate::ingest::passive_config;
use crate::json::Json;
use crate::pipeline::{assemble_gathered, sessionize_sorted, FeedConsumer};
use crate::{render, tables, Error};
use sixscope_analysis::classify::{addr_selection, profile_scanners};
use sixscope_sim::{CompiledVisibility, ExperimentResult, Scenario, ScenarioConfig, Visibility};
use sixscope_telescope::{
    Capture, Feed, IngestStats, ScanSession, SimFeed, TailFeed, TelescopeId, SESSION_TIMEOUT,
};
use sixscope_types::{num_threads, Ipv6Prefix, SimTime};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// What the daemon serves.
pub enum ServeSource {
    /// Follow one growing pcap file (telescope operator mode).
    Pcap(PathBuf),
    /// Run the simulated experiment and replay its captures as a live
    /// source (deterministic testing mode).
    Sim {
        /// Scenario seed.
        seed: u64,
        /// Population scale relative to the paper.
        scale: f64,
    },
}

/// Configuration of one [`serve`] run.
pub struct ServeOptions {
    /// The input feed.
    pub source: ServeSource,
    /// Directory receiving `snapshot-NNNNNN.md` and `latest.md`.
    pub out_dir: PathBuf,
    /// Checkpoint every this many revealed records (`None`: only the
    /// final checkpoint).
    pub snapshot_every: Option<u64>,
    /// Worker-thread cap (`None` defers to `SIXSCOPE_THREADS`). Output
    /// bytes never depend on it.
    pub threads: Option<usize>,
    /// Feed chunk size in records.
    pub chunk_records: usize,
    /// Render checkpoints as JSON instead of text.
    pub json: bool,
    /// File descriptor receiving one JSON status line per checkpoint.
    pub status_fd: Option<i32>,
    /// Base idle-poll interval for the live tail, in milliseconds.
    pub poll_ms: u64,
    /// Cumulative idle time after which the live tail quiesces, in
    /// milliseconds.
    pub quiesce_ms: u64,
    /// Telescope prefix filter for the pcap source (default `::/0`).
    pub prefix: Ipv6Prefix,
}

impl ServeOptions {
    /// Serves a growing pcap into `out_dir` with default knobs.
    pub fn pcap<P: Into<PathBuf>, O: Into<PathBuf>>(path: P, out_dir: O) -> ServeOptions {
        ServeOptions {
            source: ServeSource::Pcap(path.into()),
            out_dir: out_dir.into(),
            snapshot_every: None,
            threads: None,
            chunk_records: usize::MAX,
            json: false,
            status_fd: None,
            poll_ms: 50,
            quiesce_ms: 2_000,
            prefix: Ipv6Prefix::default_route(),
        }
    }

    /// Serves a simulated experiment into `out_dir` with default knobs.
    pub fn sim<O: Into<PathBuf>>(seed: u64, scale: f64, out_dir: O) -> ServeOptions {
        ServeOptions {
            source: ServeSource::Sim { seed, scale },
            ..ServeOptions::pcap("", out_dir)
        }
    }
}

/// What a finished [`serve`] run reports back.
pub struct ServeSummary {
    /// Numbered snapshots written (the final checkpoint included).
    pub snapshots: usize,
    /// Packets admitted into the capture(s).
    pub packets: usize,
    /// Live-feed records dropped as older than the eviction horizon.
    pub late_records: u64,
    /// Path of the final checkpoint (`latest.md`).
    pub latest: PathBuf,
}

/// Set by SIGTERM/SIGINT; polled by the serve loop between chunks.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod signal_sys {
    //! Minimal libc-free signal binding, same pattern as the packet
    //! crate's `mmap_sys`: declare the symbols we need directly.
    pub const SIGINT: i32 = 2;
    pub const SIGTERM: i32 = 15;
    pub type Handler = extern "C" fn(i32);
    extern "C" {
        pub fn signal(signum: i32, handler: Handler) -> usize;
    }
}

#[cfg(unix)]
extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    SHUTDOWN.store(false, Ordering::SeqCst);
    #[cfg(unix)]
    // SAFETY: `on_signal` only touches an atomic, which is async-signal-safe.
    unsafe {
        signal_sys::signal(signal_sys::SIGINT, on_signal);
        signal_sys::signal(signal_sys::SIGTERM, on_signal);
    }
}

/// True once SIGTERM/SIGINT has been received.
fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// The status-line sink: an already-open file descriptor the caller owns.
/// The daemon writes but never closes it.
struct StatusSink {
    #[cfg(unix)]
    file: Option<std::mem::ManuallyDrop<std::fs::File>>,
    #[cfg(not(unix))]
    file: Option<()>,
}

impl StatusSink {
    fn new(fd: Option<i32>) -> StatusSink {
        #[cfg(unix)]
        {
            use std::os::unix::io::FromRawFd;
            StatusSink {
                // SAFETY: the caller passed this fd for us to write to; the
                // ManuallyDrop keeps us from closing a descriptor we do not
                // own.
                file: fd.map(|fd| {
                    std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(fd) })
                }),
            }
        }
        #[cfg(not(unix))]
        {
            let _ = fd;
            StatusSink { file: None }
        }
    }

    fn emit(&mut self, line: &Json) {
        #[cfg(unix)]
        if let Some(file) = &mut self.file {
            use std::io::Write;
            let _ = writeln!(file, "{}", line.render());
            let _ = file.flush();
        }
        #[cfg(not(unix))]
        let _ = line;
    }
}

/// One checkpoint's statistics, for the status line.
struct Checkpoint<'a> {
    event: &'a str,
    snapshot: usize,
    packets: usize,
    sessions128: usize,
    sessions64: usize,
    peak_open: usize,
    late: u64,
    stats: &'a IngestStats,
    watermark: SimTime,
}

impl Checkpoint<'_> {
    fn json(&self) -> Json {
        Json::obj([
            ("event", Json::s(self.event.to_string())),
            ("snapshot", Json::u(self.snapshot as u64)),
            ("packets", Json::u(self.packets as u64)),
            ("sessions_128", Json::u(self.sessions128 as u64)),
            ("sessions_64", Json::u(self.sessions64 as u64)),
            ("peak_open_sessions", Json::u(self.peak_open as u64)),
            ("late_records", Json::u(self.late)),
            ("skipped", Json::u(self.stats.skipped_total())),
            ("truncated_tail", Json::Bool(self.stats.truncated_tail)),
            ("watermark", Json::u(self.watermark.as_secs())),
        ])
    }
}

/// Writes one checkpoint atomically: the report goes to a temp file in
/// `dir`, is renamed to `snapshot-NNNNNN.md`, and the same bytes are then
/// renamed over `latest.md`. Readers only ever see complete files.
fn write_snapshot(dir: &Path, seq: usize, report: &str) -> Result<PathBuf, Error> {
    let io_err = |p: &Path| {
        let path = p.display().to_string();
        move |source| Error::Io {
            path: path.clone(),
            source,
        }
    };
    std::fs::create_dir_all(dir).map_err(io_err(dir))?;
    let tmp = dir.join(".snapshot.tmp");
    let numbered = dir.join(format!("snapshot-{seq:06}.md"));
    let latest = dir.join("latest.md");
    std::fs::write(&tmp, report).map_err(io_err(&tmp))?;
    std::fs::rename(&tmp, &numbered).map_err(io_err(&numbered))?;
    std::fs::write(&tmp, report).map_err(io_err(&tmp))?;
    std::fs::rename(&tmp, &latest).map_err(io_err(&latest))?;
    Ok(latest)
}

/// Renders the `analyze`-style report for a corpus — the exact stdout
/// bytes of `sixscope analyze` (and `merge`) over the same packets, so a
/// serve checkpoint can be `cmp`'d against the batch run.
pub fn analysis_report(analyzed: &Analyzed, stats: &IngestStats, json: bool) -> String {
    let capture = analyzed.capture(TelescopeId::T1);
    let prefix = capture.config().prefix;
    let sessions = analyzed.sessions128(TelescopeId::T1);
    let profiles = profile_scanners(sessions);
    if json {
        let doc = Json::obj([
            ("stats", crate::cli::stats_json(stats)),
            ("packets", Json::u(capture.len() as u64)),
            ("sessions_128", Json::u(sessions.len() as u64)),
            (
                "scanners",
                Json::Arr(
                    profiles
                        .iter()
                        .map(|profile| {
                            let first = &sessions[profile.session_indices[0]];
                            Json::obj([
                                ("source", Json::s(profile.source.to_string())),
                                ("sessions", Json::u(profile.session_indices.len() as u64)),
                                ("packets", Json::u(profile.packets)),
                                ("temporal", Json::s(profile.temporal.to_string())),
                                (
                                    "addr_selection",
                                    Json::s(
                                        addr_selection(first, capture, prefix.len()).to_string(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        return format!("{}\n", doc.render());
    }
    let mut out = String::new();
    out.push_str(&format!("total packets: {}\n", capture.len()));
    out.push_str(&format!(
        "sessions (/128): {}, scanners: {}\n\n",
        sessions.len(),
        profiles.len()
    ));
    out.push_str(&format!(
        "{:<42} {:>6} {:>8}  {:<13} addr-selection (first session)\n",
        "source", "sess", "packets", "temporal"
    ));
    for profile in &profiles {
        let first = &sessions[profile.session_indices[0]];
        let selection = addr_selection(first, capture, prefix.len());
        out.push_str(&format!(
            "{:<42} {:>6} {:>8}  {:<13} {}\n",
            profile.source.to_string(),
            profile.session_indices.len(),
            profile.packets,
            profile.temporal.to_string(),
            selection
        ));
    }
    out
}

/// Renders the `run`-style full-tables report — the exact stdout bytes of
/// `sixscope run` over the same corpus.
pub fn tables_report(analyzed: &Analyzed, json: bool) -> String {
    if json {
        return format!("{}\n", crate::json::tables_json(analyzed).render());
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{}\n",
        render::render_table2(&tables::table2(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table3(&tables::table3(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table4(&tables::table4(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table5(&tables::table5(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table6(&tables::table6(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table7(&tables::table7(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_table8(&tables::table8(analyzed))
    ));
    out.push_str(&format!(
        "{}\n",
        render::render_headline(&tables::headline(analyzed))
    ));
    out
}

/// Runs the daemon to completion (feed drained, or SIGTERM/SIGINT).
pub fn serve(opts: ServeOptions) -> Result<ServeSummary, Error> {
    install_signal_handlers();
    let mut status = StatusSink::new(opts.status_fd);
    match &opts.source {
        ServeSource::Pcap(path) => serve_pcap(&opts, &path.clone(), &mut status),
        ServeSource::Sim { seed, scale } => serve_sim(&opts, *seed, *scale, &mut status),
    }
}

fn settings_of(opts: &ServeOptions) -> StreamSettings {
    StreamSettings {
        chunk_records: opts.chunk_records,
        session_timeout: SESSION_TIMEOUT,
        threads: opts.threads,
    }
}

/// One telescope's sessionized state, ready to assemble into a report.
struct PcapState {
    capture: Capture,
    sessions128: Vec<ScanSession>,
    sessions64: Vec<ScanSession>,
    shard: IndexShard,
    peak: usize,
}

/// Assembles and renders the pcap-mode report from one telescope's state.
fn render_pcap_state(
    state: PcapState,
    stats: &IngestStats,
    settings: &StreamSettings,
    json: bool,
) -> Result<String, Error> {
    let mut merged = BTreeMap::new();
    merged.insert(
        state.capture.config().id,
        (
            state.capture,
            state.sessions128,
            state.sessions64,
            state.shard,
        ),
    );
    let out = assemble_gathered(
        merged,
        0.0,
        0.0,
        state.peak,
        stats.clone(),
        Vec::new(),
        settings,
    )?;
    Ok(analysis_report(&out.analyzed, stats, json))
}

/// A mid-stream checkpoint of the live pcap feed: clone the admitted
/// packets and either the live incremental state (in-order input) or a
/// sorted re-feed of the clone (the batch fallback, applied to the prefix
/// seen so far).
fn pcap_snapshot_report(
    capture: &Capture,
    consumer: &FeedConsumer,
    stats: &IngestStats,
    settings: &StreamSettings,
    compiled: &CompiledVisibility,
    json: bool,
) -> Result<String, Error> {
    let mut restored = Capture::restore(
        capture.config().clone(),
        capture.packets().to_vec(),
        capture.filtered(),
        capture.malformed(),
    );
    let (sessions128, sessions64, shard, peak) = if consumer.is_sorted() {
        let (s128, s64, shard) = consumer.snapshot();
        (s128, s64, shard, consumer.peak_open())
    } else {
        restored.sort_by_time();
        let hint = (restored.len() / 8).clamp(16, 1 << 16);
        let (a, b, shard) = sessionize_sorted(
            &restored,
            settings.session_timeout,
            hint,
            settings.chunk_records,
            compiled,
        );
        let peak = a.peak_open().max(b.peak_open());
        (a.finish(), b.finish(), shard, peak)
    };
    render_pcap_state(
        PcapState {
            capture: restored,
            sessions128,
            sessions64,
            shard,
            peak,
        },
        stats,
        settings,
        json,
    )
}

fn serve_pcap(
    opts: &ServeOptions,
    path: &Path,
    status: &mut StatusSink,
) -> Result<ServeSummary, Error> {
    let settings = settings_of(opts);
    let visibility = Visibility::from_events(&[]);
    let compiled = CompiledVisibility::compile(&visibility);
    let mut feed = TailFeed::new(
        Capture::new(passive_config(opts.prefix)),
        path,
        settings.chunk_records,
        settings.session_timeout,
    )
    .poll_interval(Duration::from_millis(opts.poll_ms))
    .quiesce_after(Duration::from_millis(opts.quiesce_ms));
    let mut consumer = FeedConsumer::new(feed.sources_hint(), &settings);

    let mut revealed: u64 = 0;
    let mut next_snapshot = opts.snapshot_every;
    let mut seq = 0usize;
    loop {
        if shutdown_requested() {
            break;
        }
        let chunk = feed.next_chunk()?;
        consumer.consume(feed.capture(), chunk.range.clone(), &compiled);
        revealed += chunk.range.len() as u64;
        if chunk.end_of_feed {
            break;
        }
        while next_snapshot.is_some_and(|at| revealed >= at) {
            seq += 1;
            let stats = feed.stats();
            let report = pcap_snapshot_report(
                feed.capture(),
                &consumer,
                &stats,
                &settings,
                &compiled,
                opts.json,
            )?;
            write_snapshot(&opts.out_dir, seq, &report)?;
            let (sessions128, sessions64) = consumer.session_counts();
            status.emit(
                &Checkpoint {
                    event: "snapshot",
                    snapshot: seq,
                    packets: feed.capture().len(),
                    sessions128,
                    sessions64,
                    peak_open: consumer.peak_open(),
                    late: feed.late_records(),
                    stats: &stats,
                    watermark: feed.watermark(),
                }
                .json(),
            );
            next_snapshot = opts
                .snapshot_every
                .map(|every| revealed + every - revealed % every);
        }
    }

    // Final checkpoint: once the feed has drained, this state is the batch
    // state — byte-identical to `sixscope analyze` over the finished file.
    let late = feed.late_records();
    let watermark = feed.watermark();
    let (mut capture, stats) = feed.finish();
    let done = consumer.finish(&mut capture, &compiled);
    seq += 1;
    let packets = capture.len();
    let (n128, n64) = (done.sessions128.len(), done.sessions64.len());
    let peak = done.peak;
    let report = render_pcap_state(
        PcapState {
            capture,
            sessions128: done.sessions128,
            sessions64: done.sessions64,
            shard: done.shard,
            peak: done.peak,
        },
        &stats,
        &settings,
        opts.json,
    )?;
    let latest = write_snapshot(&opts.out_dir, seq, &report)?;
    status.emit(
        &Checkpoint {
            event: "final",
            snapshot: seq,
            packets,
            sessions128: n128,
            sessions64: n64,
            peak_open: peak,
            late,
            stats: &stats,
            watermark,
        }
        .json(),
    );
    Ok(ServeSummary {
        snapshots: seq,
        packets,
        late_records: late,
        latest,
    })
}

/// Clones the experiment's metadata around partial captures: each
/// telescope keeps only its first `revealed[id]` packets. The counters are
/// carried over whole — they describe the run, not the reveal.
fn partial_result(
    result: &ExperimentResult,
    revealed: &BTreeMap<TelescopeId, usize>,
) -> ExperimentResult {
    let mut captures = BTreeMap::new();
    for id in TelescopeId::ALL {
        let full = &result.captures[&id];
        let k = revealed.get(&id).copied().unwrap_or(0);
        captures.insert(
            id,
            Capture::restore(
                full.config().clone(),
                full.packets()[..k].to_vec(),
                full.filtered(),
                full.malformed(),
            ),
        );
    }
    ExperimentResult {
        layout: result.layout.clone(),
        schedule: result.schedule.clone(),
        captures,
        events: result.events.clone(),
        visibility: result.visibility.clone(),
        population: result.population.clone(),
        hitlist: result.hitlist.clone(),
        t4_responses: result.t4_responses,
        dropped_unrouted: result.dropped_unrouted,
        truncated_probes: result.truncated_probes,
    }
}

/// Assembles the corpus from per-telescope consumer state and renders the
/// full-tables report.
#[allow(clippy::type_complexity)]
fn render_sim_state(
    result: ExperimentResult,
    fed: BTreeMap<TelescopeId, (Vec<ScanSession>, Vec<ScanSession>, IndexShard, usize)>,
    threads: usize,
    json: bool,
) -> String {
    let mut sessions128 = BTreeMap::new();
    let mut sessions64 = BTreeMap::new();
    let mut shards = BTreeMap::new();
    let mut peak = 0usize;
    for (id, (s128, s64, shard, p)) in fed {
        sessions128.insert(id, s128);
        sessions64.insert(id, s64);
        shards.insert(id, shard);
        peak = peak.max(p);
    }
    let index = CorpusIndex::from_shards(&result, shards, &sessions128, &sessions64, threads);
    let analyzed = Analyzed::assemble(
        result,
        sessions128,
        sessions64,
        index,
        AnalysisTimings::default(),
        peak,
    );
    tables_report(&analyzed, json)
}

fn serve_sim(
    opts: &ServeOptions,
    seed: u64,
    scale: f64,
    status: &mut StatusSink,
) -> Result<ServeSummary, Error> {
    let settings = settings_of(opts);
    let threads = num_threads(opts.threads);
    let mut config = ScenarioConfig::new(seed, scale);
    config.threads = opts.threads;
    let (result, _sim) = Scenario::new(config).run_timed();
    let compiled = CompiledVisibility::compile(&result.visibility);

    let mut revealed: u64 = 0;
    let mut next_snapshot = opts.snapshot_every;
    let mut seq = 0usize;
    let sim_stats = IngestStats::default();
    let mut watermark = SimTime::EPOCH;
    let fed: BTreeMap<TelescopeId, (Vec<ScanSession>, Vec<ScanSession>, IndexShard, usize)>;
    {
        let mut lanes: Vec<(TelescopeId, SimFeed<'_>, FeedConsumer, bool)> = TelescopeId::ALL
            .into_iter()
            .map(|id| {
                let feed = SimFeed::new(&result.captures[&id], settings.chunk_records);
                let consumer = FeedConsumer::new(feed.sources_hint(), &settings);
                (id, feed, consumer, false)
            })
            .collect();
        // Round-robin over the four telescopes, one chunk each per round,
        // so checkpoints interleave the captures deterministically.
        while !lanes.iter().all(|(_, _, _, done)| *done) && !shutdown_requested() {
            for (_, feed, consumer, done) in &mut lanes {
                if *done {
                    continue;
                }
                let chunk = feed.next_chunk().expect("sim feeds cannot fail");
                consumer.consume(feed.capture(), chunk.range.clone(), &compiled);
                revealed += chunk.range.len() as u64;
                watermark = watermark.max(chunk.watermark);
                if chunk.end_of_feed {
                    *done = true;
                }
            }
            while next_snapshot.is_some_and(|at| revealed >= at) {
                seq += 1;
                let revealed_by: BTreeMap<TelescopeId, usize> = lanes
                    .iter()
                    .map(|(id, feed, _, _)| (*id, feed.revealed()))
                    .collect();
                let fed_now: BTreeMap<_, _> = lanes
                    .iter()
                    .map(|(id, _, consumer, _)| {
                        let (s128, s64, shard) = consumer.snapshot();
                        (*id, (s128, s64, shard, consumer.peak_open()))
                    })
                    .collect();
                let report = render_sim_state(
                    partial_result(&result, &revealed_by),
                    fed_now,
                    threads,
                    opts.json,
                );
                write_snapshot(&opts.out_dir, seq, &report)?;
                let (n128, n64, peak) = lanes.iter().fold((0, 0, 0), |(a, b, p), l| {
                    let (x, y) = l.2.session_counts();
                    (a + x, b + y, p.max(l.2.peak_open()))
                });
                status.emit(
                    &Checkpoint {
                        event: "snapshot",
                        snapshot: seq,
                        packets: revealed as usize,
                        sessions128: n128,
                        sessions64: n64,
                        peak_open: peak,
                        late: 0,
                        stats: &sim_stats,
                        watermark,
                    }
                    .json(),
                );
                next_snapshot = opts
                    .snapshot_every
                    .map(|every| revealed + every - revealed % every);
            }
        }
        fed = lanes
            .into_iter()
            .map(|(id, _, consumer, _)| {
                // Simulated captures are time-sorted, so the incremental
                // state is final as-is.
                let done = consumer.finish_in_order();
                (
                    id,
                    (done.sessions128, done.sessions64, done.shard, done.peak),
                )
            })
            .collect();
    }

    seq += 1;
    let (n128, n64, peak) = fed.values().fold((0, 0, 0), |(a, b, p), (s1, s2, _, pk)| {
        (a + s1.len(), b + s2.len(), p.max(*pk))
    });
    let packets: usize = result.captures.values().map(Capture::len).sum();
    let report = render_sim_state(result, fed, threads, opts.json);
    let latest = write_snapshot(&opts.out_dir, seq, &report)?;
    status.emit(
        &Checkpoint {
            event: "final",
            snapshot: seq,
            packets,
            sessions128: n128,
            sessions64: n64,
            peak_open: peak,
            late: 0,
            stats: &sim_stats,
            watermark,
        }
        .json(),
    );
    Ok(ServeSummary {
        snapshots: seq,
        packets,
        late_records: 0,
        latest,
    })
}
