//! The zero-copy ingest contract (DESIGN.md §11): borrowed record views
//! must be observably identical to the owned records they replaced, and
//! the mmap backing must be a pure residency optimization.
//!
//! * Borrow-vs-owned equivalence: every corpus file — and thousands of
//!   proptest-mutated variants — fed through `Capture::apply_outcome`
//!   (owned) and `Capture::extend_from_views` (borrowed) yields identical
//!   [`IngestStats`] and identical per-packet fields.
//! * Fallback: `MappedPcap::open_buffered` (the no-mmap path) produces the
//!   same bytes, records and statistics as `MappedPcap::open` — the
//!   backing changes memory residency, never observable output.

use proptest::prelude::*;
use sixscope::ingest::passive_config;
use sixscope_packet::{MappedPcap, PcapReader, SliceReader, ViewOutcome};
use sixscope_telescope::{Capture, IngestStats};
use sixscope_types::Ipv6Prefix;
use std::path::PathBuf;

const CORPUS: [&str; 4] = [
    "clean.pcap",
    "lying_lengths.pcap",
    "mixed.pcap",
    "truncated_header.pcap",
];

fn corpus_path(name: &str) -> PathBuf {
    PathBuf::from(format!("{}/corpus/{name}", env!("CARGO_MANIFEST_DIR")))
}

fn telescope_prefix() -> Ipv6Prefix {
    "2001:db8::/32".parse().unwrap()
}

/// Ingests `bytes` through the owned reader and per-record
/// `apply_outcome` — the pre-zero-copy path.
fn ingest_owned(bytes: &[u8]) -> Option<(Capture, IngestStats)> {
    let mut reader = PcapReader::new(bytes).ok()?;
    let mut capture = Capture::new(passive_config(telescope_prefix()));
    let mut stats = IngestStats::default();
    while let Ok(Some(outcome)) = reader.read_record_recovering() {
        capture.apply_outcome(outcome, &mut stats);
    }
    Some((capture, stats))
}

/// Ingests `bytes` through borrowed views and the batched
/// `extend_from_views` feed — the zero-copy path, at chunk size `chunk`.
fn ingest_views(bytes: &[u8], chunk: usize) -> Option<(Capture, IngestStats)> {
    let mut reader = SliceReader::new(bytes).ok()?;
    let mut capture = Capture::new(passive_config(telescope_prefix()));
    let mut stats = IngestStats::default();
    let mut views: Vec<ViewOutcome<'_>> = Vec::new();
    while reader.next_chunk(chunk, &mut views) {
        capture.extend_from_views(&views, &mut stats);
    }
    Some((capture, stats))
}

/// Asserts the two paths agree on every observable: the reader-level
/// outcome sequence, the ingest statistics, and every per-packet field.
fn assert_paths_agree(bytes: &[u8], label: &str) {
    let owned = ingest_owned(bytes);
    for chunk in [1usize, 3, usize::MAX] {
        let views = ingest_views(bytes, chunk);
        match (&owned, views) {
            (None, None) => {}
            (Some((ocap, ostats)), Some((vcap, vstats))) => {
                assert_eq!(ostats, &vstats, "{label}: stats diverged at chunk {chunk}");
                assert_eq!(
                    ocap.packets(),
                    vcap.packets(),
                    "{label}: packets diverged at chunk {chunk}"
                );
                assert_eq!(ocap.filtered(), vcap.filtered(), "{label}: filtered count");
            }
            (o, v) => panic!(
                "{label}: header acceptance diverged: owned={} views={}",
                o.is_some(),
                v.is_some()
            ),
        }
    }
}

#[test]
fn corpus_files_ingest_identically_borrowed_and_owned() {
    for name in CORPUS {
        let bytes = std::fs::read(corpus_path(name)).unwrap();
        assert_paths_agree(&bytes, name);
    }
}

#[test]
fn mmap_and_buffered_backings_are_observably_identical() {
    for name in CORPUS {
        let path = corpus_path(name);
        let mapped = MappedPcap::open(&path).unwrap();
        let buffered = MappedPcap::open_buffered(&path).unwrap();
        assert!(!buffered.used_mmap());
        assert_eq!(mapped.data(), buffered.data(), "{name}: backing bytes");
        let (mcap, mstats) = ingest_views(mapped.data(), usize::MAX).unwrap();
        let (bcap, bstats) = ingest_views(buffered.data(), usize::MAX).unwrap();
        assert_eq!(mstats, bstats, "{name}: stats diverged across backings");
        assert_eq!(mcap.packets(), bcap.packets(), "{name}: packets");
    }
}

#[test]
fn empty_and_missing_files_degrade_gracefully() {
    // Zero-length file: mmap(2) rejects len 0, so open() must fall back to
    // the buffered read and then fail header validation like any short read.
    let path = std::env::temp_dir().join(format!(
        "sixscope-zero-copy-empty-{}.pcap",
        std::process::id()
    ));
    std::fs::write(&path, b"").unwrap();
    let mapped = MappedPcap::open(&path).unwrap();
    assert!(!mapped.used_mmap(), "zero-length mmap must fall back");
    assert!(mapped.reader().is_err(), "empty file has no pcap header");
    std::fs::remove_file(&path).unwrap();

    // A missing file errors instead of panicking, on both constructors.
    let missing = std::env::temp_dir().join("sixscope-zero-copy-does-not-exist.pcap");
    assert!(MappedPcap::open(&missing).is_err());
    assert!(MappedPcap::open_buffered(&missing).is_err());
}

proptest! {
    /// Mutated corpus bytes (truncations, byte flips, splices) ingest
    /// identically through the borrowed and owned paths.
    #[test]
    fn mutated_corpora_ingest_identically(
        file in 0usize..CORPUS.len(),
        cut in 0usize..4096,
        flip_at in 0usize..4096,
        flip_bits in 0u8..=255,
    ) {
        let mut bytes = std::fs::read(corpus_path(CORPUS[file])).unwrap();
        if !bytes.is_empty() {
            let at = flip_at % bytes.len();
            bytes[at] ^= flip_bits;
            bytes.truncate(bytes.len() - cut % bytes.len().max(1));
        }
        assert_paths_agree(&bytes, CORPUS[file]);
    }
}
