//! UDP header (RFC 768 over IPv6 per RFC 8200).
//!
//! UDP probes in the paper are dominated by traceroute (71% of UDP sessions,
//! ports 33434–33523) and DNS; one heavy hitter alone contributed 85% of all
//! UDP packets as DNS requests.

use crate::checksum::{pseudo_header_checksum_with_partial, pseudo_header_partial};
use crate::error::PacketError;
use std::net::Ipv6Addr;

/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A decoded UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Total datagram length (header + payload).
    pub length: u16,
}

impl UdpHeader {
    /// Creates a header for a payload of the given length.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader {
            src_port,
            dst_port,
            length: (UDP_HEADER_LEN + payload_len) as u16,
        }
    }

    /// Encodes header + `payload` into `out` with a valid checksum.
    ///
    /// Note: over IPv6 the UDP checksum is mandatory (RFC 8200 §8.1); a zero
    /// checksum result is transmitted as 0xffff.
    pub fn encode(&self, src: Ipv6Addr, dst: Ipv6Addr, payload: &[u8], out: &mut Vec<u8>) {
        self.encode_with_partial(pseudo_header_partial(src, 17), dst, payload, out);
    }

    /// Like [`UdpHeader::encode`], but resumes the checksum from a
    /// [`crate::checksum::pseudo_header_partial`] for the source address.
    pub fn encode_with_partial(
        &self,
        partial: u64,
        dst: Ipv6Addr,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut ck = pseudo_header_checksum_with_partial(partial, dst, &out[start..]);
        if ck == 0 {
            ck = 0xffff;
        }
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Decodes the header; returns it together with the datagram payload.
    pub fn decode(buf: &[u8]) -> Result<(UdpHeader, &[u8]), PacketError> {
        if buf.len() < UDP_HEADER_LEN {
            return Err(PacketError::Truncated {
                what: "UDP header",
                need: UDP_HEADER_LEN,
                have: buf.len(),
            });
        }
        let length = u16::from_be_bytes([buf[4], buf[5]]) as usize;
        if length < UDP_HEADER_LEN || length > buf.len() {
            return Err(PacketError::LengthMismatch {
                what: "UDP length",
                declared: length,
                actual: buf.len(),
            });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                length: length as u16,
            },
            &buf[UDP_HEADER_LEN..length],
        ))
    }

    /// Verifies the checksum of a full UDP datagram.
    pub fn verify_checksum(src: Ipv6Addr, dst: Ipv6Addr, datagram: &[u8]) -> bool {
        crate::checksum::verify_pseudo_header_checksum(src, dst, 17, datagram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv6Addr, Ipv6Addr) {
        (
            "2001:db8::1".parse().unwrap(),
            "2001:db8::53".parse().unwrap(),
        )
    }

    #[test]
    fn round_trip_with_valid_checksum() {
        let (src, dst) = addrs();
        let hdr = UdpHeader::new(40000, 53, 5);
        let mut buf = Vec::new();
        hdr.encode(src, dst, b"query", &mut buf);
        assert_eq!(buf.len(), UDP_HEADER_LEN + 5);
        assert!(UdpHeader::verify_checksum(src, dst, &buf));
        let (decoded, payload) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(decoded, hdr);
        assert_eq!(payload, b"query");
    }

    #[test]
    fn length_field_matches() {
        let hdr = UdpHeader::new(1, 2, 100);
        assert_eq!(hdr.length, 108);
    }

    #[test]
    fn decode_trims_trailing_bytes_beyond_length() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 33434, 3).encode(src, dst, b"abc", &mut buf);
        buf.extend_from_slice(b"JUNK");
        let (_, payload) = UdpHeader::decode(&buf).unwrap();
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn decode_rejects_undersized_length() {
        let mut buf = vec![0u8; 8];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(
            UdpHeader::decode(&buf),
            Err(PacketError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn decode_rejects_truncated_payload() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 2, 10).encode(src, dst, &[0u8; 10], &mut buf);
        assert!(UdpHeader::decode(&buf[..12]).is_err());
    }

    #[test]
    fn corrupted_datagram_fails_checksum() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(9, 10, 4).encode(src, dst, b"data", &mut buf);
        buf[8] ^= 0x40;
        assert!(!UdpHeader::verify_checksum(src, dst, &buf));
    }
}
