//! §5.4 end-to-end: cluster the corpus's probe payloads with DBSCAN and
//! verify the clusters align with the planted tools — the "hex-byte
//! representation clustering, then manual matching" workflow of the paper.

use sixscope::sim::ScenarioConfig;
use sixscope::{Analyzed, Pipeline};
use sixscope_analysis::dbscan::cluster_count;
use sixscope_analysis::fingerprint::{cluster_payloads, identify, ToolMatch};
use sixscope_telescope::TelescopeId;
use std::collections::BTreeMap;
use std::sync::OnceLock;

fn corpus() -> &'static Analyzed {
    static CELL: OnceLock<Analyzed> = OnceLock::new();
    CELL.get_or_init(|| {
        Pipeline::simulate(ScenarioConfig::new(20230824, 0.01))
            .run()
            .expect("simulated runs cannot fail")
    })
}

#[test]
fn payload_clusters_align_with_tool_identities() {
    let a = corpus();
    // Sample up to 40 non-empty payloads per identified tool from T1.
    let mut samples: Vec<(ToolMatch, Vec<u8>)> = Vec::new();
    let mut per_tool: BTreeMap<String, usize> = BTreeMap::new();
    for p in a.capture(TelescopeId::T1).packets() {
        if p.payload.is_empty() {
            continue;
        }
        let label = identify(&p.payload, None);
        if matches!(label, ToolMatch::Unidentified) {
            continue;
        }
        let count = per_tool.entry(label.to_string()).or_default();
        if *count >= 40 {
            continue;
        }
        *count += 1;
        samples.push((label, p.payload.to_vec()));
    }
    assert!(
        per_tool.len() >= 3,
        "need several tool families in the sample, got {per_tool:?}"
    );
    let payload_refs: Vec<&[u8]> = samples.iter().map(|(_, p)| p.as_slice()).collect();
    let assignments = cluster_payloads(&payload_refs, 0.12, 3);
    assert!(cluster_count(&assignments) >= 2, "payloads did not cluster");

    // Purity: within each DBSCAN cluster, one tool identity must dominate.
    let mut clusters: BTreeMap<usize, BTreeMap<String, usize>> = BTreeMap::new();
    for (assignment, (label, _)) in assignments.iter().zip(&samples) {
        if let Some(c) = assignment.cluster() {
            *clusters
                .entry(c)
                .or_default()
                .entry(label.to_string())
                .or_default() += 1;
        }
    }
    // Histogram features cannot split tools with near-identical payload
    // formats (Yarrp6's `yrp6-…` vs Htrace6's `htr6-…` differ in two
    // letters) — which is precisely why the paper follows clustering with
    // *manual* feature analysis. We therefore require clusters to be
    // small mixtures (≤ 2 tool identities), not pure.
    for (cluster, tools) in &clusters {
        assert!(
            tools.len() <= 2,
            "cluster {cluster} mixes too many tools: {tools:?}"
        );
    }
    // And structurally different formats must never co-cluster.
    let cluster_of = |needle: &str| {
        assignments
            .iter()
            .zip(&samples)
            .find(|(x, (label, _))| x.cluster().is_some() && label.to_string() == needle)
            .and_then(|(x, _)| x.cluster())
    };
    if let (Some(a_atlas), Some(a_yarrp)) = (cluster_of("RIPEAtlasProbe"), cluster_of("Yarrp6")) {
        assert_ne!(a_atlas, a_yarrp, "Atlas and Yarrp payloads co-clustered");
    }
}

#[test]
fn same_tool_payloads_share_a_cluster() {
    let a = corpus();
    // All Yarrp payloads (varying counters) must land in one cluster.
    let yarrp: Vec<Vec<u8>> = a
        .capture(TelescopeId::T1)
        .packets()
        .iter()
        .filter(|p| p.payload.starts_with(b"yrp6"))
        .take(30)
        .map(|p| p.payload.to_vec())
        .collect();
    assert!(
        yarrp.len() >= 10,
        "need enough Yarrp probes, got {}",
        yarrp.len()
    );
    let refs: Vec<&[u8]> = yarrp.iter().map(Vec::as_slice).collect();
    let assignments = cluster_payloads(&refs, 0.12, 3);
    let first = assignments[0].cluster().expect("clustered");
    assert!(
        assignments.iter().all(|x| x.cluster() == Some(first)),
        "Yarrp payloads split into multiple clusters"
    );
}
