//! Aggregate statistics helpers for the figures: cumulative first-seen
//! curves (Fig. 4), time-bucket series (Figs. 7a, 9, 11), rank curves
//! (Fig. 14) and top-k tables (Table 4).

use sixscope_types::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::hash::Hash;

/// A cumulative "distinct items seen so far" curve: for each event
/// `(time, item)`, counts how many distinct items appeared up to each
/// bucket boundary. This is the machinery behind Fig. 4's relative-growth
/// curves.
pub fn cumulative_distinct<T: Eq + Hash + Clone>(
    events: impl IntoIterator<Item = (SimTime, T)>,
    bucket: SimDuration,
) -> Vec<(SimTime, u64)> {
    let mut firsts: BTreeMap<u64, u64> = BTreeMap::new(); // bucket -> new items
    let mut seen = std::collections::HashSet::new();
    for (ts, item) in events {
        if seen.insert(item) {
            *firsts
                .entry(ts.as_secs() / bucket.as_secs().max(1))
                .or_default() += 1;
        }
    }
    let mut out = Vec::with_capacity(firsts.len());
    let mut total = 0;
    for (b, n) in firsts {
        total += n;
        out.push((SimTime::from_secs(b * bucket.as_secs()), total));
    }
    out
}

/// Counts events per time bucket (hourly traffic of Fig. 7a, weekly
/// sessions of Fig. 9, …). Returns a dense series from the first to the
/// last non-empty bucket.
pub fn bucket_counts(
    times: impl IntoIterator<Item = SimTime>,
    bucket: SimDuration,
) -> Vec<(u64, u64)> {
    let width = bucket.as_secs().max(1);
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for t in times {
        *counts.entry(t.as_secs() / width).or_default() += 1;
    }
    let (Some(&lo), Some(&hi)) = (counts.keys().next(), counts.keys().next_back()) else {
        return Vec::new();
    };
    (lo..=hi)
        .map(|b| (b, counts.get(&b).copied().unwrap_or(0)))
        .collect()
}

/// Ranks values descending — Fig. 14's "subnets ranked by packets" curves.
pub fn rank_descending(mut values: Vec<u64>) -> Vec<u64> {
    values.sort_unstable_by(|a, b| b.cmp(a));
    values
}

/// Top-k entries of a count map, by count descending (ties broken by key
/// order for determinism). Used for the port tables.
pub fn top_k<K: Ord + Clone>(counts: &BTreeMap<K, u64>, k: usize) -> Vec<(K, u64)> {
    let mut entries: Vec<(K, u64)> = counts.iter().map(|(k, &v)| (k.clone(), v)).collect();
    entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    entries.truncate(k);
    entries
}

/// Empirical CDF evaluation points `(value, P(X <= value))`.
pub fn ecdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in ecdf input"));
    let n = values.len() as f64;
    values
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n))
        .collect()
}

/// Percentage change from `before` to `after` (the paper's "+286%" style).
pub fn percent_change(before: f64, after: f64) -> f64 {
    if before == 0.0 {
        return if after == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (after - before) / before * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cumulative_distinct_counts_first_appearances() {
        let events = vec![
            (SimTime::from_secs(10), "a"),
            (SimTime::from_secs(20), "a"), // repeat: not counted
            (SimTime::from_secs(3700), "b"),
            (SimTime::from_secs(3800), "c"),
        ];
        let curve = cumulative_distinct(events, SimDuration::hours(1));
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (SimTime::from_secs(0), 1));
        assert_eq!(curve[1], (SimTime::from_secs(3600), 3));
    }

    #[test]
    fn bucket_counts_fill_gaps() {
        let times = vec![
            SimTime::from_secs(0),
            SimTime::from_secs(1),
            SimTime::from_secs(7300), // bucket 2, bucket 1 empty
        ];
        let series = bucket_counts(times, SimDuration::hours(1));
        assert_eq!(series, vec![(0, 2), (1, 0), (2, 1)]);
    }

    #[test]
    fn bucket_counts_empty_input() {
        assert!(bucket_counts(Vec::<SimTime>::new(), SimDuration::hours(1)).is_empty());
    }

    #[test]
    fn rank_descending_sorts() {
        assert_eq!(rank_descending(vec![3, 9, 1, 9]), vec![9, 9, 3, 1]);
    }

    #[test]
    fn top_k_orders_and_truncates() {
        let mut counts = BTreeMap::new();
        counts.insert(80u16, 100u64);
        counts.insert(443, 50);
        counts.insert(22, 50);
        counts.insert(21, 10);
        let top = top_k(&counts, 3);
        assert_eq!(top, vec![(80, 100), (22, 50), (443, 50)]);
    }

    #[test]
    fn ecdf_is_monotone_and_ends_at_one() {
        let points = ecdf(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(points
            .windows(2)
            .all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
    }

    #[test]
    fn percent_change_matches_paper_style() {
        assert!((percent_change(100.0, 386.0) - 286.0).abs() < 1e-9);
        assert!((percent_change(200.0, 100.0) + 50.0).abs() < 1e-9);
        assert_eq!(percent_change(0.0, 5.0), f64::INFINITY);
        assert_eq!(percent_change(0.0, 0.0), 0.0);
    }
}
