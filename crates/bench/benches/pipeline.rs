//! End-to-end pipeline benchmarks: how fast the substrate itself runs —
//! packet codecs, BGP propagation, sessionization, the full experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::{Experiment, scanners::PopulationSpec, scanners::ExperimentLayout};
use sixscope_bench::bench_corpus;
use sixscope_telescope::{AggLevel, Sessionizer, TelescopeId};
use std::hint::black_box;

fn bench_packet_codec(c: &mut Criterion) {
    use sixscope::packet::{PacketBuilder, ParsedPacket};
    let builder = PacketBuilder::new(
        "2a0a::1".parse().unwrap(),
        "2001:db8::1".parse().unwrap(),
    );
    let bytes = builder.icmpv6_echo_request(7, 9, b"yrp6-0000000042");
    let mut group = c.benchmark_group("packet_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("build_echo_request", |b| {
        b.iter(|| black_box(builder.icmpv6_echo_request(7, 9, b"yrp6-0000000042")))
    });
    group.bench_function("parse_echo_request", |b| {
        b.iter(|| black_box(ParsedPacket::parse(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_bgp_propagation(c: &mut Criterion) {
    use sixscope::bgp::topology::standard_topology;
    use sixscope::types::{Asn, SimDuration, SimTime};
    c.bench_function("bgp_announce_withdraw_cycle", |b| {
        b.iter_batched(
            || standard_topology(Asn(64500), Asn(64510), Asn(64999), SimTime::EPOCH),
            |mut topo| {
                let prefix = "2001:db8::/32".parse().unwrap();
                let t0 = SimTime::from_secs(1000);
                topo.announce(Asn(64500), prefix, t0);
                topo.run_until(t0 + SimDuration::mins(5));
                topo.withdraw(Asn(64500), prefix, t0 + SimDuration::hours(1));
                topo.run_until(t0 + SimDuration::hours(2));
                black_box(topo.global_table())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sessionizer(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("sessionizer");
    group.throughput(Throughput::Elements(capture.len() as u64));
    group.bench_function("sessionize_t1_128", |b| {
        b.iter(|| black_box(Sessionizer::paper(AggLevel::Addr128).sessionize(capture)))
    });
    group.finish();
}

fn bench_population_build(c: &mut Criterion) {
    let layout = ExperimentLayout::default_plan();
    c.bench_function("population_build_tiny", |b| {
        b.iter(|| black_box(PopulationSpec::tiny(7).build(&layout)))
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("full_run_tiny_scale", |b| {
        b.iter(|| black_box(Experiment::new(42, 0.002).run().result.total_packets()))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_packet_codec, bench_bgp_propagation, bench_sessionizer,
              bench_population_build, bench_full_experiment
}
criterion_main!(benches);
