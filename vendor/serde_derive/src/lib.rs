//! No-op derive macros for the offline `serde` stand-in.
//!
//! sixscope derives `Serialize`/`Deserialize` on its public types for
//! downstream consumers but performs all of its own serialization by hand
//! (`core::json` is a deliberate no-`serde_json` implementation). In the
//! offline build the derives therefore expand to nothing; they exist so the
//! `#[derive(...)]` attributes keep compiling unchanged.

use proc_macro::TokenStream;

/// Expands to nothing; accepted wherever `#[derive(Serialize)]` appears.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepted wherever `#[derive(Deserialize)]` appears.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
