//! The timestamped route-event feed observed at the collector.
//!
//! This models what a scanner operator sees when watching RIPE RIS /
//! RouteViews style collectors: a stream of announce/withdraw events with
//! origin-AS context. BGP-reactive scanners (§7.2 of the paper finds 18
//! sources reacting within 30 minutes) subscribe to this feed.

use serde::{Deserialize, Serialize};
use sixscope_types::{Asn, Ipv6Prefix, SimTime};

/// Kind of route event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouteEventKind {
    /// The prefix became (or changed how it is) reachable.
    Announce {
        /// Origin AS (last hop of the AS path).
        origin_as: Asn,
        /// Full AS path as seen by the collector.
        as_path: Vec<Asn>,
    },
    /// The prefix became unreachable.
    Withdraw,
}

/// One event in the collector feed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEvent {
    /// When the collector processed the update.
    pub ts: SimTime,
    /// The affected prefix.
    pub prefix: Ipv6Prefix,
    /// What happened.
    pub kind: RouteEventKind,
}

impl RouteEvent {
    /// True for announce events.
    pub fn is_announce(&self) -> bool {
        matches!(self.kind, RouteEventKind::Announce { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kind_predicates() {
        let a = RouteEvent {
            ts: SimTime::EPOCH,
            prefix: "2001:db8::/32".parse().unwrap(),
            kind: RouteEventKind::Announce {
                origin_as: Asn(64500),
                as_path: vec![Asn(3320), Asn(64500)],
            },
        };
        let w = RouteEvent {
            ts: SimTime::EPOCH,
            prefix: "2001:db8::/32".parse().unwrap(),
            kind: RouteEventKind::Withdraw,
        };
        assert!(a.is_announce());
        assert!(!w.is_announce());
    }
}
