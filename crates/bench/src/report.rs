//! The EXPERIMENTS.md report body: every table and figure of the paper
//! rendered from an [`Analyzed`] corpus, with paper-vs-measured comparison
//! rows recorded via [`crate::record_row`].
//!
//! The `repro` binary and the report-determinism test both build the report
//! through these two functions, so byte-identity checks exercise exactly
//! what ships in EXPERIMENTS.md.
//!
//! Each table and figure is an independent pure function of the corpus, so
//! the sections dispatch their items through the order-preserving
//! [`map_indexed`] helper: items compute (text + comparison rows) in
//! parallel, then the section appends the text and records the rows
//! serially in report order. Output is byte-identical at any thread count.

use crate::{record_row, Comparison};
use sixscope::tables::{self, Headline};
use sixscope::{figures, render, Analyzed};
use sixscope_analysis::classify::TemporalClass;
use sixscope_telescope::TelescopeId;
use sixscope_types::{map_indexed, num_threads};
use std::fmt::Write as _;

/// One parallel report item: its rendered text plus the comparison rows it
/// contributes, in order.
struct Item {
    text: String,
    rows: Vec<Comparison>,
}

type ItemFn = fn(&Analyzed) -> Item;

/// Builds a comparison row (the parallel-safe form of [`crate::record`]).
fn row(experiment: &str, metric: &str, paper: &str, measured: String, holds: bool) -> Comparison {
    Comparison {
        experiment: experiment.to_string(),
        metric: metric.to_string(),
        paper: paper.to_string(),
        measured,
        holds,
    }
}

/// Computes the items in parallel, then replays text and rows in order.
fn run_items(a: &Analyzed, items: &[ItemFn], out: &mut String) {
    let built = map_indexed(num_threads(None), items, |_, item| item(a));
    for item in built {
        out.push_str(&item.text);
        for r in item.rows {
            record_row(r);
        }
    }
}

/// Appends the tables section (overview, Tables 2–8, headline numbers).
pub fn tables_section(a: &Analyzed, out: &mut String) {
    writeln!(out, "## Tables\n").unwrap();
    const ITEMS: &[ItemFn] = &[
        overview_item,
        table2_item,
        table3_item,
        table4_item,
        table5_item,
        table6_item,
        table7_item,
        table8_item,
        headline_item,
    ];
    run_items(a, ITEMS, out);
}

/// Appends the figures section (Figs. 3–17).
pub fn figures_section(a: &Analyzed, out: &mut String) {
    writeln!(out, "## Figures\n").unwrap();
    const ITEMS: &[ItemFn] = &[
        fig3_item,
        fig4_item,
        fig5_item,
        fig7a_item,
        fig7b_item,
        fig8_item,
        fig9_item,
        fig10_item,
        fig11_item,
        fig12_13_item,
        fig14_item,
        fig15_item,
        fig16_item,
        fig17_item,
    ];
    run_items(a, ITEMS, out);
}

fn overview_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    // §4 corpus overview: initial period and full period.
    let start = sixscope_types::SimTime::EPOCH;
    let boundary = a.split_start();
    let end = a.result.layout.end;
    let initial = tables::corpus_overview(a, start, boundary);
    let full = tables::corpus_overview(a, start, end);
    writeln!(out, "```").unwrap();
    out.push_str(&render::render_overview("initial 12 weeks", &initial));
    out.push_str(&render::render_overview("full period", &full));
    writeln!(out, "```").unwrap();
    let rows = vec![
        row(
            "§4",
            "full/initial packet ratio",
            "~11x (51M vs 4.6M)",
            format!(
                "{:.1}x",
                full.packets as f64 / initial.packets.max(1) as f64
            ),
            full.packets > 3 * initial.packets,
        ),
        row(
            "§4",
            "/128 sessions exceed /64 sessions",
            "754k vs 151k",
            format!("{} vs {}", full.sessions128, full.sessions64),
            full.sessions128 >= full.sessions64,
        ),
    ];
    Item { text: out, rows }
}

fn table2_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t2 = tables::table2(a);
    writeln!(out, "```\n{}```", render::render_table2(&t2)).unwrap();
    let icmp = &t2.rows[0];
    let udp = &t2.rows[1];
    let tcp = &t2.rows[2];
    let rows = vec![
        row(
            "Table 2",
            "ICMPv6 packet share",
            "66.2%",
            format!("{:.1}%", icmp.packet_pct),
            icmp.packet_pct > udp.packet_pct && icmp.packet_pct > tcp.packet_pct,
        ),
        row(
            "Table 2",
            "TCP session share",
            "92.8%",
            format!("{:.1}%", tcp.session_pct),
            tcp.session_pct > 50.0 && tcp.session_pct > icmp.session_pct,
        ),
        row(
            "Table 2",
            "UDP packet share",
            "23.4%",
            format!("{:.1}%", udp.packet_pct),
            udp.packet_pct > tcp.packet_pct,
        ),
    ];
    Item { text: out, rows }
}

fn table3_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t3 = tables::table3(a);
    writeln!(out, "```\n{}```", render::render_table3(&t3)).unwrap();
    let randomized = t3
        .iter()
        .find(|r| r.address_type.to_string() == "randomized")
        .unwrap();
    let low_byte = t3
        .iter()
        .find(|r| r.address_type.to_string() == "low-byte")
        .unwrap();
    let rows = vec![
        row(
            "Table 3",
            "randomized packet share",
            "64.2%",
            format!("{:.1}%", randomized.packet_pct),
            randomized.packets > low_byte.packets,
        ),
        row(
            "Table 3",
            "low-byte source share",
            "89.7%",
            format!("{:.1}%", low_byte.source_pct),
            low_byte.source_pct > 50.0 && low_byte.source_pct > randomized.source_pct,
        ),
    ];
    Item { text: out, rows }
}

fn table4_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t4 = tables::table4(a);
    writeln!(out, "```\n{}```", render::render_table4(&t4)).unwrap();
    let rows = vec![
        row(
            "Table 4",
            "top TCP port",
            "80 (87.2%)",
            format!("{} ({:.1}%)", t4.tcp[0].port, t4.tcp[0].pct),
            t4.tcp[0].port.to_string() == "80",
        ),
        row(
            "Table 4",
            "top UDP label",
            "Traceroute (71.4%)",
            format!("{} ({:.1}%)", t4.udp[0].port, t4.udp[0].pct),
            t4.udp[0].port.to_string() == "Traceroute",
        ),
    ];
    Item { text: out, rows }
}

fn table5_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t5 = tables::table5(a);
    writeln!(out, "```\n{}```", render::render_table5(&t5)).unwrap();
    let col = |id: TelescopeId| t5.a.iter().find(|c| c.telescope == id).unwrap();
    let ratio = |id: TelescopeId| col(id).sources128 as f64 / col(id).sources64.max(1) as f64;
    let rows = vec![
        row(
            "Table 5a",
            "T1/T3 packet ratio (orders of magnitude)",
            "~50,000x",
            format!(
                "{:.0}x",
                col(TelescopeId::T1).packets as f64 / col(TelescopeId::T3).packets.max(1) as f64
            ),
            col(TelescopeId::T1).packets > 100 * col(TelescopeId::T3).packets.max(1),
        ),
        row(
            "Table 5a",
            "T4/T3 packet ratio",
            "~80x (two orders)",
            format!(
                "{:.0}x",
                col(TelescopeId::T4).packets as f64 / col(TelescopeId::T3).packets.max(1) as f64
            ),
            col(TelescopeId::T4).packets > col(TelescopeId::T3).packets,
        ),
        row(
            "Table 5a",
            "T2 vs T1 /128 sources",
            "+380% (6611 vs 1386)",
            format!(
                "{} vs {}",
                col(TelescopeId::T2).sources128,
                col(TelescopeId::T1).sources128
            ),
            col(TelescopeId::T2).sources128 > col(TelescopeId::T1).sources128,
        ),
        row(
            "Table 5a",
            "T2 /128-to-/64 source ratio vs T1",
            "~3x vs ~1.2x",
            format!(
                "{:.1}x vs {:.1}x",
                ratio(TelescopeId::T2),
                ratio(TelescopeId::T1)
            ),
            ratio(TelescopeId::T2) > ratio(TelescopeId::T1),
        ),
    ];
    Item { text: out, rows }
}

fn table6_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t6 = tables::table6(a);
    writeln!(out, "```\n{}```", render::render_table6(&t6)).unwrap();
    let one_off = &t6.temporal[0];
    let periodic = t6.temporal.iter().find(|r| r.label == "Periodic").unwrap();
    let single = &t6.network[0];
    let rows = vec![
        row(
            "Table 6",
            "one-off scanner share",
            "69.7%",
            format!("{:.1}%", one_off.scanner_pct),
            one_off.scanner_pct > 50.0,
        ),
        row(
            "Table 6",
            "periodic session share",
            "72.8%",
            format!("{:.1}%", periodic.session_pct),
            periodic.session_pct > periodic.scanner_pct && periodic.session_pct > 40.0,
        ),
        row(
            "Table 6",
            "single-prefix scanner share",
            "90.5%",
            format!("{:.1}%", single.scanner_pct),
            single.scanner_pct > 60.0,
        ),
    ];
    Item { text: out, rows }
}

fn table7_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t7 = tables::table7(a);
    writeln!(out, "```\n{}```", render::render_table7(&t7)).unwrap();
    let rows = vec![
        row(
            "Table 7",
            "top tool",
            "RIPEAtlasProbe (54.8% of scanners)",
            t7.first()
                .map(|r| format!("{} ({:.1}%)", r.tool, r.scanner_pct))
                .unwrap_or_default(),
            t7.first().map(|r| r.tool.to_string()) == Some("RIPEAtlasProbe".into()),
        ),
        row(
            "Table 7",
            "tools identified",
            "7 public tools",
            format!("{}", t7.len()),
            t7.len() >= 5,
        ),
    ];
    Item { text: out, rows }
}

fn table8_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let t8 = tables::table8(a);
    writeln!(out, "```\n{}```", render::render_table8(&t8)).unwrap();
    let hosting = t8
        .iter()
        .find(|r| r.network_type.to_string() == "Hosting" && !r.without_heavy_hitters)
        .unwrap();
    let isp = t8
        .iter()
        .find(|r| r.network_type.to_string() == "ISP" && !r.without_heavy_hitters)
        .unwrap();
    let rows = vec![row(
        "Table 8",
        "hosting + ISP scanner share",
        "95.6%",
        format!("{:.1}%", hosting.scanner_pct + isp.scanner_pct),
        hosting.scanner_pct + isp.scanner_pct > 80.0,
    )];
    Item { text: out, rows }
}

fn headline_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let h: Headline = tables::headline(a);
    writeln!(out, "```\n{}```", render::render_headline(&h)).unwrap();
    let rows = vec![
        row(
            "§7.1",
            "split /33 vs companion packets",
            "+286%",
            format!("{:+.0}%", h.split_vs_companion_packets_pct),
            h.split_vs_companion_packets_pct > 50.0,
        ),
        row(
            "§7.1",
            "weekly sources growth",
            "+275%",
            format!("{:+.0}%", h.weekly_sources_growth_pct),
            h.weekly_sources_growth_pct > 50.0,
        ),
        row(
            "§7.1",
            "weekly sessions growth",
            "+555%",
            format!("{:+.0}%", h.weekly_sessions_growth_pct),
            h.weekly_sessions_growth_pct > 50.0,
        ),
        row(
            "§4.2",
            "heavy hitters: count / packet share / session share",
            "10 / 73% / 0.04%",
            format!(
                "{} / {:.0}% / {:.2}%",
                h.heavy_hitters.len(),
                h.heavy_packet_pct,
                h.heavy_session_pct
            ),
            (5..=20).contains(&h.heavy_hitters.len())
                && h.heavy_packet_pct > 40.0
                && h.heavy_session_pct < 5.0,
        ),
    ];
    Item { text: out, rows }
}

fn fig3_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f3 = figures::fig3(a);
    writeln!(
        out,
        "### Fig. 3 — new source /64 prefixes per baseline week\n```"
    )
    .unwrap();
    for (week, n) in &f3 {
        writeln!(out, "week {week:>2}: {n}").unwrap();
    }
    writeln!(out, "```").unwrap();
    let first_two: u64 = f3.iter().filter(|&&(w, _)| w < 2).map(|&(_, n)| n).sum();
    let total: u64 = f3.iter().map(|&(_, n)| n).sum();
    let rows = vec![row(
        "Fig. 3",
        "new prefixes concentrate early (first 2 weeks share)",
        "majority in ~2 weeks",
        format!("{:.0}%", first_two as f64 / total.max(1) as f64 * 100.0),
        first_two * 3 > total,
    )];
    Item { text: out, rows }
}

fn fig4_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f4 = figures::fig4(a);
    writeln!(out, "### Fig. 4 — relative growth (quartile samples)\n```").unwrap();
    out.push_str(&render::render_growth(&f4));
    writeln!(out, "```").unwrap();
    let packets = f4.iter().find(|c| c.label == "packets").unwrap();
    let mid = packets.points[packets.points.len() / 2].1;
    let rows = vec![row(
        "Fig. 4",
        "packet growth is discontinuous (mid-run share)",
        "step-like, < linear at midpoint",
        format!("{:.0}% at half time", mid * 100.0),
        mid < 0.75,
    )];
    Item { text: out, rows }
}

fn fig5_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f5 = figures::fig5(a);
    writeln!(
        out,
        "### Fig. 5 — heavy-hitter daily activity: {} bubbles across {} sources\n",
        f5.len(),
        f5.iter()
            .map(|b| b.source)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    )
    .unwrap();
    let rows = vec![row(
        "Fig. 5",
        "heavy hitters burst in short windows",
        "few active days each",
        format!("{} bubbles", f5.len()),
        !f5.is_empty(),
    )];
    Item { text: out, rows }
}

fn fig7a_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f7a = figures::fig7a(a);
    let sum = |id: TelescopeId| f7a[&id].iter().map(|&(_, n)| n).sum::<u64>();
    writeln!(
        out,
        "### Fig. 7a — initial-period packets/hour totals: T1={} T2={} T3={} T4={}\n",
        sum(TelescopeId::T1),
        sum(TelescopeId::T2),
        sum(TelescopeId::T3),
        sum(TelescopeId::T4)
    )
    .unwrap();
    let rows = vec![row(
        "Fig. 7a",
        "announced telescopes dwarf covered ones",
        "4–6 orders of magnitude",
        format!(
            "T1/T3 = {:.0}x",
            sum(TelescopeId::T1) as f64 / sum(TelescopeId::T3).max(1) as f64
        ),
        sum(TelescopeId::T1) > 100 * sum(TelescopeId::T3).max(1),
    )];
    Item { text: out, rows }
}

fn fig7b_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f7b = figures::fig7b(a);
    writeln!(out, "### Fig. 7b — taxonomy (initial period)\n```").unwrap();
    out.push_str(&render::render_taxonomy(&f7b));
    writeln!(out, "```").unwrap();
    let structured: u64 = f7b
        .iter()
        .filter(|c| c.addr_selection.to_string() == "structured")
        .map(|c| c.sessions)
        .sum();
    let total7b: u64 = f7b.iter().map(|c| c.sessions).sum();
    let rows = vec![row(
        "Fig. 7b",
        "structured address selection dominates",
        "most sessions structured",
        format!("{:.0}%", structured as f64 / total7b.max(1) as f64 * 100.0),
        structured * 2 > total7b,
    )];
    Item { text: out, rows }
}

fn fig8_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let (as_upset, src_upset) = figures::fig8(a);
    writeln!(
        out,
        "### Fig. 8 — UpSet: {} ASes, {} sources; exclusive source share {:.0}%\n",
        as_upset.universe,
        src_upset.universe,
        src_upset.exclusive_share() * 100.0
    )
    .unwrap();
    let rows = vec![row(
        "Fig. 8",
        "sources exclusive to one telescope",
        "≈90%",
        format!("{:.0}%", src_upset.exclusive_share() * 100.0),
        src_upset.exclusive_share() > 0.6,
    )];
    Item { text: out, rows }
}

fn fig9_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f9 = figures::fig9(a);
    let weekly_sum = |id: TelescopeId, lo: u64, hi: u64| {
        f9[&id]
            .iter()
            .filter(|&&(w, _)| w >= lo && w < hi)
            .map(|&(_, n)| n)
            .sum::<u64>()
    };
    writeln!(out, "### Fig. 9 — weekly sessions per telescope (totals)\n").unwrap();
    let rows = vec![row(
        "Fig. 9",
        "T1 weekly sessions rise after the split begins",
        "stable → rising",
        format!(
            "baseline {} vs split {}",
            weekly_sum(TelescopeId::T1, 0, 13),
            weekly_sum(TelescopeId::T1, 13, 45)
        ),
        weekly_sum(TelescopeId::T1, 13, 45) > weekly_sum(TelescopeId::T1, 0, 13),
    )];
    Item { text: out, rows }
}

fn fig10_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f10 = figures::fig10(a);
    writeln!(out, "### Fig. 10 — cumulative sessions per prefix\n```").unwrap();
    for g in &f10 {
        let last = g.points.last().map_or(0, |&(_, n)| n);
        writeln!(out, "{:<28} {:>8} sessions", g.prefix.to_string(), last).unwrap();
    }
    writeln!(out, "```").unwrap();
    let deep = f10.iter().filter(|g| g.prefix.len() >= 40).count();
    let rows = vec![row(
        "Fig. 10",
        "more-specific prefixes attract sessions once announced",
        "every announced prefix gains",
        format!("{} prefixes ≥/40 with sessions", deep),
        deep >= 2,
    )];
    Item { text: out, rows }
}

fn fig11_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f11 = figures::fig11(a);
    writeln!(out, "### Fig. 11 — bi-weekly T1 vs rest\n```").unwrap();
    out.push_str(&render::render_biweekly(&f11));
    writeln!(out, "```").unwrap();
    let t1_first: u64 = f11.t1.iter().take(3).map(|&(_, n, _)| n).sum();
    let t1_last: u64 = f11.t1.iter().rev().take(3).map(|&(_, n, _)| n).sum();
    let rows = vec![row(
        "Fig. 11",
        "T1 sessions grow across split cycles",
        "monotone-ish growth",
        format!("first 3 buckets {} vs last 3 {}", t1_first, t1_last),
        t1_last > t1_first,
    )];
    Item { text: out, rows }
}

fn fig12_13_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let (structured_m, random_m) = figures::fig12(a);
    writeln!(out, "### Fig. 12/13 — nibble matrices\n```").unwrap();
    if let Some(m) = &structured_m {
        writeln!(out, "structured sample:").unwrap();
        out.push_str(&render::render_nibbles(m, 8));
    }
    if let Some(m) = &random_m {
        writeln!(out, "random sample:").unwrap();
        out.push_str(&render::render_nibbles(m, 8));
    }
    // Fig. 13 reuses the already-computed Fig. 12(a) matrix.
    if let Some(m) = figures::fig13_from(structured_m.clone()) {
        writeln!(out, "structured sample, sorted (Fig. 13):").unwrap();
        out.push_str(&render::render_nibbles(&m, 8));
    }
    writeln!(out, "```").unwrap();
    let rows = vec![row(
        "Fig. 12",
        "a structured and a random large session exist",
        "both shown",
        format!(
            "structured: {}, random: {}",
            structured_m.is_some(),
            random_m.is_some()
        ),
        structured_m.is_some() && random_m.is_some(),
    )];
    Item { text: out, rows }
}

fn fig14_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f14 = figures::fig14(a);
    writeln!(
        out,
        "### Fig. 14 — packets per scanner type across /48 subnets\n```"
    )
    .unwrap();
    for (class, counts) in &f14 {
        writeln!(
            out,
            "{:<14} {} subnets, top {:?}",
            class.to_string(),
            counts.len(),
            &counts[..counts.len().min(5)]
        )
        .unwrap();
    }
    writeln!(out, "```").unwrap();
    let breadth = |c: TemporalClass| f14.get(&c).map_or(0, |v| v.len());
    let rows = vec![row(
        "Fig. 14",
        "intermittent scanners cover subnets more evenly than one-off",
        "intermittent widest",
        format!(
            "one-off {} vs intermittent {} subnets",
            breadth(TemporalClass::OneOff),
            breadth(TemporalClass::Intermittent)
        ),
        breadth(TemporalClass::Intermittent) >= breadth(TemporalClass::OneOff),
    )];
    Item { text: out, rows }
}

fn fig15_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f15 = figures::fig15(a);
    writeln!(out, "### Fig. 15 — taxonomy (T1, split period)\n```").unwrap();
    out.push_str(&render::render_taxonomy(&f15));
    writeln!(out, "```").unwrap();
    Item {
        text: out,
        rows: Vec::new(),
    }
}

fn fig16_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f16a = figures::fig16a(a);
    let f16b = figures::fig16b(a);
    writeln!(
        out,
        "### Fig. 16 — cross-telescope sources: {} all-telescope bubbles; T1∩T2 overlap {}\n",
        f16a.len(),
        f16b.total
    )
    .unwrap();
    let rows = vec![row(
        "Fig. 16b",
        "T1∩T2 source overlap exists and most co-observations cluster",
        "75% same-day initially, declining",
        format!("{} overlapping sources", f16b.total),
        f16b.total > 0,
    )];
    Item { text: out, rows }
}

fn fig17_item(a: &Analyzed) -> Item {
    let mut out = String::new();
    let f17 = figures::fig17(a);
    writeln!(
        out,
        "### Fig. 17 — NIST outcomes (T1, ≥100-packet sessions)\n```"
    )
    .unwrap();
    let rate = |iid: bool| {
        let (p, f) = f17
            .iter()
            .filter(|c| c.iid_part == iid)
            .fold((0u64, 0u64), |(p, f), c| (p + c.pass, f + c.fail));
        (p, f, p as f64 / (p + f).max(1) as f64)
    };
    let (ip, if_, irate) = rate(true);
    let (sp, sf, srate) = rate(false);
    writeln!(
        out,
        "IID    : pass {ip}, fail {if_} ({:.0}%)",
        irate * 100.0
    )
    .unwrap();
    writeln!(out, "subnet : pass {sp}, fail {sf} ({:.0}%)", srate * 100.0).unwrap();
    writeln!(out, "```").unwrap();
    let rows = vec![row(
        "Fig. 17",
        "IIDs pass NIST more often than subnet bits",
        "IID > subnet pass rate",
        format!("{:.0}% vs {:.0}%", irate * 100.0, srate * 100.0),
        irate >= srate,
    )];
    Item { text: out, rows }
}
