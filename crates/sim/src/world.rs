//! World metadata: the TUM-style hitlist with publication lag.
//!
//! §3.2/§7.2 of the paper: the T1 /32 appeared on the TUM hitlist five days
//! after its first announcement; new split prefixes appeared within days;
//! presence on the list had no measurable effect on traffic. The model
//! publishes each newly visible prefix's low-byte address after a fixed
//! lag, plus statically listed entries (T2 and the covering /29 were listed
//! before the experiment).

use crate::visibility::Visibility;
use sixscope_types::{Ipv6Prefix, SimDuration, SimTime};
use std::net::Ipv6Addr;

/// The paper's observed publication lag (≈ 5 days).
pub const PUBLICATION_LAG: SimDuration = SimDuration(5 * 86_400);

/// A hitlist entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitlistEntry {
    /// When the entry became visible on the list.
    pub published: SimTime,
    /// The listed address.
    pub addr: Ipv6Addr,
}

/// The TUM-style public hitlist.
#[derive(Debug, Clone, Default)]
pub struct TumHitlist {
    entries: Vec<HitlistEntry>,
    /// The entry addresses in publication order, cached so [`Self::as_of`]
    /// can hand out a borrowed prefix of the list without allocating.
    addrs: Vec<Ipv6Addr>,
}

impl TumHitlist {
    /// Builds the hitlist: `static_entries` are pre-listed (published at
    /// epoch); every first-visibility transition adds the prefix's
    /// low-byte address after [`PUBLICATION_LAG`].
    pub fn build(static_entries: &[Ipv6Addr], visibility: &Visibility) -> TumHitlist {
        let mut entries: Vec<HitlistEntry> = static_entries
            .iter()
            .map(|&addr| HitlistEntry {
                published: SimTime::EPOCH,
                addr,
            })
            .collect();
        let mut seen: Vec<Ipv6Prefix> = Vec::new();
        for (ts, prefix) in visibility.announce_transitions() {
            if seen.contains(&prefix) {
                continue; // re-announcements do not re-publish
            }
            seen.push(prefix);
            entries.push(HitlistEntry {
                published: ts + PUBLICATION_LAG,
                addr: prefix.low_byte_address(),
            });
        }
        entries.sort_by_key(|e| e.published);
        let addrs = entries.iter().map(|e| e.addr).collect();
        TumHitlist { entries, addrs }
    }

    /// Addresses listed at `t`, borrowed: the publication-ordered prefix of
    /// the full list, found by binary search. This is the hot-path variant
    /// behind `ScanContext::hitlist`.
    pub fn as_of(&self, t: SimTime) -> &[Ipv6Addr] {
        let n = self.entries.partition_point(|e| e.published <= t);
        &self.addrs[..n]
    }

    /// [`TumHitlist::as_of`] with a monotone burst cursor holding the count
    /// of entries published ≤ the previous query time: time-sorted probe
    /// bursts advance it stepwise instead of re-running the binary search,
    /// and a regressing `t` falls back to the search. Identical results to
    /// [`TumHitlist::as_of`] for any query sequence.
    pub fn as_of_cached(&self, t: SimTime, cursor: &std::cell::Cell<usize>) -> &[Ipv6Addr] {
        let mut n = cursor.get().min(self.entries.len());
        if n > 0 && self.entries[n - 1].published > t {
            n = self.entries.partition_point(|e| e.published <= t);
        } else {
            while n < self.entries.len() && self.entries[n].published <= t {
                n += 1;
            }
        }
        cursor.set(n);
        &self.addrs[..n]
    }

    /// When `addr` was first published, if ever.
    pub fn published_at(&self, addr: Ipv6Addr) -> Option<SimTime> {
        self.entries
            .iter()
            .find(|e| e.addr == addr)
            .map(|e| e.published)
    }

    /// Total entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_bgp::{RouteEvent, RouteEventKind};
    use sixscope_types::Asn;

    fn vis(events: &[(u64, &str, bool)]) -> Visibility {
        let evs: Vec<RouteEvent> = events
            .iter()
            .map(|(ts, prefix, up)| RouteEvent {
                ts: SimTime::from_secs(*ts),
                prefix: prefix.parse().unwrap(),
                kind: if *up {
                    RouteEventKind::Announce {
                        origin_as: Asn(1),
                        as_path: vec![Asn(1)],
                    }
                } else {
                    RouteEventKind::Withdraw
                },
            })
            .collect();
        Visibility::from_events(&evs)
    }

    #[test]
    fn publication_lag_applies() {
        let v = vis(&[(1000, "2001:db8::/32", true)]);
        let list = TumHitlist::build(&[], &v);
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(
            list.published_at(addr),
            Some(SimTime::from_secs(1000) + PUBLICATION_LAG)
        );
        assert!(list.as_of(SimTime::from_secs(1000)).is_empty());
        assert_eq!(
            list.as_of(SimTime::from_secs(1000) + PUBLICATION_LAG),
            &[addr]
        );
    }

    #[test]
    fn static_entries_are_listed_from_epoch() {
        let addr: Ipv6Addr = "3fff:800::1".parse().unwrap();
        let list = TumHitlist::build(&[addr], &Visibility::default());
        assert_eq!(list.as_of(SimTime::EPOCH), &[addr]);
        assert_eq!(list.len(), 1);
    }

    #[test]
    fn reannouncement_does_not_duplicate() {
        let v = vis(&[
            (100, "2001:db8::/32", true),
            (200, "2001:db8::/32", false),
            (300, "2001:db8::/32", true),
        ]);
        let list = TumHitlist::build(&[], &v);
        assert_eq!(list.len(), 1);
        assert_eq!(
            list.published_at("2001:db8::1".parse().unwrap()),
            Some(SimTime::from_secs(100) + PUBLICATION_LAG)
        );
    }

    #[test]
    fn as_of_respects_publication_boundaries() {
        let v = vis(&[
            (100, "2001:db8::/33", true),
            (5000, "2001:db8:8000::/33", true),
        ]);
        let list = TumHitlist::build(&["3fff::1".parse().unwrap()], &v);
        let full = list.as_of(SimTime::from_secs(u64::MAX));
        for ts in [0, 99, 100, 100 + 5 * 86_400, 5000 + 5 * 86_400, 10_000_000] {
            let t = SimTime::from_secs(ts);
            let snapshot = list.as_of(t);
            let expected = full
                .iter()
                .filter(|a| list.published_at(**a).expect("listed") <= t)
                .count();
            assert_eq!(snapshot.len(), expected, "wrong prefix at t={ts}");
            assert_eq!(snapshot, &full[..expected], "order diverged at t={ts}");
        }
    }

    #[test]
    fn as_of_cached_matches_as_of_for_any_query_order() {
        let v = vis(&[
            (100, "2001:db8::/33", true),
            (5000, "2001:db8:8000::/33", true),
        ]);
        let list = TumHitlist::build(&["3fff::1".parse().unwrap()], &v);
        let cursor = std::cell::Cell::new(0);
        // Forward sweep with a mid-burst regression.
        for ts in [
            0,
            99,
            100 + 5 * 86_400,
            50,
            5000 + 5 * 86_400,
            10_000_000u64,
        ] {
            let t = SimTime::from_secs(ts);
            assert_eq!(list.as_of_cached(t, &cursor), list.as_of(t), "t={ts}");
        }
    }

    #[test]
    fn entries_appear_in_publication_order() {
        let v = vis(&[
            (5000, "2001:db8:8000::/33", true),
            (100, "2001:db8::/33", true),
        ]);
        let list = TumHitlist::build(&[], &v);
        let at_later = list.as_of(SimTime::from_secs(5000) + PUBLICATION_LAG);
        assert_eq!(at_later.len(), 2);
        assert_eq!(at_later[0], "2001:db8::1".parse::<Ipv6Addr>().unwrap());
    }
}
