//! The one entry point — a streaming, bounded-memory analysis pipeline.
//!
//! [`Pipeline`] subsumes the older `Experiment` (simulated corpus),
//! `Scenario::run_timed` (raw simulation) and `Ingest` (real pcap) entry
//! points behind a single builder:
//!
//! ```no_run
//! use sixscope::{Pipeline, sim::ScenarioConfig};
//!
//! let analyzed = Pipeline::simulate(ScenarioConfig::new(42, 0.01))
//!     .threads(4)
//!     .run()
//!     .expect("simulated runs cannot fail");
//! let report = sixscope::render::render_table2(&sixscope::tables::table2(&analyzed));
//! ```
//!
//! The pcap path is zero-copy and streams: each file is `mmap(2)`'d (with
//! a buffered-read fallback) and walked in chunks of
//! [`Pipeline::chunk_records`] borrowed record views, each chunk fed
//! straight into the incremental sessionizers and an
//! [`crate::index::IndexShard`] accumulator. Record bytes are never copied
//! out of the mapping — packets promote their payload to owned bytes only
//! when retained by the capture filter — so heap memory stays
//! O(chunk views + live sessions + columns) while the mapping's pages are
//! file-backed and evictable. Chunk boundaries are invisible (DESIGN.md
//! §10): any `chunk_records` and any thread count produce byte-identical
//! tables and figures.

use crate::corpus::{AnalysisTimings, Analyzed, StreamSettings};
use crate::index::{CorpusIndex, IndexShard};
use crate::ingest::passive_config;
use crate::shardfile::{merge_group, read_shard, write_shard, TelescopeShard};
use crate::Error;
use sixscope_scanners::population::Population;
use sixscope_scanners::ExperimentLayout;
use sixscope_sim::{
    CompiledVisibility, ExperimentResult, Scenario, ScenarioConfig, ScenarioTimings, TumHitlist,
    Visibility,
};
use sixscope_telescope::{
    AggLevel, Capture, Feed, IncrementalSessionizer, IngestStats, PcapFeed, ScanSession,
    SplitSchedule, TelescopeConfig, TelescopeId, SESSION_TIMEOUT,
};
use sixscope_types::{num_threads, Ipv6Prefix, SimDuration, SimTime};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::PathBuf;
use std::time::Instant;

/// Where the pipeline's packets come from.
enum Source {
    /// Run the full simulated experiment, then analyze its captures.
    Simulate(ScenarioConfig),
    /// Stream real pcap files into a passive telescope.
    Pcaps {
        paths: Vec<PathBuf>,
        prefix: Ipv6Prefix,
    },
    /// Gather `.sixshard` files written by [`Pipeline::to_shard`] workers.
    Shards(Vec<PathBuf>),
}

/// Builder for one analysis run — see the [module docs](self).
pub struct Pipeline {
    source: Source,
    threads: Option<usize>,
    chunk_records: usize,
    session_timeout: SimDuration,
}

/// Everything a [`Pipeline::run_detailed`] call produced beyond the corpus.
pub struct PipelineOutput {
    /// The analyzed corpus (what [`Pipeline::run`] returns).
    pub analyzed: Analyzed,
    /// Simulation stage timings (zero for the pcap path).
    pub sim: ScenarioTimings,
    /// Wall-clock seconds of pcap reading + streaming feed (zero for the
    /// simulated path, whose analysis timings live in
    /// [`Analyzed::timings`]).
    pub ingest: f64,
    /// Combined recovery statistics over all input files.
    pub stats: IngestStats,
    /// Per-file recovery statistics, in input order.
    pub file_stats: Vec<(String, IngestStats)>,
}

/// What a [`Pipeline::to_shard`] scatter run produced.
pub struct ShardOutput {
    /// Packets retained by the capture filter and written to the shard.
    pub packets: usize,
    /// Scan sessions at /128 written to the shard.
    pub sessions128: usize,
    /// Scan sessions at /64 written to the shard.
    pub sessions64: usize,
    /// Combined recovery statistics over all input files.
    pub stats: IngestStats,
    /// Per-file recovery statistics, in input order.
    pub file_stats: Vec<(String, IngestStats)>,
}

impl Pipeline {
    /// Analyzes a simulated experiment.
    pub fn simulate(config: ScenarioConfig) -> Pipeline {
        Pipeline::new(Source::Simulate(config))
    }

    /// Streams real pcap captures (classic pcap, LINKTYPE_RAW) through the
    /// same analysis. Filter with [`Pipeline::prefix`]; the default `::/0`
    /// accepts every packet.
    pub fn from_pcaps<I, P>(paths: I) -> Pipeline
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        Pipeline::new(Source::Pcaps {
            paths: paths.into_iter().map(Into::into).collect(),
            prefix: Ipv6Prefix::default_route(),
        })
    }

    /// Gathers `.sixshard` files (written by [`Pipeline::to_shard`]
    /// workers) into one analyzed corpus. Shards of the same telescope
    /// must be given in capture order; their id-interned tables are
    /// remapped and absorbed exactly as the streaming path absorbs
    /// in-process chunks, so the merged corpus is byte-identical to a
    /// single-process run over the concatenated packets.
    pub fn from_shards<I, P>(paths: I) -> Pipeline
    where
        I: IntoIterator<Item = P>,
        P: Into<PathBuf>,
    {
        Pipeline::new(Source::Shards(paths.into_iter().map(Into::into).collect()))
    }

    fn new(source: Source) -> Pipeline {
        Pipeline {
            source,
            threads: None,
            chunk_records: usize::MAX,
            session_timeout: SESSION_TIMEOUT,
        }
    }

    /// Telescope prefix filter for the pcap path (no effect on simulation,
    /// whose layout fixes the telescope prefixes).
    pub fn prefix(mut self, prefix: Ipv6Prefix) -> Pipeline {
        if let Source::Pcaps { prefix: p, .. } = &mut self.source {
            *p = prefix;
        }
        self
    }

    /// Worker thread cap. Defaults to the `SIXSCOPE_THREADS` environment
    /// variable, then to the machine's parallelism; output bytes never
    /// depend on it.
    pub fn threads(mut self, threads: usize) -> Pipeline {
        self.threads = Some(threads);
        self
    }

    /// Streaming chunk size in pcap records (and, for the simulated path,
    /// in packets per sessionizer/shard feed). Bounds live memory on the
    /// pcap path; output bytes never depend on it. Defaults to unchunked.
    pub fn chunk_records(mut self, records: usize) -> Pipeline {
        self.chunk_records = records.max(1);
        self
    }

    /// Session idle timeout — the eviction horizon of the incremental
    /// sessionizer's open-session table. Defaults to the paper's 1 hour.
    pub fn session_timeout(mut self, timeout: SimDuration) -> Pipeline {
        self.session_timeout = timeout;
        self
    }

    /// Runs the pipeline and returns the analyzed corpus.
    pub fn run(self) -> Result<Analyzed, Error> {
        self.run_detailed().map(|out| out.analyzed)
    }

    /// Runs the pipeline and additionally returns stage timings and (for
    /// the pcap path) recovery statistics.
    pub fn run_detailed(self) -> Result<PipelineOutput, Error> {
        let settings = StreamSettings {
            chunk_records: self.chunk_records,
            session_timeout: self.session_timeout,
            threads: self.threads,
        };
        match self.source {
            Source::Simulate(mut config) => {
                if self.threads.is_some() {
                    config.threads = self.threads;
                }
                let (result, sim) = Scenario::new(config).run_timed();
                Ok(PipelineOutput {
                    analyzed: Analyzed::stream(result, &settings),
                    sim,
                    ingest: 0.0,
                    stats: IngestStats::default(),
                    file_stats: Vec::new(),
                })
            }
            Source::Pcaps { paths, prefix } => stream_pcaps(&paths, prefix, &settings),
            Source::Shards(paths) => stream_shards(&paths, &settings),
        }
    }

    /// Runs the ingest half of the pipeline only and writes the result as
    /// one `.sixshard` file — the scatter side of federated sharding. Only
    /// the pcap source can scatter; simulated and shard sources are
    /// [`Error::Usage`].
    pub fn to_shard<P: AsRef<std::path::Path>>(self, out: P) -> Result<ShardOutput, Error> {
        let settings = StreamSettings {
            chunk_records: self.chunk_records,
            session_timeout: self.session_timeout,
            threads: self.threads,
        };
        let (paths, prefix) = match self.source {
            Source::Pcaps { paths, prefix } => (paths, prefix),
            _ => {
                return Err(Error::Usage(
                    "shard export requires a pcap source (Pipeline::from_pcaps)".into(),
                ))
            }
        };
        let ing = ingest_pcaps(&paths, prefix, &settings)?;
        let shard = TelescopeShard {
            capture: ing.capture,
            session_timeout: settings.session_timeout,
            stats: ing.stats.clone(),
            sessions128: ing.sessions128,
            sessions64: ing.sessions64,
            index: ing.shard,
        };
        write_shard(out.as_ref(), &shard)?;
        Ok(ShardOutput {
            packets: shard.capture.len(),
            sessions128: shard.sessions128.len(),
            sessions64: shard.sessions64.len(),
            stats: ing.stats,
            file_stats: ing.file_stats,
        })
    }
}

/// One telescope's fully ingested state: what the scatter side writes to a
/// shard file and what the in-process path feeds straight to the merge.
struct IngestedTelescope {
    capture: Capture,
    sessions128: Vec<ScanSession>,
    sessions64: Vec<ScanSession>,
    shard: IndexShard,
    sessionize: f64,
    peak: usize,
    stats: IngestStats,
    file_stats: Vec<(String, IngestStats)>,
}

/// The stateful half of a feed-driven ingest: incremental sessionizers at
/// /128 and /64 plus an [`IndexShard`] accumulator, fed one
/// [`sixscope_telescope::FeedChunk`] at a time.
///
/// The consumer is the same for every [`Feed`]: batch pcaps, a live tail,
/// or a simulated capture. If the feed ever delivers packets out of time
/// order (live feeds admit in-horizon disorder; finite feeds simply
/// reflect their files) the incremental state is abandoned and
/// [`FeedConsumer::finish`] falls back to sort + re-feed — the
/// bounded-memory property is lost but the output contract
/// (byte-identical to batch) is kept. A snapshotting caller checks
/// [`FeedConsumer::is_sorted`] and clones either the live state or a
/// sorted copy of the capture.
pub(crate) struct FeedConsumer {
    s128: IncrementalSessionizer,
    s64: IncrementalSessionizer,
    shard: IndexShard,
    sessionize: f64,
    sorted: bool,
    timeout: SimDuration,
    sources_hint: usize,
    chunk_records: usize,
}

/// What a drained [`FeedConsumer`] hands to the gather stage.
pub(crate) struct ConsumedFeed {
    pub sessions128: Vec<ScanSession>,
    pub sessions64: Vec<ScanSession>,
    pub shard: IndexShard,
    pub sessionize: f64,
    pub peak: usize,
}

impl FeedConsumer {
    pub(crate) fn new(sources_hint: usize, settings: &StreamSettings) -> FeedConsumer {
        FeedConsumer {
            s128: IncrementalSessionizer::with_capacity(
                AggLevel::Addr128,
                settings.session_timeout,
                sources_hint,
            ),
            s64: IncrementalSessionizer::with_capacity(
                AggLevel::Subnet64,
                settings.session_timeout,
                sources_hint,
            ),
            shard: IndexShard::new(),
            sessionize: 0.0,
            sorted: true,
            timeout: settings.session_timeout,
            sources_hint,
            chunk_records: settings.chunk_records,
        }
    }

    /// True while the incremental state still mirrors the capture (no
    /// out-of-order packet has been seen).
    pub(crate) fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// High-water mark of the open-session tables.
    pub(crate) fn peak_open(&self) -> usize {
        self.s128.peak_open().max(self.s64.peak_open())
    }

    /// Open + closed session counts at /128 and /64 (snapshot statistics).
    pub(crate) fn session_counts(&self) -> (usize, usize) {
        (self.s128.sessions().len(), self.s64.sessions().len())
    }

    /// Clones the incremental state for a checkpoint. Only meaningful
    /// while [`FeedConsumer::is_sorted`]; an unsorted consumer's state is
    /// stale by construction.
    pub(crate) fn snapshot(&self) -> (Vec<ScanSession>, Vec<ScanSession>, IndexShard) {
        (
            self.s128.sessions().to_vec(),
            self.s64.sessions().to_vec(),
            self.shard.clone(),
        )
    }

    /// Feeds the capture packets `range` (one feed chunk) into the
    /// incremental state.
    pub(crate) fn consume(
        &mut self,
        capture: &Capture,
        range: Range<usize>,
        compiled: &CompiledVisibility,
    ) {
        if range.is_empty() || !self.sorted {
            return;
        }
        let packets = capture.packets();
        // Include the boundary with the previous chunk in the order check.
        let boundary = range.start.saturating_sub(1);
        if packets[boundary..range.end]
            .windows(2)
            .any(|w| w[0].ts > w[1].ts)
        {
            // Out-of-order input: abandon the incremental feed and fall
            // back to sort + re-stream at finish time.
            self.sorted = false;
            return;
        }
        let push_start = Instant::now();
        for (i, p) in packets[range.clone()].iter().enumerate() {
            let idx = (range.start + i) as u32;
            self.s128.push(idx, p);
            self.s64.push(idx, p);
        }
        self.sessionize += push_start.elapsed().as_secs_f64();
        let mut piece = IndexShard::new();
        piece.push_range(capture, range, compiled);
        self.shard.absorb(piece);
    }

    /// Closes the consumer. If disorder was seen, sorts the capture and
    /// re-feeds fresh state over the sorted order — chunk boundaries are
    /// invisible (DESIGN.md §10), so this equals the batch path byte for
    /// byte.
    pub(crate) fn finish(
        mut self,
        capture: &mut Capture,
        compiled: &CompiledVisibility,
    ) -> ConsumedFeed {
        if !self.sorted {
            capture.sort_by_time();
            let push_start = Instant::now();
            let (s128, s64, shard) = sessionize_sorted(
                capture,
                self.timeout,
                self.sources_hint,
                self.chunk_records,
                compiled,
            );
            self.s128 = s128;
            self.s64 = s64;
            self.shard = shard;
            self.sessionize = push_start.elapsed().as_secs_f64();
            self.sorted = true;
        }
        self.finish_in_order()
    }

    /// Closes the consumer without a fallback path, for feeds whose source
    /// guarantees time order (simulated captures).
    pub(crate) fn finish_in_order(self) -> ConsumedFeed {
        debug_assert!(self.sorted, "in-order finish over a disordered feed");
        let peak = self.peak_open();
        ConsumedFeed {
            sessions128: self.s128.finish(),
            sessions64: self.s64.finish(),
            shard: self.shard,
            sessionize: self.sessionize,
            peak,
        }
    }
}

/// Feeds an already time-sorted capture through fresh incremental state in
/// `chunk_records` chunks. Shared by the out-of-order fallback and the
/// serve snapshotter's unsorted path.
pub(crate) fn sessionize_sorted(
    capture: &Capture,
    timeout: SimDuration,
    sources_hint: usize,
    chunk_records: usize,
    compiled: &CompiledVisibility,
) -> (IncrementalSessionizer, IncrementalSessionizer, IndexShard) {
    let mut s128 = IncrementalSessionizer::with_capacity(AggLevel::Addr128, timeout, sources_hint);
    let mut s64 = IncrementalSessionizer::with_capacity(AggLevel::Subnet64, timeout, sources_hint);
    let mut shard = IndexShard::new();
    let n = capture.len();
    let mut start = 0;
    while start < n {
        let end = start.saturating_add(chunk_records).min(n);
        for (i, p) in capture.packets()[start..end].iter().enumerate() {
            let idx = (start + i) as u32;
            s128.push(idx, p);
            s64.push(idx, p);
        }
        let mut piece = IndexShard::new();
        piece.push_range(capture, start..end, compiled);
        shard.absorb(piece);
        start = end;
    }
    (s128, s64, shard)
}

/// The streaming pcap ingest, now phrased over [`PcapFeed`]: the feed maps
/// each file (buffered fallback included) and appends borrowed record
/// views to the capture; the [`FeedConsumer`] sessionizes and indexes each
/// chunk before the next one is cut, so the only per-record heap traffic
/// is the retained packets themselves.
fn ingest_pcaps(
    paths: &[PathBuf],
    prefix: Ipv6Prefix,
    settings: &StreamSettings,
) -> Result<IngestedTelescope, Error> {
    let visibility = Visibility::from_events(&[]);
    let compiled = CompiledVisibility::compile(&visibility);
    let mut feed = PcapFeed::new(
        Capture::new(passive_config(prefix)),
        paths.iter().cloned(),
        settings.chunk_records,
    );
    let mut consumer = FeedConsumer::new(feed.sources_hint(), settings);
    loop {
        let chunk = feed.next_chunk()?;
        consumer.consume(feed.capture(), chunk.range.clone(), &compiled);
        if chunk.end_of_feed {
            break;
        }
    }
    let (mut capture, stats, file_stats) = feed.finish();
    let done = consumer.finish(&mut capture, &compiled);
    Ok(IngestedTelescope {
        capture,
        sessions128: done.sessions128,
        sessions64: done.sessions64,
        shard: done.shard,
        sessionize: done.sessionize,
        peak: done.peak,
        stats,
        file_stats,
    })
}

/// The in-process pcap path: ingest into one telescope, then gather it
/// exactly as the shard-file merge gathers its telescopes.
fn stream_pcaps(
    paths: &[PathBuf],
    prefix: Ipv6Prefix,
    settings: &StreamSettings,
) -> Result<PipelineOutput, Error> {
    let ingest_start = Instant::now();
    let ing = ingest_pcaps(paths, prefix, settings)?;
    let ingest = ingest_start.elapsed().as_secs_f64();
    let mut merged = BTreeMap::new();
    let id = ing.capture.config().id;
    merged.insert(
        id,
        (ing.capture, ing.sessions128, ing.sessions64, ing.shard),
    );
    assemble_gathered(
        merged,
        ingest,
        ing.sessionize,
        ing.peak,
        ing.stats,
        ing.file_stats,
        settings,
    )
}

/// The gather side of federated sharding: reads every `.sixshard` file,
/// groups them by telescope in path order, merges each group exactly as
/// the streaming path absorbs in-process chunks, and assembles the corpus.
fn stream_shards(paths: &[PathBuf], settings: &StreamSettings) -> Result<PipelineOutput, Error> {
    if paths.is_empty() {
        return Err(Error::Usage(
            "merge requires at least one .sixshard file".into(),
        ));
    }
    let ingest_start = Instant::now();
    let mut groups: BTreeMap<TelescopeId, Vec<(String, TelescopeShard)>> = BTreeMap::new();
    let mut file_stats = Vec::with_capacity(paths.len());
    for path in paths {
        let display = path.display().to_string();
        let shard = read_shard(path)?;
        file_stats.push((display.clone(), shard.stats.clone()));
        groups
            .entry(shard.capture.config().id)
            .or_default()
            .push((display, shard));
    }
    let mut total = IngestStats::default();
    let mut merged = BTreeMap::new();
    for (id, group) in groups {
        let m = merge_group(group)?;
        total.absorb(&m.stats);
        merged.insert(id, (m.capture, m.sessions128, m.sessions64, m.index));
    }
    let ingest = ingest_start.elapsed().as_secs_f64();
    assemble_gathered(merged, ingest, 0.0, 0, total, file_stats, settings)
}

/// The gather half shared by the in-process pcap path and the shard-file
/// merge: wraps the merged telescopes into an [`ExperimentResult`], builds
/// the corpus index, and assembles the final [`Analyzed`]. Telescopes with
/// no capture are filled in empty, so both paths produce the same corpus
/// shape from the same packets.
#[allow(clippy::type_complexity)]
pub(crate) fn assemble_gathered(
    merged: BTreeMap<TelescopeId, (Capture, Vec<ScanSession>, Vec<ScanSession>, IndexShard)>,
    ingest: f64,
    sessionize: f64,
    peak: usize,
    stats: IngestStats,
    file_stats: Vec<(String, IngestStats)>,
    settings: &StreamSettings,
) -> Result<PipelineOutput, Error> {
    let mut present = BTreeMap::new();
    let mut sessions128 = BTreeMap::new();
    let mut sessions64 = BTreeMap::new();
    let mut shards = BTreeMap::new();
    for (id, (capture, s128, s64, shard)) in merged {
        present.insert(id, capture);
        sessions128.insert(id, s128);
        sessions64.insert(id, s64);
        shards.insert(id, shard);
    }
    for id in TelescopeId::ALL {
        sessions128.entry(id).or_default();
        sessions64.entry(id).or_default();
        shards.entry(id).or_insert_with(IndexShard::new);
    }

    let result = gathered_result(present, Visibility::from_events(&[]));
    let index_start = Instant::now();
    let threads = num_threads(settings.threads);
    let index = CorpusIndex::from_shards(&result, shards, &sessions128, &sessions64, threads);
    let index_build = index_start.elapsed().as_secs_f64();
    let analyzed = Analyzed::assemble(
        result,
        sessions128,
        sessions64,
        index,
        AnalysisTimings {
            streaming: ingest,
            sessionize,
            index_build,
        },
        peak,
    );
    Ok(PipelineOutput {
        analyzed,
        sim: ScenarioTimings::default(),
        ingest,
        stats,
        file_stats,
    })
}

/// Wraps gathered captures into the [`ExperimentResult`] shape the
/// analysis layer consumes: telescopes without a capture get an empty one,
/// and all simulation-only metadata (events, population, hitlist) is
/// empty.
pub(crate) fn gathered_result(
    mut present: BTreeMap<TelescopeId, Capture>,
    visibility: Visibility,
) -> ExperimentResult {
    let mut layout = ExperimentLayout::default_plan();
    layout.start = SimTime::EPOCH + SimDuration::days(1);
    let schedule = SplitSchedule::paper(layout.t1, layout.start);
    layout.end = schedule.end();
    let hitlist = TumHitlist::build(&[], &visibility);
    let mut captures = BTreeMap::new();
    for id in TelescopeId::ALL {
        let capture = present.remove(&id).unwrap_or_else(|| {
            Capture::new(match id {
                TelescopeId::T1 => TelescopeConfig::t1(layout.t1),
                TelescopeId::T2 => TelescopeConfig::t2(layout.t2),
                TelescopeId::T3 => TelescopeConfig::t3(layout.t3),
                TelescopeId::T4 => TelescopeConfig::t4(layout.t4),
            })
        });
        captures.insert(id, capture);
    }
    ExperimentResult {
        layout,
        schedule,
        captures,
        events: Vec::new(),
        visibility,
        population: Population {
            scanners: Vec::new(),
            ases: Vec::new(),
            rdns: BTreeMap::new(),
        },
        hitlist,
        t4_responses: 0,
        dropped_unrouted: 0,
        truncated_probes: 0,
    }
}
