//! Property test: the epoch-compiled LPM is indistinguishable from the
//! naive interval scan — same longest-prefix match and same announced-set
//! snapshot (content and order) for arbitrary event streams and queries.

use proptest::collection::vec;
use proptest::prelude::*;
use sixscope_bgp::{RouteEvent, RouteEventKind};
use sixscope_sim::{CompiledVisibility, Visibility};
use sixscope_types::{Asn, SimTime};
use std::net::Ipv6Addr;

/// A pool of nested and disjoint prefixes so LPM has real work to do.
const PREFIXES: [&str; 6] = [
    "2001:db8::/32",
    "2001:db8::/33",
    "2001:db8:8000::/33",
    "2001:db8:1234::/48",
    "2001:db8:1234:5600::/56",
    "3fff::/20",
];

fn event(ts: u64, prefix_idx: usize, up: bool) -> RouteEvent {
    RouteEvent {
        ts: SimTime::from_secs(ts),
        prefix: PREFIXES[prefix_idx % PREFIXES.len()].parse().unwrap(),
        kind: if up {
            RouteEventKind::Announce {
                origin_as: Asn(64_500),
                as_path: vec![Asn(64_500)],
            }
        } else {
            RouteEventKind::Withdraw
        },
    }
}

/// Query addresses concentrate inside the 2001:db8::/32 so most lookups
/// traverse the nested-prefix chain; the raw bits occasionally land
/// elsewhere, covering the no-match path.
fn query_addr(bits: u128, inside: bool) -> Ipv6Addr {
    if inside {
        let net: u128 = 0x2001_0db8 << 96;
        Ipv6Addr::from(net | (bits & ((1u128 << 96) - 1)))
    } else {
        Ipv6Addr::from(bits)
    }
}

proptest! {
    #[test]
    fn compiled_visibility_matches_naive(
        raw_events in vec((0u64..10_000, 0usize..6, any::<bool>()), 0..40),
        queries in vec((any::<u128>(), any::<bool>(), 0u64..12_000), 1..60),
    ) {
        let mut events: Vec<RouteEvent> = raw_events
            .iter()
            .map(|&(ts, idx, up)| event(ts, idx, up))
            .collect();
        // Collector streams are time-ordered; the fold requires it.
        events.sort_by_key(|e| e.ts);
        let vis = Visibility::from_events(&events);
        let compiled = CompiledVisibility::compile(&vis);
        for &(bits, inside, ts) in &queries {
            let addr = query_addr(bits, inside);
            let t = SimTime::from_secs(ts);
            prop_assert_eq!(
                compiled.lpm(addr, t),
                vis.lpm(addr, t),
                "lpm diverged for {} at t={}",
                addr,
                ts
            );
            let naive_announced = vis.announced_at(t);
            prop_assert_eq!(
                compiled.announced_at(t),
                naive_announced.as_slice(),
                "announced_at diverged at t={}",
                ts
            );
        }
    }
}
