//! Routing information bases and the best-path decision process.
//!
//! Each speaker keeps per-peer candidate routes and selects a best path per
//! prefix following the RFC 4271 §9.1.2 order (the subset our attributes
//! express): highest LOCAL_PREF, shortest AS_PATH, lowest ORIGIN, lowest
//! MED, then oldest route, then lowest peer id as the final tie-break. The
//! set of best routes feeds a [`PrefixTrie`] for data-plane longest-prefix
//! match — which is exactly what decides whether a scanner's probe can reach
//! a telescope at a given simulated instant.

use crate::attrs::Origin;
use sixscope_types::{Asn, Ipv6Prefix, PrefixTrie, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv6Addr;

/// Identifier of a peer within one speaker (index into its peer table).
pub type PeerId = u32;

/// One candidate route for a prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// The destination prefix.
    pub prefix: Ipv6Prefix,
    /// BGP next hop.
    pub next_hop: Ipv6Addr,
    /// AS path (leftmost = neighbor, rightmost = origin AS).
    pub as_path: Vec<Asn>,
    /// ORIGIN attribute.
    pub origin: Origin,
    /// MULTI_EXIT_DISC.
    pub med: u32,
    /// LOCAL_PREF assigned by import policy.
    pub local_pref: u32,
    /// COMMUNITIES carried with the route (RFC 1997).
    pub communities: Vec<u32>,
    /// The peer this route was learned from (`LOCAL_PEER` for own routes).
    pub learned_from: PeerId,
    /// When the route was installed.
    pub learned_at: SimTime,
}

/// Pseudo peer-id for locally originated routes (always preferred: they get
/// the highest LOCAL_PREF by construction in [`crate::speaker::Speaker`]).
pub const LOCAL_PEER: PeerId = u32::MAX;

impl Route {
    /// The AS that originated this route (last AS in the path), or `None`
    /// for a locally originated route with an empty path.
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path.last().copied()
    }

    /// RFC 4271 preference order: returns `true` if `self` wins over `other`.
    pub fn better_than(&self, other: &Route) -> bool {
        // Highest LOCAL_PREF.
        if self.local_pref != other.local_pref {
            return self.local_pref > other.local_pref;
        }
        // Shortest AS_PATH.
        if self.as_path.len() != other.as_path.len() {
            return self.as_path.len() < other.as_path.len();
        }
        // Lowest ORIGIN (IGP < EGP < INCOMPLETE).
        if self.origin != other.origin {
            return self.origin < other.origin;
        }
        // Lowest MED (we compare across peers for simplicity, as many
        // deployments do with `always-compare-med`).
        if self.med != other.med {
            return self.med < other.med;
        }
        // Oldest route wins (stability).
        if self.learned_at != other.learned_at {
            return self.learned_at < other.learned_at;
        }
        // Lowest peer id.
        self.learned_from < other.learned_from
    }
}

/// The Loc-RIB: per-prefix candidates and the selected best path.
#[derive(Debug, Clone, Default)]
pub struct LocRib {
    candidates: BTreeMap<Ipv6Prefix, Vec<Route>>,
    best: PrefixTrie<Route>,
}

/// Result of a RIB change, used to decide what to re-advertise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RibChange {
    /// The best path for the prefix changed to this route.
    NewBest(Route),
    /// The prefix lost its last candidate and is now unreachable.
    Withdrawn(Ipv6Prefix),
    /// The update did not change the selected best path.
    NoChange,
}

impl LocRib {
    /// Creates an empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of prefixes with a selected best path.
    pub fn len(&self) -> usize {
        self.best.len()
    }

    /// True when no prefix is reachable.
    pub fn is_empty(&self) -> bool {
        self.best.is_empty()
    }

    /// Installs or replaces the candidate from `route.learned_from` for
    /// `route.prefix`, re-runs selection, and reports the outcome.
    pub fn insert(&mut self, route: Route) -> RibChange {
        let cands = self.candidates.entry(route.prefix).or_default();
        cands.retain(|r| r.learned_from != route.learned_from);
        cands.push(route.clone());
        self.reselect(route.prefix)
    }

    /// Removes the candidate learned from `peer` for `prefix`, re-runs
    /// selection, and reports the outcome.
    pub fn withdraw(&mut self, prefix: Ipv6Prefix, peer: PeerId) -> RibChange {
        let Some(cands) = self.candidates.get_mut(&prefix) else {
            return RibChange::NoChange;
        };
        let before = cands.len();
        cands.retain(|r| r.learned_from != peer);
        if cands.len() == before {
            return RibChange::NoChange;
        }
        if cands.is_empty() {
            self.candidates.remove(&prefix);
        }
        self.reselect(prefix)
    }

    /// Drops every candidate learned from `peer` (session teardown); returns
    /// the resulting changes in prefix order.
    pub fn drop_peer(&mut self, peer: PeerId) -> Vec<RibChange> {
        let prefixes: Vec<Ipv6Prefix> = self
            .candidates
            .iter()
            .filter(|(_, cands)| cands.iter().any(|r| r.learned_from == peer))
            .map(|(p, _)| *p)
            .collect();
        prefixes
            .into_iter()
            .map(|p| self.withdraw(p, peer))
            .filter(|c| *c != RibChange::NoChange)
            .collect()
    }

    fn reselect(&mut self, prefix: Ipv6Prefix) -> RibChange {
        let new_best = self
            .candidates
            .get(&prefix)
            .and_then(|cands| {
                cands.iter().fold(None::<&Route>, |best, r| match best {
                    Some(b) if b.better_than(r) => Some(b),
                    _ => Some(r),
                })
            })
            .cloned();
        let old_best = self.best.get(&prefix).cloned();
        match (old_best, new_best) {
            (None, None) => RibChange::NoChange,
            (Some(_), None) => {
                self.best.remove(&prefix);
                RibChange::Withdrawn(prefix)
            }
            (old, Some(new)) => {
                if old.as_ref() == Some(&new) {
                    RibChange::NoChange
                } else {
                    self.best.insert(prefix, new.clone());
                    RibChange::NewBest(new)
                }
            }
        }
    }

    /// The selected best route for exactly `prefix`.
    pub fn best(&self, prefix: &Ipv6Prefix) -> Option<&Route> {
        self.best.get(prefix)
    }

    /// Data-plane longest-prefix match.
    pub fn lookup(&self, addr: Ipv6Addr) -> Option<(&Ipv6Prefix, &Route)> {
        self.best.lookup(addr)
    }

    /// All selected best routes, in prefix order.
    pub fn best_routes(&self) -> Vec<(&Ipv6Prefix, &Route)> {
        self.best.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    fn route(prefix: &str, path: &[u32], peer: PeerId) -> Route {
        Route {
            prefix: p(prefix),
            next_hop: "2001:db8:ffff::1".parse().unwrap(),
            as_path: path.iter().map(|&a| Asn(a)).collect(),
            origin: Origin::Igp,
            med: 0,
            local_pref: 100,
            communities: vec![],
            learned_from: peer,
            learned_at: SimTime::from_secs(0),
        }
    }

    #[test]
    fn single_route_becomes_best() {
        let mut rib = LocRib::new();
        let r = route("2001:db8::/32", &[64500], 0);
        assert_eq!(rib.insert(r.clone()), RibChange::NewBest(r.clone()));
        assert_eq!(rib.best(&p("2001:db8::/32")), Some(&r));
        assert_eq!(rib.len(), 1);
    }

    #[test]
    fn shorter_as_path_wins() {
        let mut rib = LocRib::new();
        rib.insert(route("2001:db8::/32", &[1, 2, 3], 0));
        let shorter = route("2001:db8::/32", &[7, 8], 1);
        assert_eq!(
            rib.insert(shorter.clone()),
            RibChange::NewBest(shorter.clone())
        );
        // A longer path from another peer does not displace it.
        assert_eq!(
            rib.insert(route("2001:db8::/32", &[4, 5, 6, 7], 2)),
            RibChange::NoChange
        );
        assert_eq!(rib.best(&p("2001:db8::/32")), Some(&shorter));
    }

    #[test]
    fn local_pref_beats_path_length() {
        let mut rib = LocRib::new();
        let mut long_but_preferred = route("2001:db8::/32", &[1, 2, 3, 4], 0);
        long_but_preferred.local_pref = 200;
        rib.insert(route("2001:db8::/32", &[9], 1));
        assert_eq!(
            rib.insert(long_but_preferred.clone()),
            RibChange::NewBest(long_but_preferred)
        );
    }

    #[test]
    fn origin_and_med_tie_breaks() {
        let a = route("2001:db8::/32", &[1], 0);
        let mut b = route("2001:db8::/32", &[2], 1);
        b.origin = Origin::Incomplete;
        assert!(a.better_than(&b));
        let mut c = route("2001:db8::/32", &[3], 2);
        c.med = 10;
        assert!(a.better_than(&c) && !b.better_than(&c) || a.better_than(&c));
        // Oldest wins among full ties.
        let mut d = route("2001:db8::/32", &[4], 3);
        d.learned_at = SimTime::from_secs(100);
        assert!(a.better_than(&d));
    }

    #[test]
    fn withdraw_falls_back_to_next_candidate() {
        let mut rib = LocRib::new();
        let backup = route("2001:db8::/32", &[1, 2, 3], 0);
        let primary = route("2001:db8::/32", &[9], 1);
        rib.insert(backup.clone());
        rib.insert(primary);
        assert_eq!(
            rib.withdraw(p("2001:db8::/32"), 1),
            RibChange::NewBest(backup)
        );
        assert_eq!(
            rib.withdraw(p("2001:db8::/32"), 0),
            RibChange::Withdrawn(p("2001:db8::/32"))
        );
        assert!(rib.is_empty());
        assert_eq!(rib.withdraw(p("2001:db8::/32"), 0), RibChange::NoChange);
    }

    #[test]
    fn replacing_same_peer_route_updates_in_place() {
        let mut rib = LocRib::new();
        rib.insert(route("2001:db8::/32", &[1, 2], 0));
        let replacement = route("2001:db8::/32", &[1, 2, 3], 0);
        // Same peer sends a longer path: it *replaces* the old candidate, so
        // it still becomes best (no other candidates exist).
        assert_eq!(
            rib.insert(replacement.clone()),
            RibChange::NewBest(replacement)
        );
    }

    #[test]
    fn lookup_uses_longest_prefix_match() {
        let mut rib = LocRib::new();
        rib.insert(route("2001:db8::/32", &[1], 0));
        rib.insert(route("2001:db8:1234::/48", &[2], 0));
        let (pre, _) = rib.lookup("2001:db8:1234::1".parse().unwrap()).unwrap();
        assert_eq!(*pre, p("2001:db8:1234::/48"));
        let (pre, _) = rib.lookup("2001:db8:9999::1".parse().unwrap()).unwrap();
        assert_eq!(*pre, p("2001:db8::/32"));
        assert!(rib.lookup("3fff::1".parse().unwrap()).is_none());
    }

    #[test]
    fn drop_peer_withdraws_everything_from_that_peer() {
        let mut rib = LocRib::new();
        rib.insert(route("2001:db8::/32", &[1], 0));
        rib.insert(route("2001:db9::/32", &[1], 0));
        rib.insert(route("2001:db8::/32", &[2, 3], 1));
        let changes = rib.drop_peer(0);
        assert_eq!(changes.len(), 2);
        // 2001:db8::/32 falls back to peer 1, 2001:db9::/32 disappears.
        assert!(changes
            .iter()
            .any(|c| matches!(c, RibChange::NewBest(r) if r.learned_from == 1)));
        assert!(changes.contains(&RibChange::Withdrawn(p("2001:db9::/32"))));
        assert_eq!(rib.len(), 1);
    }
}
