//! IPv6 CIDR prefix algebra.
//!
//! [`Ipv6Prefix`] is the central address-space abstraction: telescopes are
//! configured by prefix, BGP announces prefixes, scanners select target
//! prefixes, and the T1 experiment recursively splits a /32 into 17 prefixes.
//! All operations are pure integer arithmetic on the 128-bit address.

use crate::error::TypeError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;
use std::str::FromStr;

/// An IPv6 prefix in CIDR notation, stored canonically (host bits zeroed).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv6Prefix {
    bits: u128,
    len: u8,
}

impl Ipv6Prefix {
    /// Creates a prefix, zeroing any host bits below `len`.
    ///
    /// Returns [`TypeError::InvalidPrefixLength`] if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> Result<Self, TypeError> {
        if len > 128 {
            return Err(TypeError::InvalidPrefixLength(len as u16));
        }
        Ok(Self {
            bits: u128::from(addr) & Self::mask(len),
            len,
        })
    }

    /// Creates a prefix from raw 128-bit integer network bits.
    pub fn from_bits(bits: u128, len: u8) -> Result<Self, TypeError> {
        Self::new(Ipv6Addr::from(bits), len)
    }

    /// The all-encompassing `::/0` prefix.
    pub fn default_route() -> Self {
        Self { bits: 0, len: 0 }
    }

    /// The network mask for a prefix length: `len` leading ones.
    pub fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - len as u32)
        }
    }

    /// The first address of the prefix (network bits, host bits zero).
    pub fn network(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits)
    }

    /// Network bits as a raw integer.
    pub fn bits(&self) -> u128 {
        self.bits
    }

    /// Prefix length in bits.
    pub fn len(&self) -> u8 {
        self.len
    }

    /// True for `::/0` only; provided to satisfy the `len`/`is_empty` idiom.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The last address covered by this prefix.
    pub fn last_address(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits | !Self::mask(self.len))
    }

    /// Tests whether `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv6Addr) -> bool {
        u128::from(addr) & Self::mask(self.len) == self.bits
    }

    /// Tests whether `other` is equal to or more specific than `self`.
    pub fn covers(&self, other: &Ipv6Prefix) -> bool {
        other.len >= self.len && (other.bits & Self::mask(self.len)) == self.bits
    }

    /// Tests whether the two prefixes share any address.
    pub fn overlaps(&self, other: &Ipv6Prefix) -> bool {
        self.covers(other) || other.covers(self)
    }

    /// Splits the prefix into its two more-specific halves.
    ///
    /// Returns the `(low, high)` pair — e.g. `2001:db8::/32` splits into
    /// `2001:db8::/33` (low) and `2001:db8:8000::/33` (high). This is the
    /// paper's bi-weekly split primitive (Fig. 2).
    pub fn split(&self) -> Result<(Ipv6Prefix, Ipv6Prefix), TypeError> {
        if self.len >= 128 {
            return Err(TypeError::CannotSplit);
        }
        let child_len = self.len + 1;
        let high_bit = 1u128 << (128 - child_len as u32);
        Ok((
            Ipv6Prefix {
                bits: self.bits,
                len: child_len,
            },
            Ipv6Prefix {
                bits: self.bits | high_bit,
                len: child_len,
            },
        ))
    }

    /// The immediate parent prefix (one bit less specific), or `None` for `::/0`.
    pub fn parent(&self) -> Option<Ipv6Prefix> {
        if self.len == 0 {
            None
        } else {
            let len = self.len - 1;
            Some(Ipv6Prefix {
                bits: self.bits & Self::mask(len),
                len,
            })
        }
    }

    /// The *low-byte address* of the prefix per the paper: its `::1` address.
    ///
    /// The split-selection rule in §3.1 avoids splitting the prefix that
    /// contains the low-byte address of the previously announced covering
    /// prefix, so new announcements get fresh low-byte targets.
    pub fn low_byte_address(&self) -> Ipv6Addr {
        Ipv6Addr::from(self.bits | 1)
    }

    /// The Subnet-Router anycast address (RFC 4291): all host bits zero.
    pub fn subnet_router_anycast(&self) -> Ipv6Addr {
        self.network()
    }

    /// Number of addresses covered, saturating at `u128::MAX` for `::/0`.
    pub fn address_count(&self) -> u128 {
        if self.len == 0 {
            u128::MAX
        } else {
            1u128 << (128 - self.len as u32)
        }
    }

    /// Iterates the more-specific subnets of length `sub_len` inside this
    /// prefix, in address order.
    ///
    /// # Panics
    /// Panics if `sub_len < self.len()` or `sub_len > 128`, or if the number
    /// of subnets would exceed `u64::MAX`.
    pub fn subnets(&self, sub_len: u8) -> SubnetIter {
        assert!(
            sub_len >= self.len && sub_len <= 128,
            "subnet length {sub_len} invalid for /{}",
            self.len
        );
        assert!(
            sub_len - self.len <= 64,
            "too many subnets to iterate (/{} inside /{})",
            sub_len,
            self.len
        );
        SubnetIter {
            base: self.bits,
            sub_len,
            next: 0,
            count: 1u128 << (sub_len - self.len) as u32,
        }
    }

    /// The `n`-th address inside the prefix (offset from the network address),
    /// wrapping within the prefix if `n` exceeds its size.
    pub fn nth_address(&self, n: u128) -> Ipv6Addr {
        let host_mask = !Self::mask(self.len);
        Ipv6Addr::from(self.bits | (n & host_mask))
    }

    /// Common covering prefix of two prefixes (their longest shared ancestor).
    pub fn common_ancestor(&self, other: &Ipv6Prefix) -> Ipv6Prefix {
        let max_len = self.len.min(other.len) as u32;
        let diff = self.bits ^ other.bits;
        let common = if diff == 0 { 128 } else { diff.leading_zeros() };
        let len = common.min(max_len) as u8;
        Ipv6Prefix {
            bits: self.bits & Self::mask(len),
            len,
        }
    }
}

/// Iterator over fixed-length subnets of a prefix, in address order.
pub struct SubnetIter {
    base: u128,
    sub_len: u8,
    next: u128,
    count: u128,
}

impl Iterator for SubnetIter {
    type Item = Ipv6Prefix;

    fn next(&mut self) -> Option<Ipv6Prefix> {
        if self.next >= self.count {
            return None;
        }
        let step = 1u128 << (128 - self.sub_len as u32);
        let bits = self.base + self.next * step;
        self.next += 1;
        Some(Ipv6Prefix {
            bits,
            len: self.sub_len,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next).min(usize::MAX as u128) as usize;
        (rem, Some(rem))
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl fmt::Debug for Ipv6Prefix {
    // Delegates to `Display` so prefix dumps stay compact in test output.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv6Prefix {
    type Err = TypeError;

    fn from_str(s: &str) -> Result<Self, TypeError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| TypeError::MissingLength(s.to_string()))?;
        let addr: Ipv6Addr = addr
            .parse()
            .map_err(|_| TypeError::ParseAddr(addr.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| TypeError::InvalidPrefixLength(u16::MAX))?;
        Ipv6Prefix::new(addr, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in [
            "2001:db8::/32",
            "::/0",
            "2001:db8:8000::/33",
            "2001:db8::1/128",
        ] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn new_zeroes_host_bits() {
        let pre = Ipv6Prefix::new("2001:db8::dead:beef".parse().unwrap(), 32).unwrap();
        assert_eq!(pre, p("2001:db8::/32"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2001:db8::/129".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::".parse::<Ipv6Prefix>().is_err());
        assert!("zz/32".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::/xx".parse::<Ipv6Prefix>().is_err());
    }

    #[test]
    fn contains_checks_network_bits() {
        let pre = p("2001:db8::/32");
        assert!(pre.contains("2001:db8::1".parse().unwrap()));
        assert!(pre.contains("2001:db8:ffff:ffff:ffff:ffff:ffff:ffff".parse().unwrap()));
        assert!(!pre.contains("2001:db9::1".parse().unwrap()));
    }

    #[test]
    fn covers_is_reflexive_and_directional() {
        let p32 = p("2001:db8::/32");
        let p33 = p("2001:db8:8000::/33");
        assert!(p32.covers(&p32));
        assert!(p32.covers(&p33));
        assert!(!p33.covers(&p32));
        assert!(!p33.covers(&p("2001:db8::/33")));
    }

    #[test]
    fn overlaps_in_either_direction() {
        let p32 = p("2001:db8::/32");
        let p48 = p("2001:db8:1234::/48");
        assert!(p32.overlaps(&p48));
        assert!(p48.overlaps(&p32));
        assert!(!p48.overlaps(&p("2001:db8:1235::/48")));
    }

    #[test]
    fn split_produces_ordered_halves() {
        let (lo, hi) = p("2001:db8::/32").split().unwrap();
        assert_eq!(lo, p("2001:db8::/33"));
        assert_eq!(hi, p("2001:db8:8000::/33"));
        assert!(p("2001:db8::/32").covers(&lo));
        assert!(p("2001:db8::/32").covers(&hi));
        assert!(!lo.overlaps(&hi));
    }

    #[test]
    fn split_of_host_route_fails() {
        assert_eq!(p("::1/128").split().unwrap_err(), TypeError::CannotSplit);
    }

    #[test]
    fn parent_inverts_split() {
        let pre = p("2001:db8::/32");
        let (lo, hi) = pre.split().unwrap();
        assert_eq!(lo.parent().unwrap(), pre);
        assert_eq!(hi.parent().unwrap(), pre);
        assert!(Ipv6Prefix::default_route().parent().is_none());
    }

    #[test]
    fn low_byte_address_is_colon_one() {
        assert_eq!(
            p("2001:db8::/32").low_byte_address(),
            "2001:db8::1".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            p("2001:db8:8000::/33").low_byte_address(),
            "2001:db8:8000::1".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn low_byte_containment_drives_split_choice() {
        // The low-byte address of the covering /32 lives in the low half —
        // the paper's rule therefore splits the *high* half next.
        let p32 = p("2001:db8::/32");
        let (lo, hi) = p32.split().unwrap();
        assert!(lo.contains(p32.low_byte_address()));
        assert!(!hi.contains(p32.low_byte_address()));
    }

    #[test]
    fn address_count_and_last_address() {
        let p48 = p("2001:db8:1234::/48");
        assert_eq!(p48.address_count(), 1u128 << 80);
        assert_eq!(
            p48.last_address(),
            "2001:db8:1234:ffff:ffff:ffff:ffff:ffff"
                .parse::<Ipv6Addr>()
                .unwrap()
        );
        assert_eq!(Ipv6Prefix::default_route().address_count(), u128::MAX);
    }

    #[test]
    fn subnets_iterate_in_order() {
        let subs: Vec<_> = p("2001:db8::/32").subnets(34).collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0], p("2001:db8::/34"));
        assert_eq!(subs[1], p("2001:db8:4000::/34"));
        assert_eq!(subs[2], p("2001:db8:8000::/34"));
        assert_eq!(subs[3], p("2001:db8:c000::/34"));
    }

    #[test]
    fn subnets_of_same_length_is_identity() {
        let subs: Vec<_> = p("2001:db8::/32").subnets(32).collect();
        assert_eq!(subs, vec![p("2001:db8::/32")]);
    }

    #[test]
    fn nth_address_wraps_within_prefix() {
        let p126 = p("2001:db8::/126");
        assert_eq!(
            p126.nth_address(0),
            "2001:db8::".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            p126.nth_address(3),
            "2001:db8::3".parse::<Ipv6Addr>().unwrap()
        );
        assert_eq!(
            p126.nth_address(4),
            "2001:db8::".parse::<Ipv6Addr>().unwrap()
        );
    }

    #[test]
    fn common_ancestor_of_split_halves_is_parent() {
        let pre = p("2001:db8::/32");
        let (lo, hi) = pre.split().unwrap();
        assert_eq!(lo.common_ancestor(&hi), pre);
        assert_eq!(lo.common_ancestor(&lo), lo);
    }

    #[test]
    fn common_ancestor_of_disjoint_prefixes() {
        let a = p("2001:db8::/48");
        let b = p("2001:db9::/48");
        let anc = a.common_ancestor(&b);
        assert!(anc.covers(&a) && anc.covers(&b));
        assert_eq!(anc.len(), 31);
    }

    #[test]
    fn ordering_is_by_network_then_length() {
        let mut v = vec![
            p("2001:db8:8000::/33"),
            p("2001:db8::/32"),
            p("2001:db8::/33"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                p("2001:db8::/32"),
                p("2001:db8::/33"),
                p("2001:db8:8000::/33")
            ]
        );
    }
}
