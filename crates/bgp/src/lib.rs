//! # sixscope-bgp
//!
//! A compact but real BGP-4 implementation (RFC 4271) with multiprotocol
//! IPv6 reachability (RFC 4760) and 4-byte AS numbers (RFC 6793):
//!
//! * [`message`] / [`attrs`] / [`nlri`] — byte-accurate message codecs,
//! * [`fsm`] — the session state machine over an in-memory transport,
//! * [`rib`] — Adj-RIB-In / Loc-RIB with the RFC 4271 §9.1 decision process,
//! * [`speaker`] — a router: peers, policy, origination, propagation,
//! * [`topology`] — a simulated AS graph with per-link delays and a route
//!   collector (the "RIPEstat / looking glass" view of §3.2),
//! * [`events`] — the timestamped announce/withdraw feed that BGP-reactive
//!   scanners consume,
//! * [`irr`] — route6 objects and RPKI ROA validation outcomes.
//!
//! This is the paper's control-plane substrate: telescope T1 originates and
//! withdraws prefixes through a [`speaker::Speaker`], updates propagate hop
//! by hop through the topology as real UPDATE bytes, and scanners only learn
//! about prefixes once the collector has processed the announcement — the
//! "BGP signal" whose effect the paper measures.

pub mod attrs;
pub mod error;
pub mod events;
pub mod fsm;
pub mod irr;
pub mod message;
pub mod nlri;
pub mod rib;
pub mod speaker;
pub mod topology;

pub use error::BgpError;
pub use events::{RouteEvent, RouteEventKind};
pub use message::{BgpMessage, KeepaliveMessage, NotificationMessage, OpenMessage, UpdateMessage};
pub use rib::{LocRib, Route};
pub use speaker::Speaker;
pub use topology::{Collector, Link, Topology};
