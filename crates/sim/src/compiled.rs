//! Epoch-compiled visibility: constant-time-ish LPM and announced-set
//! snapshots for the data-plane hot loop.
//!
//! [`Visibility::lpm`] scans every prefix's interval list per probe — fine
//! for tests, quadratic pain for the ~10⁶-probe delivery loop. The visible
//! set only changes at interval endpoints (announce/withdraw times), so the
//! schedule compiles into *epochs*: between two consecutive endpoints the
//! set is constant. Each epoch gets one [`PrefixTrie`] for longest-prefix
//! match and one prefix-ordered snapshot of the announced set; a query is a
//! binary search over epoch boundaries plus a trie walk.
//!
//! Equivalence with the naive structure is exact (property-tested in
//! `crates/sim/tests/prop.rs`): same LPM result for every `(addr, t)` and
//! the same `announced_at` content *and order* — the latter matters because
//! scanners consume the announced set in order, so any deviation would
//! change their RNG draw sequence and break the byte-identical-output
//! contract.

use crate::visibility::Visibility;
use sixscope_types::{Ipv6Prefix, PrefixTrie, SimTime};
use std::net::Ipv6Addr;

/// Visibility compiled into per-epoch snapshots.
#[derive(Debug, Clone, Default)]
pub struct CompiledVisibility {
    /// Epoch start times, ascending. Epoch `i` covers
    /// `[starts[i], starts[i+1])`; times before `starts[0]` fall into an
    /// implicit empty epoch (nothing announced before the first event).
    starts: Vec<SimTime>,
    /// Longest-prefix-match trie per epoch.
    tries: Vec<PrefixTrie<()>>,
    /// Visible prefixes per epoch, in prefix order (matching
    /// [`Visibility::announced_at`]).
    announced: Vec<Vec<Ipv6Prefix>>,
}

impl CompiledVisibility {
    /// Compiles the interval structure into epoch snapshots.
    pub fn compile(visibility: &Visibility) -> CompiledVisibility {
        let starts = visibility.endpoints();
        let mut tries = Vec::with_capacity(starts.len());
        let mut announced = Vec::with_capacity(starts.len());
        for &start in &starts {
            let visible = visibility.announced_at(start);
            let mut trie = PrefixTrie::new();
            for prefix in &visible {
                trie.insert(*prefix, ());
            }
            tries.push(trie);
            announced.push(visible);
        }
        CompiledVisibility {
            starts,
            tries,
            announced,
        }
    }

    /// Epoch index for `t`, or `None` before the first event.
    fn epoch(&self, t: SimTime) -> Option<usize> {
        self.starts.partition_point(|&s| s <= t).checked_sub(1)
    }

    /// Longest visible prefix covering `addr` at `t` — same result as
    /// [`Visibility::lpm`].
    pub fn lpm(&self, addr: Ipv6Addr, t: SimTime) -> Option<Ipv6Prefix> {
        let e = self.epoch(t)?;
        self.tries[e].lookup(addr).map(|(p, _)| *p)
    }

    /// All prefixes visible at `t`, in prefix order — same content and
    /// order as [`Visibility::announced_at`], without allocating.
    pub fn announced_at(&self, t: SimTime) -> &[Ipv6Prefix] {
        match self.epoch(t) {
            Some(e) => &self.announced[e],
            None => &[],
        }
    }

    /// Number of compiled epochs.
    pub fn epochs(&self) -> usize {
        self.starts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_bgp::{RouteEvent, RouteEventKind};
    use sixscope_types::Asn;

    fn announce(ts: u64, prefix: &str) -> RouteEvent {
        RouteEvent {
            ts: SimTime::from_secs(ts),
            prefix: prefix.parse().unwrap(),
            kind: RouteEventKind::Announce {
                origin_as: Asn(64500),
                as_path: vec![Asn(64500)],
            },
        }
    }

    fn withdraw(ts: u64, prefix: &str) -> RouteEvent {
        RouteEvent {
            ts: SimTime::from_secs(ts),
            prefix: prefix.parse().unwrap(),
            kind: RouteEventKind::Withdraw,
        }
    }

    #[test]
    fn matches_naive_on_a_small_schedule() {
        let vis = Visibility::from_events(&[
            announce(100, "2001:db8::/32"),
            announce(100, "2001:db8:1234::/48"),
            withdraw(500, "2001:db8:1234::/48"),
            announce(900, "2001:db8:1234::/48"),
            withdraw(1200, "2001:db8::/32"),
        ]);
        let compiled = CompiledVisibility::compile(&vis);
        assert_eq!(compiled.epochs(), 4);
        let addr: Ipv6Addr = "2001:db8:1234::1".parse().unwrap();
        for ts in [0, 99, 100, 499, 500, 899, 900, 1199, 1200, 5000] {
            let t = SimTime::from_secs(ts);
            assert_eq!(
                compiled.lpm(addr, t),
                vis.lpm(addr, t),
                "lpm diverged at t={ts}"
            );
            assert_eq!(
                compiled.announced_at(t),
                vis.announced_at(t).as_slice(),
                "announced_at diverged at t={ts}"
            );
        }
    }

    #[test]
    fn before_first_event_nothing_is_routed() {
        let vis = Visibility::from_events(&[announce(100, "2001:db8::/32")]);
        let compiled = CompiledVisibility::compile(&vis);
        let addr: Ipv6Addr = "2001:db8::1".parse().unwrap();
        assert_eq!(compiled.lpm(addr, SimTime::from_secs(99)), None);
        assert!(compiled.announced_at(SimTime::from_secs(99)).is_empty());
    }

    #[test]
    fn empty_visibility_compiles_to_no_epochs() {
        let compiled = CompiledVisibility::compile(&Visibility::default());
        assert_eq!(compiled.epochs(), 0);
        assert_eq!(compiled.lpm("::1".parse().unwrap(), SimTime::EPOCH), None);
    }
}
