//! The parallel-determinism contract (DESIGN.md §6): the experiment's
//! output is byte-identical at any worker-thread count. Generation fans
//! scanners out to workers and delivery shards the probe list, but the
//! merged captures, drop counters and T4 responses must not move by a
//! single bit between `threads = 1`, `2` and `8`.

use sixscope_sim::{ExperimentResult, Scenario, ScenarioConfig};
use sixscope_telescope::TelescopeId;

fn run_with(threads: usize) -> ExperimentResult {
    let mut config = ScenarioConfig::new(20_230_824, 0.008);
    config.threads = Some(threads);
    Scenario::new(config).run()
}

/// The fused generate+deliver path at any thread count reproduces the
/// staged per-probe reference path bit-for-bit: same captures, same
/// counters. This is the cross-path half of the contract — the
/// cross-thread half is below.
#[test]
fn fused_path_matches_staged_reference_at_any_thread_count() {
    let mut config = ScenarioConfig::new(20_230_824, 0.008);
    config.threads = Some(1);
    let (reference, _) = Scenario::new(config).run_reference_timed();
    for threads in [1, 2, 8] {
        let fused = run_with(threads);
        for id in TelescopeId::ALL {
            assert_eq!(
                fused.capture(id).packets(),
                reference.capture(id).packets(),
                "{id:?} fused capture diverged from staged reference at {threads} threads"
            );
        }
        assert_eq!(fused.dropped_unrouted, reference.dropped_unrouted);
        assert_eq!(fused.t4_responses, reference.t4_responses);
        assert_eq!(fused.truncated_probes, reference.truncated_probes);
    }
}

#[test]
fn captures_are_byte_identical_across_thread_counts() {
    let serial = run_with(1);
    assert!(
        serial.total_packets() > 1000,
        "reference run too small to be meaningful ({} packets)",
        serial.total_packets()
    );
    for threads in [2, 8] {
        let parallel = run_with(threads);
        for id in TelescopeId::ALL {
            let a = serial.capture(id);
            let b = parallel.capture(id);
            assert_eq!(
                a.packets(),
                b.packets(),
                "{id:?} capture diverged at {threads} threads"
            );
            assert_eq!(a.filtered(), b.filtered(), "{id:?} filter counter diverged");
            assert_eq!(
                a.malformed(),
                b.malformed(),
                "{id:?} malformed counter diverged"
            );
        }
        assert_eq!(
            serial.dropped_unrouted, parallel.dropped_unrouted,
            "unrouted-drop count diverged at {threads} threads"
        );
        assert_eq!(
            serial.t4_responses, parallel.t4_responses,
            "T4 response count diverged at {threads} threads"
        );
        assert_eq!(
            serial.truncated_probes, parallel.truncated_probes,
            "truncation count diverged at {threads} threads"
        );
    }
}
