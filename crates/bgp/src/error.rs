//! Error type for BGP message handling and session processing.

use std::fmt;

/// Errors raised while encoding, decoding or processing BGP messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpError {
    /// Buffer ended before a complete structure.
    Truncated(&'static str),
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Header length field outside `19..=4096`.
    BadLength(u16),
    /// Unknown message type code.
    BadMessageType(u8),
    /// OPEN carried an unsupported version.
    UnsupportedVersion(u8),
    /// A path attribute was malformed.
    MalformedAttribute(&'static str),
    /// An NLRI prefix length exceeded 128 bits.
    BadPrefixLength(u8),
    /// A message arrived that the current FSM state cannot accept.
    UnexpectedMessage {
        /// The FSM state name.
        state: &'static str,
        /// The message type name.
        message: &'static str,
    },
    /// The hold timer expired.
    HoldTimerExpired,
    /// The peer sent a NOTIFICATION; the session is dead.
    PeerNotification {
        /// Error code.
        code: u8,
        /// Error subcode.
        subcode: u8,
    },
}

impl fmt::Display for BgpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BgpError::Truncated(what) => write!(f, "truncated {what}"),
            BgpError::BadMarker => write!(f, "BGP marker is not all-ones"),
            BgpError::BadLength(l) => write!(f, "BGP message length {l} out of range"),
            BgpError::BadMessageType(t) => write!(f, "unknown BGP message type {t}"),
            BgpError::UnsupportedVersion(v) => write!(f, "unsupported BGP version {v}"),
            BgpError::MalformedAttribute(what) => write!(f, "malformed path attribute: {what}"),
            BgpError::BadPrefixLength(l) => write!(f, "NLRI prefix length {l} exceeds 128"),
            BgpError::UnexpectedMessage { state, message } => {
                write!(f, "unexpected {message} in state {state}")
            }
            BgpError::HoldTimerExpired => write!(f, "hold timer expired"),
            BgpError::PeerNotification { code, subcode } => {
                write!(f, "peer sent NOTIFICATION {code}/{subcode}")
            }
        }
    }
}

impl std::error::Error for BgpError {}
