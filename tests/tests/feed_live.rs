//! The live feed contract (DESIGN.md §14), end to end: a [`TailFeed`]
//! following a growing pcap file must see every record exactly once —
//! never re-reading the consumed prefix across remaps — and its final
//! state must equal a batch run over the finished file, including the
//! accounting of a record the writer never completed.

use sixscope::ingest::passive_config;
use sixscope::serve::{self, ServeOptions};
use sixscope::Pipeline;
use sixscope_packet::{PacketBuilder, PcapRecord, PcapWriter};
use sixscope_telescope::{Capture, Feed, TailFeed, SESSION_TIMEOUT};
use sixscope_types::{Ipv6Prefix, SimTime};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

fn probe(src_host: u16, ts: u64) -> PcapRecord {
    let src = format!("2001:db8:f00::{src_host:x}").parse().unwrap();
    let dst = "2001:db8::1".parse().unwrap();
    PcapRecord {
        ts: SimTime::from_secs(ts),
        ts_micros: 0,
        data: PacketBuilder::new(src, dst).icmpv6_echo_request(1, 1, b"live"),
    }
}

/// A pcap image with `n` records at one-second spacing.
fn pcap_image(n: u64) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for ts in 0..n {
        w.write_record(&probe((ts % 7) as u16 + 1, ts)).unwrap();
    }
    w.into_inner().unwrap()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sixscope-live-{}-{name}", std::process::id()))
}

fn default_route() -> Ipv6Prefix {
    Ipv6Prefix::default_route()
}

fn tail_feed(path: &PathBuf) -> TailFeed {
    TailFeed::new(
        Capture::new(passive_config(default_route())),
        path,
        usize::MAX,
        SESSION_TIMEOUT,
    )
    .poll_interval(Duration::from_millis(1))
    .quiesce_after(Duration::from_millis(20))
}

/// The central live-tail property: grow the file in several appends, some
/// of which land mid-record, and check (a) the resume offset only ever
/// moves forward — the consumed prefix is never re-read — and (b) the
/// final capture and statistics equal a batch pipeline run over the
/// finished file.
#[test]
fn growing_file_is_read_once_and_matches_batch() {
    let full = pcap_image(12);
    // Cut points: after the header, mid-record twice, then the end.
    let cuts = [
        24 + 30,
        full.len() / 3 + 11,
        2 * full.len() / 3 + 5,
        full.len(),
    ];
    let path = temp_path("grow.pcap");
    std::fs::write(&path, &full[..cuts[0]]).unwrap();

    let mut feed = tail_feed(&path);
    let mut max_offset = 0usize;
    let mut written = cuts[0];
    let mut next_cut = 1;
    loop {
        let chunk = feed.next_chunk().unwrap();
        assert!(
            feed.resume_offset() >= max_offset,
            "resume offset went backwards: prefix re-read"
        );
        max_offset = feed.resume_offset();
        if chunk.end_of_feed {
            break;
        }
        // Once the feed reports an idle poll (nothing complete left to
        // read), append the next slice (the writer keeps going).
        if next_cut < cuts.len() && chunk.range.is_empty() {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(&full[written..cuts[next_cut]]).unwrap();
            written = cuts[next_cut];
            next_cut += 1;
        }
    }
    let (capture, stats) = feed.finish();

    let batch_path = temp_path("grow-batch.pcap");
    std::fs::write(&batch_path, &full).unwrap();
    let batch = Pipeline::from_pcaps([&batch_path])
        .prefix(default_route())
        .run_detailed()
        .unwrap();
    let batch_capture = batch.analyzed.capture(sixscope_telescope::TelescopeId::T1);
    assert_eq!(capture.len(), 12, "every record seen exactly once");
    assert_eq!(capture.packets(), batch_capture.packets());
    assert_eq!(
        stats, batch.stats,
        "live accounting equals batch accounting"
    );
    assert!(!stats.truncated_tail);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&batch_path).ok();
}

/// A writer that dies mid-record: the held-back truncated tail must be
/// accounted at quiesce exactly as a batch read of the final bytes would.
#[test]
fn abandoned_tail_is_accounted_like_batch() {
    let full = pcap_image(5);
    let cut = full.len() - 9;
    let path = temp_path("abandoned.pcap");
    std::fs::write(&path, &full[..cut]).unwrap();

    let mut feed = tail_feed(&path);
    loop {
        if feed.next_chunk().unwrap().end_of_feed {
            break;
        }
    }
    let (capture, stats) = feed.finish();

    let batch_path = temp_path("abandoned-batch.pcap");
    std::fs::write(&batch_path, &full[..cut]).unwrap();
    let batch = Pipeline::from_pcaps([&batch_path])
        .prefix(default_route())
        .run_detailed()
        .unwrap();
    assert_eq!(capture.len(), 4);
    assert_eq!(stats, batch.stats);
    assert!(stats.truncated_tail);
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&batch_path).ok();
}

/// The same growth scenario through the serve daemon: the final
/// checkpoint written while a background writer appends the second half
/// must be byte-identical to the batch `analyze` report over the
/// finished file.
#[test]
fn serve_over_a_growing_file_matches_batch_report() {
    let full = pcap_image(10);
    let cut = full.len() / 2 + 7;
    let path = temp_path("serve-grow.pcap");
    std::fs::write(&path, &full[..cut]).unwrap();

    let writer_path = path.clone();
    let tail = full[cut..].to_vec();
    let writer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&writer_path)
            .unwrap();
        f.write_all(&tail).unwrap();
    });

    let out_dir = temp_path("serve-grow-out");
    let mut opts = ServeOptions::pcap(&path, &out_dir);
    opts.poll_ms = 1;
    opts.quiesce_ms = 400;
    let summary = serve::serve(opts).unwrap();
    writer.join().unwrap();
    assert_eq!(summary.packets, 10);
    assert_eq!(summary.late_records, 0);

    let batch_path = temp_path("serve-grow-batch.pcap");
    std::fs::write(&batch_path, &full).unwrap();
    let batch = Pipeline::from_pcaps([&batch_path])
        .prefix(default_route())
        .run_detailed()
        .unwrap();
    let expected = serve::analysis_report(&batch.analyzed, &batch.stats, false);
    let latest = std::fs::read_to_string(&summary.latest).unwrap();
    assert_eq!(latest, expected, "final checkpoint diverged from batch");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&batch_path).ok();
    std::fs::remove_dir_all(&out_dir).ok();
}
