//! Whole-packet parsing — the telescope's first processing step.
//!
//! [`ParsedView`] decodes the IPv6 header and the transport header against
//! a borrowed buffer without allocating; [`ParsedPacket`] is its owned
//! promotion, keeping the upper-layer payload as a cheaply-cloneable
//! [`bytes::Bytes`]. Payload bytes feed the tool-fingerprint clustering of
//! §5.4. The ingest hot path parses views and promotes only the packets
//! that survive telescope filtering (DESIGN.md §11).

use crate::error::PacketError;
use crate::icmpv6::Icmpv6Header;
use crate::ipv6::{ext, Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use crate::pcap::RecordView;
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;
use bytes::Bytes;
use sixscope_types::intern::hash_u128;

/// Upper bound on chained extension headers (RFC-conformant packets use at
/// most ~6; anything deeper is treated as damage, not walked forever).
const MAX_EXT_HEADERS: usize = 16;

/// The decoded transport header of a captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    /// ICMPv6 message.
    Icmpv6(Icmpv6Header),
    /// TCP segment.
    Tcp(TcpHeader),
    /// UDP datagram.
    Udp(UdpHeader),
    /// An upper-layer protocol the telescope does not decode.
    Other(u8),
}

impl Transport {
    /// Short protocol label used in reports ("ICMPv6" / "TCP" / "UDP").
    pub fn protocol_name(&self) -> &'static str {
        match self {
            Transport::Icmpv6(_) => "ICMPv6",
            Transport::Tcp(_) => "TCP",
            Transport::Udp(_) => "UDP",
            Transport::Other(_) => "Other",
        }
    }
}

/// A fully parsed IPv6 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedPacket {
    /// The IPv6 fixed header.
    pub header: Ipv6Header,
    /// The decoded transport header.
    pub transport: Transport,
    /// Upper-layer payload (after the transport header).
    pub payload: Bytes,
    /// Number of extension headers walked to reach the transport.
    pub ext_headers: u8,
}

/// A parsed IPv6 packet borrowing its payload from the capture buffer.
///
/// The zero-copy counterpart of [`ParsedPacket`]: headers are decoded into
/// small owned structs (they are a few dozen bytes), but the upper-layer
/// payload stays a subslice of the input. Promote with
/// [`ParsedView::to_owned`] only when the packet outlives the buffer —
/// e.g. telescope retention after filtering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedView<'a> {
    /// The IPv6 fixed header.
    pub header: Ipv6Header,
    /// The decoded transport header.
    pub transport: Transport,
    /// Upper-layer payload (after the transport header), borrowed.
    pub payload: &'a [u8],
    /// Number of extension headers walked to reach the transport.
    pub ext_headers: u8,
}

impl<'a> ParsedView<'a> {
    /// Parses raw IPv6 packet bytes without copying the payload.
    ///
    /// The declared IPv6 payload length must fit in the buffer; extra
    /// trailing bytes (link padding) are ignored. Extension headers
    /// (hop-by-hop, routing, fragment, destination options) are walked so
    /// an extension-headered TCP/UDP/ICMPv6 probe still yields its ports
    /// and fingerprint payload; a non-first fragment (offset ≠ 0) carries
    /// no transport header and decodes as [`Transport::Other`] with the
    /// fragment's inner protocol. Transport checksums are *not* enforced
    /// here — telescopes record damaged probes too — use the per-protocol
    /// `verify_checksum` helpers when validity matters.
    pub fn parse(buf: &'a [u8]) -> Result<ParsedView<'a>, PacketError> {
        let header = Ipv6Header::decode(buf)?;
        let declared = header.payload_len as usize;
        let rest = &buf[IPV6_HEADER_LEN..];
        if declared > rest.len() {
            return Err(PacketError::LengthMismatch {
                what: "IPv6 payload length",
                declared,
                actual: rest.len(),
            });
        }
        let upper = &rest[..declared];

        // Walk the extension-header chain to the real transport protocol.
        // Each step consumes at least 8 bytes, so the walk is bounded by
        // the buffer; MAX_EXT_HEADERS rejects absurd chains early.
        let mut proto = header.next_header.value();
        let mut at = 0usize;
        let mut ext_headers = 0usize;
        let mut offset_fragment = false;
        while ext::is_walkable(proto) && !offset_fragment {
            let remain = &upper[at..];
            if remain.len() < 8 {
                return Err(PacketError::Truncated {
                    what: "IPv6 extension header",
                    need: 8,
                    have: remain.len(),
                });
            }
            ext_headers += 1;
            if ext_headers > MAX_EXT_HEADERS {
                return Err(PacketError::ExtensionChainTooLong(MAX_EXT_HEADERS));
            }
            let len = if proto == ext::FRAGMENT {
                // Fixed 8 bytes; the offset field decides whether a
                // transport header follows (first fragment) or not.
                let frag_offset = u16::from_be_bytes([remain[2], remain[3]]) >> 3;
                offset_fragment = frag_offset != 0;
                8
            } else {
                8 * (remain[1] as usize + 1)
            };
            if len > remain.len() {
                return Err(PacketError::LengthMismatch {
                    what: "IPv6 extension header length",
                    declared: len,
                    actual: remain.len(),
                });
            }
            proto = remain[0];
            at += len;
        }
        let upper = &upper[at..];

        let (transport, payload) = if offset_fragment {
            (Transport::Other(proto), upper)
        } else {
            match NextHeader::from_value(proto) {
                NextHeader::Icmpv6 => {
                    let (h, p) = Icmpv6Header::decode(upper)?;
                    (Transport::Icmpv6(h), p)
                }
                NextHeader::Tcp => {
                    let (h, p) = TcpHeader::decode(upper)?;
                    (Transport::Tcp(h), p)
                }
                NextHeader::Udp => {
                    let (h, p) = UdpHeader::decode(upper)?;
                    (Transport::Udp(h), p)
                }
                NextHeader::Other(v) => (Transport::Other(v), upper),
            }
        };
        Ok(ParsedView {
            header,
            transport,
            payload,
            ext_headers: ext_headers.min(u8::MAX as usize) as u8,
        })
    }

    /// Promotes the view to an owned [`ParsedPacket`], copying the payload.
    pub fn to_owned(&self) -> ParsedPacket {
        ParsedPacket {
            header: self.header,
            transport: self.transport.clone(),
            payload: Bytes::copy_from_slice(self.payload),
            ext_headers: self.ext_headers,
        }
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.dst_port),
            Transport::Udp(h) => Some(h.dst_port),
            _ => None,
        }
    }

    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.src_port),
            Transport::Udp(h) => Some(h.src_port),
            _ => None,
        }
    }

    /// Precomputed 64-bit hash of the source address — the FxHash value
    /// downstream source-keyed tables (sessionizer, intern table) derive
    /// from this packet, carried on the view so batch consumers can
    /// pre-touch buckets.
    #[inline]
    pub fn source_hash(&self) -> u64 {
        hash_u128(u128::from(self.header.src))
    }
}

/// Batched parse kernel: parses every record body in `run`, filling `out`
/// (cleared first, like [`crate::pcap::SliceReader::next_chunk`]) with
/// `(run_index, view)` pairs for records that parse and returning how many
/// failed. One tight loop over a record run keeps the header-decode
/// word loads hot — this is the form the ingest benchmark drives.
pub fn parse_run<'a>(run: &[RecordView<'a>], out: &mut Vec<(usize, ParsedView<'a>)>) -> usize {
    let mut failed = 0usize;
    out.clear();
    out.reserve(run.len());
    for (i, rec) in run.iter().enumerate() {
        match ParsedView::parse(rec.data) {
            Ok(view) => out.push((i, view)),
            Err(_) => failed += 1,
        }
    }
    failed
}

impl ParsedPacket {
    /// Parses raw IPv6 packet bytes into owned form — exactly
    /// [`ParsedView::parse`] followed by [`ParsedView::to_owned`].
    pub fn parse(buf: &[u8]) -> Result<ParsedPacket, PacketError> {
        ParsedView::parse(buf).map(|v| v.to_owned())
    }

    /// Destination port, if the transport has ports.
    pub fn dst_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.dst_port),
            Transport::Udp(h) => Some(h.dst_port),
            _ => None,
        }
    }

    /// Source port, if the transport has ports.
    pub fn src_port(&self) -> Option<u16> {
        match &self.transport {
            Transport::Tcp(h) => Some(h.src_port),
            Transport::Udp(h) => Some(h.src_port),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use std::net::Ipv6Addr;

    fn b() -> PacketBuilder {
        PacketBuilder::new(
            "2001:db8::1".parse::<Ipv6Addr>().unwrap(),
            "2001:db8::2".parse::<Ipv6Addr>().unwrap(),
        )
    }

    #[test]
    fn parse_rejects_overdeclared_payload() {
        let mut bytes = b().udp(1, 2, b"hello");
        // Claim 200 bytes of payload.
        bytes[4..6].copy_from_slice(&200u16.to_be_bytes());
        assert!(matches!(
            ParsedPacket::parse(&bytes),
            Err(PacketError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn parse_ignores_link_padding() {
        let mut bytes = b().udp(1, 2, b"hi");
        bytes.extend_from_slice(&[0u8; 6]); // Ethernet-style padding
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(&p.payload[..], b"hi");
    }

    #[test]
    fn other_protocol_is_preserved() {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let mut hdr = crate::ipv6::Ipv6Header::new(src, dst, NextHeader::Other(132), 4);
        let mut bytes = Vec::new();
        hdr.payload_len = 4;
        hdr.encode(&mut bytes);
        bytes.extend_from_slice(&[1, 2, 3, 4]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.transport, Transport::Other(132));
        assert_eq!(&p.payload[..], &[1, 2, 3, 4]);
        assert_eq!(p.dst_port(), None);
    }

    /// Assembles an IPv6 packet whose payload starts with a hand-built
    /// extension-header chain followed by `inner` (transport bytes).
    fn ext_packet(first_nh: u8, chain: &[u8], inner: &[u8]) -> Vec<u8> {
        let src: Ipv6Addr = "2001:db8::1".parse().unwrap();
        let dst: Ipv6Addr = "2001:db8::2".parse().unwrap();
        let hdr = crate::ipv6::Ipv6Header::new(
            src,
            dst,
            NextHeader::from_value(first_nh),
            (chain.len() + inner.len()) as u16,
        );
        let mut bytes = Vec::new();
        hdr.encode(&mut bytes);
        bytes.extend_from_slice(chain);
        bytes.extend_from_slice(inner);
        bytes
    }

    /// A TCP segment (valid checksum) for use behind extension headers.
    fn tcp_segment(src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let mut seg = Vec::new();
        TcpHeader::syn(src_port, dst_port, 7).encode(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            payload,
            &mut seg,
        );
        seg
    }

    #[test]
    fn hop_by_hop_tcp_keeps_ports_and_payload() {
        // Hop-by-hop: next = TCP (6), length 0 (8 bytes total), PadN filler.
        let hbh = [6, 0, 1, 4, 0, 0, 0, 0];
        let bytes = ext_packet(0, &hbh, &tcp_segment(40_000, 443, b"zmap6-probe"));
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.transport.protocol_name(), "TCP");
        assert_eq!(p.src_port(), Some(40_000));
        assert_eq!(p.dst_port(), Some(443));
        assert_eq!(&p.payload[..], b"zmap6-probe");
        assert_eq!(p.ext_headers, 1);
    }

    #[test]
    fn chained_extension_headers_walk_to_the_transport() {
        // Hop-by-hop → destination options (16 bytes) → routing → UDP.
        let mut chain = Vec::new();
        chain.extend_from_slice(&[60, 0, 1, 4, 0, 0, 0, 0]); // hbh, next=dst-opts
        chain.extend_from_slice(&[43, 1, 1, 12, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]); // dst-opts, next=routing
        chain.extend_from_slice(&[17, 0, 0, 0, 0, 0, 0, 0]); // routing, next=UDP
        let mut udp = Vec::new();
        crate::udp::UdpHeader::new(1234, 33_434, 5).encode(
            "2001:db8::1".parse().unwrap(),
            "2001:db8::2".parse().unwrap(),
            b"trace",
            &mut udp,
        );
        let p = ParsedPacket::parse(&ext_packet(0, &chain, &udp)).unwrap();
        assert_eq!(p.transport.protocol_name(), "UDP");
        assert_eq!(p.dst_port(), Some(33_434));
        assert_eq!(&p.payload[..], b"trace");
        assert_eq!(p.ext_headers, 3);
    }

    #[test]
    fn first_fragment_parses_the_transport_header() {
        // Fragment header with offset 0 (first fragment), next = ICMPv6.
        let frag = [58, 0, 0, 0, 0, 0, 0, 1];
        let inner = &b().icmpv6_echo_request(9, 1, b"frag")[40..];
        let p = ParsedPacket::parse(&ext_packet(44, &frag, inner)).unwrap();
        assert_eq!(p.transport.protocol_name(), "ICMPv6");
        assert_eq!(&p.payload[..], b"frag");
        assert_eq!(p.ext_headers, 1);
    }

    #[test]
    fn non_first_fragment_has_no_transport_header() {
        // Offset 1 (in 8-octet units → raw 0x0008), next = TCP: the body is
        // a mid-packet fragment, so no ports can be recovered.
        let frag = [6, 0, 0x00, 0x08, 0, 0, 0, 1];
        let body = [0xaa; 16];
        let p = ParsedPacket::parse(&ext_packet(44, &frag, &body)).unwrap();
        assert_eq!(p.transport, Transport::Other(6));
        assert_eq!(p.dst_port(), None);
        assert_eq!(&p.payload[..], &body[..]);
    }

    #[test]
    fn truncated_extension_header_is_a_typed_error() {
        // Hop-by-hop claiming 24 bytes with only 8 present.
        let hbh = [6, 2, 1, 4, 0, 0, 0, 0];
        let bytes = ext_packet(0, &hbh, &[]);
        assert!(matches!(
            ParsedPacket::parse(&bytes),
            Err(PacketError::LengthMismatch { .. })
        ));
        // Chain cut off before 8 bytes of header exist.
        let bytes = ext_packet(0, &[6, 0, 0], &[]);
        assert!(matches!(
            ParsedPacket::parse(&bytes),
            Err(PacketError::Truncated { .. })
        ));
    }

    #[test]
    fn absurd_extension_chains_are_rejected() {
        // 17 chained hop-by-hop headers (each pointing at another).
        let mut chain = Vec::new();
        for _ in 0..17 {
            chain.extend_from_slice(&[0, 0, 1, 4, 0, 0, 0, 0]);
        }
        let bytes = ext_packet(0, &chain, &[]);
        assert!(matches!(
            ParsedPacket::parse(&bytes),
            Err(PacketError::ExtensionChainTooLong(_))
        ));
    }

    #[test]
    fn protocol_names() {
        let p = ParsedPacket::parse(&b().icmpv6_echo_request(1, 1, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "ICMPv6");
        let p = ParsedPacket::parse(&b().tcp_syn(1, 2, 3, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "TCP");
        let p = ParsedPacket::parse(&b().udp(1, 2, &[])).unwrap();
        assert_eq!(p.transport.protocol_name(), "UDP");
    }
}
