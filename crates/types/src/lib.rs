//! # sixscope-types
//!
//! Foundation types shared by every sixscope crate:
//!
//! * [`prefix::Ipv6Prefix`] — CIDR prefix algebra (containment, splitting,
//!   low-byte addresses, the paper's asymmetric split rule),
//! * [`trie::PrefixTrie`] — binary radix trie with longest-prefix match,
//! * [`time::SimTime`] / [`time::SimDuration`] — simulated wall clock,
//! * [`rng::Xoshiro256pp`] — deterministic, splittable PRNG,
//! * [`parallel::map_indexed`] — order-preserving fork-join map behind the
//!   parallel execution engine (byte-identical at any thread count),
//! * [`asn::Asn`] and network metadata used to label scan sources.
//!
//! Everything here is `std`-only and deterministic; the simulation and the
//! analysis pipeline both build on these types, so they are deliberately
//! small and heavily tested.

pub mod addr;
pub mod asn;
pub mod error;
pub mod intern;
pub mod parallel;
pub mod ports;
pub mod prefix;
pub mod rng;
pub mod time;
pub mod trie;

pub use addr::{iid, nibble, set_nibble, subnet_bits};
pub use asn::{AsInfo, Asn, CountryCode, NetworkType};
pub use error::TypeError;
pub use intern::{FxBuildHasher, FxHasher, InternTable};
pub use parallel::{chunk_ranges, map_indexed, num_threads, THREADS_ENV};
pub use prefix::Ipv6Prefix;
pub use rng::{SplitMix64, Xoshiro256pp};
pub use time::{SimDuration, SimTime};
pub use trie::PrefixTrie;
