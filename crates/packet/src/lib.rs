//! # sixscope-packet
//!
//! Byte-accurate wire formats for the packets a network telescope captures:
//! the IPv6 fixed header, ICMPv6, TCP and UDP — with real Internet checksums
//! over the IPv6 pseudo-header — plus a classic-pcap (LINKTYPE_RAW) reader
//! and writer so captures open in tcpdump/Wireshark.
//!
//! The design follows the smoltcp school: small typed structs with explicit
//! `encode` / `decode` pairs over plain byte slices, no macros, and unsafe
//! confined to the read-only `mmap(2)` backing of [`pcap::MappedPcap`].
//! The simulation produces real packet bytes and the analysis pipeline
//! re-parses them — classification never touches generator-internal state,
//! which keeps the measurement half honest.

pub mod builder;
pub mod checksum;
pub mod error;
pub mod icmpv6;
pub mod ipv6;
pub mod parse;
pub mod pcap;
pub mod tcp;
pub mod udp;

pub use builder::{PacketBuilder, RunEncoder};
pub use error::{MalformedRecord, PacketError};
pub use icmpv6::{Icmpv6Header, Icmpv6Type};
pub use ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
pub use parse::{parse_run, ParsedPacket, ParsedView, Transport};
pub use pcap::{
    MappedPcap, PcapChunks, PcapReader, PcapRecord, PcapWriter, RecordOutcome, RecordView,
    SliceReader, SliceReaderState, ViewOutcome, MAX_RECORD_LEN,
};
pub use tcp::{TcpFlags, TcpHeader, TCP_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};
