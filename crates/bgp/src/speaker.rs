//! A BGP speaker: sessions, import/export policy, origination, propagation.
//!
//! Speakers exchange *wire bytes* — every UPDATE that crosses a simulated
//! link is really encoded and decoded, so the codec is exercised on every
//! propagation step. Policy follows the Gao–Rexford model that shapes the
//! real DFZ: routes learned from customers are exported to everyone; routes
//! learned from peers or providers are exported to customers only; a
//! collector session receives everything and sends nothing.

use crate::attrs::{MpReach, Origin, PathAttributes};
use crate::error::BgpError;
use crate::fsm::SessionFsm;
use crate::message::{BgpMessage, OpenMessage, UpdateMessage};
use crate::rib::{LocRib, PeerId, RibChange, Route, LOCAL_PEER};
use sixscope_types::{Asn, Ipv6Prefix, SimTime};
use std::collections::BTreeSet;
use std::net::Ipv6Addr;

/// Commercial relationship with a peer, deciding import preference and
/// export scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerRelation {
    /// They pay us; routes preferred, exported everywhere.
    Customer,
    /// Settlement-free peer; exported to customers only.
    Peer,
    /// We pay them; least preferred, exported to customers only.
    Provider,
    /// A route collector / looking glass: receives our full view
    /// (like a customer) but never sends routes.
    Collector,
}

impl PeerRelation {
    /// LOCAL_PREF assigned on import (customer > peer > provider).
    fn import_local_pref(self) -> u32 {
        match self {
            PeerRelation::Customer => 200,
            PeerRelation::Peer => 100,
            PeerRelation::Provider => 50,
            PeerRelation::Collector => 0, // collectors never send routes
        }
    }
}

/// Per-peer state inside a speaker.
#[derive(Debug, Clone)]
struct Peer {
    asn: Asn,
    relation: PeerRelation,
    fsm: SessionFsm,
    /// Set once the initial full-table dump has been sent.
    synced: bool,
}

/// Outgoing wire traffic: `(peer, encoded message bytes)`.
pub type Outbox = Vec<(PeerId, Vec<u8>)>;

/// A BGP router with peers, a Loc-RIB and origination.
#[derive(Debug, Clone)]
pub struct Speaker {
    asn: Asn,
    bgp_id: u32,
    next_hop: Ipv6Addr,
    peers: Vec<Peer>,
    rib: LocRib,
    originated: BTreeSet<Ipv6Prefix>,
    /// Communities attached to locally originated routes (e.g.
    /// [`crate::attrs::NO_EXPORT`] to keep an announcement at the
    /// upstream).
    origin_communities: Vec<u32>,
}

impl Speaker {
    /// Creates a speaker for `asn` announcing `next_hop` as its next hop.
    pub fn new(asn: Asn, bgp_id: u32, next_hop: Ipv6Addr) -> Self {
        Speaker {
            asn,
            bgp_id,
            next_hop,
            peers: Vec::new(),
            rib: LocRib::new(),
            originated: BTreeSet::new(),
            origin_communities: Vec::new(),
        }
    }

    /// Sets the communities attached to future locally originated routes.
    pub fn set_origin_communities(&mut self, communities: Vec<u32>) {
        self.origin_communities = communities;
    }

    /// This speaker's ASN.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Read access to the Loc-RIB (the looking-glass view of this router).
    pub fn rib(&self) -> &LocRib {
        &self.rib
    }

    /// Registers a peer; returns its id. Sessions start Idle.
    pub fn add_peer(&mut self, peer_asn: Asn, relation: PeerRelation) -> PeerId {
        let id = self.peers.len() as PeerId;
        self.peers.push(Peer {
            asn: peer_asn,
            relation,
            fsm: SessionFsm::new(OpenMessage::standard(self.asn, self.bgp_id)),
            synced: false,
        });
        id
    }

    /// Relation of a peer.
    pub fn peer_relation(&self, peer: PeerId) -> PeerRelation {
        self.peers[peer as usize].relation
    }

    /// True once the session with `peer` is Established.
    pub fn peer_established(&self, peer: PeerId) -> bool {
        self.peers[peer as usize].fsm.is_established()
    }

    /// Starts the session toward `peer`; returns wire bytes to deliver.
    pub fn start_peer(&mut self, peer: PeerId, now: SimTime) -> Outbox {
        let msgs = self.peers[peer as usize].fsm.start(now);
        self.peers[peer as usize].synced = false;
        msgs.into_iter().map(|m| (peer, m.encode())).collect()
    }

    /// Handles received wire bytes from `peer`; returns traffic to send
    /// (possibly to *other* peers, when an UPDATE propagates).
    pub fn handle_bytes(
        &mut self,
        peer: PeerId,
        now: SimTime,
        mut bytes: &[u8],
    ) -> Result<Outbox, BgpError> {
        let mut out = Outbox::new();
        while !bytes.is_empty() {
            let (msg, rest) = BgpMessage::decode(bytes)?;
            bytes = rest;
            out.extend(self.handle_message(peer, now, &msg)?);
        }
        Ok(out)
    }

    fn handle_message(
        &mut self,
        peer: PeerId,
        now: SimTime,
        msg: &BgpMessage,
    ) -> Result<Outbox, BgpError> {
        let was_established = self.peers[peer as usize].fsm.is_established();
        let replies = match self.peers[peer as usize].fsm.handle(now, msg) {
            Ok(r) => r,
            Err(e) => {
                // Session death: flush routes learned from this peer.
                let changes = self.rib.drop_peer(peer);
                let mut out: Outbox = changes
                    .into_iter()
                    .flat_map(|c| self.propagate_change(&c, peer, now))
                    .collect();
                out.retain(|(p, _)| self.peers[*p as usize].fsm.is_established());
                // The error is surfaced; any withdraw traffic still flows.
                return if out.is_empty() { Err(e) } else { Ok(out) };
            }
        };
        let mut out: Outbox = replies.into_iter().map(|m| (peer, m.encode())).collect();
        // First transition into Established: send the initial table.
        if !was_established && self.peers[peer as usize].fsm.is_established() {
            out.extend(self.initial_table_for(peer, now));
        }
        if let BgpMessage::Update(update) = msg {
            out.extend(self.process_update(peer, now, update)?);
        }
        Ok(out)
    }

    /// Advances all session timers; returns keepalive traffic. Peers whose
    /// hold timer expired have their routes flushed (withdrawals propagate).
    pub fn tick(&mut self, now: SimTime) -> Outbox {
        let mut out = Outbox::new();
        for id in 0..self.peers.len() as PeerId {
            match self.peers[id as usize].fsm.tick(now) {
                Ok(msgs) => out.extend(msgs.into_iter().map(|m| (id, m.encode()))),
                Err(_) => {
                    let changes = self.rib.drop_peer(id);
                    for c in changes {
                        out.extend(self.propagate_change(&c, id, now));
                    }
                }
            }
        }
        out.retain(|(p, _)| self.peers[*p as usize].fsm.is_established());
        out
    }

    /// Originates `prefix` from this AS; returns announcement traffic.
    pub fn announce(&mut self, prefix: Ipv6Prefix, now: SimTime) -> Outbox {
        self.originated.insert(prefix);
        let route = Route {
            prefix,
            next_hop: self.next_hop,
            as_path: vec![],
            origin: Origin::Igp,
            med: 0,
            local_pref: 1000, // own routes always win locally
            communities: self.origin_communities.clone(),
            learned_from: LOCAL_PEER,
            learned_at: now,
        };
        let change = self.rib.insert(route);
        self.propagate_change(&change, LOCAL_PEER, now)
    }

    /// Withdraws an originated prefix; returns withdrawal traffic.
    pub fn withdraw(&mut self, prefix: Ipv6Prefix, now: SimTime) -> Outbox {
        self.originated.remove(&prefix);
        let change = self.rib.withdraw(prefix, LOCAL_PEER);
        self.propagate_change(&change, LOCAL_PEER, now)
    }

    /// Processes a received UPDATE: import policy, RIB, propagation.
    fn process_update(
        &mut self,
        peer: PeerId,
        now: SimTime,
        update: &UpdateMessage,
    ) -> Result<Outbox, BgpError> {
        let mut out = Outbox::new();
        let relation = self.peers[peer as usize].relation;
        if let Some(reach) = &update.attrs.mp_reach {
            // Loop prevention: drop paths containing our own ASN.
            if !update.attrs.as_path.contains(&self.asn) {
                for prefix in &reach.prefixes {
                    let route = Route {
                        prefix: *prefix,
                        next_hop: reach.next_hop,
                        as_path: update.attrs.as_path.clone(),
                        origin: update.attrs.origin.unwrap_or(Origin::Incomplete),
                        med: update.attrs.med.unwrap_or(0),
                        local_pref: relation.import_local_pref(),
                        communities: update.attrs.communities.clone(),
                        learned_from: peer,
                        learned_at: now,
                    };
                    let change = self.rib.insert(route);
                    out.extend(self.propagate_change(&change, peer, now));
                }
            }
        }
        for prefix in &update.attrs.mp_unreach {
            let change = self.rib.withdraw(*prefix, peer);
            out.extend(self.propagate_change(&change, peer, now));
        }
        Ok(out)
    }

    /// Gao–Rexford export test plus RFC 1997 well-known communities: may
    /// the best route learned from `learned_from` be exported to `to_peer`?
    fn may_export_route(&self, route: &Route, to_peer: PeerId) -> bool {
        use crate::attrs::{NO_ADVERTISE, NO_EXPORT};
        if route.communities.contains(&NO_ADVERTISE) {
            return false;
        }
        // NO_EXPORT: keep within the receiving AS — never re-export a
        // *learned* route carrying it (locally originated routes may still
        // go to our own peers, who then stop it).
        if route.communities.contains(&NO_EXPORT) && route.learned_from != LOCAL_PEER {
            return false;
        }
        self.may_export(route.learned_from, to_peer)
    }

    /// Gao–Rexford export test: may the best route learned from
    /// `learned_from` be exported to `to_peer`?
    fn may_export(&self, learned_from: PeerId, to_peer: PeerId) -> bool {
        if learned_from == to_peer {
            return false; // never echo back
        }
        if self.peers[to_peer as usize].relation == PeerRelation::Collector {
            return true; // collectors see the full view
        }
        let from_rel = if learned_from == LOCAL_PEER {
            None
        } else {
            Some(self.peers[learned_from as usize].relation)
        };
        match from_rel {
            None | Some(PeerRelation::Customer) => true,
            Some(PeerRelation::Peer) | Some(PeerRelation::Provider) => {
                self.peers[to_peer as usize].relation == PeerRelation::Customer
            }
            Some(PeerRelation::Collector) => false, // collectors never send
        }
    }

    fn export_update(&self, route: &Route) -> UpdateMessage {
        let mut as_path = Vec::with_capacity(route.as_path.len() + 1);
        as_path.push(self.asn);
        as_path.extend_from_slice(&route.as_path);
        UpdateMessage {
            attrs: PathAttributes {
                origin: Some(route.origin),
                as_path,
                med: None,
                local_pref: None,
                communities: route.communities.clone(),
                mp_reach: Some(MpReach {
                    next_hop: self.next_hop,
                    prefixes: vec![route.prefix],
                }),
                mp_unreach: vec![],
            },
        }
    }

    fn withdraw_update(&self, prefix: Ipv6Prefix) -> UpdateMessage {
        UpdateMessage {
            attrs: PathAttributes {
                mp_unreach: vec![prefix],
                ..Default::default()
            },
        }
    }

    fn propagate_change(&mut self, change: &RibChange, cause: PeerId, _now: SimTime) -> Outbox {
        let mut out = Outbox::new();
        match change {
            RibChange::NoChange => {}
            RibChange::NewBest(route) => {
                let msg = BgpMessage::Update(self.export_update(route));
                let bytes = msg.encode();
                for to in 0..self.peers.len() as PeerId {
                    if self.peers[to as usize].fsm.is_established()
                        && self.peers[to as usize].synced
                        && self.may_export_route(route, to)
                        // Don't announce into the AS that gave us the path.
                        && !route.as_path.contains(&self.peers[to as usize].asn)
                    {
                        out.push((to, bytes.clone()));
                    }
                }
            }
            RibChange::Withdrawn(prefix) => {
                // A withdrawal goes to every synced peer we might have
                // announced to — over-withdrawing is harmless, under-
                // withdrawing leaves ghost routes.
                let msg = BgpMessage::Update(self.withdraw_update(*prefix));
                let bytes = msg.encode();
                for to in 0..self.peers.len() as PeerId {
                    if to != cause
                        && self.peers[to as usize].fsm.is_established()
                        && self.peers[to as usize].synced
                    {
                        out.push((to, bytes.clone()));
                    }
                }
            }
        }
        out
    }

    /// Sends the current exportable table to a freshly established peer.
    fn initial_table_for(&mut self, peer: PeerId, _now: SimTime) -> Outbox {
        self.peers[peer as usize].synced = true;
        let mut out = Outbox::new();
        let routes: Vec<Route> = self
            .rib
            .best_routes()
            .into_iter()
            .map(|(_, r)| r.clone())
            .collect();
        for route in routes {
            if self.may_export_route(&route, peer)
                && !route.as_path.contains(&self.peers[peer as usize].asn)
            {
                out.push((
                    peer,
                    BgpMessage::Update(self.export_update(&route)).encode(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// A tiny two-speaker harness delivering bytes instantly.
    struct Pair {
        a: Speaker,
        b: Speaker,
        a_peer: PeerId, // id of b in a
        b_peer: PeerId, // id of a in b
    }

    impl Pair {
        fn new(rel_ab: PeerRelation, rel_ba: PeerRelation) -> Pair {
            let mut a = Speaker::new(Asn(64500), 1, "2001:db8:f00::1".parse().unwrap());
            let mut b = Speaker::new(Asn(64501), 2, "2001:db8:f00::2".parse().unwrap());
            let a_peer = a.add_peer(Asn(64501), rel_ab);
            let b_peer = b.add_peer(Asn(64500), rel_ba);
            Pair {
                a,
                b,
                a_peer,
                b_peer,
            }
        }

        /// Ping-pongs traffic until quiescent; returns rounds taken.
        fn establish(&mut self, now: SimTime) {
            let mut to_b = self.a.start_peer(self.a_peer, now);
            let mut to_a = self.b.start_peer(self.b_peer, now);
            for _ in 0..8 {
                if to_a.is_empty() && to_b.is_empty() {
                    break;
                }
                let mut next_to_a = Vec::new();
                for (_, bytes) in to_b.drain(..) {
                    next_to_a.extend(self.b.handle_bytes(self.b_peer, now, &bytes).unwrap());
                }
                let mut next_to_b = Vec::new();
                for (_, bytes) in to_a.drain(..) {
                    next_to_b.extend(self.a.handle_bytes(self.a_peer, now, &bytes).unwrap());
                }
                to_a = next_to_a;
                to_b = next_to_b;
            }
            assert!(self.a.peer_established(self.a_peer));
            assert!(self.b.peer_established(self.b_peer));
        }

        /// Delivers an outbox produced by `a` into `b` (all traffic flows on
        /// the single link), returning b's responses.
        fn a_to_b(&mut self, out: Outbox, now: SimTime) -> Outbox {
            let mut responses = Outbox::new();
            for (_, bytes) in out {
                responses.extend(self.b.handle_bytes(self.b_peer, now, &bytes).unwrap());
            }
            responses
        }
    }

    #[test]
    fn sessions_establish_over_wire_bytes() {
        let mut pair = Pair::new(PeerRelation::Customer, PeerRelation::Provider);
        pair.establish(SimTime::EPOCH);
    }

    #[test]
    fn announcement_installs_route_at_peer() {
        let mut pair = Pair::new(PeerRelation::Peer, PeerRelation::Peer);
        let now = SimTime::EPOCH;
        pair.establish(now);
        let out = pair.a.announce(p("2001:db8::/32"), now);
        assert_eq!(out.len(), 1, "one update to the single peer");
        pair.a_to_b(out, now);
        let route = pair
            .b
            .rib()
            .best(&p("2001:db8::/32"))
            .expect("route installed");
        assert_eq!(route.as_path, vec![Asn(64500)]);
        // Data-plane reachability follows.
        assert!(pair
            .b
            .rib()
            .lookup("2001:db8::1".parse().unwrap())
            .is_some());
    }

    #[test]
    fn withdrawal_removes_route_at_peer() {
        let mut pair = Pair::new(PeerRelation::Peer, PeerRelation::Peer);
        let now = SimTime::EPOCH;
        pair.establish(now);
        let out = pair.a.announce(p("2001:db8::/32"), now);
        pair.a_to_b(out, now);
        let out = pair.a.withdraw(
            p("2001:db8::/32"),
            now + sixscope_types::SimDuration::secs(5),
        );
        assert_eq!(out.len(), 1);
        pair.a_to_b(out, now);
        assert!(pair.b.rib().best(&p("2001:db8::/32")).is_none());
    }

    #[test]
    fn routes_announced_before_establishment_flow_in_initial_table() {
        let mut a = Speaker::new(Asn(64500), 1, "2001:db8:f00::1".parse().unwrap());
        let mut b = Speaker::new(Asn(64501), 2, "2001:db8:f00::2".parse().unwrap());
        let now = SimTime::EPOCH;
        // Announce before any peer exists/establishes.
        let out = a.announce(p("2001:db8::/32"), now);
        assert!(out.is_empty(), "no established peers yet");
        let a_peer = a.add_peer(Asn(64501), PeerRelation::Peer);
        let b_peer = b.add_peer(Asn(64500), PeerRelation::Peer);
        // Establish manually.
        let mut to_b = a.start_peer(a_peer, now);
        let mut to_a = b.start_peer(b_peer, now);
        for _ in 0..8 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            let mut nta = Vec::new();
            for (_, bytes) in to_b.drain(..) {
                nta.extend(b.handle_bytes(b_peer, now, &bytes).unwrap());
            }
            let mut ntb = Vec::new();
            for (_, bytes) in to_a.drain(..) {
                ntb.extend(a.handle_bytes(a_peer, now, &bytes).unwrap());
            }
            to_a = nta;
            to_b = ntb;
        }
        assert!(
            b.rib().best(&p("2001:db8::/32")).is_some(),
            "initial table synced"
        );
    }

    #[test]
    fn own_asn_in_path_is_rejected() {
        let mut pair = Pair::new(PeerRelation::Peer, PeerRelation::Peer);
        let now = SimTime::EPOCH;
        pair.establish(now);
        // Hand-craft an update whose path already contains b's ASN.
        let update = UpdateMessage {
            attrs: PathAttributes {
                origin: Some(Origin::Igp),
                as_path: vec![Asn(64500), Asn(64501)],
                mp_reach: Some(MpReach {
                    next_hop: "2001:db8:f00::1".parse().unwrap(),
                    prefixes: vec![p("2001:db8::/32")],
                }),
                ..Default::default()
            },
        };
        let bytes = BgpMessage::Update(update).encode();
        pair.b.handle_bytes(pair.b_peer, now, &bytes).unwrap();
        assert!(
            pair.b.rib().best(&p("2001:db8::/32")).is_none(),
            "looped path dropped"
        );
    }

    #[test]
    fn gao_rexford_peer_routes_do_not_reach_other_peers() {
        // b has two peers: a (peer) and c (peer). A route learned from a
        // must NOT be exported to c; a route from a customer must.
        let now = SimTime::EPOCH;
        let mut b = Speaker::new(Asn(20), 20, "2001:db8:f00::20".parse().unwrap());
        let from_peer = b.add_peer(Asn(10), PeerRelation::Peer);
        let to_peer = b.add_peer(Asn(30), PeerRelation::Peer);
        let to_customer = b.add_peer(Asn(40), PeerRelation::Customer);
        // Force sessions up by exchanging with throwaway speakers.
        let mut others: Vec<(Speaker, PeerId)> =
            [(10u32, from_peer), (30, to_peer), (40, to_customer)]
                .iter()
                .map(|&(asn, _)| {
                    let mut s = Speaker::new(Asn(asn), asn, "2001:db8:f00::ff".parse().unwrap());
                    let pid = s.add_peer(Asn(20), PeerRelation::Peer);
                    (s, pid)
                })
                .collect();
        for (i, (other, opid)) in others.iter_mut().enumerate() {
            let bpid = i as PeerId;
            let mut to_other = b.start_peer(bpid, now);
            let mut to_b = other.start_peer(*opid, now);
            for _ in 0..8 {
                if to_other.is_empty() && to_b.is_empty() {
                    break;
                }
                let mut ntb = Vec::new();
                for (_, bytes) in to_other.drain(..) {
                    ntb.extend(other.handle_bytes(*opid, now, &bytes).unwrap());
                }
                let mut nto = Vec::new();
                for (_, bytes) in to_b.drain(..) {
                    nto.extend(b.handle_bytes(bpid, now, &bytes).unwrap());
                }
                to_other = nto;
                to_b = ntb;
            }
            assert!(b.peer_established(bpid));
        }
        // Deliver a route from the peer AS10.
        let update = UpdateMessage {
            attrs: PathAttributes {
                origin: Some(Origin::Igp),
                as_path: vec![Asn(10)],
                mp_reach: Some(MpReach {
                    next_hop: "2001:db8:f00::10".parse().unwrap(),
                    prefixes: vec![p("2001:db8::/32")],
                }),
                ..Default::default()
            },
        };
        let out = b
            .handle_bytes(from_peer, now, &BgpMessage::Update(update).encode())
            .unwrap();
        let targets: Vec<PeerId> = out.iter().map(|(p, _)| *p).collect();
        assert!(targets.contains(&to_customer), "customer gets peer routes");
        assert!(!targets.contains(&to_peer), "other peers do not");
    }

    #[test]
    fn collector_receives_but_never_sends() {
        let now = SimTime::EPOCH;
        let mut transit = Speaker::new(Asn(20), 20, "2001:db8:f00::20".parse().unwrap());
        let col_id = transit.add_peer(Asn(99), PeerRelation::Collector);
        let mut collector = Speaker::new(Asn(99), 99, "2001:db8:f00::99".parse().unwrap());
        let tr_id = collector.add_peer(Asn(20), PeerRelation::Provider);
        let mut to_col = transit.start_peer(col_id, now);
        let mut to_tr = collector.start_peer(tr_id, now);
        for _ in 0..8 {
            if to_col.is_empty() && to_tr.is_empty() {
                break;
            }
            let mut ntt = Vec::new();
            for (_, bytes) in to_col.drain(..) {
                ntt.extend(collector.handle_bytes(tr_id, now, &bytes).unwrap());
            }
            let mut ntc = Vec::new();
            for (_, bytes) in to_tr.drain(..) {
                ntc.extend(transit.handle_bytes(col_id, now, &bytes).unwrap());
            }
            to_col = ntc;
            to_tr = ntt;
        }
        assert!(transit.peer_established(col_id));
        // Transit originates: collector must receive it.
        let out = transit.announce(p("2001:db8::/32"), now);
        assert!(out.iter().any(|(pid, _)| *pid == col_id));
    }
}

#[cfg(test)]
mod community_tests {
    use super::*;
    use crate::attrs::{NO_ADVERTISE, NO_EXPORT};

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    /// Builds an established chain a ── b ── c (all plain peers) and
    /// returns the speakers plus peer ids (id of the *other* side in each).
    fn chain() -> (Speaker, Speaker, Speaker, PeerId, PeerId, PeerId, PeerId) {
        let now = SimTime::EPOCH;
        let mut a = Speaker::new(Asn(1), 1, "2001:db8:f::1".parse().unwrap());
        let mut b = Speaker::new(Asn(2), 2, "2001:db8:f::2".parse().unwrap());
        let mut c = Speaker::new(Asn(3), 3, "2001:db8:f::3".parse().unwrap());
        // b is a's provider so the route propagates onward to c (customer
        // routes export everywhere).
        let a_b = a.add_peer(Asn(2), PeerRelation::Provider);
        let b_a = b.add_peer(Asn(1), PeerRelation::Customer);
        let b_c = b.add_peer(Asn(3), PeerRelation::Peer);
        let c_b = c.add_peer(Asn(2), PeerRelation::Peer);
        // Establish a-b.
        pump(&mut a, a_b, &mut b, b_a, now);
        // Establish b-c.
        pump(&mut b, b_c, &mut c, c_b, now);
        (a, b, c, a_b, b_a, b_c, c_b)
    }

    fn pump(x: &mut Speaker, x_peer: PeerId, y: &mut Speaker, y_peer: PeerId, now: SimTime) {
        let mut to_y = x.start_peer(x_peer, now);
        let mut to_x = y.start_peer(y_peer, now);
        for _ in 0..8 {
            if to_x.is_empty() && to_y.is_empty() {
                break;
            }
            let mut next_to_x = Vec::new();
            for (_, bytes) in to_y.drain(..) {
                next_to_x.extend(y.handle_bytes(y_peer, now, &bytes).unwrap());
            }
            let mut next_to_y = Vec::new();
            for (_, bytes) in to_x.drain(..) {
                next_to_y.extend(x.handle_bytes(x_peer, now, &bytes).unwrap());
            }
            // Route any messages addressed to other peers nowhere (chain
            // tests deliver those explicitly).
            to_x = next_to_x
                .into_iter()
                .filter(|(p, _)| *p == y_peer)
                .collect();
            to_y = next_to_y
                .into_iter()
                .filter(|(p, _)| *p == x_peer)
                .collect();
        }
        assert!(x.peer_established(x_peer) && y.peer_established(y_peer));
    }

    #[test]
    fn no_export_stops_at_the_first_hop() {
        let (mut a, mut b, mut c, _a_b, b_a, b_c, c_b) = chain();
        let now = SimTime::from_secs(100);
        a.set_origin_communities(vec![NO_EXPORT]);
        let out = a.announce(p("2001:db8::/32"), now);
        assert_eq!(out.len(), 1, "a exports its own route to b");
        // Deliver to b; b must install it but NOT forward to c.
        let mut forwarded = Vec::new();
        for (_, bytes) in out {
            forwarded.extend(b.handle_bytes(b_a, now, &bytes).unwrap());
        }
        assert!(b.rib().best(&p("2001:db8::/32")).is_some(), "b installed");
        assert!(
            forwarded.iter().all(|(peer, _)| *peer != b_c),
            "NO_EXPORT route was forwarded to c"
        );
        // Sanity: without the community, the same route does flow to c.
        a.set_origin_communities(vec![]);
        let out = a.announce(p("2001:db9::/32"), now);
        let mut forwarded = Vec::new();
        for (_, bytes) in out {
            forwarded.extend(b.handle_bytes(b_a, now, &bytes).unwrap());
        }
        let to_c: Vec<_> = forwarded
            .into_iter()
            .filter(|(peer, _)| *peer == b_c)
            .collect();
        assert!(!to_c.is_empty(), "plain route must reach c");
        for (_, bytes) in to_c {
            c.handle_bytes(c_b, now, &bytes).unwrap();
        }
        assert!(c.rib().best(&p("2001:db9::/32")).is_some());
    }

    #[test]
    fn no_advertise_never_leaves_the_router() {
        let (mut a, mut b, _c, a_b, b_a, b_c, _c_b) = chain();
        let now = SimTime::from_secs(100);
        // Hand-deliver a NO_ADVERTISE route into b.
        let update = UpdateMessage {
            attrs: PathAttributes {
                origin: Some(Origin::Igp),
                as_path: vec![Asn(1)],
                communities: vec![NO_ADVERTISE],
                mp_reach: Some(MpReach {
                    next_hop: "2001:db8:f::1".parse().unwrap(),
                    prefixes: vec![p("2001:db8::/32")],
                }),
                ..Default::default()
            },
        };
        let forwarded = b
            .handle_bytes(b_a, now, &BgpMessage::Update(update).encode())
            .unwrap();
        assert!(b.rib().best(&p("2001:db8::/32")).is_some());
        assert!(forwarded.iter().all(|(peer, _)| *peer != b_c));
        let _ = (&mut a, a_b);
    }

    #[test]
    fn communities_survive_the_wire() {
        let (mut a, mut b, _c, _a_b, b_a, _b_c, _c_b) = chain();
        let now = SimTime::from_secs(50);
        a.set_origin_communities(vec![0x0001_0002, NO_EXPORT]);
        let out = a.announce(p("2001:db8::/32"), now);
        for (_, bytes) in out {
            let _ = b.handle_bytes(b_a, now, &bytes).unwrap();
        }
        let route = b.rib().best(&p("2001:db8::/32")).unwrap();
        assert_eq!(route.communities, vec![0x0001_0002, NO_EXPORT]);
    }
}
