//! Minimal JSON writer for machine-readable report export.
//!
//! `serde_json` is deliberately not a dependency (the workspace's allowed
//! external crates do not include it), and report structures are simple
//! enough that a small escaping writer suffices. Output is strict JSON:
//! UTF-8, escaped strings, finite numbers (NaN/∞ serialize as `null`).

use std::fmt::Write;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any finite number (non-finite values render as `null`).
    Num(f64),
    /// String (escaped on render).
    Str(String),
    /// Ordered array.
    Arr(Vec<Json>),
    /// Ordered object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience: a string value.
    pub fn s(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Convenience: an integer value.
    pub fn u(value: u64) -> Json {
        Json::Num(value as f64)
    }

    /// Renders to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        write!(out, "{}", *n as i64).unwrap();
                    } else {
                        write!(out, "{n}").unwrap();
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Exports the full set of tables as one JSON document.
pub fn tables_json(a: &crate::Analyzed) -> Json {
    use crate::tables;
    let t2 = tables::table2(a);
    let t3 = tables::table3(a);
    let t4 = tables::table4(a);
    let t5 = tables::table5(a);
    let t6 = tables::table6(a);
    let t7 = tables::table7(a);
    let t8 = tables::table8(a);
    let h = tables::headline(a);
    Json::obj([
        (
            "table2",
            Json::Arr(
                t2.rows
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("protocol", Json::s(r.protocol.name())),
                            ("packets", Json::u(r.packets)),
                            ("packet_pct", Json::Num(r.packet_pct)),
                            ("sessions", Json::u(r.sessions)),
                            ("session_pct", Json::Num(r.session_pct)),
                            ("sources", Json::u(r.sources)),
                            ("source_pct", Json::Num(r.source_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "table3",
            Json::Arr(
                t3.iter()
                    .map(|r| {
                        Json::obj([
                            ("address_type", Json::s(r.address_type.to_string())),
                            ("packets", Json::u(r.packets)),
                            ("packet_pct", Json::Num(r.packet_pct)),
                            ("sources", Json::u(r.sources)),
                            ("source_pct", Json::Num(r.source_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "table4",
            Json::obj([
                (
                    "tcp",
                    Json::Arr(
                        t4.tcp
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("port", Json::s(r.port.to_string())),
                                    ("sessions", Json::u(r.sessions)),
                                    ("pct", Json::Num(r.pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "udp",
                    Json::Arr(
                        t4.udp
                            .iter()
                            .map(|r| {
                                Json::obj([
                                    ("port", Json::s(r.port.to_string())),
                                    ("sessions", Json::u(r.sessions)),
                                    ("pct", Json::Num(r.pct)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "table5a",
            Json::Arr(
                t5.a.iter()
                    .map(|c| {
                        Json::obj([
                            ("telescope", Json::s(c.telescope.to_string())),
                            ("sources128", Json::u(c.sources128)),
                            ("sources64", Json::u(c.sources64)),
                            ("asns", Json::u(c.asns)),
                            ("destinations", Json::u(c.destinations)),
                            ("packets", Json::u(c.packets)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "table6",
            Json::obj([
                ("temporal", class_rows(&t6.temporal)),
                ("network", class_rows(&t6.network)),
            ]),
        ),
        (
            "table7",
            Json::Arr(
                t7.iter()
                    .map(|r| {
                        Json::obj([
                            ("tool", Json::s(r.tool.to_string())),
                            ("scanners", Json::u(r.scanners)),
                            ("scanner_pct", Json::Num(r.scanner_pct)),
                            ("sessions", Json::u(r.sessions)),
                            ("session_pct", Json::Num(r.session_pct)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "table8",
            Json::Arr(
                t8.iter()
                    .map(|r| {
                        Json::obj([
                            ("network_type", Json::s(r.network_type.to_string())),
                            ("without_heavy_hitters", Json::Bool(r.without_heavy_hitters)),
                            ("scanners", Json::u(r.scanners)),
                            ("sessions", Json::u(r.sessions)),
                            ("packets", Json::u(r.packets)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "headline",
            Json::obj([
                (
                    "split_vs_companion_packets_pct",
                    Json::Num(h.split_vs_companion_packets_pct),
                ),
                (
                    "weekly_sources_growth_pct",
                    Json::Num(h.weekly_sources_growth_pct),
                ),
                (
                    "weekly_sessions_growth_pct",
                    Json::Num(h.weekly_sessions_growth_pct),
                ),
                ("one_off_scanner_pct", Json::Num(h.one_off_scanner_pct)),
                ("final_48_session_pct", Json::Num(h.final_48_session_pct)),
                ("heavy_hitters", Json::u(h.heavy_hitters.len() as u64)),
                ("heavy_packet_pct", Json::Num(h.heavy_packet_pct)),
                ("heavy_session_pct", Json::Num(h.heavy_session_pct)),
            ]),
        ),
    ])
}

fn class_rows(rows: &[crate::tables::ClassRow]) -> Json {
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj([
                    ("label", Json::s(r.label.clone())),
                    ("scanners", Json::u(r.scanners)),
                    ("scanner_pct", Json::Num(r.scanner_pct)),
                    ("sessions", Json::u(r.sessions)),
                    ("session_pct", Json::Num(r.session_pct)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::u(42).render(), "42");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::s("tab\there").render(), r#""tab\there""#);
        assert_eq!(Json::s("\u{1}").render(), "\"\\u0001\"");
        assert_eq!(Json::s("日本").render(), "\"日本\"");
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = Json::obj([
            ("xs", Json::Arr(vec![Json::u(1), Json::u(2)])),
            ("name", Json::s("t1")),
            ("inner", Json::obj([("ok", Json::Bool(false))])),
        ]);
        assert_eq!(
            v.render(),
            r#"{"xs":[1,2],"name":"t1","inner":{"ok":false}}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(vec![]).render(), "[]");
        assert_eq!(Json::Obj(vec![]).render(), "{}");
    }
}
