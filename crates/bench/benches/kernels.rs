//! The `kernels` group: packed analysis kernels against their retained
//! naive references, on synthetic inputs sized like the hot paths.
//!
//! Three pairs: the word-packed NIST battery vs the bit-vector reference,
//! the Wiener–Khinchin period detector vs the O(n·lag) ACF scan, and the
//! sorted-projection DBSCAN vs the O(n²) neighbor scan. Each pair asserts
//! equal outputs before timing, so a divergence fails the bench run rather
//! than timing the wrong kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use sixscope_analysis::autocorr::{self, PeriodDetector};
use sixscope_analysis::dbscan::{dbscan, dbscan_indexed};
use sixscope_analysis::nist::{self, BitSequence, FftScratch, NistTest};
use sixscope_types::{SimTime, Xoshiro256pp};
use std::hint::black_box;

/// A random bit sequence about as long as a large Fig. 17 IID train.
fn random_bits(n: usize, seed: u64) -> BitSequence {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut seq = BitSequence::new();
    for _ in 0..n / 64 {
        seq.push_bits(rng.next_u64() as u128, 64);
    }
    seq
}

fn bench_nist(c: &mut Criterion) {
    let seq = random_bits(1 << 18, 7);
    let bits = seq.to_bools();
    // Packed and reference kernels agree bit-for-bit.
    for outcome in seq.run_all() {
        let want = match outcome.test {
            NistTest::Frequency => nist::reference::frequency_p(&bits),
            NistTest::Runs => nist::reference::runs_p(&bits),
            NistTest::Fft => nist::reference::fft_p(&bits),
            NistTest::CusumForward => nist::reference::cusum_p(&bits, false),
            NistTest::CusumBackward => nist::reference::cusum_p(&bits, true),
        };
        assert_eq!(
            outcome.p_value.to_bits(),
            want.to_bits(),
            "{:?}",
            outcome.test
        );
    }
    let mut scratch = FftScratch::new();
    // Warm the twiddle tables so the packed bench times the transform.
    black_box(seq.run_all_with(&mut scratch));
    c.bench_function("kernels_nist_packed", |b| {
        b.iter(|| black_box(seq.run_all_with(&mut scratch)))
    });
    c.bench_function("kernels_nist_reference", |b| {
        b.iter(|| {
            black_box(nist::reference::frequency_p(&bits));
            black_box(nist::reference::runs_p(&bits));
            black_box(nist::reference::fft_p(&bits));
            black_box(nist::reference::cusum_p(&bits, false));
            black_box(nist::reference::cusum_p(&bits, true));
        })
    });
}

/// A session-start train with alternating 4h/7h gaps: the inter-arrival
/// fast path rejects it (7h is no multiple of the 4h median gap), but the
/// hourly activity series repeats every 11 buckets, so detection has to go
/// through the ACF — the path the FFT rewrite targets.
fn periodic_starts(pairs: u64) -> Vec<SimTime> {
    (0..pairs)
        .flat_map(|i| {
            let base = i * 11 * 3600;
            [
                SimTime::from_secs(base),
                SimTime::from_secs(base + 4 * 3600),
            ]
        })
        .collect()
}

fn bench_autocorr(c: &mut Criterion) {
    let det = PeriodDetector::default();
    let starts = periodic_starts(140);
    let fast = det.detect(&starts);
    let slow = autocorr::reference::detect(&det, &starts);
    assert_eq!(
        fast.as_ref().map(|p| p.period),
        slow.as_ref().map(|p| p.period)
    );
    assert!(fast.is_some(), "the synthetic train must have a period");
    c.bench_function("kernels_autocorr_fft", |b| {
        b.iter(|| black_box(det.detect(&starts)))
    });
    c.bench_function("kernels_autocorr_reference", |b| {
        b.iter(|| black_box(autocorr::reference::detect(&det, &starts)))
    });
}

fn bench_dbscan(c: &mut Criterion) {
    let mut rng = Xoshiro256pp::seed_from_u64(13);
    // Forty narrow clumps plus uniform noise, like per-scanner session
    // gaps: the projection window prunes almost every candidate pair.
    let points: Vec<f64> = (0..4000)
        .map(|i| {
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            if i % 4 == 3 {
                u * 1000.0
            } else {
                12.5 + (i % 40) as f64 * 25.0 + u
            }
        })
        .collect();
    let dist = |a: &f64, b: &f64| (a - b).abs();
    assert_eq!(
        dbscan(&points, 0.5, 4, dist),
        dbscan_indexed(&points, 0.5, 4, |&p| p, dist)
    );
    c.bench_function("kernels_dbscan_indexed", |b| {
        b.iter(|| black_box(dbscan_indexed(&points, 0.5, 4, |&p| p, dist)))
    });
    c.bench_function("kernels_dbscan_scan", |b| {
        b.iter(|| black_box(dbscan(&points, 0.5, 4, dist)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_nist, bench_autocorr, bench_dbscan
}
criterion_main!(benches);
