//! Offline stand-in for `serde`.
//!
//! sixscope hand-rolls its JSON output (`core::json`) and never calls
//! serde's serialization machinery; the derives on public types exist for
//! API compatibility. In environments without registry access this path
//! crate supplies the trait names and re-exports no-op derives so all
//! `use serde::{Serialize, Deserialize}` statements and `#[derive(...)]`
//! attributes compile unchanged.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
