//! The full 11-month experiment (§3): control plane, scanners, captures.
//!
//! ```text
//! SplitSchedule ──► BGP Topology ──► Collector events ──► Visibility
//!                                                            │
//! Population ──► per-scanner probe generation (ScanContext) ◄┘
//!                       │
//!                       ▼ (time-ordered delivery, LPM-gated)
//!              Captures T1–T4  +  T4 responses
//! ```
//!
//! Everything is derived from one seed; running the same config twice
//! yields byte-identical captures — *at any worker-thread count*. Probe
//! generation fans scanners out to worker threads (each scanner owns an
//! independent RNG stream pre-split from the master in population order)
//! and the merged probe list is identical to the serial one; delivery
//! shards the time-sorted probe list into contiguous ranges whose per-shard
//! captures concatenate back in order. See DESIGN.md §6 for the full
//! parallel-determinism contract.

use crate::compiled::CompiledVisibility;
use crate::visibility::Visibility;
use crate::world::TumHitlist;
use sixscope_bgp::irr::Route6Registry;
use sixscope_bgp::topology::standard_topology;
use sixscope_bgp::RouteEvent;
use sixscope_packet::{ParsedPacket, RunEncoder};
use sixscope_scanners::population::Population;
use sixscope_scanners::{
    ExperimentLayout, GenScratch, PopulationSpec, Probe, ProbeBatch, ProbeKind, ScanContext,
    ScannerSpec,
};
use sixscope_telescope::{
    respond, Capture, Protocol, ScheduleActionKind, SplitSchedule, TelescopeConfig, TelescopeId,
};
use sixscope_types::{
    chunk_ranges, map_indexed, num_threads, Asn, Ipv6Prefix, SimDuration, SimTime, Xoshiro256pp,
};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::net::Ipv6Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Safety cap on probes per scanner: a mis-scaled spec is clipped (after
/// the time sort, so the kept prefix is the earliest probes) instead of
/// exhausting memory. Overflow is surfaced as
/// [`ExperimentResult::truncated_probes`].
const GENERATION_CAP: usize = 4_000_000;

/// How the upstream treats IRR route6 objects (§3.2).
///
/// The paper's upstreams did not filter: omitting the route object for the
/// /32 "did not impair the visibility of our prefix", and creating one four
/// months in "has no noticeable effect on scanners". The strict variant is
/// the counterfactual ablation: a validating upstream only propagates
/// announcements covered by a registered route6 object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IrrPolicy {
    /// Upstreams accept everything (the paper's reality).
    #[default]
    Open,
    /// Upstreams drop announcements without a covering route6 object.
    RequireRoute6,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Master seed.
    pub seed: u64,
    /// Population scale (1.0 = the paper's ~36k sources / ~51M packets).
    pub scale: f64,
    /// Address plan.
    pub layout: ExperimentLayout,
    /// Upstream IRR filtering policy.
    pub irr_policy: IrrPolicy,
    /// Worker threads for generation and delivery. `None` defers to the
    /// `SIXSCOPE_THREADS` environment variable, then to
    /// [`std::thread::available_parallelism`]; `Some(1)` forces the serial
    /// path. Output is byte-identical at any setting.
    pub threads: Option<usize>,
}

impl ScenarioConfig {
    /// The default reproduction config at a given seed and scale.
    pub fn new(seed: u64, scale: f64) -> Self {
        let mut layout = ExperimentLayout::default_plan();
        // Leave one day of lead time before the schedule starts so stable
        // announcements converge first.
        layout.start = SimTime::EPOCH + SimDuration::days(1);
        let schedule = SplitSchedule::paper(layout.t1, layout.start);
        layout.end = schedule.end();
        ScenarioConfig {
            seed,
            scale,
            layout,
            irr_policy: IrrPolicy::Open,
            threads: None,
        }
    }

    /// The IRR registry as the paper maintained it: T2 and the covering /29
    /// have long-standing objects; the stable companion /33 got its object
    /// four months after the first T1 announcement; nothing else of T1 was
    /// ever registered.
    pub fn paper_route6_registry(&self) -> Route6Registry {
        let mut registry = Route6Registry::new();
        let origin = Asn(64_500);
        let borrower = Asn(64_510);
        registry.register(self.layout.t2, origin, SimTime::EPOCH);
        registry.register(self.layout.covering, borrower, SimTime::EPOCH);
        let schedule = self.schedule();
        // "Four months after its first announcements, we created a route
        // object for the non-split /33 prefix."
        let four_months = self.layout.start + SimDuration::weeks(17);
        registry.register(schedule.companion(), origin, four_months);
        registry
    }

    /// The T1 announcement schedule implied by the layout.
    pub fn schedule(&self) -> SplitSchedule {
        SplitSchedule::paper(self.layout.t1, self.layout.start)
    }
}

/// Per-stage wall-clock seconds of one [`Scenario::run_timed`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScenarioTimings {
    /// Control plane, visibility, hitlist and population construction.
    pub setup: f64,
    /// Probe generation (RNG stream split + parallel generate + merge/sort).
    pub generate: f64,
    /// Delivery into telescope captures (LPM gate + encode + ingest).
    pub deliver: f64,
}

/// Everything the experiment produced.
pub struct ExperimentResult {
    /// The address plan.
    pub layout: ExperimentLayout,
    /// The T1 schedule that was executed.
    pub schedule: SplitSchedule,
    /// Per-telescope captures.
    pub captures: BTreeMap<TelescopeId, Capture>,
    /// Raw collector events.
    pub events: Vec<RouteEvent>,
    /// Folded visibility intervals.
    pub visibility: Visibility,
    /// The scanner population (for metadata joins — *not* used by the
    /// classifiers, which only see captures).
    pub population: Population,
    /// The hitlist model.
    pub hitlist: TumHitlist,
    /// Number of responses T4 sent.
    pub t4_responses: u64,
    /// Probes sent toward unrouted space (dropped in the DFZ).
    pub dropped_unrouted: u64,
    /// Probes discarded by the per-scanner generation cap. Non-zero means
    /// a mis-scaled spec was silently clipped — the `repro` binary logs it.
    pub truncated_probes: u64,
}

impl ExperimentResult {
    /// Convenience: one capture.
    pub fn capture(&self, id: TelescopeId) -> &Capture {
        &self.captures[&id]
    }

    /// Total packets captured across all telescopes.
    pub fn total_packets(&self) -> usize {
        self.captures.values().map(Capture::len).sum()
    }
}

/// The experiment driver.
pub struct Scenario {
    config: ScenarioConfig,
}

/// The scanner-facing world view (implements [`ScanContext`]).
///
/// The view methods answer from pre-compiled snapshots — the epoch tries of
/// [`CompiledVisibility`] and the publication-ordered hitlist — so every
/// query is a binary search handing out a borrowed slice. The snapshots
/// reproduce the naive structures' content *and order* exactly, keeping the
/// scanners' RNG draw sequences unchanged.
struct WorldView {
    visibility: Visibility,
    compiled: CompiledVisibility,
    transitions: Vec<(SimTime, Ipv6Prefix)>,
    hitlist: TumHitlist,
    t4: Ipv6Prefix,
    end: SimTime,
}

impl ScanContext for WorldView {
    fn announced_at(&self, t: SimTime) -> &[Ipv6Prefix] {
        self.compiled.announced_at(t)
    }
    fn announce_events(&self) -> &[(SimTime, Ipv6Prefix)] {
        &self.transitions
    }
    fn hitlist(&self, t: SimTime) -> &[Ipv6Addr] {
        self.hitlist.as_of(t)
    }
    fn responds(&self, addr: Ipv6Addr) -> bool {
        self.t4.contains(addr)
    }
    fn horizon(&self) -> SimTime {
        self.end
    }
}

/// A per-scanner view over the shared [`WorldView`] that threads burst
/// cursors through the epoch/hitlist lookups: one scanner's session starts
/// are time-sorted, so each query usually advances the cursor a step
/// instead of re-running a binary search. Answers are identical to the
/// plain [`WorldView`] methods for any query sequence (the cursors fall
/// back to the search on time regressions), so the RNG draw sequence — and
/// therefore the output bytes — are unchanged.
struct BurstView<'a> {
    world: &'a WorldView,
    epoch_cursor: Cell<usize>,
    hitlist_cursor: Cell<usize>,
}

impl<'a> BurstView<'a> {
    fn new(world: &'a WorldView) -> Self {
        BurstView {
            world,
            epoch_cursor: Cell::new(0),
            hitlist_cursor: Cell::new(0),
        }
    }
}

impl ScanContext for BurstView<'_> {
    fn announced_at(&self, t: SimTime) -> &[Ipv6Prefix] {
        self.world
            .compiled
            .announced_at_cached(t, &self.epoch_cursor)
    }
    fn announce_events(&self) -> &[(SimTime, Ipv6Prefix)] {
        &self.world.transitions
    }
    fn hitlist(&self, t: SimTime) -> &[Ipv6Addr] {
        self.world.hitlist.as_of_cached(t, &self.hitlist_cursor)
    }
    fn responds(&self, addr: Ipv6Addr) -> bool {
        self.world.t4.contains(addr)
    }
    fn horizon(&self) -> SimTime {
        self.world.end
    }
}

/// Reusable per-worker state for the fused generate+deliver path. Pooled
/// behind a mutex and checked out per scanner, so allocations amortize
/// across the whole population instead of recurring per scanner.
#[derive(Default)]
struct FusedScratch {
    scratch: GenScratch,
    batch: ProbeBatch,
    encoder: RunEncoder,
    buf: Vec<u8>,
}

impl Scenario {
    /// Creates a scenario.
    pub fn new(config: ScenarioConfig) -> Self {
        Scenario { config }
    }

    /// Runs the control plane only: executes the schedule against the BGP
    /// topology and returns the collector's events.
    ///
    /// Under [`IrrPolicy::RequireRoute6`] an announcement without a covering
    /// route6 object at announcement time is rejected at the upstream and
    /// never propagates (the counterfactual the paper's upstreams did not
    /// apply).
    pub fn run_control_plane(&self) -> Vec<RouteEvent> {
        let layout = &self.config.layout;
        let origin = Asn(64_500);
        let borrower = Asn(64_510);
        let collector = Asn(64_999);
        let registry = self.config.paper_route6_registry();
        let accepts = |prefix: &sixscope_types::Ipv6Prefix, asn: Asn, at: SimTime| match self
            .config
            .irr_policy
        {
            IrrPolicy::Open => true,
            IrrPolicy::RequireRoute6 => registry.is_registered(prefix, asn, at),
        };
        let mut topo = standard_topology(origin, borrower, collector, SimTime::EPOCH);
        // Stable announcements: T2 (13 years announced) and the covering
        // /29 that hides T3/T4.
        let lead = SimTime::EPOCH + SimDuration::hours(1);
        if accepts(&layout.t2, origin, lead) {
            topo.announce(origin, layout.t2, lead);
        }
        if accepts(&layout.covering, borrower, lead) {
            topo.announce(borrower, layout.covering, lead);
        }
        topo.run_until(lead + SimDuration::mins(10));
        // The T1 schedule.
        let schedule = self.config.schedule();
        for action in schedule.actions() {
            topo.run_until(action.at);
            match action.kind {
                ScheduleActionKind::Announce => {
                    if accepts(&action.prefix, origin, action.at) {
                        topo.announce(origin, action.prefix, action.at);
                    }
                }
                ScheduleActionKind::Withdraw => topo.withdraw(origin, action.prefix, action.at),
            }
        }
        topo.run_until(layout.end + SimDuration::hours(1));
        assert_eq!(topo.in_flight(), 0, "control plane did not converge");
        topo.collector().events().to_vec()
    }

    /// Runs the full experiment.
    pub fn run(&self) -> ExperimentResult {
        self.run_timed().0
    }

    /// Runs the full experiment and reports per-stage wall-clock times.
    ///
    /// This is the fused fast path: each worker generates one scanner's
    /// probes into a columnar [`ProbeBatch`] and immediately streams the
    /// time-sorted batch through the LPM gate into per-(scanner, telescope)
    /// capture segments, which a key-sorted merge then splices back into
    /// the exact global delivery order ([`Capture::merge_time_sorted`]).
    /// Output is byte-identical to [`Scenario::run_reference_timed`] — the
    /// retained per-probe staged path — at any thread count; the
    /// equivalence is pinned by the `fused_matches_reference_path` test
    /// here and the property tests in `crates/sim/tests/`.
    ///
    /// Timings are observational only — they never feed back into the
    /// simulation, so the result stays byte-identical to [`Scenario::run`].
    /// Because generation and delivery interleave per scanner, the
    /// generate/deliver split is attributed from per-stage nanosecond
    /// accumulators prorated over the fused wall time (exact at one
    /// thread, a faithful fraction at more).
    pub fn run_timed(&self) -> (ExperimentResult, ScenarioTimings) {
        let stage_start = std::time::Instant::now();
        let (layout, events, population, world, threads) = self.setup();
        let setup_secs = stage_start.elapsed().as_secs_f64();
        let stage_start = std::time::Instant::now();

        // RNG streams are split from the master *serially in population
        // order* (split mutates the master) before fanning out.
        let mut master = Xoshiro256pp::seed_from_u64(self.config.seed ^ 0x5ca_0b0e5);
        let streams: Vec<Xoshiro256pp> = population
            .scanners
            .iter()
            .map(|spec| master.split(&format!("scanner-{}", spec.id)))
            .collect();
        let gen_nanos = AtomicU64::new(0);
        let del_nanos = AtomicU64::new(0);
        let pool: Mutex<Vec<FusedScratch>> = Mutex::new(Vec::new());
        type ScannerResult = ([Capture; 4], u64, u64, u64);
        let per_scanner: Vec<ScannerResult> =
            map_indexed(threads, &population.scanners, |i, spec| {
                let mut fs = pool.lock().unwrap().pop().unwrap_or_default();
                let mut rng = streams[i].clone();
                let view = BurstView::new(&world);

                let t0 = std::time::Instant::now();
                spec.generate_into(&view, &mut rng, &mut fs.scratch, &mut fs.batch);
                fs.batch.sort_by_ts();
                let truncated = fs.batch.truncate_sorted(GENERATION_CAP);
                gen_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);

                let t0 = std::time::Instant::now();
                let mut captures = Self::capture_array(&layout);
                let mut t4_responses = 0u64;
                let mut dropped_unrouted = 0u64;
                let lpm_cursor = Cell::new(0);
                let routed_hint = Cell::new(None);
                for &row in fs.batch.sorted() {
                    let row = row as usize;
                    let (ts, dst) = (fs.batch.ts(row), fs.batch.dst(row));
                    // The DFZ test: is the destination covered by a visible
                    // prefix at send time? (Propagation delay for the data
                    // path is negligible at our one-second resolution.)
                    if !world
                        .compiled
                        .routed_cached(dst, ts, &lpm_cursor, &routed_hint)
                    {
                        dropped_unrouted += 1;
                        continue;
                    }
                    let Some(telescope) = self.telescope_for(&layout, dst) else {
                        continue; // routed, but not into observed space
                    };
                    if telescope == TelescopeId::T4 {
                        // T4 answers probes: its responder consumes wire
                        // bytes, so this (small) telescope keeps the
                        // encode+parse round trip.
                        fs.batch.kind(row).encode_run(
                            &mut fs.encoder,
                            fs.batch.src(row),
                            dst,
                            fs.batch.payload(row),
                            &mut fs.buf,
                        );
                        let recorded = captures[telescope as usize].ingest(ts, &fs.buf);
                        if recorded {
                            if let Ok(parsed) = ParsedPacket::parse(&fs.buf) {
                                if respond(&parsed).is_some() {
                                    t4_responses += 1;
                                }
                            }
                        }
                        continue;
                    }
                    // Silent telescopes only retain decoded fields, all of
                    // which the batch already holds — encoding to wire
                    // bytes and parsing them back would reproduce exactly
                    // these values (pinned by the fused-vs-reference
                    // equivalence tests).
                    let (protocol, src_port, dst_port) = match fs.batch.kind(row) {
                        ProbeKind::Icmp { .. } => (Protocol::Icmpv6, None, None),
                        ProbeKind::Tcp {
                            src_port, dst_port, ..
                        } => (Protocol::Tcp, Some(src_port), Some(dst_port)),
                        ProbeKind::Udp { src_port, dst_port } => {
                            (Protocol::Udp, Some(src_port), Some(dst_port))
                        }
                    };
                    captures[telescope as usize].ingest_fields(
                        ts,
                        fs.batch.src(row),
                        dst,
                        protocol,
                        src_port,
                        dst_port,
                        fs.batch.payload(row),
                    );
                }
                del_nanos.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);

                pool.lock().unwrap().push(fs);
                (captures, t4_responses, dropped_unrouted, truncated)
            });
        let fused_secs = stage_start.elapsed().as_secs_f64();
        let stage_start = std::time::Instant::now();

        // Merge: collect each telescope's per-scanner segments in
        // population order and splice them back into global time order.
        let mut segments: [Vec<Capture>; 4] =
            std::array::from_fn(|_| Vec::with_capacity(per_scanner.len()));
        let mut t4_responses = 0u64;
        let mut dropped_unrouted = 0u64;
        let mut truncated_probes = 0u64;
        for (scanner_captures, scanner_t4, scanner_dropped, scanner_truncated) in per_scanner {
            for (segs, capture) in segments.iter_mut().zip(scanner_captures) {
                segs.push(capture);
            }
            t4_responses += scanner_t4;
            dropped_unrouted += scanner_dropped;
            truncated_probes += scanner_truncated;
        }
        let mut captures = Self::fresh_captures(&layout);
        for (&id, segs) in TelescopeId::ALL.iter().zip(segments) {
            captures
                .get_mut(&id)
                .expect("telescope exists")
                .merge_time_sorted(segs);
        }
        let merge_secs = stage_start.elapsed().as_secs_f64();
        if std::env::var_os("SIXSCOPE_STAGE_DEBUG").is_some() {
            eprintln!(
                "fused={fused_secs:.3} gen_acc={:.3} del_acc={:.3} merge={merge_secs:.3}",
                gen_nanos.load(Ordering::Relaxed) as f64 / 1e9,
                del_nanos.load(Ordering::Relaxed) as f64 / 1e9,
            );
        }

        // Prorate the fused wall time over the measured per-stage work so
        // the generate/deliver split stays meaningful for regression
        // tracking; the merge is delivery work.
        let (gen, del) = (
            gen_nanos.load(Ordering::Relaxed) as f64,
            del_nanos.load(Ordering::Relaxed) as f64,
        );
        let gen_fraction = if gen + del > 0.0 {
            gen / (gen + del)
        } else {
            0.0
        };
        let generate_secs = fused_secs * gen_fraction;
        let deliver_secs = fused_secs - generate_secs + merge_secs;

        (
            ExperimentResult {
                schedule: self.config.schedule(),
                captures,
                events,
                visibility: world.visibility,
                population,
                hitlist: world.hitlist,
                t4_responses,
                dropped_unrouted,
                truncated_probes,
                layout,
            },
            ScenarioTimings {
                setup: setup_secs,
                generate: generate_secs,
                deliver: deliver_secs,
            },
        )
    }

    /// Control plane, visibility, hitlist, population and world-view
    /// construction — the shared prologue of both run paths.
    fn setup(
        &self,
    ) -> (
        ExperimentLayout,
        Vec<RouteEvent>,
        Population,
        WorldView,
        usize,
    ) {
        let layout = self.config.layout.clone();
        let events = self.run_control_plane();
        let visibility = Visibility::from_events(&events);
        let hitlist = TumHitlist::build(
            &[layout.t2_dns_exposed, layout.covering.low_byte_address()],
            &visibility,
        );
        let population = PopulationSpec {
            seed: self.config.seed,
            scale: self.config.scale,
        }
        .build(&layout);
        let world = WorldView {
            compiled: CompiledVisibility::compile(&visibility),
            transitions: visibility.announce_transitions(),
            visibility,
            hitlist,
            t4: layout.t4,
            end: layout.end,
        };
        let threads = num_threads(self.config.threads);
        (layout, events, population, world, threads)
    }

    /// The retained per-probe staged path: generate everything into one
    /// `Vec<Probe>`, globally sort, then deliver in time-sharded ranges.
    /// [`Scenario::run_timed`] is pinned byte-identical to this; it stays
    /// as the equivalence oracle and the staged baseline for the
    /// `simulate` benchmark group.
    pub fn run_reference_timed(&self) -> (ExperimentResult, ScenarioTimings) {
        let stage_start = std::time::Instant::now();
        let (layout, events, population, world, threads) = self.setup();
        let setup_secs = stage_start.elapsed().as_secs_f64();
        let stage_start = std::time::Instant::now();

        // Generate probes. Each scanner gets its own RNG stream so the
        // population composition never perturbs individual behavior. The
        // streams are split from the master *serially in population order*
        // (split mutates the master), then generation fans out to workers;
        // the order-preserving merge plus the stable time sort reproduce
        // the serial probe sequence exactly.
        let mut master = Xoshiro256pp::seed_from_u64(self.config.seed ^ 0x5ca_0b0e5);
        let streams: Vec<Xoshiro256pp> = population
            .scanners
            .iter()
            .map(|spec| master.split(&format!("scanner-{}", spec.id)))
            .collect();
        let per_scanner: Vec<(Vec<Probe>, u64)> =
            map_indexed(threads, &population.scanners, |i, spec| {
                let mut rng = streams[i].clone();
                self.bounded_generate(spec, &world, &mut rng)
            });
        let total: usize = per_scanner.iter().map(|(p, _)| p.len()).sum();
        let mut probes: Vec<Probe> = Vec::with_capacity(total);
        let mut truncated_probes = 0u64;
        for (scanner_probes, truncated) in per_scanner {
            probes.extend(scanner_probes);
            truncated_probes += truncated;
        }
        probes.sort_by_key(|p| p.ts);
        let generate_secs = stage_start.elapsed().as_secs_f64();
        let stage_start = std::time::Instant::now();

        // Deliver. Shards are contiguous ranges of the time-sorted probe
        // list; each worker fills shard-local captures (reusing one encode
        // scratch buffer), and absorbing them in shard order restores the
        // exact serial capture sequence.
        let ranges = chunk_ranges(probes.len(), threads);
        let shard_results = map_indexed(threads, &ranges, |_, range| {
            let mut captures = Self::fresh_captures(&layout);
            let mut buf: Vec<u8> = Vec::with_capacity(256);
            let mut t4_responses = 0u64;
            let mut dropped_unrouted = 0u64;
            for probe in &probes[range.clone()] {
                // The DFZ test: is the destination covered by a visible
                // prefix at send time? (Propagation delay for the data path
                // is negligible at our one-second resolution.)
                if world.compiled.lpm(probe.dst, probe.ts).is_none() {
                    dropped_unrouted += 1;
                    continue;
                }
                let Some(telescope) = self.telescope_for(&layout, probe.dst) else {
                    continue; // routed, but not into observed space
                };
                probe.encode_into(&mut buf);
                let capture = captures.get_mut(&telescope).expect("telescope exists");
                let recorded = capture.ingest(probe.ts, &buf);
                if recorded && telescope == TelescopeId::T4 {
                    if let Ok(parsed) = ParsedPacket::parse(&buf) {
                        if respond(&parsed).is_some() {
                            t4_responses += 1;
                        }
                    }
                }
            }
            (captures, t4_responses, dropped_unrouted)
        });
        let mut captures = Self::fresh_captures(&layout);
        let mut t4_responses = 0u64;
        let mut dropped_unrouted = 0u64;
        for (shard_captures, shard_t4, shard_dropped) in shard_results {
            for (id, capture) in shard_captures {
                captures
                    .get_mut(&id)
                    .expect("telescope exists")
                    .absorb(capture);
            }
            t4_responses += shard_t4;
            dropped_unrouted += shard_dropped;
        }

        let deliver_secs = stage_start.elapsed().as_secs_f64();

        (
            ExperimentResult {
                schedule: self.config.schedule(),
                captures,
                events,
                visibility: world.visibility,
                population,
                hitlist: world.hitlist,
                t4_responses,
                dropped_unrouted,
                truncated_probes,
                layout,
            },
            ScenarioTimings {
                setup: setup_secs,
                generate: generate_secs,
                deliver: deliver_secs,
            },
        )
    }

    /// One empty capture per telescope, indexable by `TelescopeId as
    /// usize` (declaration order matches [`TelescopeId::ALL`]).
    fn capture_array(layout: &ExperimentLayout) -> [Capture; 4] {
        [
            Capture::new(TelescopeConfig::t1(layout.t1)),
            Capture::new(TelescopeConfig::t2(layout.t2)),
            Capture::new(TelescopeConfig::t3(layout.t3)),
            Capture::new(TelescopeConfig::t4(layout.t4)),
        ]
    }

    /// One empty capture per telescope.
    fn fresh_captures(layout: &ExperimentLayout) -> BTreeMap<TelescopeId, Capture> {
        let mut captures = BTreeMap::new();
        captures.insert(
            TelescopeId::T1,
            Capture::new(TelescopeConfig::t1(layout.t1)),
        );
        captures.insert(
            TelescopeId::T2,
            Capture::new(TelescopeConfig::t2(layout.t2)),
        );
        captures.insert(
            TelescopeId::T3,
            Capture::new(TelescopeConfig::t3(layout.t3)),
        );
        captures.insert(
            TelescopeId::T4,
            Capture::new(TelescopeConfig::t4(layout.t4)),
        );
        captures
    }

    /// Which telescope observes `dst`, if any.
    fn telescope_for(&self, layout: &ExperimentLayout, dst: Ipv6Addr) -> Option<TelescopeId> {
        if layout.t1.contains(dst) {
            Some(TelescopeId::T1)
        } else if layout.t2.contains(dst) {
            Some(TelescopeId::T2)
        } else if layout.t3.contains(dst) {
            Some(TelescopeId::T3)
        } else if layout.t4.contains(dst) {
            Some(TelescopeId::T4)
        } else {
            None
        }
    }

    /// Generates a scanner's probes with a safety cap so a mis-scaled spec
    /// cannot exhaust memory. Returns the probes plus how many the cap
    /// discarded (surfaced as [`ExperimentResult::truncated_probes`]).
    fn bounded_generate(
        &self,
        spec: &ScannerSpec,
        world: &WorldView,
        rng: &mut Xoshiro256pp,
    ) -> (Vec<Probe>, u64) {
        let mut probes = spec.generate(world, rng);
        let truncated = probes.len().saturating_sub(GENERATION_CAP) as u64;
        if truncated > 0 {
            probes.truncate(GENERATION_CAP);
        }
        (probes, truncated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentResult {
        Scenario::new(ScenarioConfig::new(42, 0.004)).run()
    }

    #[test]
    fn control_plane_produces_split_schedule_events() {
        let config = ScenarioConfig::new(1, 0.004);
        let events = Scenario::new(config.clone()).run_control_plane();
        assert!(!events.is_empty());
        let vis = Visibility::from_events(&events);
        let schedule = config.schedule();
        // During the baseline the /32 is visible.
        let mid_baseline = schedule.cycle_start(0) + SimDuration::weeks(5);
        assert!(vis.visible(&config.layout.t1, mid_baseline));
        // Mid cycle 1 the two /33s are visible, the /32 is not.
        let mid_c1 = schedule.cycle_start(1) + SimDuration::days(5);
        assert!(!vis.visible(&config.layout.t1, mid_c1));
        for prefix in schedule.announced_set(1) {
            assert!(
                vis.visible(&prefix, mid_c1),
                "{prefix} not visible in cycle 1"
            );
        }
        // Mid final cycle all 17 prefixes are visible.
        let mid_final = schedule.cycle_start(16) + SimDuration::days(5);
        for prefixix in schedule.announced_set(16) {
            assert!(vis.visible(&prefixix, mid_final));
        }
        // T2 and the covering /29 are visible throughout.
        assert!(vis.visible(&config.layout.t2, mid_c1));
        assert!(vis.visible(&config.layout.covering, mid_c1));
    }

    #[test]
    fn experiment_runs_and_fills_all_telescopes() {
        let result = tiny();
        assert!(result.capture(TelescopeId::T1).len() > 100, "T1 too quiet");
        assert!(result.capture(TelescopeId::T2).len() > 100, "T2 too quiet");
        assert!(
            !result.capture(TelescopeId::T4).is_empty(),
            "T4 saw nothing"
        );
        // The silent telescope is quiet but not necessarily empty.
        assert!(
            result.capture(TelescopeId::T3).len() < result.capture(TelescopeId::T1).len() / 10,
            "T3 should be orders of magnitude quieter than T1"
        );
    }

    #[test]
    fn withdrawal_day_drops_t1_packets() {
        let result = tiny();
        // Count packets during withdrawal gaps: should be zero in T1.
        let schedule = &result.schedule;
        let gap_start = schedule.cycle_start(1);
        let gap_end = gap_start + SimDuration::days(1);
        let during_gap = result
            .capture(TelescopeId::T1)
            .packets()
            .iter()
            .filter(|p| p.ts >= gap_start && p.ts < gap_end)
            .count();
        assert_eq!(during_gap, 0, "T1 received packets while withdrawn");
    }

    #[test]
    fn t4_responds_to_probes() {
        let result = tiny();
        assert!(result.t4_responses > 0);
        assert!(result.t4_responses <= result.capture(TelescopeId::T4).len() as u64);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.total_packets(), b.total_packets());
        for id in TelescopeId::ALL {
            assert_eq!(a.capture(id).packets(), b.capture(id).packets());
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let mut serial = ScenarioConfig::new(42, 0.004);
        serial.threads = Some(1);
        let mut parallel = ScenarioConfig::new(42, 0.004);
        parallel.threads = Some(4);
        let a = Scenario::new(serial).run();
        let b = Scenario::new(parallel).run();
        for id in TelescopeId::ALL {
            assert_eq!(
                a.capture(id).packets(),
                b.capture(id).packets(),
                "{id:?} diverged"
            );
        }
        assert_eq!(a.dropped_unrouted, b.dropped_unrouted);
        assert_eq!(a.t4_responses, b.t4_responses);
        assert_eq!(a.truncated_probes, b.truncated_probes);
    }

    #[test]
    fn tiny_run_reports_no_truncation() {
        assert_eq!(tiny().truncated_probes, 0);
    }

    #[test]
    fn fused_matches_reference_path() {
        let config = ScenarioConfig::new(42, 0.004);
        let (fused, _) = Scenario::new(config.clone()).run_timed();
        let (reference, _) = Scenario::new(config).run_reference_timed();
        for id in TelescopeId::ALL {
            assert_eq!(
                fused.capture(id).packets(),
                reference.capture(id).packets(),
                "{id:?} diverged from the staged reference"
            );
            assert_eq!(
                fused.capture(id).filtered(),
                reference.capture(id).filtered()
            );
        }
        assert_eq!(fused.t4_responses, reference.t4_responses);
        assert_eq!(fused.dropped_unrouted, reference.dropped_unrouted);
        assert_eq!(fused.truncated_probes, reference.truncated_probes);
    }

    #[test]
    fn route6_registry_matches_paper_timeline() {
        let config = ScenarioConfig::new(1, 0.004);
        let registry = config.paper_route6_registry();
        let companion = config.schedule().companion();
        let origin = sixscope_types::Asn(64_500);
        // Not registered during the baseline...
        assert!(!registry.is_registered(&companion, origin, config.layout.start));
        // ...registered from four months in.
        let later = config.layout.start + SimDuration::weeks(18);
        assert!(registry.is_registered(&companion, origin, later));
        // T2 and the covering /29 were always registered.
        assert!(registry.is_registered(&config.layout.t2, origin, SimTime::EPOCH));
    }

    #[test]
    fn validating_upstream_filters_unregistered_prefixes() {
        let mut config = ScenarioConfig::new(2, 0.004);
        config.irr_policy = IrrPolicy::RequireRoute6;
        let events = Scenario::new(config.clone()).run_control_plane();
        let vis = Visibility::from_events(&events);
        let schedule = config.schedule();
        // The covering /32 was never registered: invisible all baseline.
        let mid_baseline = config.layout.start + SimDuration::weeks(5);
        assert!(!vis.visible(&config.layout.t1, mid_baseline));
        // T2 and the covering /29 propagate (long-standing objects).
        assert!(vis.visible(&config.layout.t2, mid_baseline));
        assert!(vis.visible(&config.layout.covering, mid_baseline));
        // The companion /33 becomes visible only after its object exists
        // (first re-announcement after the four-month mark: cycle 3+).
        let companion = schedule.companion();
        let mid_c1 = schedule.cycle_start(1) + SimDuration::days(5);
        assert!(!vis.visible(&companion, mid_c1), "object not yet created");
        let mid_c16 = schedule.cycle_start(16) + SimDuration::days(5);
        assert!(
            vis.visible(&companion, mid_c16),
            "object exists, must propagate"
        );
        // The split-side prefixes were never registered: never visible.
        let split_side = schedule.split_side();
        assert!(!vis.visible(&split_side, mid_c1));
    }

    #[test]
    fn hitlist_contains_t1_after_lag() {
        let result = tiny();
        let published = result
            .hitlist
            .published_at(result.layout.t1.low_byte_address())
            .expect("T1 low-byte published");
        let first = result
            .visibility
            .first_seen(&result.layout.t1)
            .expect("T1 was announced");
        assert_eq!(published, first + crate::world::PUBLICATION_LAG);
    }
}
