//! Regenerates every table of the paper's evaluation from an [`Analyzed`]
//! corpus. Each function returns a typed structure; [`crate::render`]
//! prints them in the paper's row format.

use crate::corpus::Analyzed;
use crate::index::{decode_port, proto_code, NO_ID, PORT_NONE, PROTO_TCP, PROTO_UDP};
use sixscope_analysis::addrtype::AddressType;
use sixscope_analysis::classify::{
    network_selection, CycleCounts, NetworkSelection, TemporalClass,
};
use sixscope_analysis::fingerprint::{identify, KnownTool, ToolMatch};
use sixscope_analysis::heavy::HeavyHitter;
use sixscope_analysis::stats::percent_change;
use sixscope_telescope::{Protocol, SourceKey, TelescopeId};
use sixscope_types::ports::PortLabel;
use sixscope_types::{chunk_ranges, map_indexed, num_threads, Ipv6Prefix, NetworkType};
use std::collections::{BTreeMap, BTreeSet};

/// The §4 data-corpus overview: totals for a time range.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusOverview {
    /// Packets captured across all telescopes.
    pub packets: u64,
    /// Distinct /128 source addresses.
    pub sources128: u64,
    /// Distinct /64 source subnets.
    pub sources64: u64,
    /// Scan sessions at /128 aggregation.
    pub sessions128: u64,
    /// Scan sessions at /64 aggregation.
    pub sessions64: u64,
    /// Distinct origin ASes.
    pub ases: u64,
    /// Distinct source countries.
    pub countries: u64,
}

/// Computes the corpus overview for `[from, until)` across all telescopes
/// (§4.1 uses the initial 12 weeks; §4.2 the full period).
pub fn corpus_overview(
    a: &Analyzed,
    from: sixscope_types::SimTime,
    until: sixscope_types::SimTime,
) -> CorpusOverview {
    let idx = &a.index;
    let mut packets = 0u64;
    let mut seen128 = vec![false; idx.sources.len128()];
    let mut seen64 = vec![false; idx.sources.len64()];
    for id in TelescopeId::ALL {
        let col = idx.telescope(id);
        let range = col.range(from, until);
        packets += range.len() as u64;
        for i in range {
            seen128[col.src128[i] as usize] = true;
            seen64[col.src64[i] as usize] = true;
        }
    }
    // AS metadata is a function of the source, so distinct ASes/countries
    // over packets equal distinct ASes/countries over the seen sources.
    let mut ases: BTreeSet<u32> = BTreeSet::new();
    let mut countries: BTreeSet<u32> = BTreeSet::new();
    for (i, &seen) in seen128.iter().enumerate() {
        if seen && idx.sources.info_asn(i as u32) != NO_ID {
            ases.insert(idx.sources.info_asn(i as u32));
            countries.insert(idx.sources.country(i as u32));
        }
    }
    let mut sessions128 = 0;
    let mut sessions64 = 0;
    for id in TelescopeId::ALL {
        sessions128 += idx.sessions128(id).range(from, until).len() as u64;
        sessions64 += idx.sessions64(id).range(from, until).len() as u64;
    }
    CorpusOverview {
        packets,
        sources128: seen128.iter().filter(|&&s| s).count() as u64,
        sources64: seen64.iter().filter(|&&s| s).count() as u64,
        sessions128,
        sessions64,
        ases: ases.len() as u64,
        countries: countries.len() as u64,
    }
}

/// One row of Table 2: traffic per transport protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolRow {
    /// Protocol label.
    pub protocol: Protocol,
    /// Packets and share of all packets.
    pub packets: u64,
    /// Packet share in percent.
    pub packet_pct: f64,
    /// /128 sessions containing the protocol.
    pub sessions: u64,
    /// Session share in percent (can exceed 100% summed).
    pub session_pct: f64,
    /// /128 sources probing the protocol.
    pub sources: u64,
    /// Source share in percent.
    pub source_pct: f64,
}

/// Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// Rows in paper order (ICMPv6, UDP, TCP).
    pub rows: Vec<ProtocolRow>,
    /// Total packets across all telescopes.
    pub total_packets: u64,
    /// Total /128 sessions.
    pub total_sessions: u64,
    /// Total /128 sources.
    pub total_sources: u64,
}

/// Computes Table 2 over the full corpus (all telescopes, full period).
pub fn table2(a: &Analyzed) -> Table2 {
    let idx = &a.index;
    let mut packets = [0u64; 4];
    let mut total_packets = 0u64;
    let mut src_mask = vec![0u8; idx.sources.len128()];
    for id in TelescopeId::ALL {
        let col = idx.telescope(id);
        total_packets += col.len() as u64;
        for i in 0..col.len() {
            packets[col.proto[i] as usize] += 1;
            src_mask[col.src128[i] as usize] |= 1 << col.proto[i];
        }
    }
    let mut sessions = [0u64; 4];
    let mut total_sessions = 0u64;
    for id in TelescopeId::ALL {
        let cols = idx.sessions128(id);
        total_sessions += cols.len() as u64;
        for &mask in &cols.proto_mask {
            for (code, count) in sessions.iter_mut().enumerate() {
                if mask & (1 << code) != 0 {
                    *count += 1;
                }
            }
        }
    }
    let mut sources = [0u64; 4];
    for &mask in &src_mask {
        for (code, count) in sources.iter_mut().enumerate() {
            if mask & (1 << code) != 0 {
                *count += 1;
            }
        }
    }
    // The source table is exactly the set of sources seen in any packet.
    let total_sources = idx.sources.len128() as u64;
    let rows = Protocol::REPORTED
        .iter()
        .map(|&proto| {
            let code = proto_code(proto) as usize;
            ProtocolRow {
                protocol: proto,
                packets: packets[code],
                packet_pct: pct(packets[code], total_packets),
                sessions: sessions[code],
                session_pct: pct(sessions[code], total_sessions),
                sources: sources[code],
                source_pct: pct(sources[code], total_sources),
            }
        })
        .collect();
    Table2 {
        rows,
        total_packets,
        total_sessions,
        total_sources,
    }
}

fn pct(n: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        n as f64 / total as f64 * 100.0
    }
}

/// One row of Table 3: target address types.
#[derive(Debug, Clone, PartialEq)]
pub struct AddressTypeRow {
    /// The RFC 7707 class.
    pub address_type: AddressType,
    /// Packets targeting that class.
    pub packets: u64,
    /// Packet share in percent.
    pub packet_pct: f64,
    /// /128 sources probing at least one address of the class.
    pub sources: u64,
    /// Source share in percent.
    pub source_pct: f64,
}

/// Table 3: distribution of target types, sorted by packets descending.
pub fn table3(a: &Analyzed) -> Vec<AddressTypeRow> {
    let idx = &a.index;
    let mut packets = [0u64; AddressType::ALL.len()];
    let mut class_mask = vec![0u8; idx.sources.len128()];
    let mut total_packets = 0u64;
    for id in TelescopeId::ALL {
        let col = idx.telescope(id);
        total_packets += col.len() as u64;
        for i in 0..col.len() {
            packets[col.class[i] as usize] += 1;
            class_mask[col.src128[i] as usize] |= 1 << col.class[i];
        }
    }
    let mut sources = [0u64; AddressType::ALL.len()];
    for &mask in &class_mask {
        for (code, count) in sources.iter_mut().enumerate() {
            if mask & (1 << code) != 0 {
                *count += 1;
            }
        }
    }
    let total_sources = idx.sources.len128() as u64;
    let mut rows: Vec<AddressTypeRow> = AddressType::ALL
        .iter()
        .map(|&ty| {
            let code = ty.code() as usize;
            AddressTypeRow {
                address_type: ty,
                packets: packets[code],
                packet_pct: pct(packets[code], total_packets),
                sources: sources[code],
                source_pct: pct(sources[code], total_sources),
            }
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.packets));
    rows
}

/// One row of Table 4: a top port.
#[derive(Debug, Clone, PartialEq)]
pub struct PortRow {
    /// Rank (1-based).
    pub rank: usize,
    /// Port label (traceroute range collapsed for UDP).
    pub port: PortLabel,
    /// /64 sessions containing the port.
    pub sessions: u64,
    /// Share of /64 sessions carrying this protocol.
    pub pct: f64,
}

/// Table 4: top-5 TCP and UDP ports by /64 sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// Top TCP rows.
    pub tcp: Vec<PortRow>,
    /// Top UDP rows.
    pub udp: Vec<PortRow>,
    /// Distinct TCP ports seen at least once.
    pub distinct_tcp_ports: usize,
    /// Distinct UDP port labels seen at least once.
    pub distinct_udp_ports: usize,
}

/// Computes Table 4 over /64 sessions of all telescopes.
pub fn table4(a: &Analyzed) -> Table4 {
    // Port codes order like port labels, so code-keyed maps iterate in
    // label order and sorted code vectors dedup like label sets.
    let mut tcp_sessions: BTreeMap<u32, u64> = BTreeMap::new();
    let mut udp_sessions: BTreeMap<u32, u64> = BTreeMap::new();
    let mut tcp_total = 0u64;
    let mut udp_total = 0u64;
    for id in TelescopeId::ALL {
        let col = a.index.telescope(id);
        for session in a.sessions64(id) {
            let mut tcp_ports: Vec<u32> = Vec::new();
            let mut udp_ports: Vec<u32> = Vec::new();
            for &pi in &session.packet_indices {
                let i = pi as usize;
                if col.port[i] == PORT_NONE {
                    continue;
                }
                match col.proto[i] {
                    PROTO_TCP => tcp_ports.push(col.port[i]),
                    PROTO_UDP => udp_ports.push(col.port[i]),
                    _ => {}
                }
            }
            tcp_ports.sort_unstable();
            tcp_ports.dedup();
            udp_ports.sort_unstable();
            udp_ports.dedup();
            if !tcp_ports.is_empty() {
                tcp_total += 1;
                for code in tcp_ports {
                    *tcp_sessions.entry(code).or_default() += 1;
                }
            }
            if !udp_ports.is_empty() {
                udp_total += 1;
                for code in udp_ports {
                    *udp_sessions.entry(code).or_default() += 1;
                }
            }
        }
    }
    let top = |counts: &BTreeMap<u32, u64>, total: u64| -> Vec<PortRow> {
        let mut entries: Vec<(u32, u64)> = counts.iter().map(|(c, &n)| (*c, n)).collect();
        entries.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        entries
            .into_iter()
            .take(5)
            .enumerate()
            .map(|(i, (code, sessions))| PortRow {
                rank: i + 1,
                port: decode_port(code).expect("counted ports are labeled"),
                sessions,
                pct: pct(sessions, total),
            })
            .collect()
    };
    Table4 {
        tcp: top(&tcp_sessions, tcp_total),
        udp: top(&udp_sessions, udp_total),
        distinct_tcp_ports: tcp_sessions.len(),
        distinct_udp_ports: udp_sessions.len(),
    }
}

/// One telescope's column of Table 5(a).
#[derive(Debug, Clone, PartialEq)]
pub struct Table5aColumn {
    /// Telescope.
    pub telescope: TelescopeId,
    /// Distinct /128 sources.
    pub sources128: u64,
    /// Distinct /64 sources.
    pub sources64: u64,
    /// Distinct origin ASes.
    pub asns: u64,
    /// Distinct destination addresses.
    pub destinations: u64,
    /// Packets.
    pub packets: u64,
}

/// One cell group of Table 5(b): distinct sources per protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5bColumn {
    /// Telescope.
    pub telescope: TelescopeId,
    /// `(protocol, distinct /128 sources, percent of telescope sources)`.
    pub rows: Vec<(Protocol, u64, f64)>,
}

/// Table 5: per-telescope comparison over the initial 12 weeks.
#[derive(Debug, Clone, PartialEq)]
pub struct Table5 {
    /// Part (a).
    pub a: Vec<Table5aColumn>,
    /// Part (b).
    pub b: Vec<Table5bColumn>,
}

/// Computes Table 5 over the initial observation period.
pub fn table5(a: &Analyzed) -> Table5 {
    let idx = &a.index;
    let boundary = a.split_start();
    let mut part_a = Vec::new();
    let mut part_b = Vec::new();
    for id in TelescopeId::ALL {
        let col = idx.telescope(id);
        let hi = col.range_until(boundary).end;
        let mut seen128 = vec![false; idx.sources.len128()];
        let mut seen64 = vec![false; idx.sources.len64()];
        let mut proto_mask = vec![0u8; idx.sources.len128()];
        for i in 0..hi {
            seen128[col.src128[i] as usize] = true;
            seen64[col.src64[i] as usize] = true;
            proto_mask[col.src128[i] as usize] |= 1 << col.proto[i];
        }
        let s128 = seen128.iter().filter(|&&s| s).count() as u64;
        let mut asns: BTreeSet<u32> = BTreeSet::new();
        for (i, &seen) in seen128.iter().enumerate() {
            if seen && idx.sources.asn(i as u32) != NO_ID {
                asns.insert(idx.sources.asn(i as u32));
            }
        }
        // Destinations are not interned (the randomized-target space is
        // nearly all-distinct); dedup them from the raw capture window.
        let mut dsts: Vec<u128> = a.capture(id).packets()[..hi]
            .iter()
            .map(|p| u128::from(p.dst))
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        part_a.push(Table5aColumn {
            telescope: id,
            sources128: s128,
            sources64: seen64.iter().filter(|&&s| s).count() as u64,
            asns: asns.len() as u64,
            destinations: dsts.len() as u64,
            packets: hi as u64,
        });
        let rows = [Protocol::Icmpv6, Protocol::Tcp, Protocol::Udp]
            .iter()
            .map(|&proto| {
                let bit = 1 << proto_code(proto);
                let n = proto_mask.iter().filter(|&&m| m & bit != 0).count() as u64;
                (proto, n, pct(n, s128))
            })
            .collect();
        part_b.push(Table5bColumn {
            telescope: id,
            rows,
        });
    }
    Table5 {
        a: part_a,
        b: part_b,
    }
}

/// A classification row of Table 6: scanners and sessions per class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassRow {
    /// Class label.
    pub label: String,
    /// Scanners (/128 sources).
    pub scanners: u64,
    /// Scanner share in percent.
    pub scanner_pct: f64,
    /// Sessions.
    pub sessions: u64,
    /// Session share in percent.
    pub session_pct: f64,
}

/// Table 6: taxonomy classification of T1 scanners during the split period.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Temporal behavior rows (one-off, intermittent, periodic).
    pub temporal: Vec<ClassRow>,
    /// Network selection rows.
    pub network: Vec<ClassRow>,
}

/// Computes Table 6.
pub fn table6(a: &Analyzed) -> Table6 {
    let (sessions, profiles) = a.t1_split_profiles();
    let split = a.index.split();
    let schedule = &a.result.schedule;
    let total_scanners = profiles.len() as u64;
    let total_sessions = sessions.len() as u64;

    // Temporal rows.
    let mut temporal = Vec::new();
    for class in TemporalClass::ALL {
        let scanners = profiles.iter().filter(|p| p.temporal == class).count() as u64;
        let class_sessions: u64 = profiles
            .iter()
            .filter(|p| p.temporal == class)
            .map(|p| p.session_indices.len() as u64)
            .sum();
        temporal.push(ClassRow {
            label: class.to_string(),
            scanners,
            scanner_pct: pct(scanners, total_scanners),
            sessions: class_sessions,
            session_pct: pct(class_sessions, total_sessions),
        });
    }

    // Network selection: per scanner, per announcement cycle. Cycle
    // attribution and per-session prefix hits come pre-computed from the
    // split cache (window-relative indices).
    let mut by_class: BTreeMap<NetworkSelection, (u64, u64)> = BTreeMap::new();
    for profile in profiles {
        // Group this scanner's sessions by cycle.
        let mut per_cycle: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for &idx in &profile.session_indices {
            if let Some(cycle) = split.cycles[idx] {
                if cycle >= 1 {
                    per_cycle.entry(cycle).or_default().push(idx);
                }
            }
        }
        let cycles: Vec<CycleCounts> = per_cycle
            .iter()
            .map(|(&cycle, sess)| {
                let announced = schedule.announced_set(cycle);
                let mut counts = vec![0u64; announced.len()];
                for &si in sess {
                    for prefix in &split.prefix_hits[si] {
                        let i = announced.iter().position(|p| p == prefix).unwrap();
                        counts[i] += 1;
                    }
                }
                CycleCounts {
                    announced,
                    sessions: counts,
                }
            })
            .collect();
        if let Some(class) = network_selection(&cycles) {
            let entry = by_class.entry(class).or_default();
            entry.0 += 1;
            entry.1 += profile.session_indices.len() as u64;
        }
    }
    let order = [
        NetworkSelection::SinglePrefix,
        NetworkSelection::SizeIndependent,
        NetworkSelection::Inconsistent,
        NetworkSelection::SizeDependent,
    ];
    let network = order
        .iter()
        .map(|class| {
            let (scanners, class_sessions) = by_class.get(class).copied().unwrap_or((0, 0));
            ClassRow {
                label: class.to_string(),
                scanners,
                scanner_pct: pct(scanners, total_scanners),
                sessions: class_sessions,
                session_pct: pct(class_sessions, total_sessions),
            }
        })
        .collect();

    Table6 { temporal, network }
}

/// One row of Table 7: an identified public scan tool.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolRow {
    /// The tool.
    pub tool: KnownTool,
    /// Scanners attributed to it.
    pub scanners: u64,
    /// Scanner share in percent (of all T1 split-period scanners).
    pub scanner_pct: f64,
    /// Their sessions.
    pub sessions: u64,
    /// Session share in percent.
    pub session_pct: f64,
}

/// Table 7: public tools identified at T1 during the split period.
///
/// Per-scanner identification is independent work, so it fans out through
/// [`map_indexed`] over contiguous profile shards; the per-tool counts are
/// summed over disjoint scanner sets, which makes the merged table identical
/// at any thread count.
pub fn table7(a: &Analyzed) -> Vec<ToolRow> {
    let (sessions, profiles) = a.t1_split_profiles();
    let capture = a.capture(TelescopeId::T1);
    let total_scanners = profiles.len() as u64;
    let total_sessions = sessions.len() as u64;
    let threads = num_threads(None);
    let shards = chunk_ranges(profiles.len(), threads);
    let built = map_indexed(threads, &shards, |_, r| {
        let mut by_tool: BTreeMap<KnownTool, (u64, u64)> = BTreeMap::new();
        for profile in &profiles[r.clone()] {
            // Identify the scanner by its first recognizable payload + rDNS.
            let src = profile.source.prefix.network();
            let rdns = a.rdns_of(src);
            let mut tool = None;
            'outer: for &idx in &profile.session_indices {
                for p in sessions[idx].packets(capture) {
                    if let ToolMatch::Tool(t) = identify(&p.payload, rdns) {
                        tool = Some(t);
                        break 'outer;
                    }
                }
            }
            if let Some(t) = tool {
                let entry = by_tool.entry(t).or_default();
                entry.0 += 1;
                entry.1 += profile.session_indices.len() as u64;
            }
        }
        by_tool
    });
    let mut by_tool: BTreeMap<KnownTool, (u64, u64)> = BTreeMap::new();
    for shard in built {
        for (tool, (scanners, tool_sessions)) in shard {
            let entry = by_tool.entry(tool).or_default();
            entry.0 += scanners;
            entry.1 += tool_sessions;
        }
    }
    let mut rows: Vec<ToolRow> = by_tool
        .into_iter()
        .map(|(tool, (scanners, tool_sessions))| ToolRow {
            tool,
            scanners,
            scanner_pct: pct(scanners, total_scanners),
            sessions: tool_sessions,
            session_pct: pct(tool_sessions, total_sessions),
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.scanners));
    rows
}

/// One row of Table 8: scanner origin network types.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkTypeRow {
    /// The network type.
    pub network_type: NetworkType,
    /// With heavy hitters excluded? (extra rows for Hosting/Education).
    pub without_heavy_hitters: bool,
    /// Scanners.
    pub scanners: u64,
    /// Scanner share in percent.
    pub scanner_pct: f64,
    /// Sessions.
    pub sessions: u64,
    /// Session share in percent.
    pub session_pct: f64,
    /// Packets.
    pub packets: u64,
    /// Packet share in percent.
    pub packet_pct: f64,
}

/// Table 8: network types of T1 split-period scan sources, with
/// without-heavy-hitter rows where heavy hitters are present.
pub fn table8(a: &Analyzed) -> Vec<NetworkTypeRow> {
    let (sessions, profiles) = a.t1_split_profiles();
    let heavy: BTreeSet<SourceKey> = TelescopeId::ALL
        .iter()
        .flat_map(|&id| a.index.heavy(id))
        .map(|h| h.source)
        .collect();
    let total_scanners = profiles.len() as u64;
    let total_sessions = sessions.len() as u64;
    let total_packets: u64 = profiles.iter().map(|p| p.packets).sum();

    struct Acc {
        scanners: u64,
        sessions: u64,
        packets: u64,
        nh_scanners: u64,
        nh_sessions: u64,
        nh_packets: u64,
        has_heavy: bool,
    }
    let mut acc: BTreeMap<NetworkType, Acc> = BTreeMap::new();
    for profile in profiles {
        let ty = a
            .as_info_of(profile.source.prefix.network())
            .map_or(NetworkType::Unknown, |i| i.network_type);
        let e = acc.entry(ty).or_insert(Acc {
            scanners: 0,
            sessions: 0,
            packets: 0,
            nh_scanners: 0,
            nh_sessions: 0,
            nh_packets: 0,
            has_heavy: false,
        });
        let s = profile.session_indices.len() as u64;
        e.scanners += 1;
        e.sessions += s;
        e.packets += profile.packets;
        if heavy.contains(&profile.source) {
            e.has_heavy = true;
        } else {
            e.nh_scanners += 1;
            e.nh_sessions += s;
            e.nh_packets += profile.packets;
        }
    }
    let mut rows = Vec::new();
    for ty in NetworkType::ALL {
        let Some(e) = acc.get(&ty) else { continue };
        rows.push(NetworkTypeRow {
            network_type: ty,
            without_heavy_hitters: false,
            scanners: e.scanners,
            scanner_pct: pct(e.scanners, total_scanners),
            sessions: e.sessions,
            session_pct: pct(e.sessions, total_sessions),
            packets: e.packets,
            packet_pct: pct(e.packets, total_packets),
        });
        if e.has_heavy {
            rows.push(NetworkTypeRow {
                network_type: ty,
                without_heavy_hitters: true,
                scanners: e.nh_scanners,
                scanner_pct: pct(e.nh_scanners, total_scanners),
                sessions: e.nh_sessions,
                session_pct: pct(e.nh_sessions, total_sessions),
                packets: e.nh_packets,
                packet_pct: pct(e.nh_packets, total_packets),
            });
        }
    }
    rows
}

/// The headline findings of §7.1 / the abstract.
#[derive(Debug, Clone, PartialEq)]
pub struct Headline {
    /// Packet growth of the iteratively split /33 vs. the stable companion
    /// (paper: +286%).
    pub split_vs_companion_packets_pct: f64,
    /// Average weekly /128 sources, split period vs. baseline (paper: +275%).
    pub weekly_sources_growth_pct: f64,
    /// Average weekly sessions, split period vs. baseline (paper: +555%).
    pub weekly_sessions_growth_pct: f64,
    /// Share of scanners observed only once (paper: ~70%).
    pub one_off_scanner_pct: f64,
    /// Session share of the two /48s in the final cycle (paper: 15.7%).
    pub final_48_session_pct: f64,
    /// Heavy hitters found across all telescopes (paper: 10).
    pub heavy_hitters: Vec<HeavyHitter>,
    /// Heavy-hitter packet share of all packets (paper: 73%).
    pub heavy_packet_pct: f64,
    /// Heavy-hitter session share (paper: 0.04%).
    pub heavy_session_pct: f64,
}

/// Computes the headline numbers.
pub fn headline(a: &Analyzed) -> Headline {
    let idx = &a.index;
    let schedule = &a.result.schedule;
    let boundary = a.split_start();

    // Split side vs. companion packets during the split period. Each
    // packet's announced prefix is pre-resolved; a prefix inside one /33
    // decides the side directly. Packets whose longest match is NOT inside
    // either /33 (withdraw gaps route them via the covering prefix) fall
    // back to the raw containment check on the destination.
    let companion = schedule.companion();
    let split_side = schedule.split_side();
    let col = idx.telescope(TelescopeId::T1);
    let sides: Vec<u8> = col
        .prefixes()
        .iter()
        .map(|p| {
            if companion.covers(p) {
                1
            } else if split_side.covers(p) {
                2
            } else {
                0
            }
        })
        .collect();
    let mut companion_packets = 0u64;
    let mut split_packets = 0u64;
    let t1_packets = a.capture(TelescopeId::T1).packets();
    for i in col.range_from(boundary) {
        let side = match col.prefix[i] {
            NO_ID => 0,
            pid => sides[pid as usize],
        };
        match side {
            1 => companion_packets += 1,
            2 => split_packets += 1,
            _ => {
                let dst = t1_packets[i].dst;
                if companion.contains(dst) {
                    companion_packets += 1;
                } else if split_side.contains(dst) {
                    split_packets += 1;
                }
            }
        }
    }

    // Weekly averages of sources and sessions, baseline vs. split period.
    let baseline_weeks = (boundary - schedule.cycle_start(0)).as_secs() as f64 / 604_800.0;
    let split_weeks = (schedule.end() - boundary).as_secs() as f64 / 604_800.0;
    // Average number of distinct weekly sources (sum of per-week distinct
    // source counts divided by the number of weeks in the range).
    let t1_sessions = idx.sessions128(TelescopeId::T1);
    let weekly_sources = |from, until, weeks: f64| -> f64 {
        let mut per_week: BTreeMap<u64, BTreeSet<u32>> = BTreeMap::new();
        for i in t1_sessions.range(from, until) {
            per_week
                .entry(t1_sessions.start[i].week())
                .or_default()
                .insert(t1_sessions.source[i]);
        }
        let sources: u64 = per_week.values().map(|v| v.len() as u64).sum();
        sources as f64 / weeks.max(1e-9)
    };
    let weekly_sessions = |from, until, weeks: f64| -> f64 {
        t1_sessions.range(from, until).len() as f64 / weeks.max(1e-9)
    };
    let base_sources = weekly_sources(schedule.cycle_start(0), boundary, baseline_weeks);
    let split_sources = weekly_sources(boundary, schedule.end(), split_weeks);
    let base_sessions = weekly_sessions(schedule.cycle_start(0), boundary, baseline_weeks);
    let split_sessions = weekly_sessions(boundary, schedule.end(), split_weeks);

    // One-off share and final-cycle /48 share.
    let (sessions, profiles) = a.t1_split_profiles();
    let split = idx.split();
    let one_off = profiles
        .iter()
        .filter(|p| p.temporal == TemporalClass::OneOff)
        .count() as u64;
    let final_cycle = schedule.cycles;
    let final_set = schedule.announced_set(final_cycle);
    let final_48s: Vec<Ipv6Prefix> = final_set
        .iter()
        .filter(|p| p.len() == 48)
        .copied()
        .collect();
    let final_start = schedule.cycle_start(final_cycle);
    // Per-prefix session counting (as in Fig. 10): a session counts toward
    // every announced prefix it probes; the /48 share is the share of those
    // (session, prefix) incidences that land on the two /48s. The cached
    // prefix hits of final-cycle sessions were evaluated against the final
    // announced set, exactly what this counter needs.
    let mut incidences = 0u64;
    let mut in_48 = 0u64;
    let lo = sessions.partition_point(|s| s.start < final_start);
    for hits in &split.prefix_hits[lo..] {
        for prefix in hits {
            incidences += 1;
            if final_48s.contains(prefix) {
                in_48 += 1;
            }
        }
    }
    let final_sessions = incidences;

    // Heavy hitters across all telescopes.
    let mut heavy: Vec<HeavyHitter> = TelescopeId::ALL
        .iter()
        .flat_map(|&id| idx.heavy(id).to_vec())
        .collect();
    heavy.sort_by_key(|h| std::cmp::Reverse(h.packets));
    let mut is_heavy = vec![false; idx.sources.len128()];
    for h in &heavy {
        let id = idx.sources.id128(&h.source).expect("heavy source interned");
        is_heavy[id as usize] = true;
    }
    let mut total_packets = 0u64;
    let mut heavy_packets = 0u64;
    for id in TelescopeId::ALL {
        let col = idx.telescope(id);
        total_packets += col.len() as u64;
        for &src in &col.src128 {
            if is_heavy[src as usize] {
                heavy_packets += 1;
            }
        }
    }
    let mut total_sessions = 0u64;
    let mut heavy_sessions = 0u64;
    for id in TelescopeId::ALL {
        let cols = idx.sessions128(id);
        total_sessions += cols.len() as u64;
        for &src in &cols.source {
            if is_heavy[src as usize] {
                heavy_sessions += 1;
            }
        }
    }

    Headline {
        split_vs_companion_packets_pct: percent_change(
            companion_packets as f64,
            split_packets as f64,
        ),
        weekly_sources_growth_pct: percent_change(base_sources, split_sources),
        weekly_sessions_growth_pct: percent_change(base_sessions, split_sessions),
        one_off_scanner_pct: pct(one_off, profiles.len() as u64),
        final_48_session_pct: pct(in_48, final_sessions),
        heavy_hitters: heavy,
        heavy_packet_pct: pct(heavy_packets, total_packets),
        heavy_session_pct: pct(heavy_sessions, total_sessions),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_sim::ScenarioConfig;
    use std::sync::OnceLock;

    /// One shared small experiment for all table tests (running it per
    /// test would dominate the suite's runtime).
    fn analyzed() -> &'static Analyzed {
        static CELL: OnceLock<Analyzed> = OnceLock::new();
        CELL.get_or_init(|| {
            crate::Pipeline::simulate(ScenarioConfig::new(1234, 0.02))
                .run()
                .expect("simulated runs cannot fail")
        })
    }

    #[test]
    fn table2_shape_matches_paper() {
        let t = table2(analyzed());
        assert_eq!(t.rows.len(), 3);
        let icmp = &t.rows[0];
        let udp = &t.rows[1];
        let tcp = &t.rows[2];
        assert_eq!(icmp.protocol, Protocol::Icmpv6);
        // ICMPv6 dominates packets.
        assert!(icmp.packets > udp.packets && icmp.packets > tcp.packets);
        // TCP dominates sessions (92.8% in the paper).
        assert!(tcp.session_pct > icmp.session_pct);
        assert!(
            tcp.session_pct > 50.0,
            "TCP session share {}",
            tcp.session_pct
        );
        // Packet shares sum to ≤ 100 (plus an "other" remainder).
        let sum: f64 = t.rows.iter().map(|r| r.packet_pct).sum();
        assert!(sum <= 100.5);
    }

    #[test]
    fn table3_randomized_packets_dominate_but_few_sources() {
        let rows = table3(analyzed());
        let randomized = rows
            .iter()
            .find(|r| r.address_type == AddressType::Randomized)
            .unwrap();
        let low_byte = rows
            .iter()
            .find(|r| r.address_type == AddressType::LowByte)
            .unwrap();
        assert!(
            randomized.packets > low_byte.packets,
            "randomized {} vs low-byte {}",
            randomized.packets,
            low_byte.packets
        );
        // Low-byte is probed by far more sources than randomized.
        assert!(low_byte.sources > randomized.sources);
        assert!(low_byte.source_pct > 50.0);
    }

    #[test]
    fn table4_http_dominates_tcp_and_traceroute_dominates_udp() {
        let t = table4(analyzed());
        assert_eq!(t.tcp[0].port, PortLabel::Port(80));
        assert!(t.tcp[0].pct > 50.0);
        assert!(t.tcp.iter().any(|r| r.port == PortLabel::Port(443)));
        assert_eq!(t.udp[0].port, PortLabel::Traceroute);
        assert!(t.distinct_tcp_ports >= 5);
    }

    #[test]
    fn table5_telescope_ordering() {
        let t = table5(analyzed());
        let get = |id: TelescopeId| t.a.iter().find(|c| c.telescope == id).unwrap();
        let t1 = get(TelescopeId::T1);
        let t2 = get(TelescopeId::T2);
        let t3 = get(TelescopeId::T3);
        let t4 = get(TelescopeId::T4);
        // Separately announced telescopes see orders of magnitude more.
        assert!(t1.packets > 50 * t3.packets.max(1));
        assert!(t2.packets > 50 * t3.packets.max(1));
        // The reactive T4 sees more than the silent T3.
        assert!(t4.packets > t3.packets);
        // T2 attracts more sources than T1.
        assert!(t2.sources128 > t1.sources128);
        // T2's /128-vs-/64 ratio exceeds T1's (address rotation).
        let ratio = |c: &Table5aColumn| c.sources128 as f64 / c.sources64.max(1) as f64;
        assert!(ratio(t2) > ratio(t1));
    }

    #[test]
    fn table6_temporal_shares() {
        let t = table6(analyzed());
        assert_eq!(t.temporal.len(), 3);
        let one_off = &t.temporal[0];
        assert_eq!(one_off.label, "One-off");
        assert!(
            one_off.scanner_pct > 50.0,
            "one-off share {}",
            one_off.scanner_pct
        );
        // Periodic scanners carry the session mass.
        let periodic = t.temporal.iter().find(|r| r.label == "Periodic").unwrap();
        assert!(periodic.session_pct > periodic.scanner_pct);
        // Network selection: single-prefix dominates scanners.
        let single = &t.network[0];
        assert_eq!(single.label, "Single-prefix scanning");
        assert!(
            single.scanner_pct > 50.0,
            "single-prefix {}",
            single.scanner_pct
        );
    }

    #[test]
    fn table7_finds_atlas_and_tools() {
        let rows = table7(analyzed());
        assert!(!rows.is_empty());
        assert_eq!(
            rows[0].tool,
            KnownTool::RipeAtlasProbe,
            "Atlas should top Table 7, got {:?}",
            rows
        );
        assert!(rows[0].scanner_pct > 30.0);
        let names: Vec<KnownTool> = rows.iter().map(|r| r.tool).collect();
        assert!(names.contains(&KnownTool::Yarrp6));
    }

    #[test]
    fn table8_hosting_and_isp_dominate() {
        let rows = table8(analyzed());
        let hosting = rows
            .iter()
            .find(|r| r.network_type == NetworkType::Hosting && !r.without_heavy_hitters)
            .unwrap();
        let isp = rows
            .iter()
            .find(|r| r.network_type == NetworkType::Isp && !r.without_heavy_hitters)
            .unwrap();
        assert!(hosting.scanner_pct + isp.scanner_pct > 80.0);
        // Without-heavy-hitter rows reduce packets where present.
        for r in rows.iter().filter(|r| r.without_heavy_hitters) {
            let with = rows
                .iter()
                .find(|x| x.network_type == r.network_type && !x.without_heavy_hitters)
                .unwrap();
            assert!(r.packets < with.packets);
        }
    }

    #[test]
    fn headline_directions_match_paper() {
        let h = headline(analyzed());
        assert!(
            h.split_vs_companion_packets_pct > 0.0,
            "split side should exceed companion, got {}",
            h.split_vs_companion_packets_pct
        );
        assert!(h.weekly_sources_growth_pct > 50.0);
        assert!(h.weekly_sessions_growth_pct > 50.0);
        assert!(h.one_off_scanner_pct > 50.0);
        assert!(!h.heavy_hitters.is_empty());
        assert!(
            h.heavy_packet_pct > 30.0,
            "heavy share {}",
            h.heavy_packet_pct
        );
        assert!(h.heavy_session_pct < 15.0);
    }
}
