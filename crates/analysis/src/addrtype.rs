//! Target-address classification per RFC 7707 — our `addr6` equivalent.
//!
//! The paper categorizes every probed destination (Table 3) into the
//! RFC 7707 pattern classes plus Subnet-Router anycast (RFC 4291). The
//! classifier looks at the 64-bit interface identifier:
//!
//! | class | IID shape | example |
//! |---|---|---|
//! | subnet-anycast | all-zero IID | `2001:db8:1::` |
//! | isatap | `xx00:5efe:a.b.c.d` | `2001:db8::0:5efe:c000:1` |
//! | ieee-derived | EUI-64 `ff:fe` in the middle | `…:0211:22ff:fe33:4455` |
//! | embedded-port | service port in the low word, rest zero | `2001:db8::443` |
//! | low-byte | only the low 16 bits set | `2001:db8::1` |
//! | embedded-ipv4 | IPv4 address in the low 32 bits, rest zero | `2001:db8::c000:201` |
//! | pattern-bytes | repeated bytes or hex words | `2001:db8::cafe:cafe` |
//! | randomized | none of the above | privacy/TGA addresses |
//!
//! Order matters: `::443` is a port *and* a low-byte shape; addr6 (and we)
//! prefer the more specific service-port reading.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv6Addr;

/// RFC 7707 address classes as used in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AddressType {
    /// No recognizable structure (privacy extensions, TGA output, random).
    Randomized,
    /// Only the lowest bytes of the IID are set (`::1`, `::20`).
    LowByte,
    /// Repeated bytes or semantic hex words (`::cafe:cafe`).
    PatternBytes,
    /// An IPv4 address embedded in the IID (`::192.0.2.1`).
    EmbeddedIpv4,
    /// Subnet-Router anycast: the all-zeros IID (RFC 4291).
    SubnetAnycast,
    /// A well-known service port embedded in the IID (`::443`).
    EmbeddedPort,
    /// EUI-64 / MAC-derived (`ff:fe` infix).
    IeeeDerived,
    /// ISATAP tunnel addresses (`::5efe:a.b.c.d`).
    Isatap,
}

impl AddressType {
    /// All classes in Table 3 row order.
    pub const ALL: [AddressType; 8] = [
        AddressType::Randomized,
        AddressType::LowByte,
        AddressType::PatternBytes,
        AddressType::EmbeddedIpv4,
        AddressType::SubnetAnycast,
        AddressType::EmbeddedPort,
        AddressType::IeeeDerived,
        AddressType::Isatap,
    ];

    /// True for every class except `Randomized` — the "structured" notion
    /// used by the address-selection taxonomy (§5.3).
    pub fn is_structured(self) -> bool {
        self != AddressType::Randomized
    }

    /// Dense code of the class: its index in [`AddressType::ALL`]. Used by
    /// the columnar corpus index to store classifications as `u8`.
    pub fn code(self) -> u8 {
        match self {
            AddressType::Randomized => 0,
            AddressType::LowByte => 1,
            AddressType::PatternBytes => 2,
            AddressType::EmbeddedIpv4 => 3,
            AddressType::SubnetAnycast => 4,
            AddressType::EmbeddedPort => 5,
            AddressType::IeeeDerived => 6,
            AddressType::Isatap => 7,
        }
    }

    /// Inverse of [`AddressType::code`].
    ///
    /// # Panics
    /// Panics on codes ≥ 8.
    pub fn from_code(code: u8) -> AddressType {
        AddressType::ALL[code as usize]
    }
}

impl fmt::Display for AddressType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AddressType::Randomized => "randomized",
            AddressType::LowByte => "low-byte",
            AddressType::PatternBytes => "pattern-bytes",
            AddressType::EmbeddedIpv4 => "embedded-ipv4",
            AddressType::SubnetAnycast => "subnet-anycast",
            AddressType::EmbeddedPort => "embedded-port",
            AddressType::IeeeDerived => "ieee-derived",
            AddressType::Isatap => "isatap",
        };
        f.write_str(s)
    }
}

/// Well-known service ports recognized for the embedded-port class, both as
/// decimal values (`::80` = 0x50) and as hex spellings (`::443` = 0x443).
const SERVICE_PORTS: [u16; 16] = [
    21, 22, 23, 25, 53, 80, 110, 123, 143, 161, 443, 500, 993, 3306, 8080, 8443,
];

/// A service port re-read as hex digits: decimal 443 becomes IID value
/// 0x443, so `2001:db8::443` *displays* as "443". Returns `None` when a
/// decimal digit of the port is ≥ 10 in some position — impossible by
/// construction (decimal digits are 0–9) — or when the hex spelling would
/// not fit 16 bits (ports ≥ 10000, whose spelling needs five nibbles).
const fn hex_spelling(port: u16) -> Option<u16> {
    if port >= 10_000 {
        return None;
    }
    let mut value: u16 = 0;
    let mut shift = 0u32;
    let mut rest = port;
    loop {
        value |= (rest % 10) << shift;
        rest /= 10;
        if rest == 0 {
            return Some(value);
        }
        shift += 4;
    }
}

/// IID values whose *hex rendering* spells a well-known service port
/// (`::443` = 0x443 renders as "443"). Precomputed from [`SERVICE_PORTS`]
/// at compile time so [`classify`] never formats or parses strings on the
/// per-packet hot path.
const HEX_SPELLED_PORTS: [u16; 16] = {
    let mut table = [0u16; 16];
    let mut i = 0;
    while i < SERVICE_PORTS.len() {
        table[i] = match hex_spelling(SERVICE_PORTS[i]) {
            Some(v) => v,
            None => SERVICE_PORTS[i], // spelling overflow: decimal entry covers it
        };
        i += 1;
    }
    table
};

/// Hex words commonly used in manually configured "wordy" addresses.
const HEX_WORDS: [u16; 12] = [
    0xcafe, 0xbabe, 0xdead, 0xbeef, 0xf00d, 0xfeed, 0xface, 0xc0de, 0xb00b, 0xd00d, 0xabba, 0xaffe,
];

/// Classifies the interface identifier of `addr`.
pub fn classify(addr: Ipv6Addr) -> AddressType {
    let iid = u128::from(addr) as u64;
    if iid == 0 {
        return AddressType::SubnetAnycast;
    }
    // ISATAP: 0000:5efe or 0200:5efe in the upper 32 bits of the IID.
    let upper32 = (iid >> 32) as u32;
    if upper32 == 0x0000_5efe || upper32 == 0x0200_5efe {
        return AddressType::Isatap;
    }
    // EUI-64: bytes 3..5 of the IID are ff:fe.
    if (iid >> 24) & 0xffff == 0xfffe {
        return AddressType::IeeeDerived;
    }
    if iid <= 0xffff {
        let low = iid as u16;
        // Hex spelling: 0x443 *displays* as "443". The precomputed table
        // replaces the former format!+parse round-trip (a heap allocation
        // per low-IID packet on the Table-3 hot path).
        if SERVICE_PORTS.contains(&low) || HEX_SPELLED_PORTS.contains(&low) {
            return AddressType::EmbeddedPort;
        }
        return AddressType::LowByte;
    }
    // Embedded IPv4: upper 32 bits of the IID zero, low 32 look like v4.
    if upper32 == 0 {
        return AddressType::EmbeddedIpv4;
    }
    if is_pattern_bytes(iid) {
        return AddressType::PatternBytes;
    }
    AddressType::Randomized
}

/// Pattern detection: at most two distinct byte values in the IID, or a
/// recognized hex word in any 16-bit group.
fn is_pattern_bytes(iid: u64) -> bool {
    let bytes = iid.to_be_bytes();
    let mut distinct: Vec<u8> = Vec::with_capacity(3);
    for b in bytes {
        if !distinct.contains(&b) {
            distinct.push(b);
            if distinct.len() > 2 {
                break;
            }
        }
    }
    if distinct.len() <= 2 {
        return true;
    }
    (0..4).any(|i| {
        let group = ((iid >> (48 - i * 16)) & 0xffff) as u16;
        HEX_WORDS.contains(&group)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> AddressType {
        classify(s.parse().unwrap())
    }

    #[test]
    fn subnet_anycast() {
        assert_eq!(c("2001:db8:1::"), AddressType::SubnetAnycast);
        assert_eq!(c("2001:db8:ffff:abcd::"), AddressType::SubnetAnycast);
    }

    #[test]
    fn low_byte_examples() {
        assert_eq!(c("2001:db8::1"), AddressType::LowByte);
        assert_eq!(c("2001:db8::2"), AddressType::LowByte);
        assert_eq!(c("2001:db8::1a"), AddressType::LowByte);
        // Two low bytes still count.
        assert_eq!(c("2001:db8::1234"), AddressType::LowByte);
    }

    #[test]
    fn embedded_port_beats_low_byte() {
        assert_eq!(
            c("2001:db8::443"),
            AddressType::EmbeddedPort,
            "hex spelling of 443"
        );
        assert_eq!(
            c("2001:db8::80"),
            AddressType::EmbeddedPort,
            "hex spelling of 80"
        );
        assert_eq!(
            c("2001:db8::50"),
            AddressType::EmbeddedPort,
            "0x50 = decimal 80"
        );
        assert_eq!(
            c("2001:db8::35"),
            AddressType::EmbeddedPort,
            "0x35 = decimal 53"
        );
        // 1 is not a service port.
        assert_eq!(c("2001:db8::1"), AddressType::LowByte);
    }

    #[test]
    fn embedded_ipv4() {
        // 192.0.2.1 = 0xc0000201.
        assert_eq!(c("2001:db8::c000:201"), AddressType::EmbeddedIpv4);
        assert_eq!(c("2001:db8::192.0.2.1"), AddressType::EmbeddedIpv4);
    }

    #[test]
    fn ieee_derived() {
        assert_eq!(c("2001:db8::211:22ff:fe33:4455"), AddressType::IeeeDerived);
        assert_eq!(c("2001:db8::ff:fe00:1"), AddressType::IeeeDerived);
    }

    #[test]
    fn isatap() {
        assert_eq!(c("2001:db8::5efe:c000:201"), AddressType::Isatap);
        assert_eq!(c("2001:db8::200:5efe:c000:201"), AddressType::Isatap);
    }

    #[test]
    fn pattern_bytes() {
        assert_eq!(
            c("2001:db8::cafe:cafe:cafe:cafe"),
            AddressType::PatternBytes
        );
        assert_eq!(c("2001:db8::dead:beef:0:1"), AddressType::PatternBytes);
        assert_eq!(
            c("2001:db8::aaaa:aaaa:aaaa:aaaa"),
            AddressType::PatternBytes
        );
        // ≤ 2 distinct bytes.
        assert_eq!(c("2001:db8::a5a5:a5a5:a5a5:0"), AddressType::PatternBytes);
    }

    #[test]
    fn randomized_fallback() {
        assert_eq!(c("2001:db8::3a7f:91c4:d02e:65b8"), AddressType::Randomized);
        assert_eq!(c("2001:db8::1234:5678:9abc:def0"), AddressType::Randomized);
    }

    #[test]
    fn classification_ignores_the_network_prefix() {
        // Same IID under different prefixes classifies identically.
        assert_eq!(c("2001:db8::1"), c("3fff:1234:5678::1"));
        assert_eq!(
            c("2001:db8:1:2:211:22ff:fe33:4455"),
            c("3fff::211:22ff:fe33:4455")
        );
    }

    #[test]
    fn hex_spelled_table_matches_string_round_trip() {
        // The const table must agree with the format!+parse definition it
        // replaced, for every possible low IID value.
        for low in 0..=u16::MAX {
            let rendered = format!("{low:x}");
            let parsed: Option<u16> = rendered.parse().ok();
            let string_based = parsed.is_some_and(|p| SERVICE_PORTS.contains(&p));
            assert_eq!(
                HEX_SPELLED_PORTS.contains(&low),
                string_based,
                "table diverges from string check at 0x{low:x}"
            );
        }
    }

    #[test]
    fn hex_spelling_of_known_ports() {
        assert_eq!(hex_spelling(443), Some(0x443));
        assert_eq!(hex_spelling(80), Some(0x80));
        assert_eq!(hex_spelling(8443), Some(0x8443));
        assert_eq!(hex_spelling(10_000), None, "five nibbles overflow u16");
    }

    #[test]
    fn codes_round_trip_in_table_order() {
        for (i, &ty) in AddressType::ALL.iter().enumerate() {
            assert_eq!(ty.code() as usize, i);
            assert_eq!(AddressType::from_code(ty.code()), ty);
        }
    }

    #[test]
    fn structured_predicate() {
        assert!(AddressType::LowByte.is_structured());
        assert!(AddressType::SubnetAnycast.is_structured());
        assert!(!AddressType::Randomized.is_structured());
    }
}
