//! Feed-abstraction benchmarks: the unified [`Feed`] pull loop against
//! the raw zero-copy reader it wraps. The trait adds per-chunk dispatch
//! and watermark tracking; the target is to stay within a few percent of
//! the direct `SliceReader` path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::ingest::passive_config;
use sixscope::packet::{PacketBuilder, PcapRecord, PcapWriter, SliceReader, ViewOutcome};
use sixscope_bench::bench_corpus;
use sixscope_telescope::{Capture, Feed, IngestStats, PcapFeed, Protocol, SimFeed, TelescopeId};
use sixscope_types::Ipv6Prefix;
use std::hint::black_box;
use std::path::PathBuf;

/// Renders the bench corpus's T1 capture into an in-memory classic pcap
/// image, so every bench below reads identical bytes.
fn pcap_image() -> (Vec<u8>, usize) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut writer = PcapWriter::new(Vec::new()).expect("pcap header");
    for p in capture.packets() {
        let builder = PacketBuilder::new(p.src, p.dst);
        let data = match p.protocol {
            Protocol::Icmpv6 => builder.icmpv6_echo_request(0, 0, &p.payload),
            Protocol::Tcp => builder.tcp_syn(
                p.src_port.unwrap_or(0),
                p.dst_port.unwrap_or(0),
                0,
                &p.payload,
            ),
            Protocol::Udp | Protocol::Other => {
                builder.udp(p.src_port.unwrap_or(0), p.dst_port.unwrap_or(0), &p.payload)
            }
        };
        writer
            .write_record(&PcapRecord {
                ts: p.ts,
                ts_micros: 0,
                data,
            })
            .expect("write bench record");
    }
    (
        writer.into_inner().expect("flush bench pcap"),
        capture.len(),
    )
}

fn passive() -> Capture {
    Capture::new(passive_config(Ipv6Prefix::default_route()))
}

fn bench_feed(c: &mut Criterion) {
    let (image, records) = pcap_image();
    let path: PathBuf =
        std::env::temp_dir().join(format!("sixscope-bench-feed-{}.pcap", std::process::id()));
    std::fs::write(&path, &image).expect("write bench pcap");

    let mut group = c.benchmark_group("feed");
    group.throughput(Throughput::Elements(records as u64));

    // The unified pull loop: chunked PcapFeed into a capture, with
    // watermark tracking and per-file statistics.
    group.bench_function("pcap_feed", |b| {
        b.iter(|| {
            let mut feed = PcapFeed::new(passive(), [&path], 1 << 14);
            loop {
                let chunk = feed.next_chunk().expect("bench file is readable");
                if chunk.end_of_feed {
                    break;
                }
            }
            let (capture, stats, _) = feed.finish();
            black_box((capture.len(), stats.parsed))
        })
    });

    // The raw zero-copy loop the feed wraps — same chunk size, no trait
    // dispatch, no watermark.
    group.bench_function("slice_reader", |b| {
        b.iter(|| {
            let mut reader = SliceReader::new(&image).expect("valid header");
            let mut capture = passive();
            let mut stats = IngestStats::default();
            let mut views: Vec<ViewOutcome<'_>> = Vec::new();
            while reader.next_chunk(1 << 14, &mut views) {
                capture.extend_from_views(&views, &mut stats);
            }
            black_box((capture.len(), stats.parsed))
        })
    });

    group.finish();

    // Synthetic reveal: how fast the sim lane can hand an already-built
    // capture to the consumer, chunk by chunk.
    let analyzed = bench_corpus();
    let capture = analyzed.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("sim_feed");
    group.throughput(Throughput::Elements(capture.len() as u64));
    group.bench_function("chunked_reveal", |b| {
        b.iter(|| {
            let mut feed = SimFeed::new(capture, 1 << 12);
            let mut revealed = 0usize;
            loop {
                let chunk = feed.next_chunk().expect("sim feeds cannot fail");
                revealed += chunk.range.len();
                if chunk.end_of_feed {
                    break;
                }
            }
            black_box(revealed)
        })
    });
    group.finish();

    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_feed
}
criterion_main!(benches);
