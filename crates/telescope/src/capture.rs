//! The per-telescope packet store.
//!
//! [`Capture::ingest`] parses raw IPv6 bytes (as received off the simulated
//! wire or read from a pcap) into compact [`CapturedPacket`] records, with an
//! optional pcap tee so a capture can be exported for tcpdump/Wireshark.
//! Analysis works exclusively on these records — the same structures a real
//! deployment would fill from `tcpdump -y RAW`.

use crate::config::{TelescopeConfig, TelescopeId};
use bytes::Bytes;
use sixscope_packet::{
    MalformedRecord, ParsedView, PcapRecord, PcapWriter, RecordOutcome, Transport, ViewOutcome,
};
use sixscope_types::SimTime;
use std::fmt;
use std::io::Write;
use std::net::Ipv6Addr;

/// Statistics of one recoverable pcap ingest run
/// ([`Capture::ingest_pcap_recovering`]).
///
/// The counts partition everything the reader encountered:
/// `records_read = parsed + filtered + malformed_packets`, and damaged pcap
/// records (which never yield packet bytes at all) are tallied separately in
/// `skipped`, indexed by [`MalformedRecord::REASONS`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Complete records read off the file.
    pub records_read: u64,
    /// Records that parsed as IPv6 and matched the capture filter.
    pub parsed: u64,
    /// Records that parsed but fell outside the telescope prefix.
    pub filtered: u64,
    /// Records whose bytes did not parse as an IPv6 packet.
    pub malformed_packets: u64,
    /// Damaged pcap records skipped, by [`MalformedRecord::reason_index`].
    pub skipped: [u64; MalformedRecord::REASONS.len()],
    /// True if the file ended inside a record (killed live capture).
    pub truncated_tail: bool,
}

impl IngestStats {
    /// Total damaged records skipped across all reasons.
    pub fn skipped_total(&self) -> u64 {
        self.skipped.iter().sum()
    }

    /// Per-reason skip counts with their stable labels (all reasons, in
    /// [`MalformedRecord::REASONS`] order).
    pub fn skip_reasons(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        MalformedRecord::REASONS.into_iter().zip(self.skipped)
    }

    /// Folds another run's statistics into this one (multi-file ingest).
    pub fn absorb(&mut self, other: &IngestStats) {
        self.records_read += other.records_read;
        self.parsed += other.parsed;
        self.filtered += other.filtered;
        self.malformed_packets += other.malformed_packets;
        for (mine, theirs) in self.skipped.iter_mut().zip(other.skipped) {
            *mine += theirs;
        }
        self.truncated_tail |= other.truncated_tail;
    }
}

impl fmt::Display for IngestStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records read: {} parsed, {} filtered, {} malformed; {} skipped",
            self.records_read,
            self.parsed,
            self.filtered,
            self.malformed_packets,
            self.skipped_total(),
        )?;
        let reasons: Vec<String> = self
            .skip_reasons()
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("{r}: {n}"))
            .collect();
        if !reasons.is_empty() {
            write!(f, " ({})", reasons.join(", "))?;
        }
        if self.truncated_tail {
            write!(f, "; truncated tail")?;
        }
        Ok(())
    }
}

/// Transport protocol of a captured packet (telescope view).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    /// ICMPv6.
    Icmpv6,
    /// TCP.
    Tcp,
    /// UDP.
    Udp,
    /// Anything else.
    Other,
}

impl Protocol {
    /// Table-2 row label.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Icmpv6 => "ICMPv6",
            Protocol::Tcp => "TCP",
            Protocol::Udp => "UDP",
            Protocol::Other => "Other",
        }
    }

    /// The three protocols reported in Table 2, in paper order.
    pub const REPORTED: [Protocol; 3] = [Protocol::Icmpv6, Protocol::Udp, Protocol::Tcp];
}

/// One captured probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapturedPacket {
    /// Arrival time.
    pub ts: SimTime,
    /// Receiving telescope.
    pub telescope: TelescopeId,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination (target) address.
    pub dst: Ipv6Addr,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Source port (TCP/UDP).
    pub src_port: Option<u16>,
    /// Destination port (TCP/UDP).
    pub dst_port: Option<u16>,
    /// Upper-layer payload (tool fingerprints live here).
    pub payload: Bytes,
}

/// A telescope's capture buffer.
pub struct Capture {
    config: TelescopeConfig,
    packets: Vec<CapturedPacket>,
    pcap: Option<PcapWriter<Box<dyn Write + Send + Sync>>>,
    /// Count of packets rejected by the capture filter.
    filtered: u64,
    /// Count of packets that failed to parse.
    malformed: u64,
}

impl std::fmt::Debug for Capture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Capture")
            .field("telescope", &self.config.id)
            .field("packets", &self.packets.len())
            .field("filtered", &self.filtered)
            .field("malformed", &self.malformed)
            .finish()
    }
}

impl Capture {
    /// Creates an empty capture for a telescope.
    pub fn new(config: TelescopeConfig) -> Self {
        Capture {
            config,
            packets: Vec::new(),
            pcap: None,
            filtered: 0,
            malformed: 0,
        }
    }

    /// Attaches a pcap tee; every ingested packet is also written there.
    pub fn attach_pcap<W: Write + Send + Sync + 'static>(
        &mut self,
        writer: W,
    ) -> Result<(), sixscope_packet::PacketError> {
        self.pcap = Some(PcapWriter::new(
            Box::new(writer) as Box<dyn Write + Send + Sync>
        )?);
        Ok(())
    }

    /// The telescope configuration.
    pub fn config(&self) -> &TelescopeConfig {
        &self.config
    }

    /// Fast-path ingest for packets whose decoded fields are already
    /// known — the simulator's fused delivery loop built the probe, so
    /// re-encoding and re-parsing it would only reproduce these same
    /// values. Applies the same capture filter and counters as
    /// [`Capture::ingest`]; the caller guarantees the fields describe a
    /// well-formed packet (the fused-vs-reference equivalence tests pin
    /// this). Requires no pcap tee, which needs raw bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn ingest_fields(
        &mut self,
        ts: SimTime,
        src: Ipv6Addr,
        dst: Ipv6Addr,
        protocol: Protocol,
        src_port: Option<u16>,
        dst_port: Option<u16>,
        payload: &[u8],
    ) -> bool {
        debug_assert!(
            self.pcap.is_none(),
            "pcap tee requires raw bytes — use ingest"
        );
        if !self.config.captures(dst) {
            self.filtered += 1;
            return false;
        }
        self.packets.push(CapturedPacket {
            ts,
            telescope: self.config.id,
            src,
            dst,
            protocol,
            src_port,
            dst_port,
            payload: Bytes::copy_from_slice(payload),
        });
        true
    }

    /// Ingests raw IPv6 bytes arriving at `ts`. Returns `true` if the packet
    /// was recorded (parsed and matching the capture filter).
    ///
    /// Parsing is zero-copy ([`ParsedView`]): filtered and malformed
    /// packets never allocate, and payload bytes are copied exactly once —
    /// at retention, when the packet is promoted into the capture buffer
    /// (DESIGN.md §11).
    pub fn ingest(&mut self, ts: SimTime, raw: &[u8]) -> bool {
        let parsed = match ParsedView::parse(raw) {
            Ok(p) => p,
            Err(_) => {
                self.malformed += 1;
                return false;
            }
        };
        if !self.config.captures(parsed.header.dst) {
            self.filtered += 1;
            return false;
        }
        if let Some(pcap) = &mut self.pcap {
            let _ = pcap.write_record(&PcapRecord {
                ts,
                ts_micros: 0,
                data: raw.to_vec(),
            });
        }
        let protocol = match &parsed.transport {
            Transport::Icmpv6(_) => Protocol::Icmpv6,
            Transport::Tcp(_) => Protocol::Tcp,
            Transport::Udp(_) => Protocol::Udp,
            Transport::Other(_) => Protocol::Other,
        };
        self.packets.push(CapturedPacket {
            ts,
            telescope: self.config.id,
            src: parsed.header.src,
            dst: parsed.header.dst,
            protocol,
            src_port: parsed.src_port(),
            dst_port: parsed.dst_port(),
            payload: Bytes::copy_from_slice(parsed.payload),
        });
        true
    }

    /// Directly records an already-decomposed packet (used when replaying
    /// summarized captures; simulation uses [`Capture::ingest`]).
    pub fn push(&mut self, packet: CapturedPacket) {
        self.packets.push(packet);
    }

    /// Appends another capture of the same telescope: packets concatenate
    /// in order, filter/malformed counters add up. The parallel delivery
    /// engine merges per-shard captures with this; the caller is
    /// responsible for shard order (contiguous time-sorted shards keep the
    /// merged capture time-sorted). `other`'s pcap tee, if any, is dropped
    /// — shard-local captures never attach one.
    pub fn absorb(&mut self, other: Capture) {
        debug_assert_eq!(
            self.config.id, other.config.id,
            "absorbing across telescopes"
        );
        // One exact reservation up front so the merge loop never grows the
        // buffer mid-copy (realloc churn dominates repeated shard merges).
        self.packets.reserve_exact(other.packets.len());
        let cap_before = self.packets.capacity();
        self.packets.extend(other.packets);
        debug_assert_eq!(
            self.packets.capacity(),
            cap_before,
            "Capture::absorb reallocated mid-merge"
        );
        self.filtered += other.filtered;
        self.malformed += other.malformed;
    }

    /// Reconstructs a capture from decoded shard-file parts. Packets must
    /// already be in stored (time-sorted) order; the counters restore the
    /// filter/malformed tallies the original ingest recorded. No pcap tee
    /// is attached — a restored capture is an analysis input, not a live
    /// ingest target.
    pub fn restore(
        config: TelescopeConfig,
        packets: Vec<CapturedPacket>,
        filtered: u64,
        malformed: u64,
    ) -> Capture {
        Capture {
            config,
            packets,
            pcap: None,
            filtered,
            malformed,
        }
    }

    /// Merges per-scanner capture segments into one time-sorted capture.
    ///
    /// The fused delivery engine produces one segment per scanner, each
    /// time-sorted internally but overlapping the others in time, so plain
    /// [`Capture::absorb`] concatenation cannot apply. The merge key is
    /// `(ts, segment index, position)` packed into a `u128`, matching the
    /// order a global stable sort by timestamp over the segment-ordered
    /// concatenation would produce — which is exactly the staged reference
    /// path's order. Counters add up as in [`Capture::absorb`].
    pub fn merge_time_sorted(&mut self, segments: Vec<Capture>) {
        let mut total = 0usize;
        for seg in &segments {
            debug_assert_eq!(self.config.id, seg.config.id, "merging across telescopes");
            debug_assert!(
                seg.packets.len() < (1 << 32),
                "segment exceeds u32 positions"
            );
            self.filtered += seg.filtered;
            self.malformed += seg.malformed;
            total += seg.packets.len();
        }
        debug_assert!(segments.len() < (1 << 32), "too many segments");
        // Gather: within a segment, positions are consumed in increasing
        // order (ts is non-decreasing with position), so per-segment
        // iterators hand out packets FIFO. When (ts, segment, position)
        // all fit in one u64 — true for every realistic run: timestamps
        // below 2²⁶ s (≈ 2 years), at most 2¹⁶ segments, position below
        // the generation cap — sort packed u64 keys; otherwise fall back
        // to the u128 packing. Both orders are identical.
        let max_ts = segments
            .iter()
            .flat_map(|s| s.packets.last())
            .map(|p| p.ts.as_secs())
            .max()
            .unwrap_or(0);
        let max_len = segments.iter().map(|s| s.packets.len()).max().unwrap_or(0);
        self.packets.reserve_exact(total);
        if max_ts < (1 << 26) && segments.len() <= (1 << 16) && max_len <= (1 << 22) {
            let mut keys: Vec<u64> = Vec::with_capacity(total);
            for (si, seg) in segments.iter().enumerate() {
                for (pi, p) in seg.packets.iter().enumerate() {
                    keys.push((p.ts.as_secs() << 38) | ((si as u64) << 22) | pi as u64);
                }
            }
            keys.sort_unstable();
            let mut iters: Vec<std::vec::IntoIter<CapturedPacket>> = segments
                .into_iter()
                .map(|seg| seg.packets.into_iter())
                .collect();
            for key in keys {
                let si = ((key >> 22) & 0xffff) as usize;
                let p = iters[si].next().expect("one packet per key");
                debug_assert_eq!(p.ts.as_secs(), key >> 38, "gather out of order");
                self.packets.push(p);
            }
        } else {
            let mut keys: Vec<u128> = Vec::with_capacity(total);
            for (si, seg) in segments.iter().enumerate() {
                for (pi, p) in seg.packets.iter().enumerate() {
                    keys.push(((p.ts.as_secs() as u128) << 64) | ((si as u128) << 32) | pi as u128);
                }
            }
            keys.sort_unstable();
            let mut iters: Vec<std::vec::IntoIter<CapturedPacket>> = segments
                .into_iter()
                .map(|seg| seg.packets.into_iter())
                .collect();
            for key in keys {
                let si = ((key >> 32) & 0xffff_ffff) as usize;
                let p = iters[si].next().expect("one packet per key");
                debug_assert_eq!(p.ts.as_secs() as u128, key >> 64, "gather out of order");
                self.packets.push(p);
            }
        }
    }

    /// Stable-sorts the packets into non-decreasing time order (arrival
    /// order is preserved on ties). Any packet indices derived before the
    /// sort — sessions, index shards — are invalidated; the streaming
    /// pipeline uses this only on its batch fallback for out-of-order
    /// captures, before any index is built.
    pub fn sort_by_time(&mut self) {
        self.packets.sort_by_key(|p| p.ts);
    }

    /// True when packets are in non-decreasing time order. Simulation
    /// delivery produces sorted captures by construction; the sessionizer
    /// and the corpus index use this to skip their sort fallbacks.
    pub fn is_time_sorted(&self) -> bool {
        self.packets.windows(2).all(|w| w[0].ts <= w[1].ts)
    }

    /// All captured packets in arrival order.
    pub fn packets(&self) -> &[CapturedPacket] {
        &self.packets
    }

    /// Consumes the capture into its packet vector (shard gather path).
    pub fn into_packets(self) -> Vec<CapturedPacket> {
        self.packets
    }

    /// Number of captured packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Packets dropped by the capture filter (outside prefix / productive).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Packets that failed to parse.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Reads a pcap stream into this capture, applying the same filter.
    ///
    /// Fail-fast: the first damaged record aborts with an error. Real
    /// telescope captures should use [`Capture::ingest_pcap_recovering`],
    /// which confines damage to the record it occurs in.
    pub fn ingest_pcap<R: std::io::Read>(
        &mut self,
        reader: R,
    ) -> Result<usize, sixscope_packet::PacketError> {
        let mut count = 0;
        for rec in sixscope_packet::PcapReader::new(reader)? {
            let rec = rec?;
            if self.ingest(rec.ts, &rec.data) {
                count += 1;
            }
        }
        Ok(count)
    }

    /// Reads a pcap stream with skip-and-count recovery: damaged records
    /// are skipped (tallied per reason), a file cut off mid-record yields
    /// every complete record plus the `truncated_tail` marker, and only
    /// file-level problems — unreadable global header, wrong link type,
    /// real I/O failure — abort with `Err`.
    pub fn ingest_pcap_recovering<R: std::io::Read>(
        &mut self,
        reader: R,
    ) -> Result<IngestStats, sixscope_packet::PacketError> {
        let mut r = sixscope_packet::PcapReader::new(reader)?;
        let mut stats = IngestStats::default();
        while let Some(outcome) = r.read_record_recovering()? {
            self.apply_outcome(outcome, &mut stats);
        }
        Ok(stats)
    }

    /// Applies one recovering-reader outcome: a complete record is ingested
    /// (filtered/malformed-packet tallies included), a damaged one is
    /// counted by reason. The streaming pipeline drives this per chunk;
    /// [`Capture::ingest_pcap_recovering`] is the same loop over a whole
    /// file.
    pub fn apply_outcome(&mut self, outcome: RecordOutcome, stats: &mut IngestStats) {
        match outcome {
            RecordOutcome::Record(rec) => self.apply_record(rec.ts, &rec.data, stats),
            RecordOutcome::Skipped(m) => {
                stats.skipped[m.reason_index()] += 1;
            }
            RecordOutcome::TruncatedTail(m) => {
                stats.skipped[m.reason_index()] += 1;
                stats.truncated_tail = true;
            }
        }
    }

    /// Zero-copy twin of [`Capture::apply_outcome`]: applies one borrowed
    /// [`ViewOutcome`] with identical statistics semantics, without the
    /// owned `Vec<u8>` per record.
    pub fn apply_outcome_view(&mut self, outcome: &ViewOutcome<'_>, stats: &mut IngestStats) {
        match outcome {
            ViewOutcome::Record(rec) => self.apply_record(rec.ts, rec.data, stats),
            ViewOutcome::Skipped(m) => {
                stats.skipped[m.reason_index()] += 1;
            }
            ViewOutcome::TruncatedTail(m) => {
                stats.skipped[m.reason_index()] += 1;
                stats.truncated_tail = true;
            }
        }
    }

    /// Batched ingest kernel: applies a run of borrowed outcomes with one
    /// capacity reservation for the whole run. This is the chunk feed the
    /// streaming pipeline drives — record bytes stay borrowed from the
    /// mapped file through parse and filtering, and only retained packets
    /// copy their payload out.
    pub fn extend_from_views(&mut self, run: &[ViewOutcome<'_>], stats: &mut IngestStats) {
        self.packets.reserve(run.len());
        for outcome in run {
            self.apply_outcome_view(outcome, stats);
        }
    }

    #[inline]
    fn apply_record(&mut self, ts: SimTime, data: &[u8], stats: &mut IngestStats) {
        stats.records_read += 1;
        let (filtered, malformed) = (self.filtered, self.malformed);
        if self.ingest(ts, data) {
            stats.parsed += 1;
        } else if self.filtered > filtered {
            stats.filtered += 1;
        } else if self.malformed > malformed {
            stats.malformed_packets += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sixscope_packet::PacketBuilder;

    fn t3_capture() -> Capture {
        Capture::new(TelescopeConfig::t3("2001:db8:3::/48".parse().unwrap()))
    }

    fn probe(dst: &str) -> Vec<u8> {
        PacketBuilder::new("2001:db8:f00::1".parse().unwrap(), dst.parse().unwrap())
            .icmpv6_echo_request(1, 1, b"yarrp")
    }

    #[test]
    fn ingest_records_matching_packets() {
        let mut cap = t3_capture();
        assert!(cap.ingest(SimTime::from_secs(5), &probe("2001:db8:3::1")));
        assert_eq!(cap.len(), 1);
        let p = &cap.packets()[0];
        assert_eq!(p.protocol, Protocol::Icmpv6);
        assert_eq!(p.dst, "2001:db8:3::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(&p.payload[..], b"yarrp");
        assert_eq!(p.telescope, TelescopeId::T3);
    }

    #[test]
    fn ingest_filters_out_of_prefix_traffic() {
        let mut cap = t3_capture();
        assert!(!cap.ingest(SimTime::EPOCH, &probe("2001:db8:4::1")));
        assert_eq!(cap.len(), 0);
        assert_eq!(cap.filtered(), 1);
    }

    #[test]
    fn ingest_counts_malformed() {
        let mut cap = t3_capture();
        assert!(!cap.ingest(SimTime::EPOCH, &[0u8; 10]));
        assert_eq!(cap.malformed(), 1);
    }

    #[test]
    fn absorb_concatenates_packets_and_counters() {
        let mut a = t3_capture();
        let mut b = t3_capture();
        assert!(a.ingest(SimTime::from_secs(1), &probe("2001:db8:3::1")));
        assert!(b.ingest(SimTime::from_secs(2), &probe("2001:db8:3::2")));
        assert!(!b.ingest(SimTime::from_secs(3), &probe("2001:db8:9::1"))); // filtered
        assert!(!b.ingest(SimTime::from_secs(4), &[0u8; 4])); // malformed
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.filtered(), 1);
        assert_eq!(a.malformed(), 1);
        assert!(a.packets().windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn merge_time_sorted_equals_stable_sort_of_concatenation() {
        // Three overlapping segments with duplicate timestamps across and
        // within segments — the stable tie-break (segment order, then
        // position) must match a stable sort of the concatenation.
        let mut segments = Vec::new();
        let plans: [&[(u64, &str)]; 3] = [
            &[
                (1, "2001:db8:3::1"),
                (5, "2001:db8:3::2"),
                (5, "2001:db8:3::3"),
            ],
            &[(0, "2001:db8:3::4"), (5, "2001:db8:3::5")],
            &[
                (2, "2001:db8:3::6"),
                (2, "2001:db8:3::7"),
                (9, "2001:db8:3::8"),
            ],
        ];
        let mut expected = Vec::new();
        for plan in plans {
            let mut seg = t3_capture();
            for (ts, dst) in plan {
                assert!(seg.ingest(SimTime::from_secs(*ts), &probe(dst)));
            }
            assert!(!seg.ingest(SimTime::from_secs(1), &probe("2001:db8:9::1")));
            expected.extend(seg.packets().to_vec());
            segments.push(seg);
        }
        expected.sort_by_key(|p| p.ts); // stable: keeps segment order on ties
        let mut merged = t3_capture();
        merged.merge_time_sorted(segments);
        assert_eq!(merged.packets(), &expected[..]);
        assert_eq!(merged.filtered(), 3);
        assert!(merged.is_time_sorted());
    }

    #[test]
    fn merge_falls_back_to_wide_keys_for_huge_timestamps() {
        // Timestamps past the u64 packing budget (≥ 2²⁶ s) take the u128
        // path; the tie-break order must be the same.
        let base = 1u64 << 27;
        let mut segments = Vec::new();
        let mut expected = Vec::new();
        for plan in [
            [(base + 1, "2001:db8:3::1"), (base + 5, "2001:db8:3::2")],
            [(base, "2001:db8:3::3"), (base + 5, "2001:db8:3::4")],
        ] {
            let mut seg = t3_capture();
            for (ts, dst) in plan {
                assert!(seg.ingest(SimTime::from_secs(ts), &probe(dst)));
            }
            expected.extend(seg.packets().to_vec());
            segments.push(seg);
        }
        expected.sort_by_key(|p| p.ts);
        let mut merged = t3_capture();
        merged.merge_time_sorted(segments);
        assert_eq!(merged.packets(), &expected[..]);
    }

    #[test]
    fn merge_into_nonempty_capture_appends_after_existing() {
        let mut merged = t3_capture();
        assert!(merged.ingest(SimTime::from_secs(1), &probe("2001:db8:3::a")));
        let mut seg = t3_capture();
        assert!(seg.ingest(SimTime::from_secs(2), &probe("2001:db8:3::b")));
        merged.merge_time_sorted(vec![seg]);
        assert_eq!(merged.len(), 2);
        assert!(merged.is_time_sorted());
    }

    #[test]
    fn t2_productive_traffic_is_excluded() {
        let cfg = TelescopeConfig::t2("2001:db8:2::/48".parse().unwrap());
        let productive = cfg.productive_subnet.unwrap();
        let mut cap = Capture::new(cfg);
        let inside = format!("{}", productive.low_byte_address());
        assert!(!cap.ingest(SimTime::EPOCH, &probe(&inside)));
        assert!(cap.ingest(SimTime::EPOCH, &probe("2001:db8:2:200::1")));
    }

    #[test]
    fn pcap_tee_round_trips() {
        use std::sync::{Arc, Mutex};

        /// Shared Vec so we can read what the tee wrote.
        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut cap = t3_capture();
        cap.attach_pcap(buf.clone()).unwrap();
        let raw = probe("2001:db8:3::42");
        cap.ingest(SimTime::from_secs(77), &raw);
        let bytes = buf.0.lock().unwrap().clone();
        let mut reader = sixscope_packet::PcapReader::new(&bytes[..]).unwrap();
        let rec = reader.read_record().unwrap().unwrap();
        assert_eq!(rec.ts.as_secs(), 77);
        assert_eq!(rec.data, raw);
    }

    #[test]
    fn recovering_ingest_skips_damage_and_flags_truncated_tail() {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        // In-prefix probe, out-of-prefix probe, non-IPv6 garbage bytes.
        for (ts, data) in [
            (1, probe("2001:db8:3::1")),
            (2, probe("2001:db8:9::1")),
            (3, vec![0u8; 12]),
        ] {
            w.write_record(&PcapRecord {
                ts: SimTime::from_secs(ts),
                ts_micros: 0,
                data,
            })
            .unwrap();
        }
        let mut bytes = w.into_inner().unwrap();
        // A damaged record (incl_len 8 > orig_len 2) with its 8 bytes present.
        bytes.extend_from_slice(&4u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&8u32.to_le_bytes());
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xee; 8]);
        // One more good record, then a record header cut off by EOF.
        let mut w2 = PcapWriter::new(Vec::new()).unwrap();
        w2.write_record(&PcapRecord {
            ts: SimTime::from_secs(5),
            ts_micros: 0,
            data: probe("2001:db8:3::2"),
        })
        .unwrap();
        bytes.extend_from_slice(&w2.into_inner().unwrap()[24..]);
        bytes.extend_from_slice(&[0u8; 7]);

        let mut cap = t3_capture();
        let stats = cap.ingest_pcap_recovering(&bytes[..]).unwrap();
        assert_eq!(stats.records_read, 4);
        assert_eq!(stats.parsed, 2);
        assert_eq!(stats.filtered, 1);
        assert_eq!(stats.malformed_packets, 1);
        assert_eq!(stats.skipped_total(), 2);
        assert!(stats.truncated_tail);
        assert_eq!(cap.len(), 2);
        assert_eq!(
            stats.records_read,
            stats.parsed + stats.filtered + stats.malformed_packets
        );
        // The Display form carries the per-reason breakdown.
        let shown = stats.to_string();
        assert!(shown.contains("length-inconsistent: 1"), "{shown}");
        assert!(shown.contains("truncated-header: 1"), "{shown}");
        assert!(shown.contains("truncated tail"), "{shown}");
    }

    #[test]
    fn pcap_ingest_applies_filter() {
        // Build a pcap with one matching and one non-matching packet.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        w.write_record(&PcapRecord {
            ts: SimTime::from_secs(1),
            ts_micros: 0,
            data: probe("2001:db8:3::1"),
        })
        .unwrap();
        w.write_record(&PcapRecord {
            ts: SimTime::from_secs(2),
            ts_micros: 0,
            data: probe("2001:db8:9::1"),
        })
        .unwrap();
        let bytes = w.into_inner().unwrap();
        let mut cap = t3_capture();
        let n = cap.ingest_pcap(&bytes[..]).unwrap();
        assert_eq!(n, 1);
        assert_eq!(cap.len(), 1);
        assert_eq!(cap.filtered(), 1);
    }
}
