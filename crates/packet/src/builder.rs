//! High-level packet construction.
//!
//! [`PacketBuilder`] assembles complete IPv6 packets (header + transport +
//! payload) as `Vec<u8>`; the scanner models call these and hand the bytes to
//! the simulated network, exactly as a real scanning host would hand them to
//! a raw socket.

use crate::icmpv6::Icmpv6Header;
use crate::ipv6::{Ipv6Header, NextHeader, IPV6_HEADER_LEN};
use crate::tcp::{TcpHeader, TCP_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use std::net::Ipv6Addr;

/// Builder for complete IPv6 packets.
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src: Ipv6Addr,
    dst: Ipv6Addr,
    hop_limit: u8,
    flow_label: u32,
}

impl PacketBuilder {
    /// Starts a packet from `src` to `dst` with default hop limit 64.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        PacketBuilder {
            src,
            dst,
            hop_limit: 64,
            flow_label: 0,
        }
    }

    /// Overrides the hop limit (traceroute-type tools ramp this up).
    pub fn hop_limit(mut self, hl: u8) -> Self {
        self.hop_limit = hl;
        self
    }

    /// Overrides the flow label.
    pub fn flow_label(mut self, fl: u32) -> Self {
        self.flow_label = fl;
        self
    }

    fn finish(&self, next: NextHeader, upper: Vec<u8>) -> Vec<u8> {
        let mut hdr = Ipv6Header::new(self.src, self.dst, next, upper.len() as u16);
        hdr.hop_limit = self.hop_limit;
        hdr.flow_label = self.flow_label;
        let mut out = Vec::with_capacity(IPV6_HEADER_LEN + upper.len());
        hdr.encode(&mut out);
        out.extend_from_slice(&upper);
        out
    }

    /// Builds an ICMPv6 Echo Request with the given payload.
    pub fn icmpv6_echo_request(&self, identifier: u16, sequence: u16, payload: &[u8]) -> Vec<u8> {
        let mut upper = Vec::with_capacity(8 + payload.len());
        Icmpv6Header::echo_request(identifier, sequence).encode(
            self.src, self.dst, payload, &mut upper,
        );
        self.finish(NextHeader::Icmpv6, upper)
    }

    /// Builds an arbitrary ICMPv6 message.
    pub fn icmpv6(&self, header: Icmpv6Header, payload: &[u8]) -> Vec<u8> {
        let mut upper = Vec::with_capacity(8 + payload.len());
        header.encode(self.src, self.dst, payload, &mut upper);
        self.finish(NextHeader::Icmpv6, upper)
    }

    /// Builds a TCP SYN probe (optionally with a payload, which some scan
    /// tools use to carry a fingerprint).
    pub fn tcp_syn(&self, src_port: u16, dst_port: u16, seq: u32, payload: &[u8]) -> Vec<u8> {
        let mut upper = Vec::with_capacity(TCP_HEADER_LEN + payload.len());
        TcpHeader::syn(src_port, dst_port, seq).encode(self.src, self.dst, payload, &mut upper);
        self.finish(NextHeader::Tcp, upper)
    }

    /// Builds an arbitrary TCP segment.
    pub fn tcp(&self, header: TcpHeader, payload: &[u8]) -> Vec<u8> {
        let mut upper = Vec::with_capacity(TCP_HEADER_LEN + payload.len());
        header.encode(self.src, self.dst, payload, &mut upper);
        self.finish(NextHeader::Tcp, upper)
    }

    /// Builds a UDP datagram.
    pub fn udp(&self, src_port: u16, dst_port: u16, payload: &[u8]) -> Vec<u8> {
        let mut upper = Vec::with_capacity(UDP_HEADER_LEN + payload.len());
        UdpHeader::new(src_port, dst_port, payload.len()).encode(
            self.src, self.dst, payload, &mut upper,
        );
        self.finish(NextHeader::Udp, upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{ParsedPacket, Transport};

    fn builder() -> PacketBuilder {
        PacketBuilder::new(
            "2001:db8::1".parse().unwrap(),
            "2001:db8:8000::99".parse().unwrap(),
        )
    }

    #[test]
    fn echo_request_parses_back() {
        let bytes = builder().icmpv6_echo_request(7, 3, b"ping");
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.next_header, NextHeader::Icmpv6);
        match &p.transport {
            Transport::Icmpv6(h) => {
                assert_eq!(h.identifier, 7);
                assert_eq!(h.sequence, 3);
            }
            other => panic!("wrong transport {other:?}"),
        }
        assert_eq!(&p.payload[..], b"ping");
    }

    #[test]
    fn tcp_syn_parses_back() {
        let bytes = builder().tcp_syn(55555, 443, 1, &[]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.dst_port(), Some(443));
        assert_eq!(p.src_port(), Some(55555));
        assert!(p.payload.is_empty());
    }

    #[test]
    fn udp_parses_back_with_payload() {
        let bytes = builder().udp(40000, 33434, b"traceroute!");
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.dst_port(), Some(33434));
        assert_eq!(&p.payload[..], b"traceroute!");
    }

    #[test]
    fn hop_limit_and_flow_label_pass_through() {
        let bytes = builder().hop_limit(3).flow_label(0x1234).udp(1, 2, &[]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.hop_limit, 3);
        assert_eq!(p.header.flow_label, 0x1234);
    }

    #[test]
    fn payload_len_field_is_exact() {
        let bytes = builder().icmpv6_echo_request(1, 1, &[0u8; 100]);
        let p = ParsedPacket::parse(&bytes).unwrap();
        assert_eq!(p.header.payload_len as usize, bytes.len() - IPV6_HEADER_LEN);
    }
}
