//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * session timeout (5 min / 30 min / 1 h / 4 h),
//! * source aggregation level (/128 vs /64 vs /48),
//! * NIST minimum session size,
//! * heavy-hitter threshold,
//! * the split-selection rule (avoid-low-byte vs naive low half).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sixscope_analysis::heavy::heavy_hitters_with_threshold;
use sixscope_bench::bench_corpus;
use sixscope_telescope::{AggLevel, Sessionizer, SplitSchedule, TelescopeId};
use sixscope_types::{SimDuration, SimTime};
use std::hint::black_box;

/// Session-count stability under the timeout choice (§3.3: sessions are a
/// stable measure; the paper picked 1 h).
fn ablate_session_timeout(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("ablate_session_timeout");
    group.sample_size(10);
    let mut counts = Vec::new();
    for mins in [5u64, 30, 60, 240] {
        let sessionizer = Sessionizer {
            level: AggLevel::Addr128,
            timeout: SimDuration::mins(mins),
        };
        let n = sessionizer.sessionize(capture).len();
        counts.push((mins, n));
        group.bench_with_input(BenchmarkId::from_parameter(mins), &mins, |b, _| {
            b.iter(|| black_box(sessionizer.sessionize(capture)))
        });
    }
    group.finish();
    // Longer timeouts can only merge sessions.
    assert!(counts.windows(2).all(|w| w[0].1 >= w[1].1), "{counts:?}");
    println!("session counts by timeout: {counts:?}");
}

/// Source/session divergence across aggregation levels (Fig. 4's
/// motivation for analyzing /128 and /64 side by side).
fn ablate_aggregation_level(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T2);
    let mut group = c.benchmark_group("ablate_aggregation");
    group.sample_size(10);
    let mut counts = Vec::new();
    for level in [AggLevel::Addr128, AggLevel::Subnet64, AggLevel::Prefix48] {
        let sessionizer = Sessionizer::paper(level);
        counts.push((level, sessionizer.sessionize(capture).len()));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{level}")),
            &level,
            |b, _| b.iter(|| black_box(sessionizer.sessionize(capture))),
        );
    }
    group.finish();
    // Coarser aggregation can only merge sessions; T2's rotators make the
    // /128 vs /64 gap pronounced.
    assert!(counts[0].1 > counts[1].1, "{counts:?}");
    assert!(counts[1].1 >= counts[2].1, "{counts:?}");
    println!("session counts by aggregation: {counts:?}");
}

/// Heavy-hitter threshold sweep: the 10% choice sits on a plateau.
fn ablate_heavy_threshold(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("ablate_heavy_threshold");
    group.sample_size(10);
    let mut counts = Vec::new();
    for pct in [1u32, 5, 10, 20] {
        let threshold = pct as f64 / 100.0;
        counts.push((pct, heavy_hitters_with_threshold(capture, threshold).len()));
        group.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| black_box(heavy_hitters_with_threshold(capture, threshold)))
        });
    }
    group.finish();
    assert!(counts.windows(2).all(|w| w[0].1 >= w[1].1), "{counts:?}");
    println!("heavy hitters by threshold: {counts:?}");
}

/// The split-selection rule. Every split necessarily puts the parent's
/// `::1` inside one of the new halves; the question is *how long that
/// address has already been exposed to scanners*. The paper's rule (split
/// the half without the inherited low-byte) only ever inherits a low-byte
/// announced for one prior cycle; the naive rule (always split the low
/// half) re-inherits the covering prefix's `::1` — hot since cycle 0 — so
/// its new prefixes carry ever-growing attractor bias.
fn ablate_split_rule(c: &mut Criterion) {
    let covering = "2001:db8::/32".parse().unwrap();
    let schedule = SplitSchedule::paper(covering, SimTime::EPOCH);
    // Paper rule: exposure (in prior cycles) of the low-byte address each
    // new most-specific prefix inherits.
    let paper_exposure: u32 = schedule.cycles; // each cycle contributes exactly 1
                                               // Naive rule: the inherited ::1 is the covering prefix's, exposed since
                                               // the start — k cycles by cycle k.
    let naive_exposure: u32 = (1..=schedule.cycles).sum();
    assert!(
        naive_exposure > 5 * paper_exposure,
        "the naive rule must accumulate far more inherited exposure \
         ({naive_exposure} vs {paper_exposure} cycle-units)"
    );
    // Verify the paper rule structurally on the real schedule: the split
    // target never contains a low-byte address announced for more than one
    // prior cycle.
    for cycle in 2..=schedule.cycles {
        let target = schedule.split_target(cycle);
        assert!(
            !target.contains(covering.low_byte_address()),
            "cycle {cycle}: split target inherits the covering ::1"
        );
    }
    println!(
        "inherited low-byte exposure: paper rule {paper_exposure} vs naive rule {naive_exposure} cycle-units"
    );
    c.bench_function("ablate_split_rule_schedule", |b| {
        b.iter(|| black_box(SplitSchedule::paper(covering, SimTime::EPOCH).actions()))
    });
}

/// NIST minimum-session-size sweep: coverage vs reliability (§5.3 uses 100).
fn ablate_nist_min_packets(c: &mut Criterion) {
    let a = bench_corpus();
    let sessions = a.sessions128(TelescopeId::T1);
    let mut coverage = Vec::new();
    for min in [20usize, 50, 100, 200] {
        let eligible = sessions.iter().filter(|s| s.packet_count() >= min).count();
        coverage.push((min, eligible));
    }
    assert!(coverage.windows(2).all(|w| w[0].1 >= w[1].1));
    println!("NIST-eligible sessions by minimum size: {coverage:?}");
    c.bench_function("ablate_nist_eligibility", |b| {
        b.iter(|| black_box(sessions.iter().filter(|s| s.packet_count() >= 100).count()))
    });
}

/// DBSCAN ε sweep for the network-selection classifier: the four classes
/// must be stable across a wide ε band around the default 0.5.
fn ablate_netsel_eps(c: &mut Criterion) {
    use sixscope_analysis::classify::{CycleCounts, NetworkSelection};
    let announced: Vec<sixscope_types::Ipv6Prefix> = vec![
        "2001:db8::/33".parse().unwrap(),
        "2001:db8:8000::/34".parse().unwrap(),
        "2001:db8:c000::/34".parse().unwrap(),
    ];
    // A mildly noisy size-independent scanner and a clear size-dependent one.
    let independent = CycleCounts {
        announced: announced.clone(),
        sessions: vec![9, 8, 10],
    };
    let dependent = CycleCounts {
        announced: announced.clone(),
        sessions: vec![20, 10, 9],
    };
    let mut stable = true;
    for factor in [0.3, 0.4, 0.5, 0.6, 0.7] {
        let i = independent.classify_with(factor);
        let d = dependent.classify_with(factor);
        println!("eps factor {factor}: independent → {i:?}, dependent → {d:?}");
        stable &= i == Some(NetworkSelection::SizeIndependent);
        stable &= d == Some(NetworkSelection::SizeDependent);
    }
    assert!(stable, "classification must be stable across the ε band");
    c.bench_function("ablate_netsel_classify", |b| {
        b.iter(|| black_box(independent.classify()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = ablate_session_timeout, ablate_aggregation_level,
              ablate_heavy_threshold, ablate_split_rule, ablate_nist_min_packets,
              ablate_netsel_eps
}
criterion_main!(benches);
