//! One public error type for the whole facade.
//!
//! Every fallible entry point of the `sixscope` crate — the [`crate::Pipeline`],
//! the CLI commands, the renderers — returns [`Error`]. Each category maps to
//! a distinct process exit code so scripted callers can branch on *what kind*
//! of failure occurred without parsing messages, and the wrapped source errors
//! stay reachable through [`std::error::Error::source`] for full
//! `caused by:` chains.

use crate::shardfile::ShardError;
use sixscope_bgp::BgpError;
use sixscope_packet::PacketError;
use std::fmt;

/// The unified `sixscope` error.
///
/// Categories (and the CLI exit code each maps to via [`Error::exit_code`]):
///
/// | variant | meaning | exit code |
/// |---|---|---:|
/// | [`Error::Usage`] | bad command line / bad flag value | 2 |
/// | [`Error::Io`] | file could not be opened / read / written | 3 |
/// | [`Error::Pcap`] | pcap stream unrecoverably damaged | 4 |
/// | [`Error::Bgp`] | BGP message parsing / session failure | 5 |
/// | [`Error::Analysis`] | analysis-stage invariant violated | 6 |
/// | [`Error::Shard`] | shard file damaged / wrong version | 7 |
///
/// `sixscope serve` uses the same table: a live feed that fails maps to
/// [`Error::Io`] / [`Error::Pcap`] like its batch equivalent, bad flags are
/// [`Error::Usage`], and a clean shutdown (feed drained, or SIGTERM/SIGINT
/// received and the final checkpoint flushed) exits 0.
#[derive(Debug)]
pub enum Error {
    /// The command line (or a library builder argument) was invalid.
    Usage(String),
    /// An I/O operation on `path` failed.
    Io {
        /// The file or directory involved.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A pcap stream was damaged beyond per-record recovery.
    Pcap {
        /// The file being read.
        path: String,
        /// The underlying packet-layer error.
        source: PacketError,
    },
    /// A BGP message could not be parsed or violated the session FSM.
    Bgp(BgpError),
    /// An analysis stage hit an invariant violation.
    Analysis(String),
    /// A `.sixshard` file was damaged, truncated, or of the wrong version.
    Shard {
        /// The shard file being read.
        path: String,
        /// The underlying decode error.
        source: ShardError,
    },
}

impl Error {
    /// The process exit code for this error category (the CLI uses this;
    /// 0 is success, 1 is reserved for panics).
    pub fn exit_code(&self) -> u8 {
        match self {
            Error::Usage(_) => 2,
            Error::Io { .. } => 3,
            Error::Pcap { .. } => 4,
            Error::Bgp(_) => 5,
            Error::Analysis(_) => 6,
            Error::Shard { .. } => 7,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Usage(msg) => write!(f, "usage error: {msg}"),
            Error::Io { path, .. } => write!(f, "i/o error on {path}"),
            Error::Pcap { path, .. } => write!(f, "pcap error in {path}"),
            Error::Bgp(_) => write!(f, "bgp error"),
            Error::Analysis(msg) => write!(f, "analysis error: {msg}"),
            Error::Shard { path, .. } => write!(f, "shard file error in {path}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Usage(_) | Error::Analysis(_) => None,
            Error::Io { source, .. } => Some(source),
            Error::Pcap { source, .. } => Some(source),
            Error::Bgp(source) => Some(source),
            Error::Shard { source, .. } => Some(source),
        }
    }
}

impl From<BgpError> for Error {
    fn from(source: BgpError) -> Self {
        Error::Bgp(source)
    }
}

impl From<sixscope_telescope::FeedError> for Error {
    fn from(source: sixscope_telescope::FeedError) -> Self {
        use sixscope_telescope::FeedError;
        match source {
            FeedError::Io { path, source } => Error::Io { path, source },
            FeedError::Pcap { path, source } => Error::Pcap { path, source },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn exit_codes_are_distinct_and_nonzero() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let errors = [
            Error::Usage("bad flag".into()),
            Error::Io {
                path: "a.pcap".into(),
                source: io,
            },
            Error::Pcap {
                path: "b.pcap".into(),
                source: PacketError::BadPcapMagic(0),
            },
            Error::Bgp(BgpError::BadMarker),
            Error::Analysis("shard mismatch".into()),
            Error::Shard {
                path: "t1-0.sixshard".into(),
                source: ShardError::BadMagic,
            },
        ];
        let mut codes: Vec<u8> = errors.iter().map(Error::exit_code).collect();
        assert!(codes.iter().all(|&c| c >= 2));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len());
    }

    #[test]
    fn source_chain_reaches_the_underlying_error() {
        let err = Error::Pcap {
            path: "cap.pcap".into(),
            source: PacketError::BadPcapMagic(0xdead_beef),
        };
        let source = err.source().expect("pcap errors carry a source");
        assert!(source.to_string().contains("magic"), "{source}");
        assert!(err.to_string().contains("cap.pcap"));
    }
}
