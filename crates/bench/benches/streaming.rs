//! Streaming-pipeline benchmarks: the incremental sessionizer against the
//! batch sessionizer on the same capture, and the chunked pcap pipeline at
//! several chunk sizes (whose outputs are byte-identical — only memory and
//! wall-clock move).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::Pipeline;
use sixscope_bench::bench_corpus;
use sixscope_telescope::{AggLevel, IncrementalSessionizer, Sessionizer, TelescopeId};
use std::hint::black_box;
use std::path::PathBuf;

fn bench_incremental_sessionizer(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("streaming_sessionizer");
    group.throughput(Throughput::Elements(capture.len() as u64));
    group.bench_function("batch_t1_128", |b| {
        b.iter(|| black_box(Sessionizer::paper(AggLevel::Addr128).sessionize(capture)))
    });
    group.bench_function("incremental_t1_128", |b| {
        b.iter(|| {
            let mut inc = IncrementalSessionizer::paper(AggLevel::Addr128);
            for (i, p) in capture.packets().iter().enumerate() {
                inc.push(i as u32, p);
            }
            black_box(inc.finish())
        })
    });
    group.finish();
}

/// Writes the bench corpus's T1 capture to a temp pcap once, then times
/// the full streaming pipeline over it at different chunk sizes.
fn bench_chunked_pipeline(c: &mut Criterion) {
    use sixscope::packet::{PacketBuilder, PcapRecord, PcapWriter};
    use sixscope_telescope::Protocol;

    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let path: PathBuf =
        std::env::temp_dir().join(format!("sixscope-bench-stream-{}.pcap", std::process::id()));
    let file = std::fs::File::create(&path).expect("create bench pcap");
    let mut writer = PcapWriter::new(file).expect("pcap header");
    for p in capture.packets() {
        let builder = PacketBuilder::new(p.src, p.dst);
        let data = match p.protocol {
            Protocol::Icmpv6 => builder.icmpv6_echo_request(0, 0, &p.payload),
            Protocol::Tcp => builder.tcp_syn(
                p.src_port.unwrap_or(0),
                p.dst_port.unwrap_or(0),
                0,
                &p.payload,
            ),
            Protocol::Udp | Protocol::Other => {
                builder.udp(p.src_port.unwrap_or(0), p.dst_port.unwrap_or(0), &p.payload)
            }
        };
        writer
            .write_record(&PcapRecord {
                ts: p.ts,
                ts_micros: 0,
                data,
            })
            .expect("write bench record");
    }
    writer.into_inner().expect("flush bench pcap");

    let mut group = c.benchmark_group("streaming_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(capture.len() as u64));
    for chunk in [1usize << 12, usize::MAX] {
        let label = if chunk == usize::MAX {
            "unchunked".to_string()
        } else {
            format!("chunk_{chunk}")
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let out = Pipeline::from_pcaps([path.clone()])
                    .chunk_records(chunk)
                    .run_detailed()
                    .expect("bench pcap must stream");
                black_box(out.analyzed.peak_open_sessions)
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_incremental_sessionizer, bench_chunked_pipeline
}
criterion_main!(benches);
