//! Structure-aware mutation harness for the hardened pcap reader.
//!
//! A generated corpus of well-formed records is mutated ≥10k times with
//! seeded byte flips, field corruptions and truncations, and every mutant
//! is pushed through the recovering reader and the packet parser. The
//! contract under test (DESIGN.md §8):
//!
//! * every input returns `Ok` or a typed `Err` — never a panic,
//! * no returned record exceeds the [`MAX_RECORD_LEN`] allocation cap,
//! * the walk always terminates (the test finishing is the proof),
//! * the outcome is a pure function of the bytes: the same seed produces
//!   the same aggregate statistics on every run,
//! * the zero-copy [`SliceReader`] agrees with the owned [`PcapReader`]
//!   outcome-for-outcome on every mutant (DESIGN.md §11).

use sixscope_packet::{
    MalformedRecord, PacketBuilder, ParsedPacket, PcapReader, PcapRecord, PcapWriter,
    RecordOutcome, SliceReader, MAX_RECORD_LEN,
};
use sixscope_types::{SimTime, Xoshiro256pp};

const MUTATIONS: usize = 12_000;
const SEED: u64 = 0x51c_5c09e;

/// A small but structurally diverse corpus: all three transports, an
/// extension-headered probe, empty and large payloads.
fn base_corpus() -> Vec<u8> {
    let b = PacketBuilder::new(
        "2a0a::bad:1".parse().unwrap(),
        "2001:db8:3::42".parse().unwrap(),
    );
    let mut records: Vec<Vec<u8>> = vec![
        b.icmpv6_echo_request(7, 1, b"yarrp"),
        b.tcp_syn(40_000, 443, 0xdead_beef, &[]),
        b.udp(40_001, 33_434, &[0xab; 600]),
        b.icmpv6_echo_request(7, 2, &[]),
        b.tcp_syn(40_002, 80, 1, b"GET / HTTP/1.1"),
    ];
    // A hop-by-hop + TCP probe, hand-assembled.
    let mut ext = Vec::new();
    let tcp = &b.tcp_syn(1, 2, 3, b"x")[40..];
    let hbh = [6u8, 0, 1, 4, 0, 0, 0, 0];
    let hdr = sixscope_packet::Ipv6Header::new(
        "2a0a::bad:2".parse().unwrap(),
        "2001:db8:3::7".parse().unwrap(),
        sixscope_packet::NextHeader::Other(0),
        (hbh.len() + tcp.len()) as u16,
    );
    hdr.encode(&mut ext);
    ext.extend_from_slice(&hbh);
    ext.extend_from_slice(tcp);
    records.push(ext);

    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for (i, data) in records.into_iter().enumerate() {
        w.write_record(&PcapRecord {
            ts: SimTime::from_secs(100 + i as u64),
            ts_micros: (i as u32) * 7,
            data,
        })
        .unwrap();
    }
    w.into_inner().unwrap()
}

/// Applies one seeded mutation to `buf`.
fn mutate(rng: &mut Xoshiro256pp, buf: &mut Vec<u8>) {
    match rng.below(5) {
        // Flip a random byte.
        0 => {
            let i = rng.below(buf.len() as u64) as usize;
            buf[i] ^= rng.next_u32() as u8 | 1;
        }
        // Overwrite a 4-byte field with an extreme value (targets the
        // length/timestamp fields of record headers when it lands there).
        1 if buf.len() >= 4 => {
            let i = rng.below((buf.len() - 4) as u64 + 1) as usize;
            let v: u32 = *rng.choose(&[0, 1, 0xffff, 65_536, u32::MAX, MAX_RECORD_LEN + 1]);
            buf[i..i + 4].copy_from_slice(&v.to_le_bytes());
        }
        // Truncate at a random point (killed-capture simulation).
        2 => {
            let at = rng.below(buf.len() as u64 + 1) as usize;
            buf.truncate(at);
        }
        // Duplicate a random slice onto the tail (desynchronizes framing).
        3 => {
            let start = rng.below(buf.len() as u64) as usize;
            let len = rng.below((buf.len() - start) as u64 + 1) as usize;
            let slice = buf[start..start + len].to_vec();
            buf.extend_from_slice(&slice);
        }
        // Flip a bit in the global header (magic, snaplen, linktype).
        _ => {
            let i = rng.below(24.min(buf.len() as u64).max(1)) as usize;
            buf[i] ^= 1 << rng.below(8);
        }
    }
}

/// Aggregate outcome of one full run; equality pins determinism.
#[derive(Debug, PartialEq, Eq)]
struct RunSummary {
    records: u64,
    skipped: u64,
    truncated_tails: u64,
    header_rejected: u64,
    packets_parsed: u64,
    packets_rejected: u64,
    fingerprint: u64,
}

fn run(seed: u64, mutations: usize) -> RunSummary {
    let base = base_corpus();
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    let mut s = RunSummary {
        records: 0,
        skipped: 0,
        truncated_tails: 0,
        header_rejected: 0,
        packets_parsed: 0,
        packets_rejected: 0,
        fingerprint: 0,
    };
    let mix = |s: &mut RunSummary, v: u64| {
        s.fingerprint = s.fingerprint.rotate_left(7) ^ v.wrapping_mul(0x9e3779b97f4a7c15);
    };
    for _ in 0..mutations {
        let mut buf = base.clone();
        // One to three stacked mutations per input.
        for _ in 0..=rng.below(3) {
            if buf.is_empty() {
                break;
            }
            mutate(&mut rng, &mut buf);
        }
        let mut reader = match PcapReader::new(&buf[..]) {
            Ok(r) => r,
            Err(_) => {
                assert!(
                    SliceReader::new(&buf).is_err(),
                    "slice reader accepted a header the owned reader rejected"
                );
                s.header_rejected += 1;
                mix(&mut s, 1);
                continue;
            }
        };
        let mut slice_reader =
            SliceReader::new(&buf).expect("slice reader rejected a header the owned reader took");
        loop {
            let view = slice_reader.read_record_recovering().map(|v| v.to_owned());
            match reader.read_record_recovering() {
                Ok(None) => {
                    assert_eq!(view, None, "slice reader yielded past owned EOF");
                    break;
                }
                Ok(Some(RecordOutcome::Record(rec))) => {
                    assert_eq!(
                        view,
                        Some(RecordOutcome::Record(rec.clone())),
                        "reader divergence on a record"
                    );
                    assert!(
                        rec.data.len() as u32 <= MAX_RECORD_LEN,
                        "allocation cap violated: {} bytes",
                        rec.data.len()
                    );
                    s.records += 1;
                    mix(&mut s, rec.data.len() as u64);
                    match ParsedPacket::parse(&rec.data) {
                        Ok(p) => {
                            s.packets_parsed += 1;
                            mix(
                                &mut s,
                                u64::from(p.ext_headers) << 32 | p.payload.len() as u64,
                            );
                        }
                        Err(_) => s.packets_rejected += 1,
                    }
                }
                Ok(Some(RecordOutcome::Skipped(m))) => {
                    assert_eq!(
                        view,
                        Some(RecordOutcome::Skipped(m)),
                        "reader divergence on a skip"
                    );
                    s.skipped += 1;
                    mix(&mut s, m.reason_index() as u64);
                }
                Ok(Some(RecordOutcome::TruncatedTail(m))) => {
                    assert_eq!(
                        view,
                        Some(RecordOutcome::TruncatedTail(m)),
                        "reader divergence on a truncated tail"
                    );
                    s.truncated_tails += 1;
                    mix(&mut s, 0x100 | m.reason_index() as u64);
                }
                // An in-memory slice produces no transient I/O errors, so a
                // hard Err here would itself be a contract violation.
                Err(e) => panic!("recovering read returned a non-record error: {e}"),
            }
        }
    }
    s
}

#[test]
fn mutated_captures_never_panic_overallocate_or_diverge() {
    let first = run(SEED, MUTATIONS);
    // The harness must actually exercise every path of the contract.
    assert!(first.records > 0, "no mutant yielded records: {first:?}");
    assert!(first.skipped > 0, "no mutant was skipped: {first:?}");
    assert!(first.truncated_tails > 0, "no truncated tail: {first:?}");
    assert!(first.header_rejected > 0, "no header reject: {first:?}");
    assert!(first.packets_parsed > 0 && first.packets_rejected > 0);
    // Same seed ⇒ identical aggregate statistics (determinism pin).
    let second = run(SEED, MUTATIONS);
    assert_eq!(first, second);
}

#[test]
fn sliced_corpus_prefixes_never_panic() {
    // Every prefix of the clean corpus: EOF at each possible byte offset.
    let base = base_corpus();
    for end in 0..base.len() {
        if let Ok(mut r) = PcapReader::new(&base[..end]) {
            while let Ok(Some(outcome)) = r.read_record_recovering() {
                if let RecordOutcome::Record(rec) = outcome {
                    assert!(rec.data.len() as u32 <= MAX_RECORD_LEN);
                }
            }
        }
    }
    // A fully truncated tail at every record boundary flags as such.
    let mut r = PcapReader::new(&base[..base.len() - 1]).unwrap();
    let mut saw_tail = false;
    while let Some(outcome) = r.read_record_recovering().unwrap() {
        if matches!(outcome, RecordOutcome::TruncatedTail(m) if m.is_truncation()) {
            saw_tail = true;
        }
    }
    assert!(saw_tail);
}

#[test]
fn malformed_reason_labels_are_stable() {
    // The per-reason labels are a public contract (ingest reports, CI
    // greps); pin them.
    assert_eq!(
        MalformedRecord::REASONS,
        [
            "snaplen-exceeded",
            "cap-exceeded",
            "length-inconsistent",
            "truncated-header",
            "truncated-body",
        ]
    );
}
