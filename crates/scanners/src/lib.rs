//! # sixscope-scanners
//!
//! Generative models of the IPv6 scanner ecosystem the paper observes.
//! Every behavioral axis of the taxonomy (§5) exists as a generator:
//!
//! * [`address`] — target-address selection: low-byte, service-port,
//!   embedded-IPv4, EUI-64, pattern words, random IIDs, sorted traversals,
//!   hitlist-driven,
//! * [`temporal`] — one-off, periodic and intermittent session scheduling,
//! * [`netsel`] — single-prefix, size-independent, size-proportional and
//!   coarse (size-dependent) network selection over the announced prefixes,
//! * [`tools`] — public-tool profiles whose payloads carry the same
//!   fingerprints the analysis side knows (RIPE Atlas, Yarrp6, traceroute,
//!   Htrace6, 6Seeks, 6Scan, CAIDA Ark),
//! * [`scanner`] — the full scanner: source model (fixed, rotating within a
//!   /64, distributed pool), BGP reactivity, probe emission,
//! * [`population`] — the calibrated population builder reproducing the
//!   paper's marginal distributions at a configurable scale.
//!
//! Scanners observe the world only through the [`scanner::ScanContext`]
//! trait — the announced-prefix view a real scanner derives from public BGP
//! collectors, the hitlist, and end-to-end responsiveness. They never see
//! telescope internals.

pub mod address;
pub mod batch;
pub mod netsel;
pub mod population;
pub mod scanner;
pub mod temporal;
pub mod tga;
pub mod tools;

pub use address::AddressStrategy;
pub use batch::{GenScratch, ProbeBatch};
pub use netsel::NetworkStrategy;
pub use population::{ExperimentLayout, PopulationSpec};
pub use scanner::{Probe, ProbeKind, ScanContext, ScannerSpec, SourceModel};
pub use temporal::TemporalModel;
pub use tga::SpaceTree;
pub use tools::{Payload, ProtocolMix, ToolProfile};
