//! Columnar probe storage for the batched generation path.
//!
//! [`ProbeBatch`] holds one scanner burst as structure-of-arrays columns —
//! timestamps, sources, destinations, transport kinds — plus a bump arena
//! for payload bytes (the `types::intern` idiom: offsets into one backing
//! `Vec<u8>`). Sorting a burst permutes a `u32` index column instead of
//! moving 80-byte probe structs, and clearing a batch between scanners
//! retains every allocation, so a warmed-up shard emits with zero heap
//! traffic.

use crate::scanner::{Probe, ProbeKind};
use sixscope_types::{Ipv6Prefix, SimTime};
use std::net::Ipv6Addr;

/// A columnar batch of probes from one scanner.
#[derive(Debug, Clone, Default)]
pub struct ProbeBatch {
    ts: Vec<SimTime>,
    src: Vec<Ipv6Addr>,
    dst: Vec<Ipv6Addr>,
    kind: Vec<ProbeKind>,
    /// Exclusive end offset of each row's payload in `arena`; the start is
    /// the previous row's end (or 0).
    payload_end: Vec<u32>,
    arena: Vec<u8>,
    /// Time-sorted row permutation, valid after [`ProbeBatch::sort_by_ts`].
    order: Vec<u32>,
    /// Packed sort-key scratch for [`ProbeBatch::sort_by_ts`].
    keys: Vec<u64>,
}

impl ProbeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears all columns but keeps their allocations.
    pub fn clear(&mut self) {
        self.ts.clear();
        self.src.clear();
        self.dst.clear();
        self.kind.clear();
        self.payload_end.clear();
        self.arena.clear();
        self.order.clear();
    }

    /// Number of probes in the batch.
    pub fn len(&self) -> usize {
        self.ts.len()
    }

    /// True when the batch holds no probes.
    pub fn is_empty(&self) -> bool {
        self.ts.is_empty()
    }

    /// The payload arena, to append the next row's payload bytes into
    /// before [`ProbeBatch::push`] seals the row.
    pub fn payload_arena(&mut self) -> &mut Vec<u8> {
        &mut self.arena
    }

    /// Seals a row: the payload is whatever was appended to
    /// [`ProbeBatch::payload_arena`] since the previous push.
    pub fn push(&mut self, ts: SimTime, src: Ipv6Addr, dst: Ipv6Addr, kind: ProbeKind) {
        assert!(
            self.arena.len() <= u32::MAX as usize,
            "probe payload arena exceeds u32 offsets"
        );
        self.ts.push(ts);
        self.src.push(src);
        self.dst.push(dst);
        self.kind.push(kind);
        self.payload_end.push(self.arena.len() as u32);
    }

    /// Row accessors.
    pub fn ts(&self, row: usize) -> SimTime {
        self.ts[row]
    }

    /// Source address of `row`.
    pub fn src(&self, row: usize) -> Ipv6Addr {
        self.src[row]
    }

    /// Destination address of `row`.
    pub fn dst(&self, row: usize) -> Ipv6Addr {
        self.dst[row]
    }

    /// Transport kind of `row`.
    pub fn kind(&self, row: usize) -> ProbeKind {
        self.kind[row]
    }

    /// Payload bytes of `row`.
    pub fn payload(&self, row: usize) -> &[u8] {
        let start = if row == 0 {
            0
        } else {
            self.payload_end[row - 1] as usize
        };
        &self.arena[start..self.payload_end[row] as usize]
    }

    /// Materializes `row` as an owned [`Probe`] (reference/test path).
    pub fn probe(&self, row: usize) -> Probe {
        Probe {
            ts: self.ts(row),
            src: self.src(row),
            dst: self.dst(row),
            kind: self.kind(row),
            payload: self.payload(row).to_vec(),
        }
    }

    /// Computes the time-sorted row order (stable, matching the reference
    /// path's `sort_by_key` over emission order). Ties break by row index,
    /// which makes an unstable sort's result identical to a stable sort —
    /// without the stable sort's temp-buffer allocation. When timestamp
    /// and row index pack into one u64 (always, unless a run simulates
    /// ~70k years or a scanner exceeds 2²² probes) the sort compares
    /// single words from a reused scratch column.
    pub fn sort_by_ts(&mut self) {
        self.order.clear();
        let n = self.ts.len();
        let max_ts = self.ts.iter().map(|t| t.as_secs()).max().unwrap_or(0);
        if max_ts < (1 << 42) && n <= (1 << 22) {
            self.keys.clear();
            self.keys.extend(
                self.ts
                    .iter()
                    .enumerate()
                    .map(|(i, t)| (t.as_secs() << 22) | i as u64),
            );
            self.keys.sort_unstable();
            self.order
                .extend(self.keys.iter().map(|&k| (k & 0x3f_ffff) as u32));
        } else {
            self.order.extend(0..n as u32);
            let ts = &self.ts;
            self.order.sort_unstable_by_key(|&i| (ts[i as usize], i));
        }
    }

    /// Drops all but the first `cap` rows of the sorted order, returning how
    /// many were cut. Requires [`ProbeBatch::sort_by_ts`] first.
    pub fn truncate_sorted(&mut self, cap: usize) -> u64 {
        if self.order.len() <= cap {
            return 0;
        }
        let cut = self.order.len() - cap;
        self.order.truncate(cap);
        cut as u64
    }

    /// The time-sorted row permutation. Empty until
    /// [`ProbeBatch::sort_by_ts`] runs.
    pub fn sorted(&self) -> &[u32] {
        &self.order
    }
}

/// Reusable per-shard scratch for [`crate::ScannerSpec::generate_into`]:
/// every intermediate vector a burst needs, allocated once per shard and
/// recycled across scanners.
#[derive(Debug, Clone, Default)]
pub struct GenScratch {
    /// Session start times.
    pub(crate) starts: Vec<SimTime>,
    /// Selected prefixes of the current session.
    pub(crate) prefixes: Vec<Ipv6Prefix>,
    /// Network-selection weight column.
    pub(crate) weights: Vec<f64>,
    /// Protocol-mix weight column.
    pub(crate) mix_weights: Vec<f64>,
    /// Resolved targets of the current session.
    pub(crate) targets: Vec<Ipv6Addr>,
    /// Hitlist-inside-prefix filter buffer.
    pub(crate) inside: Vec<Ipv6Addr>,
    /// Responsive /48 regions for TGA follow-ups.
    pub(crate) regions: Vec<Ipv6Prefix>,
}

impl GenScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Ipv6Addr {
        s.parse().unwrap()
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let mut b = ProbeBatch::new();
        b.payload_arena().extend_from_slice(b"first");
        b.push(
            SimTime::from_secs(5),
            addr("2001:db8::1"),
            addr("2001:db8::2"),
            ProbeKind::Icmp { ident: 7, seq: 1 },
        );
        // Empty payload row.
        b.push(
            SimTime::from_secs(3),
            addr("2001:db8::3"),
            addr("2001:db8::4"),
            ProbeKind::Udp {
                src_port: 4000,
                dst_port: 33434,
            },
        );
        b.payload_arena().extend_from_slice(b"third");
        b.push(
            SimTime::from_secs(9),
            addr("2001:db8::5"),
            addr("2001:db8::6"),
            ProbeKind::Tcp {
                src_port: 4001,
                dst_port: 443,
                seq: 12,
            },
        );
        assert_eq!(b.len(), 3);
        assert_eq!(b.payload(0), b"first");
        assert_eq!(b.payload(1), b"");
        assert_eq!(b.payload(2), b"third");
        let p = b.probe(2);
        assert_eq!(p.ts, SimTime::from_secs(9));
        assert_eq!(p.payload, b"third");
    }

    #[test]
    fn sort_is_stable_on_equal_timestamps() {
        let mut b = ProbeBatch::new();
        for (i, secs) in [4u64, 2, 2, 1].iter().enumerate() {
            b.push(
                SimTime::from_secs(*secs),
                addr("2001:db8::1"),
                addr("2001:db8::2"),
                ProbeKind::Icmp {
                    ident: i as u16,
                    seq: 0,
                },
            );
        }
        b.sort_by_ts();
        assert_eq!(b.sorted(), &[3, 1, 2, 0], "equal ts keep emission order");
    }

    #[test]
    fn truncate_sorted_cuts_the_tail() {
        let mut b = ProbeBatch::new();
        for secs in [3u64, 1, 2] {
            b.push(
                SimTime::from_secs(secs),
                addr("2001:db8::1"),
                addr("2001:db8::2"),
                ProbeKind::Icmp { ident: 0, seq: 0 },
            );
        }
        b.sort_by_ts();
        assert_eq!(b.truncate_sorted(5), 0);
        assert_eq!(b.truncate_sorted(2), 1);
        assert_eq!(b.sorted(), &[1, 2]);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut b = ProbeBatch::new();
        b.payload_arena().extend_from_slice(&[0u8; 1024]);
        b.push(
            SimTime::EPOCH,
            addr("::1"),
            addr("::2"),
            ProbeKind::Icmp { ident: 0, seq: 0 },
        );
        let cap = b.payload_arena().capacity();
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.payload_arena().capacity(), cap);
    }
}
