//! Helpers for manipulating raw IPv6 addresses as 128-bit integers.
//!
//! The analysis pipeline frequently inspects nibbles (4-bit hex digits) of
//! target addresses — e.g. to render the nibble matrices of Figures 12/13 or
//! to detect low-byte structure — so the helpers here operate on `u128` with
//! nibble index 0 being the *most significant* nibble (the leftmost hex digit
//! of the canonical textual form).

use std::net::Ipv6Addr;

/// Returns nibble `i` (0 = most significant, 31 = least significant) of `addr`.
///
/// # Panics
/// Panics if `i >= 32`.
pub fn nibble(addr: u128, i: usize) -> u8 {
    assert!(i < 32, "nibble index {i} out of range");
    ((addr >> ((31 - i) * 4)) & 0xf) as u8
}

/// Returns a copy of `addr` with nibble `i` replaced by `value & 0xf`.
///
/// # Panics
/// Panics if `i >= 32`.
pub fn set_nibble(addr: u128, i: usize, value: u8) -> u128 {
    assert!(i < 32, "nibble index {i} out of range");
    let shift = (31 - i) * 4;
    (addr & !(0xfu128 << shift)) | (((value & 0xf) as u128) << shift)
}

/// Extracts the interface identifier (low 64 bits) of an address.
pub fn iid(addr: u128) -> u64 {
    addr as u64
}

/// Extracts bits `[start_len, start_len + count)` counted from the most
/// significant bit, right-aligned in the result.
///
/// Used to isolate the "subnet part" of a target address relative to a
/// telescope prefix — the paper's Appendix B tests the 32 bits after the
/// fixed /32 separately from the 64-bit IID.
///
/// # Panics
/// Panics if `start_len + count > 128` or `count == 0 || count > 128`.
pub fn subnet_bits(addr: u128, start_len: u32, count: u32) -> u128 {
    assert!((1..=128).contains(&count), "bit count {count} out of range");
    assert!(start_len + count <= 128, "bit range exceeds 128 bits");
    let shifted = addr << start_len;
    shifted >> (128 - count)
}

/// Converts an [`Ipv6Addr`] to its 128-bit integer form.
pub fn to_u128(addr: Ipv6Addr) -> u128 {
    u128::from(addr)
}

/// Converts a 128-bit integer to an [`Ipv6Addr`].
pub fn from_u128(bits: u128) -> Ipv6Addr {
    Ipv6Addr::from(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_extracts_hex_digits_in_text_order() {
        let addr: u128 = u128::from("2001:db8::1".parse::<Ipv6Addr>().unwrap());
        assert_eq!(nibble(addr, 0), 0x2);
        assert_eq!(nibble(addr, 1), 0x0);
        assert_eq!(nibble(addr, 2), 0x0);
        assert_eq!(nibble(addr, 3), 0x1);
        assert_eq!(nibble(addr, 4), 0x0);
        assert_eq!(nibble(addr, 5), 0xd);
        assert_eq!(nibble(addr, 6), 0xb);
        assert_eq!(nibble(addr, 7), 0x8);
        assert_eq!(nibble(addr, 31), 0x1);
    }

    #[test]
    fn set_nibble_round_trips() {
        let addr = 0u128;
        let out = set_nibble(addr, 0, 0xf);
        assert_eq!(nibble(out, 0), 0xf);
        let out = set_nibble(out, 31, 0x7);
        assert_eq!(nibble(out, 31), 0x7);
        assert_eq!(nibble(out, 0), 0xf);
    }

    #[test]
    fn set_nibble_masks_value_to_four_bits() {
        let out = set_nibble(0, 5, 0xab);
        assert_eq!(nibble(out, 5), 0xb);
    }

    #[test]
    fn iid_is_low_64_bits() {
        let addr = (0x2001_0db8_0000_0000u128 << 64) | 0xdead_beef_cafe_0001;
        assert_eq!(iid(addr), 0xdead_beef_cafe_0001);
    }

    #[test]
    fn subnet_bits_extracts_middle_range() {
        // 2001:db8:abcd:1234::/64 — take 32 bits after a /32.
        let addr: u128 = u128::from("2001:db8:abcd:1234::".parse::<Ipv6Addr>().unwrap());
        assert_eq!(subnet_bits(addr, 32, 32), 0xabcd_1234);
        // Whole address.
        assert_eq!(subnet_bits(addr, 0, 128), addr);
        // The IID.
        assert_eq!(subnet_bits(addr, 64, 64) as u64, iid(addr));
    }

    #[test]
    #[should_panic]
    fn nibble_rejects_out_of_range_index() {
        nibble(0, 32);
    }

    #[test]
    fn u128_round_trip() {
        let a: Ipv6Addr = "2001:db8::cafe".parse().unwrap();
        assert_eq!(from_u128(to_u128(a)), a);
    }
}
