//! Shared command-line flag handling for the `sixscope` binary.
//!
//! The parser is hand-rolled (no CLI dependency): flags are `--name value`
//! pairs — except the valueless booleans (`--json`) — and everything else
//! is positional. Every subcommand parses through [`Flags::parse`] with an
//! explicit allow-list, so unknown flags fail the same way everywhere
//! (`unknown flag --x (expected one of: …)`), missing values fail the same
//! way everywhere (`flag --x needs a value`), and `--threads N` is
//! accepted uniformly.

use crate::json::Json;
use crate::Error;
use sixscope_telescope::IngestStats;
use sixscope_types::THREADS_ENV;

/// Flags that take no value: present means `true`.
const VALUELESS: &[&str] = &["json"];

/// JSON rendering of one [`IngestStats`] — shared by the binary's
/// `ingest`/`analyze` summaries and the serve daemon's checkpoints.
pub fn stats_json(stats: &IngestStats) -> Json {
    Json::obj([
        ("records_read", Json::u(stats.records_read)),
        ("parsed", Json::u(stats.parsed)),
        ("filtered", Json::u(stats.filtered)),
        ("malformed_packets", Json::u(stats.malformed_packets)),
        ("skipped", Json::u(stats.skipped_total())),
        ("truncated_tail", Json::Bool(stats.truncated_tail)),
    ])
}

/// Parsed `--name value` flag pairs plus the remaining positionals.
#[derive(Debug)]
pub struct Flags {
    pairs: Vec<(String, String)>,
    positional: Vec<String>,
}

impl Flags {
    /// Parses `args` against an allow-list of flag names (without the
    /// leading `--`). Unknown flags and flags missing their value are
    /// [`Error::Usage`].
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, Error> {
        let mut pairs = Vec::new();
        let mut positional = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if !allowed.contains(&name) {
                    return Err(Error::Usage(format!(
                        "unknown flag --{name} (expected one of: {})",
                        allowed
                            .iter()
                            .map(|f| format!("--{f}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )));
                }
                if VALUELESS.contains(&name) {
                    pairs.push((name.to_string(), "true".to_string()));
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| Error::Usage(format!("flag --{name} needs a value")))?;
                pairs.push((name.to_string(), value.clone()));
            } else {
                positional.push(a.clone());
            }
        }
        Ok(Flags { pairs, positional })
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Parses `--name`'s value with [`std::str::FromStr`]; a value that
    /// does not parse is [`Error::Usage`].
    pub fn parsed<T>(&self, name: &str) -> Result<Option<T>, Error>
    where
        T: std::str::FromStr,
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|e| Error::Usage(format!("invalid --{name} value {v:?}: {e}"))),
        }
    }

    /// True when the valueless boolean flag `--name` was given.
    pub fn is_true(&self, name: &str) -> bool {
        matches!(self.get(name), Some("true") | Some("1"))
    }

    /// The `--threads` cap, if given. [`Flags::apply_threads`] also mirrors
    /// it into the `SIXSCOPE_THREADS` environment variable. Zero is
    /// rejected here rather than silently clamped downstream, so the flag's
    /// semantics match the builder's.
    pub fn threads(&self) -> Result<Option<usize>, Error> {
        match self.parsed("threads")? {
            Some(0) => Err(Error::Usage(
                "--threads must be at least 1 (0 workers cannot make progress)".into(),
            )),
            other => Ok(other),
        }
    }

    /// The `--chunk` streaming chunk size, if given. Zero is rejected here
    /// rather than silently clamped by `Pipeline::chunk_records`'s
    /// `.max(1)`, so the flag's semantics match the builder's.
    pub fn chunk(&self) -> Result<Option<usize>, Error> {
        match self.parsed("chunk")? {
            Some(0) => Err(Error::Usage("--chunk must be at least 1 record".into())),
            other => Ok(other),
        }
    }

    /// Mirrors `--threads` into `SIXSCOPE_THREADS` so every internal
    /// `num_threads(None)` call site (report rows, tables, figures) honors
    /// it; the explicit flag wins over an inherited environment value.
    /// Returns the cap for call sites that take it directly.
    pub fn apply_threads(&self) -> Result<Option<usize>, Error> {
        let threads = self.threads()?;
        if let Some(n) = threads {
            std::env::set_var(THREADS_ENV, n.to_string());
        }
        Ok(threads)
    }

    /// The non-flag arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flags_and_positionals_separate() {
        let f = Flags::parse(
            &argv(&["a.pcap", "--threads", "4", "--json", "b.pcap"]),
            &["threads", "json"],
        )
        .unwrap();
        assert_eq!(f.positional(), &["a.pcap", "b.pcap"]);
        assert_eq!(f.get("threads"), Some("4"));
        assert_eq!(f.threads().unwrap(), Some(4));
        assert!(f.is_true("json"));
        assert!(!Flags::parse(&argv(&["x"]), &["json"])
            .unwrap()
            .is_true("json"));
    }

    #[test]
    fn unknown_flag_lists_the_allowed_set() {
        let err = Flags::parse(&argv(&["--bogus", "1"]), &["seed", "scale"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let msg = err.to_string();
        assert!(msg.contains("--bogus"), "{msg}");
        assert!(msg.contains("--seed"), "{msg}");
    }

    #[test]
    fn zero_threads_is_a_usage_error() {
        let f = Flags::parse(&argv(&["--threads", "0"]), &["threads"]).unwrap();
        let err = f.threads().unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--threads"), "{err}");
        let err = f.apply_threads().unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn zero_chunk_is_a_usage_error() {
        let f = Flags::parse(&argv(&["--chunk", "0"]), &["chunk"]).unwrap();
        let err = f.chunk().unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("--chunk"), "{err}");
        let f = Flags::parse(&argv(&["--chunk", "512"]), &["chunk"]).unwrap();
        assert_eq!(f.chunk().unwrap(), Some(512));
    }

    #[test]
    fn missing_value_and_bad_value_are_usage_errors() {
        let err = Flags::parse(&argv(&["--seed"]), &["seed"]).unwrap_err();
        assert!(err.to_string().contains("needs a value"), "{err}");
        let f = Flags::parse(&argv(&["--seed", "nope"]), &["seed"]).unwrap();
        let err = f.parsed::<u64>("seed").unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains("invalid --seed"), "{err}");
    }
}
