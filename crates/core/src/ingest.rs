//! Real-capture ingestion — the `sixscope ingest` pipeline.
//!
//! A telescope operator points [`crate::Pipeline::from_pcaps`] at classic
//! pcap files (`tcpdump -y RAW` output) and gets the same analysis the
//! simulated experiment runs: hardened per-record reading with
//! skip-and-count recovery ([`sixscope_telescope::Capture::ingest_pcap_recovering`]),
//! sessionization with the paper's 1-hour timeout, temporal and
//! address-selection classification, and tool fingerprinting — rendered as
//! one markdown report by [`render_report`].
//!
//! The report is byte-identical at any `SIXSCOPE_THREADS` setting: the
//! per-scanner rows are computed through the order-preserving
//! [`map_indexed`], and every aggregation iterates in a deterministic
//! order.

use sixscope_analysis::classify::{addr_selection, profile_scanners};
use sixscope_analysis::fingerprint::identify;
use sixscope_telescope::{
    Capture, IngestStats, Protocol, ScanSession, TelescopeConfig, TelescopeId, TelescopeKind,
};
use sixscope_types::{map_indexed, num_threads, Ipv6Prefix};
use std::collections::BTreeMap;

/// How many destination ports the report lists.
const TOP_PORTS: usize = 10;

/// The passive telescope configuration real-capture ingestion uses: plain
/// prefix filtering, no productive subnet, no DNS attractor. `::/0`
/// accepts every packet in the file.
pub fn passive_config(prefix: Ipv6Prefix) -> TelescopeConfig {
    TelescopeConfig {
        id: TelescopeId::T1,
        kind: TelescopeKind::Passive,
        prefix,
        separately_announced: true,
        dns_exposed: None,
        productive_subnet: None,
    }
}

/// Renders the full markdown ingest report: recovery statistics, traffic
/// overview, and the per-scanner classification table.
///
/// `sessions` must be the /128 paper-timeout sessionization of `capture`
/// (the [`crate::Pipeline`] computes it incrementally while streaming).
pub fn render_report(
    capture: &Capture,
    sessions: &[ScanSession],
    stats: &IngestStats,
    source_label: &str,
) -> String {
    let mut out = String::new();
    out.push_str("# sixscope ingest report\n\n");
    out.push_str(&format!("Input: {source_label}\n\n"));
    render_recovery(stats, &mut out);
    render_traffic(capture, &mut out);
    render_scanners(capture, sessions, &mut out);
    out
}

fn render_recovery(s: &IngestStats, out: &mut String) {
    out.push_str("## Recovery\n\n");
    out.push_str("| metric | count |\n|---|---:|\n");
    out.push_str(&format!("| records read | {} |\n", s.records_read));
    out.push_str(&format!("| parsed into capture | {} |\n", s.parsed));
    out.push_str(&format!("| filtered (outside prefix) | {} |\n", s.filtered));
    out.push_str(&format!(
        "| malformed IPv6 packets | {} |\n",
        s.malformed_packets
    ));
    out.push_str(&format!(
        "| skipped pcap records | {} |\n",
        s.skipped_total()
    ));
    for (reason, n) in s.skip_reasons() {
        if n > 0 {
            out.push_str(&format!("| &nbsp;&nbsp;{reason} | {n} |\n"));
        }
    }
    out.push_str(&format!(
        "| truncated tail | {} |\n\n",
        if s.truncated_tail { "yes" } else { "no" }
    ));
}

fn render_traffic(capture: &Capture, out: &mut String) {
    out.push_str("## Traffic\n\n");
    let packets = capture.packets();
    if packets.is_empty() {
        out.push_str("No packets inside the telescope prefix.\n\n");
        return;
    }
    let (mut lo, mut hi) = (packets[0].ts, packets[0].ts);
    let mut by_proto: BTreeMap<Protocol, u64> = BTreeMap::new();
    let mut by_port: BTreeMap<u16, u64> = BTreeMap::new();
    let mut sources: Vec<u128> = Vec::with_capacity(packets.len());
    for p in packets {
        lo = lo.min(p.ts);
        hi = hi.max(p.ts);
        *by_proto.entry(p.protocol).or_default() += 1;
        if let Some(port) = p.dst_port {
            *by_port.entry(port).or_default() += 1;
        }
        sources.push(u128::from(p.src));
    }
    sources.sort_unstable();
    sources.dedup();
    out.push_str(&format!(
        "{} packets from {} distinct /128 sources, t = {}..{}\n\n",
        packets.len(),
        sources.len(),
        lo.as_secs(),
        hi.as_secs(),
    ));
    out.push_str("| protocol | packets |\n|---|---:|\n");
    for (proto, n) in &by_proto {
        out.push_str(&format!("| {} | {} |\n", proto.name(), n));
    }
    out.push('\n');
    if !by_port.is_empty() {
        let mut ports: Vec<(u16, u64)> = by_port.into_iter().collect();
        ports.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ports.truncate(TOP_PORTS);
        out.push_str("| top destination port | packets |\n|---|---:|\n");
        for (port, n) in ports {
            out.push_str(&format!("| {port} | {n} |\n"));
        }
        out.push('\n');
    }
}

fn render_scanners(capture: &Capture, sessions: &[ScanSession], out: &mut String) {
    out.push_str("## Scanners\n\n");
    let profiles = profile_scanners(sessions);
    out.push_str(&format!(
        "{} scan sessions (/128, 1-hour timeout) from {} scanners\n\n",
        sessions.len(),
        profiles.len()
    ));
    if profiles.is_empty() {
        return;
    }
    out.push_str(
        "| source | sessions | packets | temporal | address selection | tool |\n\
         |---|---:|---:|---|---|---|\n",
    );
    // Each row is an independent pure function of the capture, so rows
    // are computed in parallel; map_indexed preserves profile order,
    // keeping the report bytes identical at any thread count.
    let prefix_len = capture.config().prefix.len();
    let rows = map_indexed(num_threads(None), &profiles, |_, profile| {
        let first = &sessions[profile.session_indices[0]];
        let selection = addr_selection(first, capture, prefix_len);
        let payload = first
            .packets(capture)
            .find(|p| !p.payload.is_empty())
            .map(|p| p.payload.clone())
            .unwrap_or_default();
        format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            profile.source,
            profile.session_indices.len(),
            profile.packets,
            profile.temporal,
            selection,
            identify(&payload, None),
        )
    });
    for row in rows {
        out.push_str(&row);
    }
    out.push('\n');
}
