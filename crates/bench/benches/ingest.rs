//! Zero-copy ingest benchmarks: the recovering slice reader plus the
//! batched parse kernel over an in-memory pcap image, against the owned
//! reader they replaced. Throughput is reported in records/sec — the
//! single-core target for `view_parse` is ≥1M pkt/s.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::packet::{
    parse_run, PacketBuilder, ParsedPacket, PcapReader, PcapRecord, PcapWriter, RecordOutcome,
    SliceReader, ViewOutcome,
};
use sixscope_bench::bench_corpus;
use sixscope_telescope::{Protocol, TelescopeId};
use std::hint::black_box;

/// Renders the bench corpus's T1 capture into an in-memory classic pcap
/// image, so every bench below reads identical bytes.
fn pcap_image() -> (Vec<u8>, usize) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut writer = PcapWriter::new(Vec::new()).expect("pcap header");
    for p in capture.packets() {
        let builder = PacketBuilder::new(p.src, p.dst);
        let data = match p.protocol {
            Protocol::Icmpv6 => builder.icmpv6_echo_request(0, 0, &p.payload),
            Protocol::Tcp => builder.tcp_syn(
                p.src_port.unwrap_or(0),
                p.dst_port.unwrap_or(0),
                0,
                &p.payload,
            ),
            Protocol::Udp | Protocol::Other => {
                builder.udp(p.src_port.unwrap_or(0), p.dst_port.unwrap_or(0), &p.payload)
            }
        };
        writer
            .write_record(&PcapRecord {
                ts: p.ts,
                ts_micros: 0,
                data,
            })
            .expect("write bench record");
    }
    (
        writer.into_inner().expect("flush bench pcap"),
        capture.len(),
    )
}

fn bench_ingest(c: &mut Criterion) {
    let (image, records) = pcap_image();
    let mut group = c.benchmark_group("ingest");
    group.throughput(Throughput::Elements(records as u64));

    // The zero-copy path: borrowed record views cut in chunks, parsed by
    // the batched kernel. No per-record allocation anywhere.
    group.bench_function("view_parse", |b| {
        let mut views: Vec<ViewOutcome<'_>> = Vec::new();
        let mut parsed = Vec::new();
        let mut run = Vec::new();
        b.iter(|| {
            let mut reader = SliceReader::new(&image).expect("valid header");
            let mut ok = 0usize;
            while reader.next_chunk(1 << 14, &mut views) {
                run.clear();
                run.extend(views.iter().filter_map(|v| match v {
                    ViewOutcome::Record(r) => Some(*r),
                    _ => None,
                }));
                let failed = parse_run(&run, &mut parsed);
                ok += parsed.len();
                black_box(failed);
            }
            black_box(ok)
        })
    });

    // The owned path this PR replaced: every record copied into a fresh
    // `Vec<u8>`, every packet parsed into owned `Bytes`.
    group.bench_function("owned_parse", |b| {
        b.iter(|| {
            let mut reader = PcapReader::new(&image[..]).expect("valid header");
            let mut ok = 0usize;
            while let Ok(Some(outcome)) = reader.read_record_recovering() {
                if let RecordOutcome::Record(rec) = outcome {
                    if ParsedPacket::parse(&rec.data).is_ok() {
                        ok += 1;
                    }
                }
            }
            black_box(ok)
        })
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_ingest
}
criterion_main!(benches);
