//! Special functions needed by the NIST test suite: the complementary error
//! function and the standard normal CDF.
//!
//! `erfc` uses the Chebyshev-fitted rational approximation from Numerical
//! Recipes (Press et al., §6.2), with relative error below 1.2 × 10⁻⁷ —
//! ample for p-value thresholding at α = 0.01.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal cumulative distribution function Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Values from Abramowitz & Stegun tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (3.0, 0.0000221),
        ];
        for (x, expect) in cases {
            let got = erfc(x);
            assert!(
                (got - expect).abs() < 1e-6,
                "erfc({x}) = {got}, expected {expect}"
            );
        }
    }

    #[test]
    fn erfc_symmetry() {
        for x in [0.1, 0.7, 1.3, 2.5] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_cdf_reference_values() {
        // The rational erfc approximation carries ~1.2e-7 error, so Φ(0)
        // is 0.5 only to that precision.
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.1586553).abs() < 1e-6);
        assert!((normal_cdf(1.959964) - 0.975).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_is_monotone() {
        let mut prev = 0.0;
        let mut x = -5.0;
        while x <= 5.0 {
            let v = normal_cdf(x);
            assert!(v >= prev);
            prev = v;
            x += 0.1;
        }
    }
}
