//! Simulation-half benchmarks: batched columnar probe generation vs the
//! retained per-probe reference path, and the fused generate+deliver
//! scenario run vs the staged one. The `simulate` group backs the CI
//! bench-smoke gate for the hot half of `repro`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::scanners::scanner::StaticContext;
use sixscope::scanners::{ExperimentLayout, GenScratch, PopulationSpec, ProbeBatch};
use sixscope::sim::{Scenario, ScenarioConfig};
use sixscope_bench::{BENCH_SCALE, SEED};
use sixscope_types::Xoshiro256pp;
use std::hint::black_box;

/// A bench-scale population plus a static world view: every layout prefix
/// announced for the whole horizon, so generation exercises the full
/// session/address machinery without control-plane noise.
fn gen_fixture() -> (
    Vec<sixscope::scanners::ScannerSpec>,
    Vec<Xoshiro256pp>,
    StaticContext,
) {
    let layout = ExperimentLayout::default_plan();
    let population = PopulationSpec {
        seed: SEED,
        scale: BENCH_SCALE,
    }
    .build(&layout);
    let mut master = Xoshiro256pp::seed_from_u64(SEED ^ 0x5ca_0b0e5);
    let streams: Vec<Xoshiro256pp> = population
        .scanners
        .iter()
        .map(|spec| master.split(&format!("scanner-{}", spec.id)))
        .collect();
    let ctx = StaticContext {
        announced: vec![layout.t1, layout.t2, layout.covering],
        events: vec![(layout.start, layout.t1)],
        hitlist: vec![layout.t1.low_byte_address(), layout.t2_dns_exposed],
        responsive: Some(layout.t4),
        end: layout.end,
    };
    (population.scanners, streams, ctx)
}

fn bench_probe_generation(c: &mut Criterion) {
    let (scanners, streams, ctx) = gen_fixture();
    // Probe count for throughput: one reference pass.
    let total: u64 = scanners
        .iter()
        .zip(&streams)
        .map(|(spec, stream)| spec.generate(&ctx, &mut stream.clone()).len() as u64)
        .sum();
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));
    group.bench_function("probe_gen_batched", |b| {
        let mut scratch = GenScratch::new();
        let mut batch = ProbeBatch::new();
        b.iter(|| {
            let mut n = 0usize;
            for (spec, stream) in scanners.iter().zip(&streams) {
                spec.generate_into(&ctx, &mut stream.clone(), &mut scratch, &mut batch);
                batch.sort_by_ts();
                n += batch.len();
            }
            black_box(n)
        })
    });
    group.bench_function("probe_gen_reference", |b| {
        b.iter(|| {
            let mut n = 0usize;
            for (spec, stream) in scanners.iter().zip(&streams) {
                n += spec.generate(&ctx, &mut stream.clone()).len();
            }
            black_box(n)
        })
    });
    group.finish();
}

fn bench_scenario_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    group.bench_function("fused_run", |b| {
        b.iter(|| {
            let (result, _) = Scenario::new(ScenarioConfig::new(SEED, BENCH_SCALE)).run_timed();
            black_box(result.total_packets())
        })
    });
    group.bench_function("staged_run", |b| {
        b.iter(|| {
            let (result, _) =
                Scenario::new(ScenarioConfig::new(SEED, BENCH_SCALE)).run_reference_timed();
            black_box(result.total_packets())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probe_generation, bench_scenario_runs);
criterion_main!(benches);
