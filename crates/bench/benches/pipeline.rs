//! End-to-end pipeline benchmarks: how fast the substrate itself runs —
//! packet codecs, BGP propagation, sessionization, the full experiment.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sixscope::sim::ScenarioConfig;
use sixscope::{scanners::ExperimentLayout, scanners::PopulationSpec, Pipeline};
use sixscope_bench::bench_corpus;
use sixscope_telescope::{AggLevel, Sessionizer, TelescopeId};
use std::hint::black_box;

fn bench_packet_codec(c: &mut Criterion) {
    use sixscope::packet::{PacketBuilder, ParsedPacket};
    let builder = PacketBuilder::new("2a0a::1".parse().unwrap(), "2001:db8::1".parse().unwrap());
    let bytes = builder.icmpv6_echo_request(7, 9, b"yrp6-0000000042");
    let mut group = c.benchmark_group("packet_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("build_echo_request", |b| {
        b.iter(|| black_box(builder.icmpv6_echo_request(7, 9, b"yrp6-0000000042")))
    });
    group.bench_function("parse_echo_request", |b| {
        b.iter(|| black_box(ParsedPacket::parse(&bytes).unwrap()))
    });
    group.finish();
}

fn bench_bgp_propagation(c: &mut Criterion) {
    use sixscope::bgp::topology::standard_topology;
    use sixscope::types::{Asn, SimDuration, SimTime};
    c.bench_function("bgp_announce_withdraw_cycle", |b| {
        b.iter_batched(
            || standard_topology(Asn(64500), Asn(64510), Asn(64999), SimTime::EPOCH),
            |mut topo| {
                let prefix = "2001:db8::/32".parse().unwrap();
                let t0 = SimTime::from_secs(1000);
                topo.announce(Asn(64500), prefix, t0);
                topo.run_until(t0 + SimDuration::mins(5));
                topo.withdraw(Asn(64500), prefix, t0 + SimDuration::hours(1));
                topo.run_until(t0 + SimDuration::hours(2));
                black_box(topo.global_table())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_sessionizer(c: &mut Criterion) {
    let a = bench_corpus();
    let capture = a.capture(TelescopeId::T1);
    let mut group = c.benchmark_group("sessionizer");
    group.throughput(Throughput::Elements(capture.len() as u64));
    group.bench_function("sessionize_t1_128", |b| {
        b.iter(|| black_box(Sessionizer::paper(AggLevel::Addr128).sessionize(capture)))
    });
    group.finish();
}

fn bench_population_build(c: &mut Criterion) {
    let layout = ExperimentLayout::default_plan();
    c.bench_function("population_build_tiny", |b| {
        b.iter(|| black_box(PopulationSpec::tiny(7).build(&layout)))
    });
}

fn bench_full_experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("full_run_tiny_scale", |b| {
        b.iter(|| {
            let a = Pipeline::simulate(ScenarioConfig::new(42, 0.002))
                .run()
                .expect("simulated runs cannot fail");
            black_box(a.result.total_packets())
        })
    });
    group.finish();
}

/// Serial vs. parallel execution engine on the same scenario. The outputs
/// are byte-identical (see `parallel_determinism`); only wall-clock moves.
fn bench_engine_threads(c: &mut Criterion) {
    use sixscope::sim::{Scenario, ScenarioConfig};
    use sixscope::types::num_threads;

    let run = |threads: usize| {
        let mut config = ScenarioConfig::new(42, 0.008);
        config.threads = Some(threads);
        Scenario::new(config).run().total_packets()
    };
    let mut group = c.benchmark_group("engine_threads");
    group.sample_size(10);
    group.bench_function("serial_1_thread", |b| b.iter(|| black_box(run(1))));
    let n = num_threads(None).max(2);
    group.bench_function(format!("parallel_{n}_threads"), |b| {
        b.iter(|| black_box(run(n)))
    });
    group.finish();
}

/// Naive interval-scan LPM vs. the epoch-compiled trie on the visibility
/// schedule of a real run.
fn bench_lpm(c: &mut Criterion) {
    use sixscope::sim::CompiledVisibility;
    use sixscope::types::SimTime;
    use std::net::Ipv6Addr;

    let a = bench_corpus();
    let vis = &a.result.visibility;
    let compiled = CompiledVisibility::compile(vis);
    let queries: Vec<(Ipv6Addr, SimTime)> = a
        .capture(TelescopeId::T1)
        .packets()
        .iter()
        .take(512)
        .map(|p| (p.dst, p.ts))
        .collect();
    let mut group = c.benchmark_group("lpm");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("naive_interval_scan", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(addr, t)| black_box(vis.lpm(addr, t)).is_some())
                .count()
        })
    });
    group.bench_function("epoch_compiled", |b| {
        b.iter(|| {
            queries
                .iter()
                .filter(|&&(addr, t)| black_box(compiled.lpm(addr, t)).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_packet_codec, bench_bgp_propagation, bench_sessionizer,
              bench_population_build, bench_full_experiment, bench_engine_threads,
              bench_lpm
}
criterion_main!(benches);
