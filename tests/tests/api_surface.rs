//! Public-API snapshot: the top-level `pub` items of every module in the
//! `sixscope` facade crate, compared against the checked-in
//! `tests/api_surface.txt`. An unreviewed export (or an accidental
//! removal) fails this test; after an intentional API change, regenerate
//! the snapshot with:
//!
//! ```sh
//! SIXSCOPE_BLESS=1 cargo test -p sixscope-integration --test api_surface
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

fn core_src() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../crates/core/src")
}

fn snapshot_path() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("api_surface.txt")
}

/// Strips line comments and string-literal contents so brace counting and
/// `pub` matching never trip over braces inside strings or comments.
/// (Block comments and raw strings are not handled — the facade crate
/// does not use them at module top level.)
fn strip_noise(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_string = false;
    while let Some(c) = chars.next() {
        if in_string {
            match c {
                '\\' => {
                    chars.next();
                }
                '"' => {
                    in_string = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_string = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Extracts the brace-depth-0 `pub` item declarations of one source file,
/// normalized to their first line without the trailing `{`.
fn public_items(source: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth = 0i64;
    for raw in source.lines() {
        let line = strip_noise(raw);
        let trimmed = line.trim();
        if depth == 0 && trimmed.starts_with("pub ") {
            let mut sig = trimmed.split(" {").next().unwrap_or(trimmed).trim();
            sig = sig.strip_suffix('{').unwrap_or(sig).trim();
            items.push(sig.to_string());
        }
        depth += line.matches('{').count() as i64;
        depth -= line.matches('}').count() as i64;
    }
    items
}

/// The full surface: `file.rs: signature` lines, files in sorted order.
fn surface() -> String {
    let mut files: Vec<PathBuf> = std::fs::read_dir(core_src())
        .expect("read crates/core/src")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    let mut out = String::new();
    for file in files {
        let name = file.file_name().unwrap().to_string_lossy().into_owned();
        let source = std::fs::read_to_string(&file).unwrap();
        for item in public_items(&source) {
            writeln!(out, "{name}: {item}").unwrap();
        }
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let actual = surface();
    if std::env::var_os("SIXSCOPE_BLESS").is_some() {
        std::fs::write(snapshot_path(), &actual).expect("write api_surface.txt");
        return;
    }
    let expected = std::fs::read_to_string(snapshot_path())
        .expect("tests/api_surface.txt missing — regenerate with SIXSCOPE_BLESS=1");
    assert_eq!(
        actual, expected,
        "the public API of the sixscope crate changed — review the diff \
         above, then regenerate the snapshot with SIXSCOPE_BLESS=1"
    );
}

#[test]
fn surface_extractor_sees_the_pipeline() {
    // Self-check: the extractor must see the tentpole exports, or the
    // snapshot comparison is vacuous.
    let s = surface();
    assert!(s.contains("pipeline.rs: pub struct Pipeline"), "{s}");
    assert!(s.contains("error.rs: pub enum Error"), "{s}");
    assert!(
        s.contains("lib.rs: pub use pipeline::{Pipeline, PipelineOutput};"),
        "{s}"
    );
}
