//! UpSet-style intersection analysis across telescopes (Fig. 8).
//!
//! For a universe of items (source ASNs, /128 sources) each observed at a
//! subset of the four telescopes, the UpSet view reports (a) the
//! *non-exclusive* per-telescope totals and (b) the count of items per
//! *exact* telescope combination — e.g. "seen at T1 and T2 but nowhere
//! else".

use sixscope_telescope::TelescopeId;
use std::collections::BTreeMap;

/// A set of telescopes as a 4-bit mask (bit i = `TelescopeId::ALL[i]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TelescopeSet(pub u8);

impl TelescopeSet {
    /// The empty set.
    pub const EMPTY: TelescopeSet = TelescopeSet(0);

    /// Adds a telescope.
    pub fn insert(&mut self, t: TelescopeId) {
        self.0 |= 1 << Self::index(t);
    }

    /// Membership test.
    pub fn contains(&self, t: TelescopeId) -> bool {
        self.0 & (1 << Self::index(t)) != 0
    }

    /// Number of telescopes in the set.
    pub fn len(&self) -> u32 {
        self.0.count_ones()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// The member telescopes in order.
    pub fn members(&self) -> Vec<TelescopeId> {
        TelescopeId::ALL
            .iter()
            .filter(|&&t| self.contains(t))
            .copied()
            .collect()
    }

    fn index(t: TelescopeId) -> u8 {
        TelescopeId::ALL.iter().position(|&x| x == t).unwrap() as u8
    }
}

impl std::fmt::Display for TelescopeSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return f.write_str("∅");
        }
        let names: Vec<String> = self.members().iter().map(|t| t.to_string()).collect();
        f.write_str(&names.join("+"))
    }
}

/// The UpSet decomposition of item observations.
#[derive(Debug, Clone, Default)]
pub struct UpSet {
    /// Count of items per exact telescope combination.
    pub exclusive: BTreeMap<TelescopeSet, u64>,
    /// Total items per telescope (non-exclusive, the left bars of Fig. 8).
    pub totals: BTreeMap<TelescopeId, u64>,
    /// Total distinct items.
    pub universe: u64,
}

impl UpSet {
    /// Builds the decomposition from per-item observation sets.
    pub fn from_observations<I: Ord>(observations: &BTreeMap<I, TelescopeSet>) -> UpSet {
        Self::from_sets(observations.values().copied())
    }

    /// Builds the decomposition from bare per-item telescope sets.
    ///
    /// The corpus index stores each source's membership as a
    /// [`TelescopeSet`] keyed by interned id; iterating those in id order
    /// yields the same multiset of sets as a `BTreeMap` of keys, so both
    /// constructors produce identical decompositions.
    pub fn from_sets(sets: impl IntoIterator<Item = TelescopeSet>) -> UpSet {
        let mut upset = UpSet::default();
        for set in sets {
            if set.is_empty() {
                continue;
            }
            *upset.exclusive.entry(set).or_default() += 1;
            for t in set.members() {
                *upset.totals.entry(t).or_default() += 1;
            }
            upset.universe += 1;
        }
        upset
    }

    /// Items observed *only* at `t`.
    pub fn exclusive_to(&self, t: TelescopeId) -> u64 {
        let mut solo = TelescopeSet::EMPTY;
        solo.insert(t);
        self.exclusive.get(&solo).copied().unwrap_or(0)
    }

    /// Items observed at every telescope.
    pub fn at_all(&self) -> u64 {
        let mut all = TelescopeSet::EMPTY;
        for t in TelescopeId::ALL {
            all.insert(t);
        }
        self.exclusive.get(&all).copied().unwrap_or(0)
    }

    /// Share of the universe observed at exactly one telescope.
    pub fn exclusive_share(&self) -> f64 {
        if self.universe == 0 {
            return 0.0;
        }
        let solo: u64 = self
            .exclusive
            .iter()
            .filter(|(set, _)| set.len() == 1)
            .map(|(_, c)| c)
            .sum();
        solo as f64 / self.universe as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[TelescopeId]) -> TelescopeSet {
        let mut s = TelescopeSet::EMPTY;
        for &t in ids {
            s.insert(t);
        }
        s
    }

    #[test]
    fn set_basics() {
        let mut s = TelescopeSet::EMPTY;
        assert!(s.is_empty());
        s.insert(TelescopeId::T2);
        s.insert(TelescopeId::T4);
        assert_eq!(s.len(), 2);
        assert!(s.contains(TelescopeId::T2));
        assert!(!s.contains(TelescopeId::T1));
        assert_eq!(s.members(), vec![TelescopeId::T2, TelescopeId::T4]);
        assert_eq!(s.to_string(), "T2+T4");
        // Idempotent insertion.
        s.insert(TelescopeId::T2);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn upset_decomposition() {
        use TelescopeId::*;
        let mut obs: BTreeMap<&str, TelescopeSet> = BTreeMap::new();
        obs.insert("a", set(&[T1]));
        obs.insert("b", set(&[T1]));
        obs.insert("c", set(&[T1, T2]));
        obs.insert("d", set(&[T1, T2, T3, T4]));
        obs.insert("e", set(&[])); // never observed: excluded
        let upset = UpSet::from_observations(&obs);
        assert_eq!(upset.universe, 4);
        assert_eq!(upset.exclusive_to(T1), 2);
        assert_eq!(upset.exclusive_to(T2), 0);
        assert_eq!(upset.at_all(), 1);
        // Non-exclusive totals.
        assert_eq!(upset.totals[&T1], 4);
        assert_eq!(upset.totals[&T2], 2);
        assert_eq!(upset.totals[&T3], 1);
        // Exclusive share: items at exactly one telescope = 2 of 4.
        assert!((upset.exclusive_share() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_universe() {
        let obs: BTreeMap<u32, TelescopeSet> = BTreeMap::new();
        let upset = UpSet::from_observations(&obs);
        assert_eq!(upset.universe, 0);
        assert_eq!(upset.exclusive_share(), 0.0);
        assert_eq!(upset.at_all(), 0);
    }

    #[test]
    fn combination_counts_are_exact() {
        use TelescopeId::*;
        let mut obs: BTreeMap<u32, TelescopeSet> = BTreeMap::new();
        for i in 0..5 {
            obs.insert(i, set(&[T1, T3]));
        }
        let upset = UpSet::from_observations(&obs);
        assert_eq!(upset.exclusive[&set(&[T1, T3])], 5);
        assert_eq!(upset.exclusive_to(T1), 0);
        assert_eq!(upset.exclusive_to(T3), 0);
    }
}
