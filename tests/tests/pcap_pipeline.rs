//! Integration: the offline pcap pipeline — capture bytes written to pcap,
//! read back, and analyzed must yield identical results to the live path.

use sixscope_packet::{PcapReader, PcapWriter};
use sixscope_scanners::scanner::StaticContext;
use sixscope_scanners::{
    AddressStrategy, NetworkStrategy, ScannerSpec, SourceModel, TemporalModel, ToolProfile,
};
use sixscope_telescope::{AggLevel, Capture, Sessionizer, TelescopeConfig};
use sixscope_types::{Asn, SimDuration, SimTime, Xoshiro256pp};

fn wire_traffic() -> Vec<(SimTime, Vec<u8>)> {
    let prefix = "2001:db8:77::/48".parse().unwrap();
    let ctx = StaticContext {
        announced: vec![prefix],
        events: vec![],
        hitlist: vec![],
        responsive: None,
        end: SimTime::EPOCH + SimDuration::days(3),
    };
    let spec = ScannerSpec {
        id: 9,
        source: SourceModel::Fixed("2a0a::9".parse().unwrap()),
        asn: Asn(64700),
        temporal: TemporalModel::Periodic {
            start: SimTime::from_secs(100),
            period: SimDuration::hours(12),
            jitter: SimDuration::ZERO,
            until: ctx.end,
        },
        network: NetworkStrategy::AllAnnounced,
        address: AddressStrategy::LowByte { max: 20 },
        tool: ToolProfile::yarrp6(),
        packets_per_prefix: 20,
        pps: 1.0,
        reactive: None,
        tga_followups: None,
    };
    let mut rng = Xoshiro256pp::seed_from_u64(123);
    let mut buf = Vec::new();
    let mut wire: Vec<(SimTime, Vec<u8>)> = spec
        .generate(&ctx, &mut rng)
        .into_iter()
        .map(|pr| {
            pr.encode_into(&mut buf);
            (pr.ts, buf.clone())
        })
        .collect();
    wire.sort_by_key(|(ts, _)| *ts);
    wire
}

#[test]
fn live_and_offline_pipelines_agree() {
    let config = TelescopeConfig::t3("2001:db8:77::/48".parse().unwrap());
    let wire = wire_traffic();

    // Live path.
    let mut live = Capture::new(config.clone());
    for (ts, bytes) in &wire {
        live.ingest(*ts, bytes);
    }

    // Offline path: write pcap, read pcap.
    let mut writer = PcapWriter::new(Vec::new()).unwrap();
    for (ts, bytes) in &wire {
        writer
            .write_record(&sixscope_packet::PcapRecord {
                ts: *ts,
                ts_micros: 0,
                data: bytes.clone(),
            })
            .unwrap();
    }
    let pcap_bytes = writer.into_inner().unwrap();
    let mut offline = Capture::new(config);
    offline.ingest_pcap(&pcap_bytes[..]).unwrap();

    assert_eq!(live.packets(), offline.packets());

    // Sessionization and session-level metadata agree.
    let s_live = Sessionizer::paper(AggLevel::Addr128).sessionize(&live);
    let s_off = Sessionizer::paper(AggLevel::Addr128).sessionize(&offline);
    assert_eq!(s_live, s_off);
    assert_eq!(s_live.len(), 6, "12-hourly sessions over 3 days");
}

#[test]
fn pcap_files_are_self_describing() {
    let wire = wire_traffic();
    let mut writer = PcapWriter::new(Vec::new()).unwrap();
    for (ts, bytes) in &wire {
        writer
            .write_record(&sixscope_packet::PcapRecord {
                ts: *ts,
                ts_micros: 42,
                data: bytes.clone(),
            })
            .unwrap();
    }
    let bytes = writer.into_inner().unwrap();
    let records: Vec<_> = PcapReader::new(&bytes[..])
        .unwrap()
        .map(Result::unwrap)
        .collect();
    assert_eq!(records.len(), wire.len());
    for (rec, (ts, data)) in records.iter().zip(&wire) {
        assert_eq!(rec.ts, *ts);
        assert_eq!(&rec.data, data);
        // Every record re-parses as a valid IPv6 packet.
        sixscope_packet::ParsedPacket::parse(&rec.data).unwrap();
    }
}
