//! NLRI encoding for IPv6 prefixes (RFC 4760 §5).
//!
//! Each prefix is encoded as one length byte followed by
//! `ceil(len / 8)` address bytes — the minimal representation.

use crate::error::BgpError;
use sixscope_types::Ipv6Prefix;

/// Appends the wire form of `prefix` to `out`.
pub fn encode_prefix(prefix: &Ipv6Prefix, out: &mut Vec<u8>) {
    out.push(prefix.len());
    let nbytes = prefix.len().div_ceil(8) as usize;
    let octets = prefix.network().octets();
    out.extend_from_slice(&octets[..nbytes]);
}

/// Decodes one prefix from the front of `buf`; returns it and the remainder.
pub fn decode_prefix(buf: &[u8]) -> Result<(Ipv6Prefix, &[u8]), BgpError> {
    let (&len, rest) = buf.split_first().ok_or(BgpError::Truncated("NLRI"))?;
    if len > 128 {
        return Err(BgpError::BadPrefixLength(len));
    }
    let nbytes = len.div_ceil(8) as usize;
    if rest.len() < nbytes {
        return Err(BgpError::Truncated("NLRI prefix bytes"));
    }
    let mut octets = [0u8; 16];
    octets[..nbytes].copy_from_slice(&rest[..nbytes]);
    let prefix = Ipv6Prefix::new(octets.into(), len).expect("len validated above");
    Ok((prefix, &rest[nbytes..]))
}

/// Encodes a list of prefixes back to back.
pub fn encode_prefixes(prefixes: &[Ipv6Prefix], out: &mut Vec<u8>) {
    for p in prefixes {
        encode_prefix(p, out);
    }
}

/// Decodes prefixes until `buf` is exhausted.
pub fn decode_prefixes(mut buf: &[u8]) -> Result<Vec<Ipv6Prefix>, BgpError> {
    let mut out = Vec::new();
    while !buf.is_empty() {
        let (p, rest) = decode_prefix(buf)?;
        out.push(p);
        buf = rest;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn encoding_is_minimal() {
        let mut out = Vec::new();
        encode_prefix(&p("2001:db8::/32"), &mut out);
        assert_eq!(out, vec![32, 0x20, 0x01, 0x0d, 0xb8]);
        out.clear();
        encode_prefix(&p("2001:db8:8000::/33"), &mut out);
        assert_eq!(out, vec![33, 0x20, 0x01, 0x0d, 0xb8, 0x80]);
        out.clear();
        encode_prefix(&Ipv6Prefix::default_route(), &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn round_trip_multiple() {
        let list = vec![
            p("2001:db8::/32"),
            p("2001:db8:8000::/33"),
            p("::/0"),
            p("2001:db8::1/128"),
        ];
        let mut out = Vec::new();
        encode_prefixes(&list, &mut out);
        assert_eq!(decode_prefixes(&out).unwrap(), list);
    }

    #[test]
    fn rejects_oversized_length() {
        assert_eq!(
            decode_prefix(&[129, 0, 0]).unwrap_err(),
            BgpError::BadPrefixLength(129)
        );
    }

    #[test]
    fn rejects_truncation() {
        assert!(matches!(decode_prefix(&[]), Err(BgpError::Truncated(_))));
        assert!(matches!(
            decode_prefix(&[48, 0x20, 0x01]),
            Err(BgpError::Truncated(_))
        ));
    }
}
