//! Telescope identities and configurations (paper §3.1).

use serde::{Deserialize, Serialize};
use sixscope_types::Ipv6Prefix;
use std::fmt;
use std::net::Ipv6Addr;

/// The four telescopes of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TelescopeId {
    /// BGP-controlled, untainted /32 split down to /48s.
    T1,
    /// Partially productive /48 (13 years announced, /56 in active use,
    /// one DNS-exposed address outside the productive subnet).
    T2,
    /// Entirely silent /48, only covered by a larger /29 announcement.
    T3,
    /// Reactive /48 in the same covering /29 — answers probes.
    T4,
}

impl TelescopeId {
    /// All telescopes in order.
    pub const ALL: [TelescopeId; 4] = [
        TelescopeId::T1,
        TelescopeId::T2,
        TelescopeId::T3,
        TelescopeId::T4,
    ];
}

impl fmt::Display for TelescopeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TelescopeId::T1 => "T1",
            TelescopeId::T2 => "T2",
            TelescopeId::T3 => "T3",
            TelescopeId::T4 => "T4",
        };
        f.write_str(s)
    }
}

/// Behavioral class of a telescope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelescopeKind {
    /// Absorbs packets silently.
    Passive,
    /// Passive but co-located with productive hosts and a DNS attractor.
    PartiallyProductive,
    /// Passive, not separately announced (covered by a larger prefix only).
    Silent,
    /// Accepts TCP connections and answers probes.
    Reactive,
}

/// Static configuration of one telescope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelescopeConfig {
    /// Which telescope this is.
    pub id: TelescopeId,
    /// Behavioral class.
    pub kind: TelescopeKind,
    /// The telescope's own prefix (the space it observes).
    pub prefix: Ipv6Prefix,
    /// Whether the prefix is *separately* announced in BGP (false for
    /// T3/T4, which ride a covering announcement).
    pub separately_announced: bool,
    /// The DNS-exposed address, if any (T2's attractor).
    pub dns_exposed: Option<Ipv6Addr>,
    /// A productive sub-prefix whose traffic is excluded from capture
    /// (T2's active /56).
    pub productive_subnet: Option<Ipv6Prefix>,
}

impl TelescopeConfig {
    /// The study's T1: untainted /32, BGP-controlled.
    pub fn t1(prefix: Ipv6Prefix) -> Self {
        assert_eq!(prefix.len(), 32, "T1 is a /32");
        TelescopeConfig {
            id: TelescopeId::T1,
            kind: TelescopeKind::Passive,
            prefix,
            separately_announced: true,
            dns_exposed: None,
            productive_subnet: None,
        }
    }

    /// The study's T2: /48 announced for 13 years, productive /56 inside,
    /// one DNS name outside the /56.
    pub fn t2(prefix: Ipv6Prefix) -> Self {
        assert_eq!(prefix.len(), 48, "T2 is a /48");
        // The productive /56 is the first /56; the DNS-exposed address
        // sits in the second /56 so it is outside the productive subnet.
        let productive = prefix.subnets(56).next().expect("a /48 has /56 subnets");
        let exposed_subnet = prefix.subnets(56).nth(1).expect("second /56 exists");
        TelescopeConfig {
            id: TelescopeId::T2,
            kind: TelescopeKind::PartiallyProductive,
            prefix,
            separately_announced: true,
            dns_exposed: Some(exposed_subnet.low_byte_address()),
            productive_subnet: Some(productive),
        }
    }

    /// The study's T3: silent /48 inside a covering /29.
    pub fn t3(prefix: Ipv6Prefix) -> Self {
        assert_eq!(prefix.len(), 48, "T3 is a /48");
        TelescopeConfig {
            id: TelescopeId::T3,
            kind: TelescopeKind::Silent,
            prefix,
            separately_announced: false,
            dns_exposed: None,
            productive_subnet: None,
        }
    }

    /// The study's T4: reactive /48 inside the same covering /29.
    pub fn t4(prefix: Ipv6Prefix) -> Self {
        assert_eq!(prefix.len(), 48, "T4 is a /48");
        TelescopeConfig {
            id: TelescopeId::T4,
            kind: TelescopeKind::Reactive,
            prefix,
            separately_announced: false,
            dns_exposed: None,
            productive_subnet: None,
        }
    }

    /// True if traffic to `addr` should be captured (inside the prefix and
    /// not excluded as productive-subnet traffic).
    pub fn captures(&self, addr: Ipv6Addr) -> bool {
        if !self.prefix.contains(addr) {
            return false;
        }
        match &self.productive_subnet {
            Some(p) => !p.contains(addr),
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn t1_constructor_checks_length() {
        let cfg = TelescopeConfig::t1(p("2001:db8::/32"));
        assert!(cfg.separately_announced);
        assert_eq!(cfg.kind, TelescopeKind::Passive);
    }

    #[test]
    #[should_panic]
    fn t1_rejects_non_32() {
        TelescopeConfig::t1(p("2001:db8::/48"));
    }

    #[test]
    fn t2_excludes_productive_subnet_from_capture() {
        let cfg = TelescopeConfig::t2(p("2001:db8:2::/48"));
        let productive = cfg.productive_subnet.unwrap();
        assert_eq!(productive, p("2001:db8:2::/56"));
        // An address in the productive /56 is not captured.
        assert!(!cfg.captures("2001:db8:2:0:0::1".parse().unwrap()));
        // The DNS-exposed address is captured and outside the /56.
        let exposed = cfg.dns_exposed.unwrap();
        assert!(cfg.captures(exposed));
        assert!(!productive.contains(exposed));
        assert!(cfg.prefix.contains(exposed));
    }

    #[test]
    fn t3_t4_are_not_separately_announced() {
        assert!(!TelescopeConfig::t3(p("2001:db8:3::/48")).separately_announced);
        assert!(!TelescopeConfig::t4(p("2001:db8:4::/48")).separately_announced);
        assert_eq!(
            TelescopeConfig::t4(p("2001:db8:4::/48")).kind,
            TelescopeKind::Reactive
        );
    }

    #[test]
    fn captures_requires_prefix_membership() {
        let cfg = TelescopeConfig::t3(p("2001:db8:3::/48"));
        assert!(cfg.captures("2001:db8:3::1".parse().unwrap()));
        assert!(!cfg.captures("2001:db8:4::1".parse().unwrap()));
    }

    #[test]
    fn display_names() {
        assert_eq!(TelescopeId::T1.to_string(), "T1");
        assert_eq!(TelescopeId::ALL.len(), 4);
    }
}
