//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build and test without network access to a crate
//! registry, so the external dependency is replaced by this deterministic
//! mini property-testing framework implementing the subset sixscope's
//! property tests use: the [`Strategy`] trait with `prop_map`, `any::<T>()`
//! for primitive integers and byte arrays, integer/float range strategies,
//! tuple strategies, [`Just`], `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::option::of`, and the `proptest!`/`prop_assert*!`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest, on purpose:
//! * no shrinking — a failing case panics with the assertion message only,
//! * the case count defaults to 32 (override with `PROPTEST_CASES`),
//! * the RNG seed is derived from the test name, so runs are reproducible.

use std::rc::Rc;

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the test panics with this message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic generator behind all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 128 random bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "below(0)");
        self.next_u128() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Object-safe so strategies can be boxed for
/// `prop_oneof!`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy (used by `prop_oneof!`).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over non-empty `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u128) as usize;
        self.options[i].generate(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u128() as $t
            }
        })+
    };
}
arbitrary_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for b in &mut out {
            *b = rng.next_u64() as u8;
        }
        out
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy_int {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    (self.start as u128 + rng.below(span)) as $t
                }
            }
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (self.start as u128, <$t>::MAX as u128);
                    if lo == 0 && hi == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    (lo + rng.below(hi - lo + 1)) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                    assert!(lo <= hi, "empty range strategy");
                    if lo == 0 && hi == u128::MAX {
                        return rng.next_u128() as $t;
                    }
                    (lo + rng.below(hi - lo + 1)) as $t
                }
            }
        )+
    };
}
range_strategy_int!(u8, u16, u32, u64, u128, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// `proptest::collection` — sized collections of generated elements.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Vectors of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `proptest::option` — optional values.
pub mod option {
    use super::{Strategy, TestRng};

    /// `None` about a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Number of cases per property (default 32, `PROPTEST_CASES` overrides).
pub fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(32)
}

/// Runs one property: generates cases, skips rejections, panics on failure.
///
/// The RNG seed is derived from the property name so failures reproduce.
pub fn run_prop_test<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        seed ^= *b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let cases = case_count();
    let mut rng = TestRng::new(seed);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    while passed < cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases * 64,
                    "property {name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed (case {passed}): {msg}")
            }
        }
    }
}

/// Defines deterministic property tests over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_prop_test(stringify!($name), |__prop_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __prop_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{:?} != {:?} ({}:{})",
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{}: {:?} != {:?} ({}:{})",
                format!($($fmt)+),
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (__l, __r) = (&$lhs, &$rhs);
        if __l == __r {
            return Err($crate::TestCaseError::Fail(format!(
                "{:?} == {:?} ({}:{})",
                __l,
                __r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies generating the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, y in 0u8..=128) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y <= 128);
        }

        #[test]
        fn maps_apply(v in (1u32..5).prop_map(|n| n * 2)) {
            prop_assert!(v % 2 == 0 && (2..10).contains(&v));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_just_work(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }

        #[test]
        fn assume_rejects(v in any::<u64>()) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::new(7);
        let mut b = crate::TestRng::new(7);
        assert_eq!(a.next_u128(), b.next_u128());
    }
}
