//! Criterion benchmarks regenerating every *figure* of the paper.
//!
//! One bench target per figure (or figure pair); each asserts the figure's
//! qualitative shape before timing the extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use sixscope::figures;
use sixscope_analysis::classify::AddrSelection;
use sixscope_bench::bench_corpus;
use sixscope_telescope::TelescopeId;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let a = bench_corpus();
    let series = figures::fig3(a);
    assert!(!series.is_empty());
    // Declining discovery: the first two weeks outpace the last two.
    let head: u64 = series
        .iter()
        .filter(|&&(w, _)| w < 2)
        .map(|&(_, n)| n)
        .sum();
    let tail: u64 = series
        .iter()
        .filter(|&&(w, _)| w >= 10)
        .map(|&(_, n)| n)
        .sum();
    assert!(head > tail, "Fig. 3 does not decline ({head} vs {tail})");
    c.bench_function("fig3_new_prefixes", |b| {
        b.iter(|| black_box(figures::fig3(a)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let a = bench_corpus();
    let curves = figures::fig4(a);
    assert_eq!(curves.len(), 6);
    c.bench_function("fig4_growth_curves", |b| {
        b.iter(|| black_box(figures::fig4(a)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let a = bench_corpus();
    assert!(!figures::fig5(a).is_empty());
    c.bench_function("fig5_heavy_activity", |b| {
        b.iter(|| black_box(figures::fig5(a)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let a = bench_corpus();
    let hourly = figures::fig7a(a);
    let sum = |id: TelescopeId| hourly[&id].iter().map(|&(_, n)| n).sum::<u64>();
    assert!(sum(TelescopeId::T1) > sum(TelescopeId::T3));
    let cells = figures::fig7b(a);
    let structured: u64 = cells
        .iter()
        .filter(|x| x.addr_selection == AddrSelection::Structured)
        .map(|x| x.sessions)
        .sum();
    let total: u64 = cells.iter().map(|x| x.sessions).sum();
    assert!(structured * 2 > total, "structured selection must dominate");
    c.bench_function("fig7a_hourly_traffic", |b| {
        b.iter(|| black_box(figures::fig7a(a)))
    });
    c.bench_function("fig7b_taxonomy_initial", |b| {
        b.iter(|| black_box(figures::fig7b(a)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let a = bench_corpus();
    let (_, sources) = figures::fig8(a);
    assert!(
        sources.exclusive_share() > 0.5,
        "most sources exclusive to one telescope"
    );
    c.bench_function("fig8_upset", |b| b.iter(|| black_box(figures::fig8(a))));
}

fn bench_fig9_to_11(c: &mut Criterion) {
    let a = bench_corpus();
    let weekly = figures::fig9(a);
    assert!(weekly.contains_key(&TelescopeId::T1));
    let growth = figures::fig10(a);
    assert!(growth.len() > 2);
    let biweekly = figures::fig11(a);
    assert!(!biweekly.t1.is_empty());
    c.bench_function("fig9_weekly_sessions", |b| {
        b.iter(|| black_box(figures::fig9(a)))
    });
    c.bench_function("fig10_prefix_growth", |b| {
        b.iter(|| black_box(figures::fig10(a)))
    });
    c.bench_function("fig11_biweekly", |b| {
        b.iter(|| black_box(figures::fig11(a)))
    });
}

fn bench_fig12_13(c: &mut Criterion) {
    let a = bench_corpus();
    let (structured, _) = figures::fig12(a);
    assert!(
        structured.is_some(),
        "a large structured session must exist"
    );
    let sorted = figures::fig13(a).unwrap();
    assert!(sorted.rows.windows(2).all(|w| w[0] <= w[1]));
    c.bench_function("fig12_nibble_matrices", |b| {
        b.iter(|| black_box(figures::fig12(a)))
    });
}

fn bench_fig14_15(c: &mut Criterion) {
    let a = bench_corpus();
    let ranks = figures::fig14(a);
    assert!(!ranks.is_empty());
    let cells = figures::fig15(a);
    assert!(!cells.is_empty());
    c.bench_function("fig14_subnet_ranks", |b| {
        b.iter(|| black_box(figures::fig14(a)))
    });
    c.bench_function("fig15_taxonomy_split", |b| {
        b.iter(|| black_box(figures::fig15(a)))
    });
}

fn bench_fig16(c: &mut Criterion) {
    let a = bench_corpus();
    let overlap = figures::fig16b(a);
    assert!(overlap.total > 0);
    c.bench_function("fig16_overlap", |b| {
        b.iter(|| {
            black_box(figures::fig16a(a));
            black_box(figures::fig16b(a));
        })
    });
}

fn bench_fig17(c: &mut Criterion) {
    let a = bench_corpus();
    let cells = figures::fig17(a);
    assert!(!cells.is_empty());
    c.bench_function("fig17_nist", |b| b.iter(|| black_box(figures::fig17(a))));
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = bench_fig3, bench_fig4, bench_fig5, bench_fig7, bench_fig8,
              bench_fig9_to_11, bench_fig12_13, bench_fig14_15, bench_fig16,
              bench_fig17
}
criterion_main!(benches);
