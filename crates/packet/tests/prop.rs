//! Property tests: every packet the builder can produce must parse back to
//! the same fields with a valid checksum, and pcap round-trips are lossless.

use proptest::prelude::*;
use sixscope_packet::{PacketBuilder, ParsedPacket, PcapReader, PcapRecord, PcapWriter, Transport};
use sixscope_types::SimTime;
use std::net::Ipv6Addr;

fn arb_addr() -> impl Strategy<Value = Ipv6Addr> {
    any::<u128>().prop_map(Ipv6Addr::from)
}

fn arb_payload() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..256)
}

proptest! {
    #[test]
    fn icmpv6_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        id in any::<u16>(), seq in any::<u16>(),
        payload in arb_payload(),
        hop in any::<u8>(),
    ) {
        let bytes = PacketBuilder::new(src, dst)
            .hop_limit(hop)
            .icmpv6_echo_request(id, seq, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.header.src, src);
        prop_assert_eq!(p.header.dst, dst);
        prop_assert_eq!(p.header.hop_limit, hop);
        match p.transport {
            Transport::Icmpv6(h) => {
                prop_assert_eq!(h.identifier, id);
                prop_assert_eq!(h.sequence, seq);
            }
            ref other => prop_assert!(false, "wrong transport {:?}", other),
        }
        prop_assert_eq!(&p.payload[..], &payload[..]);
        // Checksums must verify.
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::icmpv6::Icmpv6Header::verify_checksum(src, dst, upper));
    }

    #[test]
    fn tcp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
        payload in arb_payload(),
    ) {
        let bytes = PacketBuilder::new(src, dst).tcp_syn(sp, dp, seq, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.src_port(), Some(sp));
        prop_assert_eq!(p.dst_port(), Some(dp));
        prop_assert_eq!(&p.payload[..], &payload[..]);
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::tcp::TcpHeader::verify_checksum(src, dst, upper));
    }

    #[test]
    fn udp_build_parse_round_trip(
        src in arb_addr(), dst in arb_addr(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in arb_payload(),
    ) {
        let bytes = PacketBuilder::new(src, dst).udp(sp, dp, &payload);
        let p = ParsedPacket::parse(&bytes).unwrap();
        prop_assert_eq!(p.src_port(), Some(sp));
        prop_assert_eq!(p.dst_port(), Some(dp));
        prop_assert_eq!(&p.payload[..], &payload[..]);
        let upper = &bytes[40..];
        prop_assert!(sixscope_packet::udp::UdpHeader::verify_checksum(src, dst, upper));
    }

    #[test]
    fn parse_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = ParsedPacket::parse(&bytes);
    }

    #[test]
    fn pcap_round_trip_all_endiannesses_and_resolutions(
        records in proptest::collection::vec(
            (any::<u32>(), 0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..128)),
            0..12,
        ),
        big_endian in any::<bool>(),
        nanos in any::<bool>(),
    ) {
        // Hand-roll the four on-disk variants the reader accepts
        // (LE/BE × µs/ns); the writer itself only emits LE-µs.
        let magic: u32 = if nanos { 0xa1b2_3c4d } else { 0xa1b2_c3d4 };
        let put32 = |out: &mut Vec<u8>, v: u32| {
            out.extend_from_slice(&if big_endian { v.to_be_bytes() } else { v.to_le_bytes() });
        };
        let put16 = |out: &mut Vec<u8>, v: u16| {
            out.extend_from_slice(&if big_endian { v.to_be_bytes() } else { v.to_le_bytes() });
        };
        let mut bytes = Vec::new();
        put32(&mut bytes, magic);
        put16(&mut bytes, 2);
        put16(&mut bytes, 4);
        put32(&mut bytes, 0); // thiszone
        put32(&mut bytes, 0); // sigfigs
        put32(&mut bytes, 65_535); // snaplen
        put32(&mut bytes, 101); // LINKTYPE_RAW
        for (ts, us, data) in &records {
            put32(&mut bytes, *ts);
            put32(&mut bytes, if nanos { us * 1000 } else { *us });
            put32(&mut bytes, data.len() as u32);
            put32(&mut bytes, data.len() as u32);
            bytes.extend_from_slice(data);
        }
        let reader = PcapReader::new(&bytes[..]).unwrap();
        let back: Vec<PcapRecord> = reader.map(Result::unwrap).collect();
        prop_assert_eq!(back.len(), records.len());
        for (rec, (ts, us, data)) in back.iter().zip(&records) {
            prop_assert_eq!(rec.ts, SimTime::from_secs(*ts as u64));
            prop_assert_eq!(rec.ts_micros, *us);
            prop_assert_eq!(&rec.data, data);
        }
    }

    #[test]
    fn recovering_reader_never_errors_on_arbitrary_tails(
        prefix_records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..96),
            0..6,
        ),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        // Valid records followed by arbitrary garbage: the recovering
        // reader must yield every valid record, then classify the damage
        // without ever returning a hard error on in-memory input.
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for data in &prefix_records {
            w.write_record(&PcapRecord {
                ts: SimTime::from_secs(1),
                ts_micros: 0,
                data: data.clone(),
            }).unwrap();
        }
        let mut bytes = w.into_inner().unwrap();
        bytes.extend_from_slice(&garbage);
        let mut r = PcapReader::new(&bytes[..]).unwrap();
        let mut yielded = 0usize;
        while let Some(outcome) = r.read_record_recovering().unwrap() {
            if let sixscope_packet::RecordOutcome::Record(rec) = outcome {
                if yielded < prefix_records.len() {
                    prop_assert_eq!(&rec.data, &prefix_records[yielded]);
                }
                yielded += 1;
            }
        }
        prop_assert!(yielded >= prefix_records.len());
    }

    #[test]
    fn pcap_round_trip(
        records in proptest::collection::vec(
            (any::<u32>(), 0u32..1_000_000, proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        )
    ) {
        let records: Vec<PcapRecord> = records
            .into_iter()
            .map(|(ts, us, data)| PcapRecord {
                ts: SimTime::from_secs(ts as u64),
                ts_micros: us,
                data,
            })
            .collect();
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for r in &records {
            w.write_record(r).unwrap();
        }
        let bytes = w.into_inner().unwrap();
        let back: Vec<PcapRecord> = PcapReader::new(&bytes[..])
            .unwrap()
            .map(Result::unwrap)
            .collect();
        prop_assert_eq!(back, records);
    }
}
